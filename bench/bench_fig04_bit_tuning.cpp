/// @file
/// Figure 4: bit tuning on BlackScholesBody with a 32768-entry (15-bit)
/// lookup table.  Reproduces the steepest-ascent hill climb over bit
/// assignments to the three variable inputs (S, X, T); R and V are
/// constant during profiling and receive no bits.

#include <benchmark/benchmark.h>

#include "bench/bench_support.h"
#include "memo/bit_tuning.h"
#include "parser/parser.h"
#include "support/rng.h"

namespace paraprox::bench {
namespace {

constexpr const char* kBlackScholesBody = R"(
float cnd(float d) {
    float k = 1.0f / (1.0f + 0.2316419f * fabsf(d));
    float poly = k * (0.31938153f + k * (-0.356563782f
               + k * (1.781477937f + k * (-1.821255978f
               + k * 1.330274429f))));
    float c = 1.0f - 0.39894228f * expf(-0.5f * d * d) * poly;
    if (d < 0.0f) { c = 1.0f - c; }
    return c;
}
float black_scholes_body(float s, float x, float t, float r, float v) {
    float sq = sqrtf(t);
    float d1 = (logf(s / x) + (r + 0.5f * v * v) * t) / (v * sq);
    float d2 = d1 - v * sq;
    return s * cnd(d1) - x * expf(-(r * t)) * cnd(d2);
}
)";

std::string
bits_to_string(const std::vector<int>& bits)
{
    std::string out = "(";
    for (std::size_t i = 0; i < bits.size(); ++i) {
        if (i)
            out += ",";
        out += std::to_string(bits[i]);
    }
    return out + ")";
}

void
run_figure()
{
    auto module = parser::parse_module(kBlackScholesBody);
    memo::ScalarEvaluator evaluator(module, "black_scholes_body");

    Rng rng(0xf19ull);
    std::vector<std::vector<float>> training(512);
    for (auto& sample : training) {
        sample = {rng.uniform(5.0f, 30.0f), rng.uniform(1.0f, 100.0f),
                  rng.uniform(0.25f, 10.0f), 0.02f, 0.30f};
    }

    auto result = memo::bit_tune(evaluator, training, 15);

    print_header("Figure 4: bit tuning for BlackScholesBody, 32768-entry "
                 "table (15 address bits)");
    std::printf("Paper: root (5,5,5)=95.2%% -> best child (5,6,4)=96.5%%; "
                "children of the winner do not improve.\n\n");
    print_row({"node (bits S,X,T)", "output quality"}, 22);
    for (const auto& node : result.explored)
        print_row({bits_to_string(node.bits), fmt(node.quality) + "%"}, 22);

    std::vector<int> final_bits;
    for (const auto& input : result.config.inputs) {
        if (!input.is_constant)
            final_bits.push_back(input.bits);
    }
    std::printf("\nSelected assignment: %s with quality %.2f%%\n",
                bits_to_string(final_bits).c_str(), result.quality);
    std::printf("Constant inputs excluded from the address (paper's R, V "
                "observation):");
    for (const auto& input : result.config.inputs) {
        if (input.is_constant)
            std::printf(" %s=%.3g", input.name.c_str(),
                        input.constant_value);
    }
    std::printf("\nNodes explored: %zu\n", result.explored.size());
}

void
BM_BitTuning15(benchmark::State& state)
{
    auto module = parser::parse_module(kBlackScholesBody);
    memo::ScalarEvaluator evaluator(module, "black_scholes_body");
    Rng rng(0xf19ull);
    std::vector<std::vector<float>> training(128);
    for (auto& sample : training) {
        sample = {rng.uniform(5.0f, 30.0f), rng.uniform(1.0f, 100.0f),
                  rng.uniform(0.25f, 10.0f), 0.02f, 0.30f};
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(memo::bit_tune(evaluator, training, 12));
}
BENCHMARK(BM_BitTuning15)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace paraprox::bench

int
main(int argc, char** argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    paraprox::bench::run_figure();
    return 0;
}
