/// @file
/// Shared plumbing for the paper-figure benchmark harnesses: tuner-driven
/// app measurement (Fig. 11/12/13/14), the four analytic map functions of
/// §4.4.2 (Figs. 15/16/17), and fixed-width table printing.

#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "apps/app.h"
#include "device/memory_model.h"
#include "runtime/tuner.h"
#include "transforms/memoize.h"

namespace paraprox::bench {

/// Result of tuning one application on one device at a TOQ.
struct AppMeasurement {
    std::string app;
    std::string device;
    std::string chosen;     ///< Selected variant label ("exact" if none).
    double speedup = 1.0;   ///< Modeled-cycles speedup of the selection.
    double wall_speedup = 1.0;
    double quality = 100.0; ///< Quality of the selection.
    std::vector<runtime::VariantProfile> profiles;  ///< All variants.
    std::vector<float> exact_output;   ///< From the measurement seed.
    std::vector<float> chosen_output;
};

/// Calibrate @p app on @p device at @p toq over @p seeds and report the
/// tuner's selection.
AppMeasurement measure_app(apps::Application& app,
                           const device::DeviceModel& device, double toq,
                           const std::vector<std::uint64_t>& seeds);

/// ParaCL sources for the four §4.4.2 case-study functions, each exposing
/// one heavy pure function `f(x)` and a map kernel `apply`.
const char* credit_card_source();     ///< Credit card balance equation.
const char* gompertz_source();        ///< Shifted Gompertz distribution.
const char* lgamma_source();          ///< Log-gamma.
const char* bass_source();            ///< Bass diffusion model.

/// Input domain [lo, hi) for each case-study function.
struct CaseStudyFunction {
    const char* name;
    const char* source;
    float lo;
    float hi;
};
std::vector<CaseStudyFunction> case_study_functions();

/// One memoized run of a case-study function's map kernel.
struct CaseStudyResult {
    double quality = 100.0;    ///< L1-norm quality vs. exact.
    double speedup = 1.0;      ///< Modeled-cycles speedup.
    double serialization = 0.0;  ///< extra transactions / transactions, %.
};

/// Memoize @p function's `apply` kernel with a table of 2^bits entries at
/// the given placement and lookup mode, then run exact and approximate
/// over @p n uniformly distributed inputs under @p device.
CaseStudyResult run_case_study(const CaseStudyFunction& function, int bits,
                               transforms::TableLocation location,
                               transforms::LookupMode mode,
                               const device::DeviceModel& device,
                               int n = 1 << 15);

/// All Fig. 11 applications at @p scale; when @p wanted is non-empty,
/// only the named applications, in @p wanted's order.  Every bench
/// builds its app list through this helper so scale handling stays in
/// one place.
std::vector<std::unique_ptr<apps::Application>>
make_scaled_apps(double scale, const std::vector<std::string>& wanted = {});

/// Insertion-ordered JSON object with pre-encoded fields; the building
/// block of BenchReport (rows and the config section are JsonObjects).
class JsonObject {
  public:
    JsonObject& set(const std::string& key, const std::string& value);
    JsonObject& set(const std::string& key, const char* value);
    JsonObject& set(const std::string& key, double value);
    JsonObject& set(const std::string& key, std::uint64_t value);
    JsonObject& set(const std::string& key, int value);
    JsonObject& set(const std::string& key, bool value);
    std::string dump() const;  ///< `{"k": v, ...}` on one line.

  private:
    JsonObject& raw(const std::string& key, std::string encoded);
    std::vector<std::pair<std::string, std::string>> fields_;
};

/// Machine-readable companion to a bench's stdout tables: collects a
/// config section, per-app rows, and an optional geomean, then writes
/// `BENCH_<name>.json` into the working directory so CI and scripts can
/// consume results without scraping tables.
class BenchReport {
  public:
    explicit BenchReport(std::string name);

    JsonObject& config() { return config_; }
    JsonObject& add_row();
    void set_geomean(double value);

    /// Serialize to `BENCH_<name>.json`; returns the path written, or
    /// an empty string (with a note on stdout) if the write failed.
    std::string write() const;

  private:
    std::string name_;
    JsonObject config_;
    std::vector<JsonObject> rows_;
    double geomean_ = 0.0;
    bool has_geomean_ = false;
};

/// Structural JSON well-formedness check (objects, arrays, strings,
/// numbers, booleans, null — no semantic schema).  BenchReport::write
/// gates on it before and after the atomic write, so a malformed or
/// truncated BENCH_*.json can never be published for CI to archive.
bool json_wellformed(const std::string& text);

/// Worker-thread count for concurrency benchmarks: the global pool's
/// size, which honours the PARAPROX_THREADS environment override.
std::size_t default_thread_count();

/// Print a horizontal rule + title.
void print_header(const std::string& title);

/// printf helper for one row of fixed-width cells.
void print_row(const std::vector<std::string>& cells, int width = 14);

/// Format a double with the given precision.
std::string fmt(double value, int precision = 2);

}  // namespace paraprox::bench
