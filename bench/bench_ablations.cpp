/// @file
/// Ablations of Paraprox's design decisions (DESIGN.md §7):
///   A. bit tuning (hill climbing) vs. a naive equal split of the bits;
///   B. reduction adjustment on vs. off at a fixed skipping rate;
///   C. scan tail-replication vs. uniform iteration skipping;
///   D. stencil scheme (center / row / column) across tile shapes.

#include <benchmark/benchmark.h>

#include <cmath>

#include "analysis/stencil.h"
#include "apps/common.h"
#include "bench/bench_support.h"
#include "exec/launch.h"
#include "memo/table.h"
#include "parser/parser.h"
#include "runtime/quality.h"
#include "support/rng.h"
#include "transforms/reduction_tx.h"
#include "transforms/stencil_tx.h"
#include "vm/compiler.h"

namespace paraprox::bench {
namespace {

// ---- A: bit tuning vs. equal split -------------------------------------------

void
ablation_bit_tuning()
{
    print_header("Ablation A: bit tuning (hill climb) vs. equal split");
    // A function much more sensitive to one input: tuning should shift
    // bits toward it and beat the 50/50 split.
    auto module = parser::parse_module(R"(
        float f(float x, float y) {
            return expf(3.0f * x) + 0.05f * sinf(y);
        }
    )");
    memo::ScalarEvaluator evaluator(module, "f");
    Rng rng(0xab1ull);
    std::vector<std::vector<float>> training(400);
    for (auto& sample : training)
        sample = {rng.uniform(0.0f, 2.0f), rng.uniform(0.0f, 6.28f)};

    print_row({"total bits", "equal-split quality", "tuned quality",
               "tuned bits"},
              22);
    for (int bits : {6, 8, 10, 12}) {
        auto tuned = memo::bit_tune(evaluator, training, bits);
        // The root of the exploration *is* the equal split.
        const double equal_quality = tuned.explored.front().quality;
        std::string tuned_bits;
        for (const auto& input : tuned.config.inputs) {
            if (!tuned_bits.empty())
                tuned_bits += ",";
            tuned_bits += std::to_string(input.bits);
        }
        print_row({std::to_string(bits), fmt(equal_quality),
                   fmt(tuned.quality), tuned_bits},
                  22);
    }
}

// ---- B: reduction adjustment on/off ----------------------------------------------

void
ablation_adjustment()
{
    print_header("Ablation B: reduction adjustment (x N scale-back) on vs. "
                 "off, skip=4");
    auto module = parser::parse_module(R"(
        __kernel void sum(__global float* in, __global float* out, int n) {
            int t = get_global_id(0);
            float acc = 0.0f;
            for (int i = 0; i < n; i++) { acc += in[t * n + i]; }
            out[t] = acc;
        }
    )");
    constexpr int kThreads = 128;
    constexpr int kPer = 512;
    Rng rng(0xab2ull);
    auto data = rng.uniform_vector(kThreads * kPer, 0.0f, 1.0f);

    auto run = [&](const ir::Module& m, const std::string& kernel) {
        auto program = vm::compile_kernel(m, kernel);
        exec::Buffer in = exec::Buffer::from_floats(data);
        exec::Buffer out = exec::Buffer::zeros_f32(kThreads);
        exec::ArgPack args;
        args.buffer("in", in).buffer("out", out).scalar("n", kPer);
        exec::launch(program, args,
                     exec::LaunchConfig::linear(kThreads, 32));
        return out.to_floats();
    };

    const auto exact = run(module, "sum");
    auto adjusted = transforms::reduction_approx(module, "sum", 0, 4, true);
    auto raw = transforms::reduction_approx(module, "sum", 0, 4, false);
    const double q_adj = runtime::quality_percent(
        runtime::Metric::MeanRelativeError, exact,
        run(adjusted.module, adjusted.kernel_name));
    const double q_raw = runtime::quality_percent(
        runtime::Metric::MeanRelativeError, exact,
        run(raw.module, raw.kernel_name));
    print_row({"adjustment", "quality %"}, 16);
    print_row({"on", fmt(q_adj)}, 16);
    print_row({"off", fmt(q_raw)}, 16);
    std::printf("\nWithout the scale-back, a skip-4 additive reduction "
                "returns ~1/4 of the true sum.\n");
}

// ---- C: scan tail replication vs. uniform skipping --------------------------------

void
ablation_scan_strategy()
{
    print_header("Ablation C: scan approximation strategy — tail "
                 "replication vs. uniform element skipping");
    constexpr int kN = 16384;
    Rng rng(0xab3ull);
    std::vector<float> input(kN);
    for (auto& v : input)
        v = static_cast<float>(rng.next_below(16));

    // Reference inclusive scan.
    std::vector<float> reference(kN);
    double acc = 0.0;
    for (int i = 0; i < kN; ++i) {
        acc += input[i];
        reference[i] = static_cast<float>(acc);
    }

    // Tail replication: compute the first half exactly, synthesize the
    // second half as head + total (the §3.4 scheme).
    std::vector<float> tail = reference;
    const float total = reference[kN / 2 - 1];
    for (int i = kN / 2; i < kN; ++i)
        tail[i] = reference[i - kN / 2] + total;

    // Uniform skipping a la loop perforation: drop every other element.
    // Note the scan loop is NOT an adjustable reduction — the running
    // prefix is read by every iteration, so the §3.3 detector rejects it
    // and perforation cannot legally insert the xN scale-back.
    std::vector<float> skipped(kN);
    acc = 0.0;
    for (int i = 0; i < kN; ++i) {
        if (i % 2 == 0)
            acc += input[i];
        skipped[i] = static_cast<float>(acc);
    }

    // Even granting perforation a hand-written 2x rescale, any bias in
    // which elements get skipped cascades through all later prefixes.
    std::vector<float> rescaled(kN);
    acc = 0.0;
    for (int i = 0; i < kN; ++i) {
        if (i % 2 == 0)
            acc += 2.0 * input[i];
        rescaled[i] = static_cast<float>(acc);
    }

    const auto quality = [&](const std::vector<float>& approx) {
        return fmt(runtime::quality_percent(
            runtime::Metric::MeanRelativeError, reference, approx));
    };
    print_row({"strategy", "quality %", "work saved"}, 26);
    print_row({"tail replication", quality(tail), "50%"}, 26);
    print_row({"perforation", quality(skipped), "50%"}, 26);
    print_row({"perforation + 2x rescale", quality(rescaled), "50%"}, 26);
    std::printf("\nPerforating a scan halves every prefix (the error "
                "cascades, Fig. 18); tail replication\nconfines all error "
                "to the synthesized tail.  Even a hand-added rescale only "
                "survives on\nstationary inputs and is not a legal "
                "automatic rewrite.\n");
}

// ---- D: stencil schemes across tile shapes ------------------------------------------

void
ablation_stencil_schemes()
{
    print_header("Ablation D: stencil scheme vs. tile shape (quality at "
                 "rd=1, loads remaining)");

    struct Shape {
        const char* label;
        const char* source;
    };
    const Shape shapes[] = {
        {"3x3 tile", R"(
__kernel void k(__global float* in, __global float* out, int w) {
    int x = get_global_id(0) + 1;
    int y = get_global_id(1) + 1;
    out[y * w + x] = (in[(y - 1) * w + x - 1] + in[(y - 1) * w + x]
        + in[(y - 1) * w + x + 1] + in[y * w + x - 1] + in[y * w + x]
        + in[y * w + x + 1] + in[(y + 1) * w + x - 1]
        + in[(y + 1) * w + x] + in[(y + 1) * w + x + 1]) * 0.1111111f;
}
)"},
        {"1x5 tile", R"(
__kernel void k(__global float* in, __global float* out, int w) {
    int x = get_global_id(0) + 2;
    int y = get_global_id(1);
    out[y * w + x] = (in[y * w + x - 2] + in[y * w + x - 1]
        + in[y * w + x] + in[y * w + x + 1] + in[y * w + x + 2]) * 0.2f;
}
)"},
        {"5x1 tile", R"(
__kernel void k(__global float* in, __global float* out, int w) {
    int x = get_global_id(0);
    int y = get_global_id(1) + 2;
    out[y * w + x] = (in[(y - 2) * w + x] + in[(y - 1) * w + x]
        + in[y * w + x] + in[(y + 1) * w + x] + in[(y + 2) * w + x])
        * 0.2f;
}
)"},
    };

    constexpr int kW = 68;
    constexpr int kH = 68;
    auto image = apps::make_correlated_image(kW, kH, 0xab4ull);

    print_row({"tile", "scheme", "loads", "quality %"}, 14);
    for (const auto& shape : shapes) {
        auto module = parser::parse_module(shape.source);
        auto groups = analysis::detect_stencils(*module.find_function("k"));
        if (groups.empty())
            continue;

        auto run = [&](const ir::Module& m, const std::string& kernel) {
            auto program = vm::compile_kernel(m, kernel);
            exec::Buffer in = exec::Buffer::from_floats(image);
            exec::Buffer out = exec::Buffer::zeros_f32(kW * kH);
            exec::ArgPack args;
            args.buffer("in", in).buffer("out", out).scalar("w", kW);
            exec::launch(program, args,
                         exec::LaunchConfig::grid2d(kW - 4, kH - 4, 16, 4));
            return out.to_floats();
        };
        const auto exact = run(module, "k");

        for (auto scheme : {transforms::StencilScheme::Center,
                            transforms::StencilScheme::Row,
                            transforms::StencilScheme::Column}) {
            auto variant = transforms::stencil_approx(module, "k",
                                                      groups[0], scheme, 1);
            const double quality = runtime::quality_percent(
                runtime::Metric::MeanRelativeError, exact,
                run(variant.module, variant.kernel_name));
            print_row({shape.label, transforms::to_string(scheme),
                       std::to_string(variant.loads_after), fmt(quality)},
                      14);
        }
    }
    std::printf("\n1D row tiles only compress under column merging (and "
                "vice versa): the runtime\nmust pick the scheme matching "
                "the tile's orientation.\n");
}

}  // namespace
}  // namespace paraprox::bench

int
main(int argc, char** argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    paraprox::bench::ablation_bit_tuning();
    paraprox::bench::ablation_adjustment();
    paraprox::bench::ablation_scan_strategy();
    paraprox::bench::ablation_stencil_schemes();
    return 0;
}
