/// @file
/// Interpreter dispatch benchmark: instrumented vs. fast execution mode
/// over the exact kernels of all 13 Fig. 11 applications.
///
/// For every application this harness runs the exact variant once per
/// mode per repetition and compares interpreter throughput in canonical
/// instructions per second (the instrumented dispatch count is the work
/// unit for both modes, so the ratio is a pure wall-clock speedup on
/// identical work).  Fast mode must (a) produce bit-identical outputs and
/// (b) reach a >= 1.3x geomean throughput over instrumented mode.
///
/// Flags:
///   --smoke   single repetition at a small scale; bit-identity is still
///             enforced but the throughput floor is reported, not
///             enforced (CI machines have unreliable timers).

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "apps/app.h"
#include "bench/bench_support.h"
#include "device/memory_model.h"
#include "runtime/tuner.h"
#include "support/stats.h"

namespace paraprox::bench {
namespace {

constexpr std::uint64_t kSeed = 101;

struct DispatchResult {
    std::string name;
    std::uint64_t canonical_instructions = 0;
    double instrumented_seconds = 0.0;
    double fast_seconds = 0.0;
    bool identical = false;
    double ratio() const { return instrumented_seconds / fast_seconds; }
};

bool
bit_identical(const std::vector<float>& a, const std::vector<float>& b)
{
    return a.size() == b.size() &&
           (a.empty() ||
            std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

DispatchResult
measure(apps::Application& app, const device::DeviceModel& device,
        int repetitions)
{
    auto variants = app.variants(device);
    const runtime::Variant& exact = variants.at(0);
    DispatchResult result;
    result.name = app.info().name;

    // Warmup run per mode doubles as the bit-identity check and supplies
    // the canonical (instrumented) instruction count.
    auto instrumented = exact.run(kSeed);
    auto fast = exact.run_fast(kSeed);
    result.canonical_instructions = instrumented.instructions;
    result.identical = !instrumented.trapped && !fast.trapped &&
                       bit_identical(instrumented.output, fast.output);

    result.instrumented_seconds = instrumented.wall_seconds;
    result.fast_seconds = fast.wall_seconds;
    for (int rep = 1; rep < repetitions; ++rep) {
        result.instrumented_seconds = std::min(
            result.instrumented_seconds, exact.run(kSeed).wall_seconds);
        result.fast_seconds = std::min(result.fast_seconds,
                                       exact.run_fast(kSeed).wall_seconds);
    }
    return result;
}

int
run(bool smoke)
{
    const double scale = smoke ? 0.15 : 0.5;
    const int repetitions = smoke ? 1 : 5;
    const auto device = device::DeviceModel::gtx560();

    print_header(smoke ? "VM dispatch: fast vs. instrumented (smoke)"
                       : "VM dispatch: fast vs. instrumented");
    print_row({"Application", "canonical Mi", "instr Mi/s", "fast Mi/s",
               "speedup", "bit-id"},
              16);

    BenchReport report("vm_dispatch");
    report.config()
        .set("scale", scale)
        .set("repetitions", repetitions)
        .set("smoke", smoke);

    auto apps = make_scaled_apps(scale);
    std::vector<double> ratios;
    bool all_identical = true;
    for (const auto& app : apps) {
        const auto r = measure(*app, device, repetitions);
        const double mi =
            static_cast<double>(r.canonical_instructions) / 1e6;
        print_row({r.name, fmt(mi, 1), fmt(mi / r.instrumented_seconds, 1),
                   fmt(mi / r.fast_seconds, 1), fmt(r.ratio()),
                   r.identical ? "yes" : "NO"},
                  16);
        report.add_row()
            .set("app", r.name)
            .set("canonical_instructions", r.canonical_instructions)
            .set("instrumented_seconds", r.instrumented_seconds)
            .set("fast_seconds", r.fast_seconds)
            .set("speedup", r.ratio())
            .set("bit_identical", r.identical);
        ratios.push_back(r.ratio());
        all_identical = all_identical && r.identical;
    }

    const double geomean = stats::geomean(ratios);
    report.set_geomean(geomean);
    report.write();
    std::printf("\ngeomean interpreter speedup (fast / instrumented): "
                "%.2fx (floor 1.30x)\n",
                geomean);

    if (!all_identical) {
        std::printf("FAIL: fast mode diverged from instrumented outputs\n");
        return 1;
    }
    if (geomean < 1.3) {
        if (smoke) {
            std::printf("note: below floor, not enforced in smoke mode\n");
            return 0;
        }
        std::printf("FAIL: geomean below the 1.3x floor\n");
        return 1;
    }
    std::printf("PASS\n");
    return 0;
}

}  // namespace
}  // namespace paraprox::bench

int
main(int argc, char** argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i)
        if (std::string(argv[i]) == "--smoke")
            smoke = true;
    return paraprox::bench::run(smoke);
}
