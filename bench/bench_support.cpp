#include "bench/bench_support.h"

#include <cstdarg>
#include <cstring>

#include "exec/launch.h"
#include "memo/table.h"
#include "store/format.h"
#include "parser/parser.h"
#include "runtime/quality.h"
#include "support/parallel.h"
#include "support/rng.h"
#include "vm/compiler.h"

namespace paraprox::bench {

AppMeasurement
measure_app(apps::Application& app, const device::DeviceModel& device,
            double toq, const std::vector<std::uint64_t>& seeds)
{
    AppMeasurement out;
    out.app = app.info().name;
    out.device = device.name;

    auto variants = app.variants(device);
    runtime::Tuner tuner(variants, app.info().metric, toq);
    out.profiles = tuner.calibrate(seeds);

    const int selected = tuner.selected_index();
    out.chosen = out.profiles[selected].label;
    out.speedup = out.profiles[selected].speedup;
    out.wall_speedup = out.profiles[selected].wall_speedup;
    out.quality = out.profiles[selected].quality;

    // One paired run on a fresh input for per-element error analysis
    // (Fig. 13).
    const std::uint64_t fresh_seed = seeds.back() + 7919;
    out.exact_output = variants[0].run(fresh_seed).output;
    out.chosen_output = variants[selected].run(fresh_seed).output;
    return out;
}

const char*
credit_card_source()
{
    // N(i) = -1/30 * ln(1 + b0/p (1 - (1+i)^30)) / ln(1 + i)
    return R"(
float f(float i) {
    float b0 = 5000.0f;
    float p = 200.0f;
    float growth = powf(1.0f + i, 30.0f);
    return -0.033333333f * logf(1.0f + b0 / p * (1.0f - growth))
         / logf(1.0f + i);
}
__kernel void apply(__global float* in, __global float* out) {
    int t = get_global_id(0);
    out[t] = f(in[t]);
}
)";
}

const char*
gompertz_source()
{
    // F(x) = (1 - e^{-b x}) e^{-eta e^{-b x}}
    return R"(
float f(float x) {
    float b = 2.5f;
    float eta = 0.7f;
    float decay = expf(-(b * x));
    return (1.0f - decay) * expf(-(eta * decay));
}
__kernel void apply(__global float* in, __global float* out) {
    int t = get_global_id(0);
    out[t] = f(in[t]);
}
)";
}

const char*
lgamma_source()
{
    return R"(
float f(float z) {
    return lgammaf(z);
}
__kernel void apply(__global float* in, __global float* out) {
    int t = get_global_id(0);
    out[t] = f(in[t]);
}
)";
}

const char*
bass_source()
{
    // S(t) = m (p+q)^2/p * e^{-(p+q)t} / (1 + q/p e^{-(p+q)t})^2
    return R"(
float f(float t) {
    float m = 1000.0f;
    float p = 0.03f;
    float q = 0.38f;
    float pq = p + q;
    float decay = expf(-(pq * t));
    float denom = 1.0f + q / p * decay;
    return m * pq * pq / p * decay / (denom * denom);
}
__kernel void apply(__global float* in, __global float* out) {
    int t = get_global_id(0);
    out[t] = f(in[t]);
}
)";
}

std::vector<CaseStudyFunction>
case_study_functions()
{
    return {
        // Daily interest rates (APR/365 for ~2%-25% APR): the balance
        // equation's logarithm is only defined while payments outpace
        // interest.
        {"Credit", credit_card_source(), 0.00005f, 0.0008f},
        {"Gompertz", gompertz_source(), 0.0f, 4.0f},
        {"lgamma", lgamma_source(), 0.1f, 10.0f},
        {"Bass", bass_source(), 0.0f, 20.0f},
    };
}

CaseStudyResult
run_case_study(const CaseStudyFunction& function, int bits,
               transforms::TableLocation location,
               transforms::LookupMode mode,
               const device::DeviceModel& device, int n)
{
    auto module = parser::parse_module(function.source);

    // Table: profile + tune on the declared input domain.
    memo::ScalarEvaluator evaluator(module, "f");
    Rng rng(0xca5eull);
    std::vector<std::vector<float>> training(256);
    for (auto& sample : training)
        sample = {rng.uniform(function.lo, function.hi)};
    auto tuning = memo::bit_tune(evaluator, training, bits);
    auto table = memo::build_table(evaluator, tuning.config);

    auto memoized = transforms::memoize_kernel(module, "apply", "f", table,
                                               location, mode);
    auto exact_prog = vm::compile_kernel(module, "apply");
    auto approx_prog = vm::compile_kernel(memoized.module,
                                          memoized.kernel_name);

    Rng inputs_rng(0x1deaull);
    exec::Buffer in = exec::Buffer::from_floats(
        inputs_rng.uniform_vector(n, function.lo, function.hi));
    exec::Buffer exact_out = exec::Buffer::zeros_f32(n);
    exec::Buffer approx_out = exec::Buffer::zeros_f32(n);
    exec::Buffer table_buf =
        exec::Buffer::from_floats(memoized.table.values);
    // 128-item groups amortize the shared-table staging loop, like real
    // CUDA blocks do.
    const auto config = exec::LaunchConfig::linear(n, 128);

    exec::ArgPack exact_args;
    exact_args.buffer("in", in).buffer("out", exact_out);
    auto exact = device::run_modeled(exact_prog, exact_args, config,
                                     device);

    exec::ArgPack approx_args;
    approx_args.buffer("in", in).buffer("out", approx_out);
    approx_args.buffer(memoized.table_buffer_param, table_buf);
    if (!memoized.shared_table_param.empty()) {
        approx_args.shared(memoized.shared_table_param,
                           static_cast<std::int64_t>(
                               memoized.table.values.size()));
    }
    auto approx = device::run_modeled(approx_prog, approx_args, config,
                                      device);

    CaseStudyResult result;
    result.quality = runtime::quality_percent(
        runtime::Metric::L1Norm, exact_out.to_floats(),
        approx_out.to_floats());
    result.speedup = approx.cycles > 0.0 ? exact.cycles / approx.cycles
                                         : 1.0;
    result.serialization =
        approx.cost.transactions > 0
            ? 100.0 * static_cast<double>(approx.cost.extra_transactions) /
                  static_cast<double>(approx.cost.transactions)
            : 0.0;
    return result;
}

std::vector<std::unique_ptr<apps::Application>>
make_scaled_apps(double scale, const std::vector<std::string>& wanted)
{
    auto all = apps::make_all_applications();
    for (auto& app : all)
        app->set_scale(scale);
    if (wanted.empty())
        return all;

    std::vector<std::unique_ptr<apps::Application>> picked;
    for (const auto& name : wanted) {
        for (auto& app : all) {
            if (app && app->info().name == name) {
                picked.push_back(std::move(app));
                break;
            }
        }
    }
    return picked;
}

namespace {

std::string
json_escape(const std::string& text)
{
    std::string out = "\"";
    for (char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buffer[8];
                std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
                out += buffer;
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

std::string
json_number(double value)
{
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.10g", value);
    return buffer;
}

}  // namespace

JsonObject&
JsonObject::raw(const std::string& key, std::string encoded)
{
    fields_.emplace_back(key, std::move(encoded));
    return *this;
}

JsonObject&
JsonObject::set(const std::string& key, const std::string& value)
{
    return raw(key, json_escape(value));
}

JsonObject&
JsonObject::set(const std::string& key, const char* value)
{
    return raw(key, json_escape(value));
}

JsonObject&
JsonObject::set(const std::string& key, double value)
{
    return raw(key, json_number(value));
}

JsonObject&
JsonObject::set(const std::string& key, std::uint64_t value)
{
    return raw(key, std::to_string(value));
}

JsonObject&
JsonObject::set(const std::string& key, int value)
{
    return raw(key, std::to_string(value));
}

JsonObject&
JsonObject::set(const std::string& key, bool value)
{
    return raw(key, value ? "true" : "false");
}

std::string
JsonObject::dump() const
{
    std::string out = "{";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
        if (i > 0)
            out += ", ";
        out += json_escape(fields_[i].first) + ": " + fields_[i].second;
    }
    out += '}';
    return out;
}

BenchReport::BenchReport(std::string name) : name_(std::move(name)) {}

JsonObject&
BenchReport::add_row()
{
    rows_.emplace_back();
    return rows_.back();
}

void
BenchReport::set_geomean(double value)
{
    geomean_ = value;
    has_geomean_ = true;
}

std::string
BenchReport::write() const
{
    std::string body = "{\n  \"name\": " + json_escape(name_) +
                       ",\n  \"config\": " + config_.dump();
    if (has_geomean_)
        body += ",\n  \"geomean\": " + json_number(geomean_);
    body += ",\n  \"rows\": [";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
        body += i > 0 ? ",\n    " : "\n    ";
        body += rows_[i].dump();
    }
    body += rows_.empty() ? "]\n}\n" : "\n  ]\n}\n";

    const std::string path = "BENCH_" + name_ + ".json";
    if (!json_wellformed(body)) {
        std::printf("note: %s body is not well-formed JSON; not written\n",
                    path.c_str());
        return "";
    }
    // Atomic temp+rename (the artifact store's discipline): a bench
    // crashing mid-write must never leave a truncated BENCH_*.json for
    // CI to archive as if valid.
    const std::vector<std::uint8_t> bytes(body.begin(), body.end());
    if (!store::write_file_atomic(path, bytes)) {
        std::printf("note: could not write %s\n", path.c_str());
        return "";
    }
    // Paranoia pass: the published file itself must parse.
    const auto published = store::read_file_bytes(path);
    if (!published ||
        !json_wellformed(
            std::string(published->begin(), published->end()))) {
        std::printf("note: %s failed post-write validation\n",
                    path.c_str());
        return "";
    }
    std::printf("wrote %s\n", path.c_str());
    return path;
}

namespace {

/// Minimal recursive-descent JSON checker.  Depth-capped so hostile
/// nesting cannot blow the stack.
struct JsonChecker {
    const char* cursor;
    const char* end;
    int depth = 0;

    static constexpr int kMaxDepth = 64;

    void skip_space()
    {
        while (cursor != end &&
               (*cursor == ' ' || *cursor == '\t' || *cursor == '\n' ||
                *cursor == '\r'))
            ++cursor;
    }

    bool literal(const char* word)
    {
        const std::size_t length = std::strlen(word);
        if (static_cast<std::size_t>(end - cursor) < length ||
            std::strncmp(cursor, word, length) != 0)
            return false;
        cursor += length;
        return true;
    }

    bool string()
    {
        if (cursor == end || *cursor != '"')
            return false;
        ++cursor;
        while (cursor != end && *cursor != '"') {
            if (*cursor == '\\') {
                ++cursor;
                if (cursor == end)
                    return false;
            }
            ++cursor;
        }
        if (cursor == end)
            return false;
        ++cursor;
        return true;
    }

    bool number()
    {
        const char* start = cursor;
        if (cursor != end && (*cursor == '-' || *cursor == '+'))
            ++cursor;
        bool digits = false;
        while (cursor != end &&
               ((*cursor >= '0' && *cursor <= '9') || *cursor == '.' ||
                *cursor == 'e' || *cursor == 'E' || *cursor == '-' ||
                *cursor == '+')) {
            if (*cursor >= '0' && *cursor <= '9')
                digits = true;
            ++cursor;
        }
        return digits && cursor != start;
    }

    bool value()
    {
        if (++depth > kMaxDepth)
            return false;
        skip_space();
        bool ok = false;
        if (cursor == end) {
            ok = false;
        } else if (*cursor == '{') {
            ok = object();
        } else if (*cursor == '[') {
            ok = array();
        } else if (*cursor == '"') {
            ok = string();
        } else if (literal("true") || literal("false") ||
                   literal("null")) {
            ok = true;
        } else {
            ok = number();
        }
        --depth;
        return ok;
    }

    bool object()
    {
        ++cursor;  // '{'
        skip_space();
        if (cursor != end && *cursor == '}') {
            ++cursor;
            return true;
        }
        for (;;) {
            skip_space();
            if (!string())
                return false;
            skip_space();
            if (cursor == end || *cursor != ':')
                return false;
            ++cursor;
            if (!value())
                return false;
            skip_space();
            if (cursor == end)
                return false;
            if (*cursor == ',') {
                ++cursor;
                continue;
            }
            if (*cursor == '}') {
                ++cursor;
                return true;
            }
            return false;
        }
    }

    bool array()
    {
        ++cursor;  // '['
        skip_space();
        if (cursor != end && *cursor == ']') {
            ++cursor;
            return true;
        }
        for (;;) {
            if (!value())
                return false;
            skip_space();
            if (cursor == end)
                return false;
            if (*cursor == ',') {
                ++cursor;
                continue;
            }
            if (*cursor == ']') {
                ++cursor;
                return true;
            }
            return false;
        }
    }
};

}  // namespace

bool
json_wellformed(const std::string& text)
{
    JsonChecker checker{text.data(), text.data() + text.size()};
    if (!checker.value())
        return false;
    checker.skip_space();
    return checker.cursor == checker.end;
}

std::size_t
default_thread_count()
{
    return ThreadPool::global().size();
}

void
print_header(const std::string& title)
{
    std::printf("\n================================================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("================================================================================\n");
}

void
print_row(const std::vector<std::string>& cells, int width)
{
    for (const auto& cell : cells)
        std::printf("%-*s", width, cell.c_str());
    std::printf("\n");
}

std::string
fmt(double value, int precision)
{
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
    return buffer;
}

}  // namespace paraprox::bench
