/// @file
/// Figure 15: approximate memoization on the four §4.4.2 analytic
/// functions (credit card balance, shifted Gompertz, log-gamma, Bass
/// diffusion), comparing the nearest and linear schemes for inputs that
/// fall between quantization levels, on the GPU model.
///
/// Paper findings: nearest is faster at equal table size but less
/// accurate; linear reaches ~99% quality; Gompertz gains least (cheap SFU
/// exponentials), Bass and Credit gain most (float division is a slow GPU
/// subroutine).

#include <benchmark/benchmark.h>

#include "bench/bench_support.h"

namespace paraprox::bench {
namespace {

using transforms::LookupMode;
using transforms::TableLocation;

void
run_figure()
{
    print_header("Figure 15: nearest vs. linear memoization, four analytic "
                 "functions (GPU model)");
    print_row({"function", "mode", "table", "quality %", "speedup"}, 13);

    const auto gpu = device::DeviceModel::gtx560();
    for (const auto& function : case_study_functions()) {
        for (int bits : {4, 6, 8, 10, 12}) {
            for (LookupMode mode :
                 {LookupMode::Nearest, LookupMode::Linear}) {
                auto result = run_case_study(function, bits,
                                             TableLocation::Global, mode,
                                             gpu);
                print_row({function.name, to_string(mode),
                           std::to_string(1 << bits),
                           fmt(result.quality), fmt(result.speedup)},
                          13);
            }
        }
    }
    std::printf("\nExpect: linear quality >= nearest quality at equal "
                "size; nearest speedup >= linear speedup;\nGompertz the "
                "flattest curve, Bass/Credit the steepest (division-"
                "heavy).\n");
}

void
BM_MemoizedBassGpu(benchmark::State& state)
{
    const auto gpu = device::DeviceModel::gtx560();
    const auto functions = case_study_functions();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            run_case_study(functions[3], static_cast<int>(state.range(0)),
                           TableLocation::Global, LookupMode::Nearest, gpu,
                           1 << 12));
    }
}
BENCHMARK(BM_MemoizedBassGpu)->Arg(6)->Arg(10)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace paraprox::bench

int
main(int argc, char** argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    paraprox::bench::run_figure();
    return 0;
}
