/// @file
/// Figure 18: cascading error in scan patterns.  A 10%-of-input block is
/// zeroed ("corrupted") at successive positions; corrupting early
/// subarrays poisons every later prefix, while corrupting the tail barely
/// matters — which is why Paraprox approximates only the *last* subarrays
/// (§3.4.3, §4.4.3).

#include <benchmark/benchmark.h>

#include "bench/bench_support.h"
#include "exec/launch.h"
#include "parser/parser.h"
#include "runtime/quality.h"
#include "support/rng.h"
#include "vm/compiler.h"

namespace paraprox::bench {
namespace {

constexpr const char* kScanSource = R"(
__kernel void scan_phase1(__global float* in, __global float* out,
                          __global float* sums, __shared float* tile) {
    int l = get_local_id(0);
    int g = get_global_id(0);
    int n = get_local_size(0);
    tile[l] = in[g];
    barrier();
    for (int off = 1; off < n; off = off * 2) {
        float v = 0.0f;
        if (l >= off) { v = tile[l - off]; }
        barrier();
        tile[l] = tile[l] + v;
        barrier();
    }
    out[g] = tile[l];
    if (l == n - 1) { sums[get_group_id(0)] = tile[l]; }
}

__kernel void scan_add_offsets(__global float* out,
                               __global float* sums_scan) {
    int g = get_global_id(0);
    int grp = get_group_id(0);
    if (grp > 0) { out[g] = out[g] + sums_scan[grp - 1]; }
}
)";

constexpr int kSub = 128;
constexpr int kGroups = 160;
constexpr int kN = kSub * kGroups;

/// Run the full three-phase scan pipeline on @p input.
std::vector<float>
run_scan(const vm::Program& phase1, const vm::Program& phase3,
         const std::vector<float>& input)
{
    exec::Buffer in = exec::Buffer::from_floats(input);
    exec::Buffer out = exec::Buffer::zeros_f32(kN);
    exec::Buffer sums = exec::Buffer::zeros_f32(kGroups);
    exec::Buffer sums_scan = exec::Buffer::zeros_f32(kGroups);
    exec::Buffer dummy = exec::Buffer::zeros_f32(1);

    exec::ArgPack p1;
    p1.buffer("in", in).buffer("out", out).buffer("sums", sums)
        .shared("tile", kSub);
    exec::launch(phase1, p1, exec::LaunchConfig::linear(kN, kSub));

    exec::ArgPack p2;
    p2.buffer("in", sums).buffer("out", sums_scan).buffer("sums", dummy)
        .shared("tile", kGroups);
    exec::launch(phase1, p2, exec::LaunchConfig::linear(kGroups, kGroups));

    exec::ArgPack p3;
    p3.buffer("out", out).buffer("sums_scan", sums_scan);
    exec::launch(phase3, p3, exec::LaunchConfig::linear(kN, kSub));
    return out.to_floats();
}

void
run_figure()
{
    auto module = parser::parse_module(kScanSource);
    auto phase1 = vm::compile_kernel(module, "scan_phase1");
    auto phase3 = vm::compile_kernel(module, "scan_add_offsets");

    Rng rng(0x5caull);
    std::vector<float> input(kN);
    for (auto& v : input)
        v = static_cast<float>(rng.next_below(16));

    const auto reference = run_scan(phase1, phase3, input);

    print_header("Figure 18: output quality vs. corrupted-block position "
                 "(10% of the input zeroed)");
    std::printf("Paper: corrupting the first subarray drops quality to "
                "~67%%; corrupting the last leaves ~99%%.\n\n");
    print_row({"corrupted block start (subarray)", "output quality %"},
              34);

    const int block = kN / 10;
    double first_quality = 0.0, last_quality = 0.0;
    for (int step = 0; step <= 9; ++step) {
        const int start = step * block;
        std::vector<float> corrupted = input;
        for (int i = start; i < start + block && i < kN; ++i)
            corrupted[i] = 0.0f;
        const auto output = run_scan(phase1, phase3, corrupted);
        const double quality = runtime::quality_percent(
            runtime::Metric::MeanRelativeError, reference, output);
        if (step == 0)
            first_quality = quality;
        if (step == 9)
            last_quality = quality;
        print_row({std::to_string(start / kSub), fmt(quality)}, 34);
    }
    std::printf("\nFirst-block corruption: %.1f%%; last-block: %.1f%% — "
                "the cascading-error asymmetry that\nmotivates "
                "tail-only scan approximation.\n",
                first_quality, last_quality);
}

void
BM_ScanPipeline(benchmark::State& state)
{
    auto module = parser::parse_module(kScanSource);
    auto phase1 = vm::compile_kernel(module, "scan_phase1");
    auto phase3 = vm::compile_kernel(module, "scan_add_offsets");
    Rng rng(1);
    std::vector<float> input(kN);
    for (auto& v : input)
        v = rng.next_float();
    for (auto _ : state)
        benchmark::DoNotOptimize(run_scan(phase1, phase3, input));
}
BENCHMARK(BM_ScanPipeline)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace paraprox::bench

int
main(int argc, char** argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    paraprox::bench::run_figure();
    return 0;
}
