/// @file
/// bench_store: cold-vs-warm session setup through the artifact store.
///
/// Pass 1 builds a KernelSession + warm tuner for each case-study kernel
/// at process entry, against whatever the store directory already holds:
/// the first invocation of this binary is fully cold (table-size search,
/// calibration sweep, bytecode compilation), a second invocation of the
/// same binary is fully warm.  Pass 2 clears the in-memory program cache
/// and rebuilds everything in-process — a fresh process simulated against
/// the now-populated store.
///
/// The store directory is $PARAPROX_STORE_DIR when set, else a fixed
/// path under the system temp directory (so back-to-back invocations
/// still exercise the warm path).
///
/// Flags:
///   --smoke   smaller inputs and fewer kernels; emits the
///             machine-checked line
///               store_smoke: sessions=.. warm_tuners=.. \
///               table_searches=.. store_hits=.. disk_hits=..
///             that CI greps after running the binary twice: the second
///             run must report table_searches=0 and store_hits > 0.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_support.h"
#include "memo/table.h"
#include "parser/parser.h"
#include "runtime/session.h"
#include "store/artifact_store.h"
#include "support/rng.h"
#include "vm/program_cache.h"

namespace paraprox::bench {
namespace {

struct PassResult {
    int sessions = 0;
    int warm_tuners = 0;
    double session_seconds = 0.0;  ///< Compile + table work, summed.
    double tuner_seconds = 0.0;    ///< Calibration or restore, summed.
    std::uint64_t table_searches = 0;
    std::uint64_t store_hits = 0;
    std::uint64_t disk_hits = 0;
};

core::LaunchPlan
make_plan(int n, float lo, float hi)
{
    core::LaunchPlan plan;
    plan.config = exec::LaunchConfig::linear(n, 64);
    plan.output_buffer = "out";
    plan.bind_inputs =
        [n, lo, hi](std::uint64_t seed, exec::ArgPack& args,
                    std::vector<std::unique_ptr<exec::Buffer>>& storage) {
            Rng rng(seed);
            storage.push_back(
                std::make_unique<exec::Buffer>(exec::Buffer::from_floats(
                    rng.uniform_vector(n, lo, hi))));
            args.buffer("in", *storage.back());
            storage.push_back(std::make_unique<exec::Buffer>(
                exec::Buffer::zeros_f32(n)));
            args.buffer("out", *storage.back());
        };
    return plan;
}

double
seconds_since(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
}

PassResult
run_pass(const std::vector<CaseStudyFunction>& functions, int n)
{
    PassResult out;
    const auto store = store::ArtifactStore::global();
    const auto searches_before = memo::table_search_invocations();
    const std::uint64_t store_hits_before =
        store ? store->stats().hits : 0;
    const auto cache_before = vm::ProgramCache::global().stats();

    for (const auto& function : functions) {
        auto module = parser::parse_module(function.source);
        core::CompileOptions options;
        options.toq = 90.0;
        options.device = device::DeviceModel::gtx560();
        options.training = core::uniform_training(function.lo, function.hi);

        auto start = std::chrono::steady_clock::now();
        runtime::KernelSession session(module, "apply", options);
        out.session_seconds += seconds_since(start);
        ++out.sessions;

        const auto plan = make_plan(n, function.lo, function.hi);
        start = std::chrono::steady_clock::now();
        const auto warm = session.warm_tuner(
            plan, runtime::Metric::MeanRelativeError, {11, 22});
        out.tuner_seconds += seconds_since(start);
        out.warm_tuners += warm.warm ? 1 : 0;
    }

    out.table_searches = memo::table_search_invocations() - searches_before;
    if (store)
        out.store_hits = store->stats().hits - store_hits_before;
    out.disk_hits =
        vm::ProgramCache::global().stats().disk_hits - cache_before.disk_hits;
    return out;
}

void
print_pass(const char* label, const PassResult& r)
{
    print_row({label, fmt(r.session_seconds * 1e3, 1),
               fmt(r.tuner_seconds * 1e3, 1),
               std::to_string(r.warm_tuners) + "/" +
                   std::to_string(r.sessions),
               std::to_string(r.table_searches),
               std::to_string(r.store_hits), std::to_string(r.disk_hits)},
              16);
}

int
run(bool smoke)
{
    // Share one store directory across invocations so the second run of
    // this binary exercises the warm path even without the env override.
    std::shared_ptr<store::ArtifactStore> store;
    if (const char* env = std::getenv("PARAPROX_STORE_DIR");
        env != nullptr && *env != '\0') {
        store = store::ArtifactStore::global();
    } else {
        store = store::ArtifactStore::configure_global(
            std::filesystem::temp_directory_path() /
            "paraprox-bench-store");
    }

    auto functions = case_study_functions();
    if (smoke)
        functions.resize(2);
    const int n = smoke ? 256 : 1 << 13;

    print_header(smoke ? "Artifact store: cold vs. warm setup (smoke)"
                       : "Artifact store: cold vs. warm setup");
    std::printf("store: %s (%zu records at entry)\n",
                store->dir().c_str(), store->list().size());
    print_row({"pass", "session ms", "tuner ms", "warm", "tbl-searches",
               "store-hits", "disk-hits"},
              16);

    // Pass 1: process entry — cold on a fresh store, warm on a reused one.
    const PassResult pass1 = run_pass(functions, n);
    print_pass("1 (entry)", pass1);

    // Pass 2: drop the in-memory bytecode tier and rebuild — a fresh
    // process simulated against the store pass 1 just populated.
    vm::ProgramCache::global().clear();
    const PassResult pass2 = run_pass(functions, n);
    print_pass("2 (store-warm)", pass2);

    std::printf("\nwarm setup: %.2fx of cold session time, %.2fx of cold "
                "tuner time\n",
                pass1.session_seconds > 0.0
                    ? pass2.session_seconds / pass1.session_seconds
                    : 0.0,
                pass1.tuner_seconds > 0.0
                    ? pass2.tuner_seconds / pass1.tuner_seconds
                    : 0.0);

    if (smoke) {
        std::printf("store_smoke: sessions=%d warm_tuners=%d "
                    "table_searches=%llu store_hits=%llu disk_hits=%llu\n",
                    pass1.sessions, pass1.warm_tuners,
                    static_cast<unsigned long long>(pass1.table_searches),
                    static_cast<unsigned long long>(pass1.store_hits),
                    static_cast<unsigned long long>(pass1.disk_hits));
    }

    // The in-process warm pass must never search for table sizes or
    // recalibrate: everything it needs was just persisted.
    if (pass2.table_searches != 0 ||
        pass2.warm_tuners != pass2.sessions) {
        std::printf("FAIL: pass 2 was not fully warm\n");
        return 1;
    }
    std::printf("PASS\n");
    return 0;
}

}  // namespace
}  // namespace paraprox::bench

int
main(int argc, char** argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i)
        if (std::string(argv[i]) == "--smoke")
            smoke = true;
    return paraprox::bench::run(smoke);
}
