/// @file
/// Serving throughput of serve::ApproxService at TOQ=90%: requests/sec
/// when every request runs the exact kernel vs. when the service runs
/// the Paraprox-selected variant with online quality monitoring (one
/// shadowed exact run every Config::shadow_interval requests).
///
/// The monitored approximate mode pays for its shadow sample out of the
/// variant's speedup, so the interesting number is the throughput ratio:
/// how much of the paper's Fig. 11 speedup survives once the runtime is
/// auditing itself.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <future>
#include <optional>
#include <string_view>
#include <thread>

#include "bench/bench_support.h"
#include "serve/service.h"
#include "support/faultinject.h"
#include "support/stats.h"

namespace paraprox::bench {
namespace {

constexpr double kToq = 90.0;
constexpr double kScale = 0.25;
constexpr int kRequests = 96;
constexpr int kOpenLoopRequests = 1024;
constexpr std::size_t kOpenLoopBatch = 16;
/// Open-loop runs use a small map workload (Gamma Correction at 1024
/// pixels): the regime where coalescing matters is many small
/// same-kernel requests, where per-launch fixed cost rivals the work
/// itself.
constexpr double kOpenLoopScale = 0.016;
/// Fixed device-model cost per kernel launch, ~5us at the GTX 560's
/// 1.62 GHz shader clock (Fermi-era launch-latency microbenchmarks).
/// The host interpreter has no such cost — it runs launches in-process —
/// so the figure prices it through the device model, the same currency
/// every other speedup figure in this repo reports.
constexpr double kLaunchOverheadCycles = 8000.0;
constexpr double kModelClockHz = 1.62e9;

struct ModeResult {
    double requests_per_second = 0.0;
    std::string selected;
    std::uint64_t shadows = 0;
    std::uint64_t violations = 0;
};

/// Serve kRequests against one registered kernel and report throughput.
/// Exact-only mode registers just variants[0], so the tuner has nothing
/// to select but the exact kernel and the monitor never shadows it.
ModeResult
run_mode(apps::Application& app, const device::DeviceModel& device,
         bool approximate, std::size_t workers)
{
    auto variants = app.variants(device);
    if (!approximate)
        variants.resize(1);

    serve::ServiceConfig config;
    config.num_workers = workers;
    config.queue_capacity = kRequests + 16;
    serve::ApproxService service(config);
    service.register_kernel("kernel", std::move(variants),
                            app.info().metric, kToq, {101, 202});

    // Warm-up request so worker startup is off the clock.
    service.submit("kernel", 11);
    service.drain();

    const auto start = std::chrono::steady_clock::now();
    std::vector<std::future<serve::Response>> responses;
    responses.reserve(kRequests);
    for (int i = 0; i < kRequests; ++i) {
        auto ticket = service.submit("kernel", 1000 + i);
        if (ticket.accepted)
            responses.push_back(std::move(ticket.response));
    }
    for (auto& response : responses)
        response.get();
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    service.drain();

    const auto kernel = service.kernel_snapshot("kernel");
    ModeResult result;
    result.requests_per_second =
        seconds > 0.0 ? static_cast<double>(responses.size()) / seconds
                      : 0.0;
    result.selected = kernel.selected;
    result.shadows = kernel.monitor.shadows;
    result.violations = kernel.monitor.violations;
    return result;
}

void
run_figure()
{
    const auto device = device::DeviceModel::gtx560();
    const std::size_t workers = default_thread_count();

    // Stencil/reduction apps, whose variants speed up interpreter wall
    // time itself (memo-table apps only save modeled device cycles, which
    // a throughput benchmark cannot observe).
    auto apps = make_scaled_apps(kScale, {"Mean Filter", "Gaussian Filter",
                                          "Naive Bayes",
                                          "Kernel Density Estimation"});

    print_header("Serving throughput at TOQ=90% (" +
                 std::to_string(workers) + " workers, " +
                 std::to_string(kRequests) + " requests)");
    print_row({"Application", "exact req/s", "approx req/s", "ratio",
               "selected", "shadows"},
              16);

    BenchReport report("serve_throughput");
    report.config()
        .set("toq", kToq)
        .set("scale", kScale)
        .set("workers", static_cast<std::uint64_t>(workers))
        .set("requests", kRequests);

    std::vector<double> ratios;
    for (auto& app : apps) {
        const auto exact = run_mode(*app, device, false, workers);
        const auto approx = run_mode(*app, device, true, workers);
        const double ratio =
            exact.requests_per_second > 0.0
                ? approx.requests_per_second / exact.requests_per_second
                : 0.0;
        ratios.push_back(ratio);
        print_row({app->info().name, fmt(exact.requests_per_second, 1),
                   fmt(approx.requests_per_second, 1),
                   fmt(ratio) + "x", approx.selected,
                   std::to_string(approx.shadows)},
                  16);
        report.add_row()
            .set("app", app->info().name)
            .set("exact_rps", exact.requests_per_second)
            .set("approx_rps", approx.requests_per_second)
            .set("ratio", ratio)
            .set("selected", approx.selected)
            .set("shadows", approx.shadows)
            .set("violations", approx.violations);
    }
    const double geomean = stats::geomean(ratios);
    report.set_geomean(geomean);
    report.write();
    std::printf("\nGeomean throughput ratio (monitored approx / exact): "
                "%.2fx\n",
                geomean);
}

// ---- Open-loop batching mode ------------------------------------------------

struct OpenLoopResult {
    double offered_rps = 0.0;   ///< 0 = flood (no pacing).
    double achieved_rps = 0.0;
    std::uint64_t rejected = 0;
    std::uint64_t unresolved = 0;
    serve::MetricsSnapshot metrics;
};

/// Drive one registered kernel open-loop: submit @p requests on a fixed
/// arrival schedule (independent of completions — the load does not slow
/// down when the service does), then wait for every future.  Achieved
/// throughput is requests over the first-submit-to-last-resolve span.
OpenLoopResult
run_open_loop(apps::Application& app, const device::DeviceModel& device,
              std::size_t max_batch, int requests, double offered_rps,
              std::size_t workers, bool exact_only = false)
{
    serve::ServiceConfig config;
    config.num_workers = workers;
    config.queue_capacity = static_cast<std::size_t>(requests) + 16;
    config.batching.max_batch = max_batch;
    config.batching.gather_window = std::chrono::microseconds(500);
    // A flood pins queue fill at 100%, so the ladder would degrade both
    // modes to max_level and the figure would compare degraded variants,
    // not coalescing.  Keep selection fixed: equal TOQ, equal variant,
    // the only difference between modes is the gather window.
    config.degradation.enabled = false;
    auto variants = app.variants(device);
    // The figure registers the exact kernel alone: wall-clock variant
    // profiling is noisy enough on a shared single-core host to flap the
    // calibration's pick between runs, and a figure about coalescing
    // must not compare two different variants.  The closed-loop figure
    // above covers approximate-variant selection.
    if (exact_only)
        variants.resize(1);
    serve::ApproxService service(config);
    service.register_kernel("kernel", std::move(variants),
                            app.info().metric, kToq, {101, 202});

    // Warm-up request so worker startup is off the clock.
    service.submit("kernel", 11);
    service.drain();

    using clock = std::chrono::steady_clock;
    const auto interarrival =
        offered_rps > 0.0
            ? std::chrono::duration_cast<clock::duration>(
                  std::chrono::duration<double>(1.0 / offered_rps))
            : clock::duration::zero();

    OpenLoopResult result;
    result.offered_rps = offered_rps;
    std::vector<std::future<serve::Response>> responses;
    responses.reserve(requests);
    const auto start = clock::now();
    auto next = start;
    for (int i = 0; i < requests; ++i) {
        if (interarrival.count() > 0) {
            std::this_thread::sleep_until(next);
            next += interarrival;
        }
        auto ticket = service.submit("kernel", 1000 + i);
        if (ticket.accepted)
            responses.push_back(std::move(ticket.response));
        else
            ++result.rejected;
    }
    for (auto& response : responses) {
        if (response.wait_for(std::chrono::seconds(60)) !=
            std::future_status::ready)
            ++result.unresolved;
    }
    const double seconds =
        std::chrono::duration<double>(clock::now() - start).count();
    service.drain();
    result.metrics = service.metrics().snapshot();
    result.achieved_rps =
        seconds > 0.0 ? static_cast<double>(responses.size()) / seconds
                      : 0.0;
    return result;
}

/// Best of @p trials identical runs.  Single-core containers share a
/// host, so any one run can lose a large slice of its wall clock to
/// neighbours; peak achieved throughput is the capacity estimate that
/// scheduling noise can only lower, never inflate — and it treats both
/// modes symmetrically.
OpenLoopResult
best_open_loop(apps::Application& app, const device::DeviceModel& device,
               std::size_t max_batch, int requests, double offered_rps,
               std::size_t workers, int trials)
{
    OpenLoopResult best;
    for (int t = 0; t < trials; ++t) {
        auto result = run_open_loop(app, device, max_batch, requests,
                                    offered_rps, workers,
                                    /*exact_only=*/true);
        if (result.achieved_rps > best.achieved_rps)
            best = std::move(result);
    }
    return best;
}

/// Batched vs unbatched serving under an open-loop arrival ladder:
/// equal TOQ, equal workers, the only difference is the per-kernel
/// gather window.  Each mode reports two throughputs.  Wall rps is the
/// host interpreter's achieved rate — it carries no launch overhead, so
/// batching roughly breaks even there.  Modeled rps prices the same
/// realized run (served requests, launches actually issued) under the
/// launch-overhead-aware device model: per-request work plus one fixed
/// launch cost per launch, so a batch of N pays the overhead once where
/// the unbatched baseline pays it N times.  The saturation rows show
/// what coalescing buys once arrivals outpace service capacity.
void
run_open_loop_figure()
{
    constexpr int kTrials = 3;
    device::DeviceModel device = device::DeviceModel::gtx560();
    device.launch_overhead_cycles = kLaunchOverheadCycles;
    const std::size_t workers = default_thread_count();
    auto apps = make_scaled_apps(kOpenLoopScale, {"Gamma Correction"});
    auto& app = *apps.front();

    // Price one request of the served (exact) kernel: run_modeled charges
    // the launch overhead once, so pure per-request work is the rest.
    const double priced_request =
        app.variants(device)[0].run(101).modeled_cycles;
    const double work_cycles = priced_request - kLaunchOverheadCycles;
    const auto modeled_rps = [&](const OpenLoopResult& r) {
        const double served = static_cast<double>(r.metrics.served);
        const double launches =
            static_cast<double>(r.metrics.batch.batches);
        if (served <= 0.0)
            return 0.0;
        const double cycles =
            served * work_cycles + launches * kLaunchOverheadCycles;
        return served / (cycles / kModelClockHz);
    };

    // Probe the unbatched saturation throughput with an unpaced flood;
    // the arrival ladder is expressed in multiples of it.
    const double base =
        best_open_loop(app, device, 1, kOpenLoopRequests, 0.0, workers,
                       kTrials)
            .achieved_rps;

    print_header("Open-loop serving: batched vs unbatched at TOQ=90% (" +
                 std::to_string(workers) + " workers, " +
                 std::to_string(kOpenLoopRequests) + " requests/run)");
    print_row({"offered", "mode", "wall rps", "modeled rps", "p95 sojourn",
               "mean batch", "coalesced"},
              12);

    BenchReport report("serve_batching");
    report.config()
        .set("toq", kToq)
        .set("scale", kOpenLoopScale)
        .set("workers", static_cast<std::uint64_t>(workers))
        .set("requests", kOpenLoopRequests)
        .set("max_batch", static_cast<std::uint64_t>(kOpenLoopBatch))
        .set("launch_overhead_cycles", kLaunchOverheadCycles)
        .set("work_cycles_per_request", work_cycles)
        .set("model_clock_hz", kModelClockHz)
        .set("base_unbatched_rps", base);

    double saturation_ratio = 0.0;
    double saturation_wall_ratio = 0.0;
    for (const double mult : {1.0, 2.0, 4.0}) {
        const double rate = base * mult;
        const auto unbatched = best_open_loop(app, device, 1,
                                              kOpenLoopRequests, rate,
                                              workers, kTrials);
        const auto batched = best_open_loop(app, device, kOpenLoopBatch,
                                            kOpenLoopRequests, rate,
                                            workers, kTrials);
        for (const auto* mode : {&unbatched, &batched}) {
            const bool is_batched = mode == &batched;
            print_row({fmt(rate, 0), is_batched ? "batched" : "unbatched",
                       fmt(mode->achieved_rps, 0),
                       fmt(modeled_rps(*mode), 0),
                       fmt(mode->metrics.latency.p95 * 1e3, 2) + "ms",
                       fmt(mode->metrics.batch.mean_size, 2),
                       std::to_string(mode->metrics.batch.coalesced)},
                      12);
            report.add_row()
                .set("offered_rps", rate)
                .set("offered_multiple", mult)
                .set("mode", is_batched ? "batched" : "unbatched")
                .set("achieved_rps", mode->achieved_rps)
                .set("modeled_rps", modeled_rps(*mode))
                .set("p50_sojourn_s", mode->metrics.latency.p50)
                .set("p95_sojourn_s", mode->metrics.latency.p95)
                .set("p95_amortized_s", mode->metrics.batch_latency.p95)
                .set("batches", mode->metrics.batch.batches)
                .set("batches_coalesced", mode->metrics.batch.coalesced)
                .set("mean_batch_size", mode->metrics.batch.mean_size)
                .set("max_batch_size", mode->metrics.batch.max_size)
                .set("rejected", mode->rejected)
                .set("unresolved", mode->unresolved);
        }
        // The ladder ends past saturation; the last pair is the headline.
        if (modeled_rps(unbatched) > 0.0)
            saturation_ratio =
                modeled_rps(batched) / modeled_rps(unbatched);
        if (unbatched.achieved_rps > 0.0)
            saturation_wall_ratio =
                batched.achieved_rps / unbatched.achieved_rps;
    }
    report.set_geomean(saturation_ratio);
    report.config().set("saturation_wall_ratio", saturation_wall_ratio);
    report.write();
    std::printf("\nSaturation throughput ratio, device-modeled "
                "(batched / unbatched): %.2fx\n",
                saturation_ratio);
    std::printf("Saturation throughput ratio, host wall clock "
                "(batched / unbatched): %.2fx\n",
                saturation_wall_ratio);
}

/// CI batching smoke: flood a two-worker service so same-kernel requests
/// pile up behind the workers, and assert both containment (every future
/// resolves) and coalescing (at least one batch of >= 2 formed).  Prints
/// one greppable `serve_batching_smoke:` line.
int
run_batching_smoke()
{
    const auto device = device::DeviceModel::gtx560();
    auto app = apps::make_gamma_correction();
    app->set_scale(kOpenLoopScale);

    const auto result =
        run_open_loop(*app, device, kOpenLoopBatch, 64, 0.0, 2);
    const auto& m = result.metrics;
    std::printf("serve_batching_smoke: accepted=%llu served=%llu "
                "batches_formed=%llu coalesced_requests=%llu "
                "mean_batch=%.2f max_batch=%llu rejected=%llu "
                "unresolved=%llu\n",
                static_cast<unsigned long long>(m.accepted),
                static_cast<unsigned long long>(m.served),
                static_cast<unsigned long long>(m.batch.coalesced),
                static_cast<unsigned long long>(m.batch.coalesced_requests),
                m.batch.mean_size,
                static_cast<unsigned long long>(m.batch.max_size),
                static_cast<unsigned long long>(result.rejected),
                static_cast<unsigned long long>(result.unresolved));
    std::fputs(serve::format_metrics(m).c_str(), stdout);
    if (result.unresolved > 0) {
        std::fflush(stdout);
        std::_Exit(1);
    }
    if (m.batch.coalesced == 0) {
        std::printf("serve_batching_smoke: FAILED - no coalesced batch "
                    "formed under flood\n");
        return 1;
    }
    return 0;
}

// ---- Cancellation mode ------------------------------------------------------

struct CancelPhase {
    std::vector<std::vector<float>> normal_outputs;
    serve::MetricsSnapshot metrics;
    std::uint64_t doomed_ok = 0;
    std::uint64_t doomed_expired = 0;
    std::uint64_t unresolved = 0;
};

/// One cancellation phase: alternate undeadlined requests with "doomed"
/// ones whose deadline is a fraction of the kernel's serve wall, against
/// an exact-only registration (bit-exact determinism across phases).
/// num_workers=1 keeps the submit order the execution order.
CancelPhase
run_cancellation_phase(apps::Application& app,
                       const device::DeviceModel& device, bool watchdog_on,
                       std::chrono::microseconds doomed_deadline,
                       int rounds)
{
    serve::ServiceConfig config;
    config.num_workers = 1;
    config.queue_capacity = 32;
    config.watchdog.enabled = watchdog_on;
    config.watchdog.tick = std::chrono::milliseconds(1);
    serve::ApproxService service(config);
    auto variants = app.variants(device);
    variants.resize(1);
    service.register_kernel("kernel", std::move(variants),
                            app.info().metric, kToq, {101, 202});
    service.submit("kernel", 11);  // Warm-up: worker startup off the books.
    service.drain();

    CancelPhase phase;
    const auto resolve = [&phase](std::future<serve::Response>& response)
        -> std::optional<serve::Response> {
        if (response.wait_for(std::chrono::seconds(60)) !=
            std::future_status::ready) {
            ++phase.unresolved;
            return std::nullopt;
        }
        return response.get();
    };
    for (int i = 0; i < rounds; ++i) {
        auto normal = service.submit("kernel", 1000 + i);
        if (normal.accepted) {
            if (auto response = resolve(normal.response))
                phase.normal_outputs.push_back(
                    std::move(response->run.output));
        }
        auto doomed = service.submit(
            "kernel", 5000 + i,
            serve::SubmitOptions::within(doomed_deadline));
        if (doomed.accepted) {
            if (const auto response = resolve(doomed.response)) {
                if (response->status == serve::ServeStatus::Ok)
                    ++phase.doomed_ok;
                else
                    ++phase.doomed_expired;
            }
        }
    }
    service.drain();
    phase.metrics = service.snapshot().metrics;
    service.stop();
    return phase;
}

/// Cancellation figure/smoke: the same request schedule served twice —
/// watchdog off (a doomed launch runs to completion, then resolves
/// DeadlineExceeded: pure wasted work) vs watchdog on (the sweep fires
/// the member's token mid-launch and the VM stops within one group
/// round).  Asserts the three invariants the figure exists to show:
/// cancellation actually fires, it reclaims launch work (fewer groups
/// completed), and it never perturbs the bits of undeadlined requests.
int
run_cancellation()
{
    constexpr int kRounds = 12;
    const auto device = device::DeviceModel::gtx560();
    auto app = apps::make_mean_filter();
    // Full-size frames: long enough launches that a mid-launch cancel
    // has groups left to save.
    app->set_scale(1.0);

    // Size the doomed deadline off the measured serve wall so the
    // deadline expires mid-launch: past admission, well short of
    // completion.
    double wall_seconds = 0.0;
    {
        serve::ServiceConfig config;
        config.num_workers = 1;
        config.watchdog.enabled = false;
        serve::ApproxService service(config);
        auto variants = app->variants(device);
        variants.resize(1);
        service.register_kernel("kernel", std::move(variants),
                                app->info().metric, kToq, {101, 202});
        service.submit("kernel", 11);
        service.drain();
        const auto start = std::chrono::steady_clock::now();
        auto ticket = service.submit("kernel", 12);
        if (ticket.accepted)
            ticket.response.get();
        wall_seconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();
        service.stop();
    }
    const auto doomed_deadline = std::chrono::microseconds(std::max<long>(
        500, static_cast<long>(wall_seconds * 1e6 / 4.0)));

    const auto baseline = run_cancellation_phase(
        *app, device, /*watchdog_on=*/false, doomed_deadline, kRounds);
    const auto cancelling = run_cancellation_phase(
        *app, device, /*watchdog_on=*/true, doomed_deadline, kRounds);

    const bool identical =
        baseline.normal_outputs == cancelling.normal_outputs &&
        baseline.normal_outputs.size() ==
            static_cast<std::size_t>(kRounds);
    const std::uint64_t groups_baseline =
        baseline.metrics.launch_groups_completed;
    const std::uint64_t groups_cancelling =
        cancelling.metrics.launch_groups_completed;

    std::printf("serve_cancellation_smoke: wall_us=%.0f deadline_us=%lld "
                "cancelled_launches=%llu deadline_cancels=%llu "
                "baseline_cancelled=%llu groups_baseline=%llu "
                "groups_cancelling=%llu identical=%d unresolved=%llu\n",
                wall_seconds * 1e6,
                static_cast<long long>(doomed_deadline.count()),
                static_cast<unsigned long long>(
                    cancelling.metrics.cancelled_launches),
                static_cast<unsigned long long>(
                    cancelling.metrics.deadline_expired),
                static_cast<unsigned long long>(
                    baseline.metrics.cancelled_launches),
                static_cast<unsigned long long>(groups_baseline),
                static_cast<unsigned long long>(groups_cancelling),
                identical ? 1 : 0,
                static_cast<unsigned long long>(baseline.unresolved +
                                                cancelling.unresolved));

    BenchReport report("serve_cancellation");
    report.config()
        .set("scale", 1.0)
        .set("rounds", kRounds)
        .set("serve_wall_us", wall_seconds * 1e6)
        .set("doomed_deadline_us",
             static_cast<std::uint64_t>(doomed_deadline.count()));
    for (const auto* phase : {&baseline, &cancelling}) {
        const bool on = phase == &cancelling;
        report.add_row()
            .set("mode", on ? "watchdog" : "baseline")
            .set("cancelled_launches", phase->metrics.cancelled_launches)
            .set("deadline_expired", phase->metrics.deadline_expired)
            .set("launch_groups_completed",
                 phase->metrics.launch_groups_completed)
            .set("doomed_ok", phase->doomed_ok)
            .set("doomed_expired", phase->doomed_expired)
            .set("unresolved", phase->unresolved);
    }
    const double reclaimed =
        groups_baseline > 0
            ? 1.0 - static_cast<double>(groups_cancelling) /
                        static_cast<double>(groups_baseline)
            : 0.0;
    report.set_geomean(reclaimed);
    report.write();
    std::printf("Launch work reclaimed by cancellation: %.1f%%\n",
                reclaimed * 100.0);

    if (baseline.unresolved + cancelling.unresolved > 0) {
        std::fflush(stdout);
        std::_Exit(1);
    }
    if (baseline.metrics.cancelled_launches != 0) {
        std::printf("serve_cancellation_smoke: FAILED - baseline "
                    "cancelled a launch with the watchdog off\n");
        return 1;
    }
    if (cancelling.metrics.cancelled_launches == 0) {
        std::printf("serve_cancellation_smoke: FAILED - no launch "
                    "cancelled with the watchdog on\n");
        return 1;
    }
    if (groups_cancelling >= groups_baseline) {
        std::printf("serve_cancellation_smoke: FAILED - cancellation "
                    "reclaimed no launch work\n");
        return 1;
    }
    if (!identical) {
        std::printf("serve_cancellation_smoke: FAILED - undeadlined "
                    "outputs differ between phases\n");
        return 1;
    }
    return 0;
}

/// CI chaos smoke: serve one kernel under whatever PARAPROX_FAULTS is
/// armed (traps, latency stalls, store corruption) and assert the
/// containment invariant — every accepted request resolves.  Prints one
/// greppable `serve_smoke:` line; exits nonzero on an unresolved future.
int
run_smoke()
{
    const auto device = device::DeviceModel::gtx560();
    auto app = apps::make_mean_filter();
    app->set_scale(kScale);

    serve::ServiceConfig config;
    config.num_workers = default_thread_count();
    config.queue_capacity = kRequests + 16;
    serve::ApproxService service(config);
    // Registration calibrates every variant through the same fault
    // sites; with faults live it can trap out the whole generated set
    // and select the exact kernel, leaving the serving phase nothing to
    // inject into.  Scope the schedule to serving: disarm for the
    // calibration pass, then arm from the environment at occurrence
    // zero.
    fault::FaultInjector::instance().disarm();
    service.register_kernel("kernel", app->variants(device),
                            app->info().metric, kToq, {101, 202});
    fault::FaultInjector::instance().arm_from_env();

    std::vector<std::future<serve::Response>> responses;
    responses.reserve(kRequests);
    std::uint64_t rejected = 0;
    for (int i = 0; i < kRequests; ++i) {
        auto ticket = service.submit("kernel", 1000 + i);
        if (ticket.accepted)
            responses.push_back(std::move(ticket.response));
        else
            ++rejected;
    }

    std::uint64_t unresolved = 0;
    for (auto& response : responses) {
        if (response.wait_for(std::chrono::seconds(60)) !=
            std::future_status::ready)
            ++unresolved;
    }

    const auto snapshot = service.snapshot();
    const auto& m = snapshot.metrics;
    std::printf("serve_smoke: accepted=%llu served=%llu "
                "deadline_expired=%llu trap_fallbacks=%llu "
                "quarantines=%llu rejected=%llu unresolved=%llu\n",
                static_cast<unsigned long long>(m.accepted),
                static_cast<unsigned long long>(m.served),
                static_cast<unsigned long long>(m.deadline_expired),
                static_cast<unsigned long long>(m.trap_fallbacks),
                static_cast<unsigned long long>(m.quarantines),
                static_cast<unsigned long long>(rejected),
                static_cast<unsigned long long>(unresolved));
    std::fputs(serve::format_metrics(m).c_str(), stdout);
    for (const auto& fault : fault::FaultInjector::instance().stats()) {
        std::printf("fault_stats: site=%s match=%s occurrences=%llu "
                    "fires=%llu\n",
                    fault.site.c_str(),
                    fault.match.empty() ? "*" : fault.match.c_str(),
                    static_cast<unsigned long long>(fault.occurrences),
                    static_cast<unsigned long long>(fault.fires));
    }
    if (unresolved > 0) {
        // A worker wedged mid-request: joining it would hang, so fail
        // the process hard instead of waiting on a lost future.
        std::fflush(stdout);
        std::_Exit(1);
    }
    service.stop();
    return 0;
}

}  // namespace
}  // namespace paraprox::bench

int
main(int argc, char** argv)
{
    bool smoke = false;
    bool open_loop = false;
    bool cancellation = false;
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg(argv[i]);
        if (arg == "--smoke")
            smoke = true;
        else if (arg == "--open-loop")
            open_loop = true;
        else if (arg == "--cancellation")
            cancellation = true;
    }
    if (cancellation)
        return paraprox::bench::run_cancellation();
    if (smoke && open_loop)
        return paraprox::bench::run_batching_smoke();
    if (smoke)
        return paraprox::bench::run_smoke();
    if (open_loop) {
        paraprox::bench::run_open_loop_figure();
        return 0;
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    paraprox::bench::run_figure();
    return 0;
}
