/// @file
/// Serving throughput of serve::ApproxService at TOQ=90%: requests/sec
/// when every request runs the exact kernel vs. when the service runs
/// the Paraprox-selected variant with online quality monitoring (one
/// shadowed exact run every Config::shadow_interval requests).
///
/// The monitored approximate mode pays for its shadow sample out of the
/// variant's speedup, so the interesting number is the throughput ratio:
/// how much of the paper's Fig. 11 speedup survives once the runtime is
/// auditing itself.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <future>
#include <string_view>

#include "bench/bench_support.h"
#include "serve/service.h"
#include "support/faultinject.h"
#include "support/stats.h"

namespace paraprox::bench {
namespace {

constexpr double kToq = 90.0;
constexpr double kScale = 0.25;
constexpr int kRequests = 96;

struct ModeResult {
    double requests_per_second = 0.0;
    std::string selected;
    std::uint64_t shadows = 0;
    std::uint64_t violations = 0;
};

/// Serve kRequests against one registered kernel and report throughput.
/// Exact-only mode registers just variants[0], so the tuner has nothing
/// to select but the exact kernel and the monitor never shadows it.
ModeResult
run_mode(apps::Application& app, const device::DeviceModel& device,
         bool approximate, std::size_t workers)
{
    auto variants = app.variants(device);
    if (!approximate)
        variants.resize(1);

    serve::ServiceConfig config;
    config.num_workers = workers;
    config.queue_capacity = kRequests + 16;
    serve::ApproxService service(config);
    service.register_kernel("kernel", std::move(variants),
                            app.info().metric, kToq, {101, 202});

    // Warm-up request so worker startup is off the clock.
    service.submit("kernel", 11);
    service.drain();

    const auto start = std::chrono::steady_clock::now();
    std::vector<std::future<serve::Response>> responses;
    responses.reserve(kRequests);
    for (int i = 0; i < kRequests; ++i) {
        auto ticket = service.submit("kernel", 1000 + i);
        if (ticket.accepted)
            responses.push_back(std::move(ticket.response));
    }
    for (auto& response : responses)
        response.get();
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    service.drain();

    const auto kernel = service.kernel_snapshot("kernel");
    ModeResult result;
    result.requests_per_second =
        seconds > 0.0 ? static_cast<double>(responses.size()) / seconds
                      : 0.0;
    result.selected = kernel.selected;
    result.shadows = kernel.monitor.shadows;
    result.violations = kernel.monitor.violations;
    return result;
}

void
run_figure()
{
    const auto device = device::DeviceModel::gtx560();
    const std::size_t workers = default_thread_count();

    // Stencil/reduction apps, whose variants speed up interpreter wall
    // time itself (memo-table apps only save modeled device cycles, which
    // a throughput benchmark cannot observe).
    auto apps = make_scaled_apps(kScale, {"Mean Filter", "Gaussian Filter",
                                          "Naive Bayes",
                                          "Kernel Density Estimation"});

    print_header("Serving throughput at TOQ=90% (" +
                 std::to_string(workers) + " workers, " +
                 std::to_string(kRequests) + " requests)");
    print_row({"Application", "exact req/s", "approx req/s", "ratio",
               "selected", "shadows"},
              16);

    BenchReport report("serve_throughput");
    report.config()
        .set("toq", kToq)
        .set("scale", kScale)
        .set("workers", static_cast<std::uint64_t>(workers))
        .set("requests", kRequests);

    std::vector<double> ratios;
    for (auto& app : apps) {
        const auto exact = run_mode(*app, device, false, workers);
        const auto approx = run_mode(*app, device, true, workers);
        const double ratio =
            exact.requests_per_second > 0.0
                ? approx.requests_per_second / exact.requests_per_second
                : 0.0;
        ratios.push_back(ratio);
        print_row({app->info().name, fmt(exact.requests_per_second, 1),
                   fmt(approx.requests_per_second, 1),
                   fmt(ratio) + "x", approx.selected,
                   std::to_string(approx.shadows)},
                  16);
        report.add_row()
            .set("app", app->info().name)
            .set("exact_rps", exact.requests_per_second)
            .set("approx_rps", approx.requests_per_second)
            .set("ratio", ratio)
            .set("selected", approx.selected)
            .set("shadows", approx.shadows)
            .set("violations", approx.violations);
    }
    const double geomean = stats::geomean(ratios);
    report.set_geomean(geomean);
    report.write();
    std::printf("\nGeomean throughput ratio (monitored approx / exact): "
                "%.2fx\n",
                geomean);
}

/// CI chaos smoke: serve one kernel under whatever PARAPROX_FAULTS is
/// armed (traps, latency stalls, store corruption) and assert the
/// containment invariant — every accepted request resolves.  Prints one
/// greppable `serve_smoke:` line; exits nonzero on an unresolved future.
int
run_smoke()
{
    const auto device = device::DeviceModel::gtx560();
    auto app = apps::make_mean_filter();
    app->set_scale(kScale);

    serve::ServiceConfig config;
    config.num_workers = default_thread_count();
    config.queue_capacity = kRequests + 16;
    serve::ApproxService service(config);
    // Registration calibrates every variant through the same fault
    // sites; with faults live it can trap out the whole generated set
    // and select the exact kernel, leaving the serving phase nothing to
    // inject into.  Scope the schedule to serving: disarm for the
    // calibration pass, then arm from the environment at occurrence
    // zero.
    fault::FaultInjector::instance().disarm();
    service.register_kernel("kernel", app->variants(device),
                            app->info().metric, kToq, {101, 202});
    fault::FaultInjector::instance().arm_from_env();

    std::vector<std::future<serve::Response>> responses;
    responses.reserve(kRequests);
    std::uint64_t rejected = 0;
    for (int i = 0; i < kRequests; ++i) {
        auto ticket = service.submit("kernel", 1000 + i);
        if (ticket.accepted)
            responses.push_back(std::move(ticket.response));
        else
            ++rejected;
    }

    std::uint64_t unresolved = 0;
    for (auto& response : responses) {
        if (response.wait_for(std::chrono::seconds(60)) !=
            std::future_status::ready)
            ++unresolved;
    }

    const auto snapshot = service.snapshot();
    const auto& m = snapshot.metrics;
    std::printf("serve_smoke: accepted=%llu served=%llu "
                "deadline_expired=%llu trap_fallbacks=%llu "
                "quarantines=%llu rejected=%llu unresolved=%llu\n",
                static_cast<unsigned long long>(m.accepted),
                static_cast<unsigned long long>(m.served),
                static_cast<unsigned long long>(m.deadline_expired),
                static_cast<unsigned long long>(m.trap_fallbacks),
                static_cast<unsigned long long>(m.quarantines),
                static_cast<unsigned long long>(rejected),
                static_cast<unsigned long long>(unresolved));
    std::fputs(serve::format_metrics(m).c_str(), stdout);
    for (const auto& fault : fault::FaultInjector::instance().stats()) {
        std::printf("fault_stats: site=%s match=%s occurrences=%llu "
                    "fires=%llu\n",
                    fault.site.c_str(),
                    fault.match.empty() ? "*" : fault.match.c_str(),
                    static_cast<unsigned long long>(fault.occurrences),
                    static_cast<unsigned long long>(fault.fires));
    }
    if (unresolved > 0) {
        // A worker wedged mid-request: joining it would hang, so fail
        // the process hard instead of waiting on a lost future.
        std::fflush(stdout);
        std::_Exit(1);
    }
    service.stop();
    return 0;
}

}  // namespace
}  // namespace paraprox::bench

int
main(int argc, char** argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::string_view(argv[i]) == "--smoke")
            return paraprox::bench::run_smoke();
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    paraprox::bench::run_figure();
    return 0;
}
