/// @file
/// Figure 16: lookup-table placement — constant vs. shared vs. global
/// memory — for the Bass function as the table size sweeps 8..8192
/// entries, on the GPU model.
///
/// Paper findings: constant memory is never optimal (divergent lookups
/// serialize on the broadcast hardware); for small tables shared and
/// global are similar; mid-size tables favour shared (cold L1); large
/// tables favour global (per-group staging of the shared copy costs more
/// than the cache misses it avoids).

#include <benchmark/benchmark.h>

#include "bench/bench_support.h"

namespace paraprox::bench {
namespace {

using transforms::LookupMode;
using transforms::TableLocation;

void
run_figure()
{
    print_header("Figure 16: table placement vs. size, Bass function "
                 "(GPU model)");
    print_row({"entries", "constant", "shared", "global"}, 12);

    const auto gpu = device::DeviceModel::gtx560();
    const auto functions = case_study_functions();
    const CaseStudyFunction& bass = functions[3];

    for (int bits = 3; bits <= 13; ++bits) {
        std::vector<std::string> row = {std::to_string(1 << bits)};
        for (TableLocation location :
             {TableLocation::Constant, TableLocation::Shared,
              TableLocation::Global}) {
            auto result = run_case_study(bass, bits, location,
                                         LookupMode::Nearest, gpu);
            row.push_back(fmt(result.speedup));
        }
        print_row(row, 12);
    }
    std::printf("\nExpect: the constant column never the best; shared "
                "competitive until the staging\nloop (table copied per "
                "work-group) outweighs global's cache misses.\n");
}

}  // namespace
}  // namespace paraprox::bench

int
main(int argc, char** argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    paraprox::bench::run_figure();
    return 0;
}
