/// @file
/// The approximate data tier across the Fig. 11 applications: build each
/// app's precision-plan family, calibrate it at TOQ=90%, and report the
/// selection's modeled-cycle speedup and priced-byte reduction against
/// all-fp32 storage, plus a serve-layer warm-restart check (a second
/// registration must restore the stored precision calibration with zero
/// plan search).
///
/// Flags:
///   --smoke   smaller app scale, fewer seeds; prints one greppable
///             `data_tier_smoke:` line.  The acceptance checks run in
///             both modes (all numbers are modeled and deterministic).

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#include "bench/bench_support.h"
#include "runtime/data_tier.h"
#include "runtime/quality.h"
#include "serve/service.h"
#include "store/artifact_store.h"
#include "support/stats.h"
#include "vm/program_cache.h"

namespace paraprox::bench {
namespace {

constexpr double kToq = 90.0;

struct TierMeasurement {
    std::string app;
    bool has_tier = false;   ///< False: multi-kernel app or no packable buffer.
    std::size_t plans = 0;   ///< Family size including the exact plan.
    std::string selected;    ///< Tuner's pick at TOQ=90%.
    double quality = 100.0;  ///< Selection's quality on the held-out seed.
    double speedup = 1.0;    ///< Exact modeled cycles / selection's.
    double bytes_ratio = 1.0;  ///< Exact priced bytes / selection's.
};

/// Build + calibrate one app's precision tier and measure the selection
/// on a held-out seed.
TierMeasurement
measure_tier(apps::Application& app, const device::DeviceModel& device,
             const std::vector<std::uint64_t>& seeds,
             std::uint64_t holdout_seed)
{
    TierMeasurement m;
    m.app = app.info().name;
    const auto setup = app.setup(device);
    if (!setup)
        return m;  // Multi-kernel serving unit: outside the data tier.

    runtime::DataTier tier =
        runtime::build_data_tier(*setup->session, setup->plan);
    if (tier.variants.size() < 2)
        return m;  // Safety analysis pinned every buffer exact.
    m.has_tier = true;
    m.plans = tier.variants.size();

    runtime::Tuner tuner(tier.variants, app.info().metric, kToq);
    tuner.calibrate(seeds);
    const int selected = tuner.selected_index();
    m.selected = tier.variants[static_cast<std::size_t>(selected)].label;

    const runtime::VariantRun exact = tier.variants[0].run(holdout_seed);
    const runtime::VariantRun chosen =
        tier.variants[static_cast<std::size_t>(selected)].run(holdout_seed);
    m.quality = runtime::quality_percent(app.info().metric, exact.output,
                                         chosen.output);
    if (chosen.modeled_cycles > 0.0)
        m.speedup = exact.modeled_cycles / chosen.modeled_cycles;
    if (chosen.modeled_bytes > 0) {
        m.bytes_ratio = static_cast<double>(exact.modeled_bytes) /
                        static_cast<double>(chosen.modeled_bytes);
    }
    return m;
}

struct WarmPhaseResult {
    bool first_warm = false;
    bool second_warm = false;
    std::uint64_t second_warm_tiers = 0;
    std::string first_selected;
    std::string second_selected;
};

/// Register one app's data tier with serve::ApproxService twice against
/// the artifact store, simulating a process restart in between.
WarmPhaseResult
run_warm_phase(double scale, const std::vector<std::uint64_t>& seeds)
{
    WarmPhaseResult result;

    // Honour an ambient store (CI sets PARAPROX_STORE_DIR so a second
    // *process* starts warm); otherwise use a fresh temp dir.
    std::shared_ptr<store::ArtifactStore> local_store;
    if (std::getenv("PARAPROX_STORE_DIR") == nullptr) {
        const auto dir = std::filesystem::temp_directory_path() /
                         "paraprox-bench-data-tier-store";
        std::filesystem::remove_all(dir);
        local_store = store::ArtifactStore::configure_global(dir);
    }

    const auto device = device::DeviceModel::gtx560();
    serve::ServiceConfig config;
    config.num_workers = 2;

    const auto register_once = [&](bool& warm, std::string& selected,
                                   std::uint64_t* warm_tiers) {
        auto apps = make_scaled_apps(scale, {"BlackScholes"});
        const auto setup = apps.front()->setup(device);
        serve::ApproxService service(config);
        service.register_data_kernel("bs", *setup->session, setup->plan,
                                     apps.front()->info().metric, kToq,
                                     seeds);
        service.submit("bs", 77);
        service.drain();
        const auto metrics = service.metrics().snapshot();
        warm = metrics.warm_data_tiers > 0;
        if (warm_tiers != nullptr)
            *warm_tiers = metrics.warm_data_tiers;
        selected = service.kernel_snapshot("bs").selected;
        service.stop();
    };

    register_once(result.first_warm, result.first_selected, nullptr);

    // Simulate a restart: drop the in-memory bytecode tier; only the
    // artifact store survives.
    vm::ProgramCache::global().clear();
    register_once(result.second_warm, result.second_selected,
                  &result.second_warm_tiers);

    if (local_store != nullptr)
        store::ArtifactStore::disable_global();
    return result;
}

int
run(bool smoke)
{
    const double scale = smoke ? 0.25 : 0.5;
    const std::vector<std::uint64_t> seeds =
        smoke ? std::vector<std::uint64_t>{101}
              : std::vector<std::uint64_t>{101, 202};
    const std::uint64_t holdout_seed = 7;
    const auto device = device::DeviceModel::gtx560();

    print_header("Approximate data tier: storage-codec plans at TOQ=90% "
                 "(modeled cycles and priced bytes vs. all-fp32)");
    print_row({"Application", "plans", "selected", "quality",
               "cycleX", "bytesX"},
              18);

    BenchReport report("data_tier");
    report.config()
        .set("toq", kToq)
        .set("scale", scale)
        .set("seeds", static_cast<std::uint64_t>(seeds.size()))
        .set("smoke", smoke);

    auto apps = make_scaled_apps(scale);
    std::vector<double> speedups;
    std::vector<double> byte_ratios;
    std::size_t tiers = 0;
    std::size_t wins = 0;
    for (const auto& app : apps) {
        const TierMeasurement m =
            measure_tier(*app, device, seeds, holdout_seed);
        if (!m.has_tier) {
            print_row({m.app, "-", "-", "-", "-", "-"}, 18);
            report.add_row().set("app", m.app).set("has_tier", false);
            continue;
        }
        ++tiers;
        speedups.push_back(m.speedup);
        byte_ratios.push_back(m.bytes_ratio);
        if (m.speedup >= 1.2 || m.bytes_ratio >= 1.2)
            ++wins;
        print_row({m.app, std::to_string(m.plans), m.selected,
                   fmt(m.quality), fmt(m.speedup) + "x",
                   fmt(m.bytes_ratio) + "x"},
                  18);
        report.add_row()
            .set("app", m.app)
            .set("has_tier", true)
            .set("plans", static_cast<std::uint64_t>(m.plans))
            .set("selected", m.selected)
            .set("quality", m.quality)
            .set("cycle_speedup", m.speedup)
            .set("bytes_ratio", m.bytes_ratio);
    }

    const double cycle_geomean = stats::geomean(speedups);
    const double bytes_geomean = stats::geomean(byte_ratios);
    std::printf("\n%zu/%zu apps expose a precision tier; %zu with a "
                ">=1.2x win (cycles or bytes)\n",
                tiers, apps.size(), wins);
    std::printf("geomean over tiered apps: %.2fx modeled cycles, %.2fx "
                "priced bytes\n",
                cycle_geomean, bytes_geomean);
    report.set_geomean(cycle_geomean);

    const auto warm = run_warm_phase(scale, seeds);
    std::printf("\nwarm restart: first registration %s, second %s "
                "(warm_data_tiers=%llu, selected %s)\n",
                warm.first_warm ? "warm" : "cold",
                warm.second_warm ? "warm" : "cold",
                static_cast<unsigned long long>(warm.second_warm_tiers),
                warm.second_selected.c_str());
    report.add_row()
        .set("kind", "warm_restart")
        .set("first_warm", warm.first_warm)
        .set("second_warm", warm.second_warm)
        .set("selected", warm.second_selected);
    report.write();

    if (smoke) {
        std::printf("data_tier_smoke: tiers=%zu wins=%zu "
                    "cycle_geomean=%.2f bytes_geomean=%.2f "
                    "first_warm=%d second_warm=%d\n",
                    tiers, wins, cycle_geomean, bytes_geomean,
                    warm.first_warm ? 1 : 0, warm.second_warm ? 1 : 0);
    }

    // Acceptance: the tier must apply broadly (>=8 apps), at least 8
    // apps must show a >=1.2x modeled win at TOQ>=90% (the geomean of
    // byte reduction bounds the bandwidth story), and a restart must
    // restore the stored calibration without a plan search.
    bool ok = true;
    if (tiers < 8) {
        std::printf("FAIL: only %zu apps expose a data tier\n", tiers);
        ok = false;
    }
    if (wins < 8) {
        std::printf("FAIL: only %zu apps show a >=1.2x modeled win\n",
                    wins);
        ok = false;
    }
    if (std::max(cycle_geomean, bytes_geomean) < 1.2) {
        std::printf("FAIL: geomean win %.2fx below 1.2x\n",
                    std::max(cycle_geomean, bytes_geomean));
        ok = false;
    }
    if (!warm.second_warm) {
        std::printf("FAIL: second registration re-searched the plans\n");
        ok = false;
    }
    if (warm.second_selected != warm.first_selected) {
        std::printf("FAIL: warm restart changed the selection (%s vs "
                    "%s)\n",
                    warm.second_selected.c_str(),
                    warm.first_selected.c_str());
        ok = false;
    }
    std::printf("%s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}

}  // namespace
}  // namespace paraprox::bench

int
main(int argc, char** argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i)
        if (std::string_view(argv[i]) == "--smoke")
            smoke = true;
    return paraprox::bench::run(smoke);
}
