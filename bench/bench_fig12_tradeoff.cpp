/// @file
/// Figure 12: the performance-accuracy tradeoff — speedup vs. output
/// quality as each optimization's tuning parameters sweep, for the six
/// benchmarks the paper plots (BlackScholes, Quasirandom Generator,
/// Matrix Multiplication, Kernel Density, Gaussian Filter, Convolution
/// Separable), under the GPU model.

#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench/bench_support.h"

namespace paraprox::bench {
namespace {

void
run_figure()
{
    print_header("Figure 12: speedup vs. output quality (GPU model)");
    std::printf("Paper trends: map apps gain speed as tables shrink "
                "(saturating once the table is cache-resident);\n"
                "reduction apps trade quality for speed as the skipping "
                "rate doubles;\nstencil apps rise as reaching distance "
                "grows.\n");

    // Named in Fig. 11 order so the section order matches the figure.
    auto apps = make_scaled_apps(0.5, {"BlackScholes",
                                       "Quasirandom Generator",
                                       "Convolution Separable",
                                       "Gaussian Filter", "Matrix Multiply",
                                       "Kernel Density Estimation"});
    const auto gpu = device::DeviceModel::gtx560();

    for (const auto& app : apps) {
        const std::string name = app->info().name;
        auto measurement = measure_app(*app, gpu, 0.0, {31, 32});

        std::printf("\n%s\n", name.c_str());
        print_row({"variant", "quality %", "speedup"}, 40);
        // Sort by quality descending, like the figure's x axis.
        auto profiles = measurement.profiles;
        std::sort(profiles.begin(), profiles.end(),
                  [](const auto& a, const auto& b) {
                      return a.quality > b.quality;
                  });
        for (const auto& profile : profiles) {
            if (profile.trapped)
                continue;
            print_row({profile.label, fmt(profile.quality),
                       fmt(profile.speedup)},
                      40);
        }
    }
}

}  // namespace
}  // namespace paraprox::bench

int
main(int argc, char** argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    paraprox::bench::run_figure();
    return 0;
}
