/// @file
/// Pipeline composition benchmark: the 3-stage image pipeline (gaussian
/// blur -> sobel -> threshold) tuned *jointly* against an end-to-end
/// TOQ, versus the best uniform per-stage tuning — every stage
/// calibrated to the same per-stage TOQ, swept upward until the
/// composed chain meets the end-to-end target.
///
/// The joint tuner wins because the threshold's binarization masks
/// upstream blur error and the scene's vertical structure makes the
/// sobel row scheme harmless end-to-end, even though its own-stage
/// quality (~70%) fails any per-stage TOQ >= 90.  A per-stage sweep can
/// never select it; the joint search measures end-to-end and can.
///
/// A second phase registers the pipeline with serve::ApproxService
/// against the artifact store twice: the first registration runs the
/// joint search and persists the calibration, the second restores it —
/// zero joint-search probe runs, zero memo-table searches, and the
/// service's warm_pipelines counter ticks.
///
/// Flags:
///   --smoke   smaller grid, fewer seeds; prints one greppable
///             `pipeline_smoke:` line.  The joint-vs-uniform assertion
///             is enforced in both modes (all numbers are modeled and
///             deterministic).

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#include "apps/pipelines.h"
#include "bench/bench_support.h"
#include "memo/table.h"
#include "runtime/pipeline.h"
#include "runtime/quality.h"
#include "serve/service.h"
#include "store/artifact_store.h"
#include "vm/program_cache.h"

namespace paraprox::bench {
namespace {

constexpr double kToq = 90.0;
constexpr runtime::Metric kMetric = runtime::Metric::L1Norm;

/// All-exact reference runs, shared by both tuning strategies.
struct ExactReference {
    double mean_cycles = 0.0;
    std::vector<std::vector<float>> final_outputs;             // per seed
    std::vector<std::vector<std::vector<float>>> stage_outputs;  // [seed]
};

ExactReference
measure_exact(const runtime::PipelineSession& session,
              const std::vector<std::uint64_t>& seeds)
{
    ExactReference ref;
    const std::vector<int> exact(session.num_stages(), 0);
    for (std::uint64_t seed : seeds) {
        std::vector<std::vector<float>> outputs;
        auto run = session.run_config(exact, seed,
                                      vm::ExecMode::Instrumented, &outputs);
        ref.mean_cycles += run.modeled_cycles;
        ref.final_outputs.push_back(std::move(run.output));
        ref.stage_outputs.push_back(std::move(outputs));
    }
    ref.mean_cycles /= static_cast<double>(seeds.size());
    return ref;
}

/// Measured joint configuration: min end-to-end quality and speedup
/// over the training seeds.
struct MeasuredConfig {
    std::vector<int> members;
    std::string label;
    double quality = 0.0;  ///< Min end-to-end quality over seeds.
    double speedup = 1.0;  ///< Mean-cycles speedup vs. all-exact.
    bool trapped = false;
};

MeasuredConfig
measure_config(const runtime::PipelineSession& session,
               const std::vector<int>& members,
               const std::vector<std::uint64_t>& seeds,
               const ExactReference& ref)
{
    MeasuredConfig out;
    out.members = members;
    out.quality = 100.0;
    double mean_cycles = 0.0;
    std::vector<std::string> labels;
    for (std::size_t s = 0; s < members.size(); ++s) {
        labels.push_back(
            session.stage_session(s).members()[members[s]].label);
    }
    runtime::JointConfig named;
    named.labels = labels;
    out.label = named.label(session.stage_names());

    for (std::size_t i = 0; i < seeds.size(); ++i) {
        auto run = session.run_config(members, seeds[i]);
        if (run.trapped) {
            out.trapped = true;
            out.quality = 0.0;
            return out;
        }
        mean_cycles += run.modeled_cycles;
        out.quality = std::min(
            out.quality, runtime::quality_percent(
                             kMetric, ref.final_outputs[i], run.output));
    }
    mean_cycles /= static_cast<double>(seeds.size());
    out.speedup = mean_cycles > 0.0 ? ref.mean_cycles / mean_cycles : 1.0;
    return out;
}

/// Per-stage member scores from single-deviation runs: the member's
/// quality on its *own stage output* (what a per-stage tuner sees) and
/// the chain cycles (all other stages exact, so ordering chain cycles
/// orders the members).
struct StageMemberScore {
    double min_own_quality = 100.0;
    double mean_cycles = 0.0;
    bool trapped = false;
};

std::vector<std::vector<StageMemberScore>>
score_stage_members(const runtime::PipelineSession& session,
                    const std::vector<std::uint64_t>& seeds,
                    const ExactReference& ref)
{
    std::vector<std::vector<StageMemberScore>> scores(session.num_stages());
    for (std::size_t s = 0; s < session.num_stages(); ++s) {
        const std::size_t members = session.stage_session(s).members().size();
        scores[s].resize(members);
        for (std::size_t m = 1; m < members; ++m) {
            auto& score = scores[s][m];
            std::vector<int> config(session.num_stages(), 0);
            config[s] = static_cast<int>(m);
            for (std::size_t i = 0; i < seeds.size(); ++i) {
                std::vector<std::vector<float>> outputs;
                auto run = session.run_config(
                    config, seeds[i], vm::ExecMode::Instrumented, &outputs);
                if (run.trapped) {
                    score.trapped = true;
                    break;
                }
                score.mean_cycles += run.modeled_cycles;
                score.min_own_quality = std::min(
                    score.min_own_quality,
                    runtime::quality_percent(kMetric,
                                             ref.stage_outputs[i][s],
                                             outputs[s]));
            }
            score.mean_cycles /= static_cast<double>(seeds.size());
        }
        // The exact member: perfect quality at exact cost.
        scores[s][0].min_own_quality = 100.0;
        scores[s][0].mean_cycles = ref.mean_cycles;
    }
    return scores;
}

/// The uniform per-stage baseline: every stage independently picks its
/// fastest member whose own-stage quality meets the per-stage TOQ @p t.
std::vector<int>
uniform_selection(const std::vector<std::vector<StageMemberScore>>& scores,
                  double t)
{
    std::vector<int> members(scores.size(), 0);
    for (std::size_t s = 0; s < scores.size(); ++s) {
        double best_cycles = scores[s][0].mean_cycles;
        for (std::size_t m = 1; m < scores[s].size(); ++m) {
            const auto& score = scores[s][m];
            if (score.trapped || score.min_own_quality < t)
                continue;
            if (score.mean_cycles < best_cycles) {
                best_cycles = score.mean_cycles;
                members[s] = static_cast<int>(m);
            }
        }
    }
    return members;
}

struct WarmPhaseResult {
    bool first_warm = false;       ///< First registration restored.
    bool second_warm = false;      ///< Second registration restored.
    std::uint64_t first_probes = 0;
    std::uint64_t second_probes = 0;
    std::uint64_t second_table_searches = 0;
    std::uint64_t warm_pipelines = 0;
    std::string first_selected;
    std::string second_selected;
};

/// Register the pipeline with serve::ApproxService twice against the
/// artifact store, simulating a process restart in between.
WarmPhaseResult
run_warm_phase(double scale, const std::vector<std::uint64_t>& seeds)
{
    WarmPhaseResult result;

    // Honour an ambient store (CI sets PARAPROX_STORE_DIR so a second
    // *process* starts warm); otherwise use a fresh temp dir.
    std::shared_ptr<store::ArtifactStore> local_store;
    if (std::getenv("PARAPROX_STORE_DIR") == nullptr) {
        const auto dir = std::filesystem::temp_directory_path() /
                         "paraprox-bench-pipeline-store";
        std::filesystem::remove_all(dir);
        local_store = store::ArtifactStore::configure_global(dir);
    }

    serve::ServiceConfig config;
    config.num_workers = 2;

    const auto register_once = [&](bool& warm, std::uint64_t& probes,
                                   std::string& selected,
                                   std::uint64_t* table_searches,
                                   std::uint64_t* warm_pipelines) {
        const std::uint64_t probes_before =
            runtime::joint_search_measurements();
        const std::uint64_t searches_before =
            memo::table_search_invocations();
        const std::uint64_t warm_before =
            store::ArtifactStore::global()
                ? store::ArtifactStore::global()->stats().hits
                : 0;
        (void)warm_before;

        apps::ImagePipelineOptions options;
        options.scale = scale;
        auto built = apps::make_image_pipeline(options);
        runtime::PipelineSession session(std::move(built.pipeline));

        serve::ApproxService service(config);
        service.register_pipeline("edges", session, kMetric, kToq, seeds);
        service.submit("edges", 77);
        service.drain();

        const auto snapshot = service.snapshot();
        warm = snapshot.metrics.warm_pipelines > 0;
        if (warm_pipelines != nullptr)
            *warm_pipelines = snapshot.metrics.warm_pipelines;
        probes = runtime::joint_search_measurements() - probes_before;
        if (table_searches != nullptr)
            *table_searches =
                memo::table_search_invocations() - searches_before;
        selected = service.kernel_snapshot("edges").selected;
        service.stop();
    };

    register_once(result.first_warm, result.first_probes,
                  result.first_selected, nullptr, nullptr);

    // Simulate a restart: drop the in-memory bytecode tier; only the
    // artifact store survives.
    vm::ProgramCache::global().clear();
    register_once(result.second_warm, result.second_probes,
                  result.second_selected, &result.second_table_searches,
                  &result.warm_pipelines);

    if (local_store != nullptr)
        store::ArtifactStore::disable_global();
    return result;
}

int
run(bool smoke)
{
    const double scale = smoke ? 0.25 : 0.5;
    const std::vector<std::uint64_t> seeds =
        smoke ? std::vector<std::uint64_t>{1, 2}
              : std::vector<std::uint64_t>{1, 2, 3};

    apps::ImagePipelineOptions options;
    options.scale = scale;
    auto built = apps::make_image_pipeline(options);
    runtime::PipelineSession session(std::move(built.pipeline));

    print_header("Pipeline composition: joint vs. uniform per-stage "
                 "tuning, end-to-end TOQ=90%");
    std::printf("chain `%s` (%dx%d), %zu stages\n", session.name().c_str(),
                built.width, built.height, session.num_stages());

    BenchReport report("pipeline");
    report.config()
        .set("pipeline", session.name())
        .set("toq", kToq)
        .set("scale", scale)
        .set("width", built.width)
        .set("height", built.height)
        .set("smoke", smoke);

    // Joint tuning: the search prunes the cross product with per-stage
    // cost probes, then the tuner calibrates end-to-end.
    runtime::Tuner tuner(session.joint_variants(), kMetric, kToq);
    tuner.calibrate(seeds);
    const auto& info = session.search_info();
    std::printf("joint search: %zu combinations, %zu dominated, %zu "
                "capped, %zu measured end-to-end (%zu stage probes)\n\n",
                info.total_combinations, info.dominated, info.capped,
                info.kept, info.probe_runs);

    const auto ref = measure_exact(session, seeds);
    const auto joint = measure_config(
        session, session.configs()[tuner.selected_index()].members, seeds,
        ref);
    const int joint_aggressiveness =
        session.configs()[tuner.selected_index()].aggressiveness;

    // Uniform per-stage baseline: sweep one shared per-stage TOQ upward
    // and keep the fastest composition that meets the end-to-end target.
    const auto scores = score_stage_members(session, seeds, ref);
    print_row({"per-stage TOQ", "composed configuration", "e2e min q%",
               "speedup"},
              22);
    MeasuredConfig uniform_best;
    uniform_best.members.assign(session.num_stages(), 0);
    uniform_best.quality = 100.0;
    {
        runtime::JointConfig exact_cfg;
        exact_cfg.labels.assign(session.num_stages(), "exact");
        uniform_best.label = exact_cfg.label(session.stage_names());
    }
    std::vector<std::vector<int>> tried;
    for (double t : {90.0, 92.5, 95.0, 97.5, 99.0}) {
        const auto members = uniform_selection(scores, t);
        if (std::find(tried.begin(), tried.end(), members) != tried.end())
            continue;
        tried.push_back(members);
        const auto measured = measure_config(session, members, seeds, ref);
        print_row({fmt(t, 1), measured.label, fmt(measured.quality),
                   fmt(measured.speedup) + "x"},
                  22);
        report.add_row()
            .set("kind", "uniform")
            .set("per_stage_toq", t)
            .set("config", measured.label)
            .set("e2e_quality_min", measured.quality)
            .set("speedup", measured.speedup);
        if (!measured.trapped && measured.quality >= kToq &&
            measured.speedup > uniform_best.speedup) {
            uniform_best = measured;
        }
    }

    std::printf("\nuniform best meeting e2e TOQ: %s (%.2fx, min q "
                "%.2f%%)\n",
                uniform_best.label.c_str(), uniform_best.speedup,
                uniform_best.quality);
    std::printf("joint selection:              %s (%.2fx, min q "
                "%.2f%%)\n",
                joint.label.c_str(), joint.speedup, joint.quality);

    report.add_row()
        .set("kind", "joint")
        .set("config", joint.label)
        .set("e2e_quality_min", joint.quality)
        .set("speedup", joint.speedup)
        .set("aggressiveness", joint_aggressiveness);
    report.add_row()
        .set("kind", "uniform_best")
        .set("config", uniform_best.label)
        .set("e2e_quality_min", uniform_best.quality)
        .set("speedup", uniform_best.speedup);

    // Warm restart through the serving layer + artifact store.
    const auto warm = run_warm_phase(scale, seeds);
    std::printf("\nwarm restart: first registration %s (%llu joint "
                "probes), second %s (%llu probes, %llu table searches, "
                "warm_pipelines=%llu)\n",
                warm.first_warm ? "warm" : "cold",
                static_cast<unsigned long long>(warm.first_probes),
                warm.second_warm ? "warm" : "cold",
                static_cast<unsigned long long>(warm.second_probes),
                static_cast<unsigned long long>(
                    warm.second_table_searches),
                static_cast<unsigned long long>(warm.warm_pipelines));
    report.add_row()
        .set("kind", "warm_restart")
        .set("first_warm", warm.first_warm)
        .set("second_warm", warm.second_warm)
        .set("second_probes", warm.second_probes)
        .set("second_table_searches", warm.second_table_searches)
        .set("selected", warm.second_selected);
    report.write();

    if (smoke) {
        std::printf("pipeline_smoke: joint_speedup=%.2f "
                    "uniform_speedup=%.2f joint_quality=%.2f "
                    "first_warm=%d second_warm=%d second_probes=%llu "
                    "second_table_searches=%llu warm_pipelines=%llu\n",
                    joint.speedup, uniform_best.speedup, joint.quality,
                    warm.first_warm ? 1 : 0, warm.second_warm ? 1 : 0,
                    static_cast<unsigned long long>(warm.second_probes),
                    static_cast<unsigned long long>(
                        warm.second_table_searches),
                    static_cast<unsigned long long>(warm.warm_pipelines));
    }

    // Acceptance: the joint config is genuinely mixed, meets the
    // end-to-end TOQ, strictly beats the best uniform composition, and
    // the warm path reran nothing.
    bool ok = true;
    const bool mixed = joint_aggressiveness > 0 &&
                       joint.label.find("exact") != std::string::npos;
    if (!mixed) {
        std::printf("FAIL: joint selection is not a mixed "
                    "aggressive/exact configuration\n");
        ok = false;
    }
    if (joint.quality < kToq) {
        std::printf("FAIL: joint selection misses the end-to-end TOQ\n");
        ok = false;
    }
    if (joint.speedup <= uniform_best.speedup) {
        std::printf("FAIL: joint (%.2fx) does not beat uniform "
                    "per-stage tuning (%.2fx)\n",
                    joint.speedup, uniform_best.speedup);
        ok = false;
    }
    if (!warm.second_warm || warm.second_probes != 0 ||
        warm.second_table_searches != 0) {
        std::printf("FAIL: warm restart reran the joint search\n");
        ok = false;
    }
    if (warm.second_selected != warm.first_selected) {
        std::printf("FAIL: warm restart changed the selection (%s vs "
                    "%s)\n",
                    warm.second_selected.c_str(),
                    warm.first_selected.c_str());
        ok = false;
    }
    std::printf("%s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}

}  // namespace
}  // namespace paraprox::bench

int
main(int argc, char** argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i)
        if (std::string_view(argv[i]) == "--smoke")
            smoke = true;
    return paraprox::bench::run(smoke);
}
