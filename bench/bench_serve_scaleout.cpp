/// @file
/// Multi-process scale-out throughput and calibration-plane accounting.
///
/// Spawns fleets of 1, 2, and 4 replica processes (fork/exec of this
/// binary in --replica-worker mode), each an ApproxService behind an
/// AF_UNIX ReplicaServer sharing one artifact store, and routes a fixed
/// request stream through a FrontDoor.  Two numbers matter:
///
///   - throughput scaling: every request costs the same device-modeled
///     work, so fleet completion time is the busiest replica's modeled
///     busy time and throughput is total served over that.  The real
///     wall clock on a small CI box serializes all processes onto a
///     couple of cores; the device model is the currency every other
///     figure in this repo reports, and under it least-outstanding
///     routing should scale near-linearly (>= 1.7x at 2, >= 3x at 4);
///
///   - drift economics: one injected drift event per fleet must cost
///     exactly one re-profiling sweep fleet-wide — one replica wins the
///     drift lease and publishes, every peer adopts, nobody redundantly
///     recalibrates.
///
/// --smoke runs the 2-replica fleet only and exits non-zero unless the
/// fleet served every request terminally (unresolved=0), adopted at
/// least one published calibration, and burned zero redundant sweeps.
///
/// Internal: bench_serve_scaleout --replica-worker ID SOCKET STORE_DIR

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "bench/bench_support.h"
#include "net/calibration_plane.h"
#include "net/frontdoor.h"
#include "net/replica.h"
#include "net/wire.h"
#include "serve/service.h"
#include "store/artifact_store.h"

namespace paraprox::bench {
namespace {

constexpr double kToq = 90.0;
constexpr double kScale = 0.1;
constexpr int kRequests = 96;
constexpr int kSmokeRequests = 24;
constexpr double kModelClockHz = 1.62e9;
const std::vector<std::uint64_t> kTrainingSeeds = {101, 202};

/// Every replica registers this same kernel family; the fleet
/// calibration key must also be derived identically in every process.
std::unique_ptr<apps::Application>
fleet_app()
{
    auto apps = make_scaled_apps(kScale, {"Mean Filter"});
    return std::move(apps.front());
}

store::StoreKey
fleet_key(const std::string& kernel, runtime::Metric metric)
{
    store::StoreKey key;
    key.kernel = kernel;
    key.device = device::DeviceModel::gtx560().name;
    key.toq = kToq;
    key.metric = runtime::to_string(metric);
    key.detail = "fleet";
    return key;
}

int
run_replica_worker(const std::string& id, const std::string& socket_path,
                   const std::string& store_dir)
{
    auto store = store::ArtifactStore::configure_global(store_dir);

    serve::ServiceConfig config;
    config.num_workers = 2;
    serve::ApproxService service(config);

    net::PlaneConfig plane_config;
    plane_config.replica_id = id;
    net::CalibrationPlane plane(service, store, plane_config);

    const auto device = device::DeviceModel::gtx560();
    auto app = fleet_app();
    const auto info = app->info();
    service.register_kernel(info.name, app->variants(device), info.metric,
                            kToq, kTrainingSeeds);
    plane.track(info.name, fleet_key(info.name, info.metric));
    plane.start();

    net::ReplicaOptions options;
    options.id = id;
    options.socket_path = socket_path;
    net::ReplicaServer server(service, &plane, options);
    if (!server.start())
        return 1;
    while (!server.shutdown_requested())
        std::this_thread::sleep_for(std::chrono::milliseconds(10));

    server.stop();
    service.stop();
    plane.stop();
    return 0;
}

pid_t
spawn_worker(const std::string& id, const std::string& socket_path,
             const std::string& store_dir)
{
    const pid_t pid = fork();
    if (pid != 0)
        return pid;
    execl("/proc/self/exe", "bench_serve_scaleout", "--replica-worker",
          id.c_str(), socket_path.c_str(), store_dir.c_str(),
          static_cast<char*>(nullptr));
    std::perror("execl");
    _exit(127);
}

bool
wait_for_endpoint(const std::string& socket_path,
                  std::chrono::milliseconds timeout)
{
    const auto give_up = std::chrono::steady_clock::now() + timeout;
    while (std::chrono::steady_clock::now() < give_up) {
        Socket probe = connect_unix(socket_path);
        if (probe.valid())
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return false;
}

std::optional<net::ReplicaStats>
scrape_stats(net::FrontDoor& door, std::size_t index)
{
    const auto reply = door.call(index, net::MsgType::StatsRequest, {});
    if (!reply || reply->type != net::MsgType::StatsReply)
        return std::nullopt;
    return net::ReplicaStats::decode(reply->payload);
}

struct FleetResult {
    int replicas = 0;
    int requests = 0;
    int ok = 0;
    int unresolved = 0;  ///< Routed requests without a terminal reply.
    double modeled_rps = 0.0;
    /// Fleet-wide drift accounting, summed over replicas.
    std::uint64_t recalibrations = 0;
    std::uint64_t adopted = 0;
    std::uint64_t redundant = 0;
    std::uint64_t published = 0;
    std::uint64_t max_served = 0;  ///< Busiest replica's request count.
};

/// Bring up a fleet of @p replicas, push @p requests through a front
/// door, inject one drift event, and account for everything.
std::optional<FleetResult>
run_fleet(int replicas, int requests, const std::string& run_dir,
          double work_cycles)
{
    const std::string fleet_dir =
        run_dir + "/fleet-" + std::to_string(replicas);
    const std::string store_dir = fleet_dir + "/store";
    std::filesystem::create_directories(store_dir);

    std::vector<pid_t> pids;
    std::vector<net::ReplicaEndpoint> endpoints;
    for (int i = 0; i < replicas; ++i) {
        net::ReplicaEndpoint endpoint;
        endpoint.id = "replica-" + std::to_string(i);
        endpoint.socket_path = fleet_dir + "/" + endpoint.id + ".sock";
        pids.push_back(
            spawn_worker(endpoint.id, endpoint.socket_path, store_dir));
        endpoints.push_back(std::move(endpoint));
    }
    for (const auto& endpoint : endpoints) {
        if (!wait_for_endpoint(endpoint.socket_path,
                               std::chrono::seconds(60))) {
            std::fprintf(stderr, "scaleout: %s never came up\n",
                         endpoint.id.c_str());
            return std::nullopt;
        }
    }

    net::FrontDoor door(endpoints);
    if (!door.start())
        return std::nullopt;

    FleetResult result;
    result.replicas = replicas;
    result.requests = requests;

    // Throughput phase.
    const auto app = fleet_app();
    const std::string kernel = app->info().name;
    for (int i = 0; i < requests; ++i) {
        net::SubmitRequest request;
        request.kernel = kernel;
        request.toq = kToq;
        request.input = net::SubmitRequest::seed_input(
            9000 + static_cast<std::uint64_t>(i));
        const net::SubmitReply reply = door.route(std::move(request));
        if (reply.status == net::WireStatus::Ok)
            ++result.ok;
        else if (reply.status != net::WireStatus::DeadlineExceeded &&
                 reply.status != net::WireStatus::Rejected)
            ++result.unresolved;
    }

    // Device-modeled fleet throughput: all requests cost the same
    // modeled work, so completion time is set by the busiest replica.
    std::vector<std::uint64_t> served_before(endpoints.size(), 0);
    for (std::size_t i = 0; i < endpoints.size(); ++i) {
        const auto stats = scrape_stats(door, i);
        if (!stats)
            return std::nullopt;
        result.max_served = std::max(result.max_served, stats->served);
        served_before[i] = stats->served;
    }
    if (result.max_served > 0) {
        const double busiest_seconds =
            static_cast<double>(result.max_served) * work_cycles /
            kModelClockHz;
        result.modeled_rps =
            static_cast<double>(result.ok) / busiest_seconds;
    }

    // Drift phase: announce one drift event to every replica at once and
    // wait until each one resolved it terminally (published, adopted, or
    // redundant).
    net::DriftRequest drift;
    drift.kernel = kernel;
    for (std::size_t i = 0; i < endpoints.size(); ++i)
        door.call(i, net::MsgType::DriftRequest, drift.encode());
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(60);
    while (std::chrono::steady_clock::now() < deadline) {
        std::size_t resolved = 0;
        for (std::size_t i = 0; i < endpoints.size(); ++i) {
            if (const auto stats = scrape_stats(door, i);
                stats && stats->published_calibrations +
                                 stats->adopted_calibrations +
                                 stats->redundant_recalibrations >
                             0)
                ++resolved;
        }
        if (resolved == endpoints.size())
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    for (std::size_t i = 0; i < endpoints.size(); ++i) {
        const auto stats = scrape_stats(door, i);
        if (!stats)
            return std::nullopt;
        result.recalibrations += stats->recalibrations;
        result.adopted += stats->adopted_calibrations;
        result.redundant += stats->redundant_recalibrations;
        result.published += stats->published_calibrations;
    }

    const auto door_stats = door.stats();
    result.unresolved += static_cast<int>(
        static_cast<std::uint64_t>(requests) - door_stats.requests);

    for (std::size_t i = 0; i < endpoints.size(); ++i)
        door.call(i, net::MsgType::ShutdownRequest, {});
    door.stop();
    for (const pid_t pid : pids) {
        int status = 0;
        waitpid(pid, &status, 0);
    }
    return result;
}

int
run(bool smoke)
{
    const std::string run_dir =
        "/tmp/paraprox-scaleout-" + std::to_string(getpid());
    std::filesystem::create_directories(run_dir);

    // Price one request: the exact kernel's modeled cycles, the same
    // for every request in the stream.
    const auto device = device::DeviceModel::gtx560();
    const auto app = fleet_app();
    const double work_cycles =
        app->variants(device)[0].run(101).modeled_cycles;

    const int requests = smoke ? kSmokeRequests : kRequests;
    const std::vector<int> fleets =
        smoke ? std::vector<int>{2} : std::vector<int>{1, 2, 4};

    print_header("Scale-out serving: modeled throughput and drift "
                 "economics (TOQ=90%)");
    print_row({"replicas", "ok", "modeled rps", "speedup", "recals",
               "adopted", "redundant", "unresolved"});

    BenchReport report("serve_scaleout");
    report.config()
        .set("toq", kToq)
        .set("scale", kScale)
        .set("requests_per_fleet", requests)
        .set("work_cycles_per_request", work_cycles)
        .set("model_clock_hz", kModelClockHz)
        .set("smoke", smoke);

    std::vector<FleetResult> results;
    double baseline_rps = 0.0;
    int exit_code = 0;
    for (const int replicas : fleets) {
        const auto result =
            run_fleet(replicas, requests, run_dir, work_cycles);
        if (!result) {
            std::fprintf(stderr, "scaleout: fleet of %d failed\n",
                         replicas);
            exit_code = 1;
            break;
        }
        if (replicas == fleets.front())
            baseline_rps = result->modeled_rps;
        const double speedup = baseline_rps > 0.0
                                   ? result->modeled_rps / baseline_rps
                                   : 0.0;
        print_row({std::to_string(result->replicas),
                   std::to_string(result->ok), fmt(result->modeled_rps, 0),
                   fmt(speedup, 2),
                   std::to_string(result->recalibrations),
                   std::to_string(result->adopted),
                   std::to_string(result->redundant),
                   std::to_string(result->unresolved)});
        report.add_row()
            .set("replicas", result->replicas)
            .set("ok", result->ok)
            .set("modeled_rps", result->modeled_rps)
            .set("speedup_vs_single", speedup)
            .set("recalibrations", result->recalibrations)
            .set("adopted_calibrations", result->adopted)
            .set("redundant_recalibrations", result->redundant)
            .set("unresolved", result->unresolved);
        results.push_back(*result);
    }

    for (const auto& result : results) {
        // One drift event per fleet must cost exactly one sweep.
        if (result.recalibrations != 1 || result.redundant != 0 ||
            result.adopted <
                static_cast<std::uint64_t>(result.replicas) - 1 ||
            result.unresolved != 0) {
            std::printf("scaleout: drift accounting violated for %d "
                        "replicas (recals=%llu adopted=%llu "
                        "redundant=%llu unresolved=%d)\n",
                        result.replicas,
                        static_cast<unsigned long long>(
                            result.recalibrations),
                        static_cast<unsigned long long>(result.adopted),
                        static_cast<unsigned long long>(result.redundant),
                        result.unresolved);
            exit_code = 1;
        }
    }

    if (smoke) {
        const FleetResult& fleet = results.empty() ? FleetResult{}
                                                   : results.front();
        std::printf("scaleout_smoke: replicas=%d ok=%d "
                    "adopted_calibrations=%llu redundant_recalibrations="
                    "%llu unresolved=%d\n",
                    fleet.replicas, fleet.ok,
                    static_cast<unsigned long long>(fleet.adopted),
                    static_cast<unsigned long long>(fleet.redundant),
                    fleet.unresolved);
        if (fleet.adopted < 1 || fleet.redundant != 0 ||
            fleet.unresolved != 0)
            exit_code = 1;
    } else if (results.size() == 3) {
        const double speedup2 =
            results[1].modeled_rps / results[0].modeled_rps;
        const double speedup4 =
            results[2].modeled_rps / results[0].modeled_rps;
        std::printf("\nscaleout_speedup: x2=%.2f x4=%.2f (targets: "
                    ">=1.7, >=3.0)\n",
                    speedup2, speedup4);
        if (speedup2 < 1.7 || speedup4 < 3.0)
            exit_code = 1;
    }

    report.write();
    std::error_code ec;
    std::filesystem::remove_all(run_dir, ec);
    return exit_code;
}

}  // namespace
}  // namespace paraprox::bench

int
main(int argc, char** argv)
{
    if (argc == 5 && std::strcmp(argv[1], "--replica-worker") == 0)
        return paraprox::bench::run_replica_worker(argv[2], argv[3],
                                                   argv[4]);
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::string_view(argv[i]) == "--smoke")
            smoke = true;
    }
    return paraprox::bench::run(smoke);
}
