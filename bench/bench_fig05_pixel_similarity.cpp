/// @file
/// Figure 5: the average percent difference between each pixel and its
/// eight neighbours across ten images — the empirical basis for the
/// stencil/partition approximation (§3.2.1).  The paper finds more than
/// 70% of pixels differ from their neighbours by less than 10%.

#include <benchmark/benchmark.h>

#include <cmath>

#include "apps/common.h"
#include "bench/bench_support.h"
#include "support/stats.h"

namespace paraprox::bench {
namespace {

/// Average percent difference of pixel (x, y) to its 8 neighbours.
double
neighbour_difference(const std::vector<float>& image, int width, int x,
                     int y)
{
    const float center = image[static_cast<std::size_t>(y) * width + x];
    double acc = 0.0;
    for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
            if (dx == 0 && dy == 0)
                continue;
            const float neighbour =
                image[static_cast<std::size_t>(y + dy) * width + (x + dx)];
            const double denom = std::max(1.0f, std::fabs(center));
            acc += std::fabs(center - neighbour) / denom;
        }
    }
    return 100.0 * acc / 8.0;
}

void
run_figure()
{
    constexpr int kWidth = 256;
    constexpr int kHeight = 256;
    constexpr int kImages = 10;

    std::vector<double> diffs;
    for (int img = 0; img < kImages; ++img) {
        auto image = apps::make_correlated_image(kWidth, kHeight,
                                                 1000 + img);
        for (int y = 1; y < kHeight - 1; ++y)
            for (int x = 1; x < kWidth - 1; ++x)
                diffs.push_back(neighbour_difference(image, kWidth, x, y));
    }

    print_header("Figure 5: average percent difference between adjacent "
                 "pixels (10 images)");
    std::printf("Paper: >70%% of pixels are <10%% different from their "
                "neighbours.\n\n");
    print_row({"difference range", "% of pixels"}, 20);
    const double buckets[] = {5, 10, 15, 20, 30, 50, 100};
    double prev_edge = 0.0;
    double prev_frac = 0.0;
    for (double edge : buckets) {
        const double frac = stats::fraction_below(diffs, edge) * 100.0;
        print_row({fmt(prev_edge, 0) + "-" + fmt(edge, 0) + "%",
                   fmt(frac - prev_frac, 1)},
                  20);
        prev_edge = edge;
        prev_frac = frac;
    }
    const double below10 = stats::fraction_below(diffs, 10.0) * 100.0;
    std::printf("\nPixels <10%% different from neighbours: %.1f%% "
                "(paper: >70%%)\n",
                below10);
}

void
BM_NeighbourSimilarity(benchmark::State& state)
{
    auto image = apps::make_correlated_image(256, 256, 42);
    for (auto _ : state) {
        double acc = 0.0;
        for (int y = 1; y < 255; ++y)
            for (int x = 1; x < 255; ++x)
                acc += neighbour_difference(image, 256, x, y);
        benchmark::DoNotOptimize(acc);
    }
}
BENCHMARK(BM_NeighbourSimilarity)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace paraprox::bench

int
main(int argc, char** argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    paraprox::bench::run_figure();
    return 0;
}
