/// @file
/// Figure 17: the impact of lookup-table size on uncoalesced-access
/// serialization and speedup (Bass function, global tables, GPU model).
///
/// Paper finding: as the table grows, a warp's 32 lookups spread over
/// more cache lines, so the fraction of serialized (extra) transactions
/// rises and the speedup falls.

#include <benchmark/benchmark.h>

#include "bench/bench_support.h"

namespace paraprox::bench {
namespace {

using transforms::LookupMode;
using transforms::TableLocation;

void
run_figure()
{
    print_header("Figure 17: serialization overhead vs. table size, Bass "
                 "function (GPU model, global table)");
    print_row({"entries", "serialization %", "speedup"}, 18);

    const auto gpu = device::DeviceModel::gtx560();
    const auto functions = case_study_functions();
    const CaseStudyFunction& bass = functions[3];

    double prev_serialization = -1.0;
    for (int bits = 3; bits <= 15; ++bits) {
        auto result = run_case_study(bass, bits, TableLocation::Global,
                                     LookupMode::Nearest, gpu);
        print_row({std::to_string(1 << bits), fmt(result.serialization, 1),
                   fmt(result.speedup)},
                  18);
        prev_serialization = result.serialization;
    }
    (void)prev_serialization;
    std::printf("\nExpect: serialization %% grows with table size while "
                "speedup falls — the paper's\ninstruction-serialization / "
                "uncoalesced-access effect.\n");
}

}  // namespace
}  // namespace paraprox::bench

int
main(int argc, char** argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    paraprox::bench::run_figure();
    return 0;
}
