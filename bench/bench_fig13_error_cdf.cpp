/// @file
/// Figure 13: the cumulative distribution of per-output-element error at
/// TOQ = 90% for the nine applications the paper plots.  The paper finds
/// that 70-100% of output elements carry less than 10% error.

#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench/bench_support.h"
#include "runtime/quality.h"
#include "support/stats.h"

namespace paraprox::bench {
namespace {

void
run_figure()
{
    print_header("Figure 13: CDF of per-element output error, TOQ=90% "
                 "(GPU model)");
    std::printf("Paper: the majority (70-100%%) of each application's "
                "output elements have <10%% error.\n\n");

    // Named in Fig. 11 order so the row order matches the figure.
    const std::vector<std::string> wanted = {
        "Gamma Correction",
        "HotSpot",
        "Gaussian Filter",
        "Mean Filter",
        "Matrix Multiply",
        "Image Denoising",
        "Naive Bayes",
        "Kernel Density Estimation",
        "Cumulative Frequency Histogram",
    };
    const double edges[] = {0.05, 0.10, 0.20, 0.30, 0.50, 1.00};

    std::vector<std::string> header = {"Application"};
    for (double edge : edges)
        header.push_back("<=" + fmt(edge * 100, 0) + "%");
    print_row(header, 13);

    const auto gpu = device::DeviceModel::gtx560();
    auto apps = make_scaled_apps(0.5, wanted);
    for (const auto& app : apps) {
        const std::string name = app->info().name;
        auto measurement = measure_app(*app, gpu, 90.0, {41});
        auto errors = runtime::element_errors(measurement.exact_output,
                                              measurement.chosen_output);

        std::vector<std::string> row = {name.substr(0, 12)};
        for (double edge : edges) {
            row.push_back(
                fmt(100.0 * stats::fraction_below(errors, edge + 1e-12),
                    1));
        }
        print_row(row, 13);
    }
    std::printf("\n(Each cell: %% of output elements with error at or "
                "below the column bound.)\n");
}

}  // namespace
}  // namespace paraprox::bench

int
main(int argc, char** argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    paraprox::bench::run_figure();
    return 0;
}
