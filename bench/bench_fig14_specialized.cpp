/// @file
/// Figure 14 / §4.4.1: specialized pattern optimizations vs. naively
/// applying the reduction optimization (loop-perforation style) to every
/// benchmark.
///
/// For benchmarks without a reduction pattern, skipping iterations leaves
/// output elements unmodified, so quality collapses and the perforation
/// knob cannot be opened without violating the TOQ.  We model perforation
/// exactly that way: skipping a fraction f of the work leaves f of the
/// outputs at their initial value and saves f of the cycles; the best
/// TOQ-compliant f is chosen (usually none).  Benchmarks that *do* contain
/// reductions use their genuine sampling variants.

#include <benchmark/benchmark.h>

#include "bench/bench_support.h"
#include "runtime/quality.h"
#include "support/stats.h"

namespace paraprox::bench {
namespace {

constexpr double kToq = 90.0;

/// Best perforation speedup whose quality still meets the TOQ.
double
perforation_speedup(const std::vector<float>& exact, runtime::Metric metric)
{
    double best = 1.0;
    for (double fraction : {1.0 / 16, 1.0 / 8, 1.0 / 4, 1.0 / 2}) {
        std::vector<float> perforated = exact;
        const auto stride =
            static_cast<std::size_t>(1.0 / fraction);
        for (std::size_t i = 0; i < perforated.size(); i += stride)
            perforated[i] = 0.0f;  // unmodified (zero-initialized) output
        const double quality =
            runtime::quality_percent(metric, exact, perforated);
        if (quality >= kToq)
            best = std::max(best, 1.0 / (1.0 - fraction));
    }
    return best;
}

void
run_figure()
{
    print_header("Figure 14: reduction-only (perforation) vs. "
                 "pattern-based optimization, GPU model, TOQ=90%");
    std::printf("Paper: perforation alone averages ~1.25x because "
                "non-reduction patterns lose quality\nimmediately; "
                "pattern-matched optimizations average 2.3x.\n\n");
    print_row({"Application", "reduction-only", "pattern-based"}, 24);

    const auto gpu = device::DeviceModel::gtx560();
    auto apps = make_scaled_apps(0.5);
    std::vector<double> naive, specialized;
    for (const auto& app : apps) {
        auto measurement = measure_app(*app, gpu, kToq, {71});

        const bool has_reduction =
            app->info().patterns.find("Reduction") != std::string::npos;
        double reduction_only;
        if (has_reduction) {
            // The genuine sampling variant IS the reduction optimization.
            reduction_only = 1.0;
            for (const auto& profile : measurement.profiles) {
                if (profile.meets_toq && !profile.trapped &&
                    profile.label.find("reduction") != std::string::npos) {
                    reduction_only =
                        std::max(reduction_only, profile.speedup);
                }
            }
        } else {
            reduction_only = perforation_speedup(
                measurement.exact_output, app->info().metric);
        }

        naive.push_back(reduction_only);
        specialized.push_back(std::max(1.0, measurement.speedup));
        print_row({app->info().name, fmt(reduction_only),
                   fmt(specialized.back())},
                  24);
    }

    std::printf("\nMean: reduction-only %.2fx vs. pattern-based %.2fx "
                "(paper: ~1.25x vs ~2.3x)\n",
                stats::mean(naive), stats::mean(specialized));
}

}  // namespace
}  // namespace paraprox::bench

int
main(int argc, char** argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    paraprox::bench::run_figure();
    return 0;
}
