/// @file
/// Figure 11 + Table 1 + the §4.2 headline result: speedup of all 13
/// applications under the GPU and CPU device models with TOQ = 90%,
/// alongside the paper's reported bars.
///
/// Also registers google-benchmark wall-clock measurements for two
/// representative applications (exact vs. Paraprox-selected variant), so
/// the harness exercises real execution time as well as modeled cycles.

#include <benchmark/benchmark.h>

#include <chrono>

#include "bench/bench_support.h"
#include "support/stats.h"
#include "vm/program_cache.h"

namespace paraprox::bench {
namespace {

constexpr double kToq = 90.0;
constexpr double kScale = 0.5;

/// Paper bars, approximately read off Fig. 11 (GPU, CPU).
struct PaperRow {
    const char* name;
    double gpu;
    double cpu;
};
const PaperRow kPaper[] = {
    {"BlackScholes", 1.6, 2.0},
    {"Quasirandom Generator", 1.5, 2.3},
    {"Gamma Correction", 3.2, 2.2},
    {"BoxMuller", 2.9, 2.2},
    {"HotSpot", 1.9, 1.6},
    {"Convolution Separable", 1.7, 1.6},
    {"Gaussian Filter", 2.2, 1.7},
    {"Mean Filter", 2.3, 1.9},
    {"Matrix Multiply", 2.4, 2.5},
    {"Image Denoising", 2.0, 1.9},
    {"Naive Bayes", 3.7, 1.5},
    {"Kernel Density Estimation", 1.5, 2.6},
    {"Cumulative Frequency Histogram", 2.3, 2.3},
};

void
run_figure()
{
    print_header("Table 1: application characteristics");
    print_row({"Application", "Domain", "Patterns", "Metric"}, 26);
    auto apps = make_scaled_apps(kScale);
    for (const auto& app : apps) {
        const auto info = app->info();
        print_row({info.name, info.domain, info.patterns,
                   runtime::to_string(info.metric)},
                  26);
    }

    print_header(
        "Figure 11: speedup at TOQ=90% (modeled cycles; paper bars beside)");
    print_row({"Application", "GPU", "paperGPU", "CPU", "paperCPU",
               "GPU choice"},
              16);

    const auto gpu = device::DeviceModel::gtx560();
    const auto cpu = device::DeviceModel::core_i7();
    std::vector<double> gpu_speedups, cpu_speedups;
    std::vector<double> gpu_wall, cpu_wall;

    for (std::size_t a = 0; a < apps.size(); ++a) {
        auto on_gpu = measure_app(*apps[a], gpu, kToq, {101, 202});
        auto on_cpu = measure_app(*apps[a], cpu, kToq, {101, 202});
        gpu_speedups.push_back(on_gpu.speedup);
        cpu_speedups.push_back(on_cpu.speedup);
        gpu_wall.push_back(on_gpu.wall_speedup);
        cpu_wall.push_back(on_cpu.wall_speedup);
        print_row({apps[a]->info().name, fmt(on_gpu.speedup),
                   fmt(kPaper[a].gpu), fmt(on_cpu.speedup),
                   fmt(kPaper[a].cpu), on_gpu.chosen},
                  16);
    }

    std::printf("\nHeadline (paper: 2.7x GPU / 2.5x CPU mean at TOQ=90%%)\n");
    std::printf("  modeled-cycle mean speedup: GPU %.2fx, CPU %.2fx\n",
                stats::mean(gpu_speedups), stats::mean(cpu_speedups));
    std::printf("  modeled-cycle geomean:      GPU %.2fx, CPU %.2fx\n",
                stats::geomean(gpu_speedups),
                stats::geomean(cpu_speedups));
    std::printf("  wall-clock mean speedup:    GPU-model %.2fx, "
                "CPU-model %.2fx\n",
                stats::mean(gpu_wall), stats::mean(cpu_wall));
}

/// google-benchmark wall-clock: exact vs. tuner-selected variant.
void
register_wall_benchmarks()
{
    struct Prepared {
        std::vector<runtime::Variant> variants;
        int selected;
    };
    static auto prepare = [](std::unique_ptr<apps::Application> app) {
        app->set_scale(0.25);
        const auto device = device::DeviceModel::gtx560();
        using clock = std::chrono::steady_clock;
        const auto ms = [](clock::time_point a, clock::time_point b) {
            return std::chrono::duration<double, std::milli>(b - a).count();
        };

        // Build the variant list twice: the first construction compiles
        // through the process-wide bytecode cache, the second hits it.
        const auto t0 = clock::now();
        auto variants = app->variants(device);
        const auto t1 = clock::now();
        auto warm = app->variants(device);
        const auto t2 = clock::now();
        std::printf("%s setup: %.1f ms cold, %.1f ms warm "
                    "(bytecode cache)\n",
                    app->info().name.c_str(), ms(t0, t1), ms(t1, t2));

        runtime::Tuner tuner(std::move(warm), app->info().metric, kToq);
        tuner.calibrate({7});
        auto prepared = std::make_shared<Prepared>();
        prepared->variants = std::move(variants);
        prepared->selected = tuner.selected_index();
        return prepared;
    };

    static auto blackscholes = prepare(apps::make_blackscholes());
    static auto matmul = prepare(apps::make_matrix_multiply());
    const auto cache = vm::ProgramCache::global().stats();
    std::printf("program cache: %zu entries, %llu hits, %llu misses\n\n",
                cache.entries, static_cast<unsigned long long>(cache.hits),
                static_cast<unsigned long long>(cache.misses));

    benchmark::RegisterBenchmark("BlackScholes/exact",
                                 [](benchmark::State& state) {
                                     for (auto _ : state)
                                         blackscholes->variants[0].run(9);
                                 });
    benchmark::RegisterBenchmark(
        "BlackScholes/paraprox", [](benchmark::State& state) {
            for (auto _ : state)
                blackscholes->variants[blackscholes->selected].run(9);
        });
    benchmark::RegisterBenchmark("MatrixMultiply/exact",
                                 [](benchmark::State& state) {
                                     for (auto _ : state)
                                         matmul->variants[0].run(9);
                                 });
    benchmark::RegisterBenchmark(
        "MatrixMultiply/paraprox", [](benchmark::State& state) {
            for (auto _ : state)
                matmul->variants[matmul->selected].run(9);
        });
}

}  // namespace
}  // namespace paraprox::bench

int
main(int argc, char** argv)
{
    paraprox::bench::register_wall_benchmarks();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    paraprox::bench::run_figure();
    return 0;
}
