/// @file
/// Iterative stencil-reduce solver: a Jacobi relaxation step chained
/// with a per-row L1 residual reduction, tuned jointly end-to-end.  The
/// driver re-invokes the calibrated chain, carries the relaxed field
/// between iterations through run_config()'s stage outputs, checks the
/// reduced residual for convergence, and audits against the exact chain
/// every few iterations.
///
///   $ ./examples/stencil_reduce_solver

#include <cstdio>
#include <numeric>

#include "apps/common.h"
#include "apps/pipelines.h"
#include "runtime/pipeline.h"
#include "runtime/quality.h"

using namespace paraprox;

namespace {

double
mean_residual(const std::vector<float>& rows, int interior)
{
    const double sum = std::accumulate(rows.begin(), rows.end(), 0.0);
    return sum / (static_cast<double>(rows.size()) * interior);
}

}  // namespace

int
main()
{
    auto built = apps::make_solver_pipeline(/*scale=*/0.5);
    const int w = built.width;
    const int h = built.height;
    const auto state = built.state;
    runtime::PipelineSession session(std::move(built.pipeline));

    // Calibrate on synthetic training fields (state is still empty, so
    // every seed generates a fresh field).
    runtime::Tuner tuner(session.joint_variants(), runtime::Metric::L1Norm,
                         90.0, /*check_interval=*/10);
    tuner.calibrate({1, 2, 3});
    std::printf("solver chain `%s` (%dx%d), selected: %s\n\n",
                session.name().c_str(), w, h, tuner.selected_label().c_str());

    // Iterate from a fixed initial field until the mean per-pixel L1
    // residual of an iteration drops below the tolerance.
    *state = apps::make_correlated_image(w, h, /*seed=*/7);
    const auto& config = session.configs()[tuner.selected_index()];
    const double tolerance = 0.2;
    const int max_iterations = 400;
    int iterations = 0;
    double residual = 0.0;
    while (iterations < max_iterations) {
        std::vector<std::vector<float>> outputs;
        auto run = session.run_config(config.members, /*seed=*/0,
                                      vm::ExecMode::Fast, &outputs);
        ++iterations;
        *state = outputs[0];  // The relaxed field becomes the next input.
        residual = mean_residual(run.output, w - 2);
        if (iterations % 25 == 0 || residual < tolerance)
            std::printf("iteration %3d: mean residual %.4f\n", iterations,
                        residual);
        if (residual < tolerance)
            break;
        // Periodic audit: one exact iteration from the same field, with
        // the approximate residual judged against the exact one.
        if (iterations % 50 == 0) {
            std::vector<std::vector<float>> exact_outputs;
            auto exact =
                session.run_config(session.configs()[0].members, /*seed=*/0,
                                   vm::ExecMode::Fast, &exact_outputs);
            const double quality = runtime::quality_percent(
                runtime::Metric::L1Norm, exact.output, run.output);
            std::printf("  audit: residual quality %.2f%% vs exact step\n",
                        quality);
        }
    }
    std::printf("\nconverged after %d iterations (tolerance %.2f)\n",
                iterations, tolerance);
    return residual < tolerance ? 0 : 1;
}
