/// @file
/// Machine-learning scenario: kernel density estimation approximated by
/// reduction sampling + adjustment (§3.3).  Demonstrates the skipping-rate
/// knob's quality/speed staircase and the safety fallback: an
/// intentionally broken variant traps (out-of-bounds) and the tuner
/// refuses it.
///
///   $ ./examples/ml_kernel_density

#include <cstdio>

#include "apps/app.h"
#include "device/device_model.h"
#include "exec/launch.h"
#include "parser/parser.h"
#include "runtime/tuner.h"
#include "vm/compiler.h"

using namespace paraprox;

int
main()
{
    auto app = apps::make_kernel_density();
    app->set_scale(0.5);
    const auto device = device::DeviceModel::core_i7();

    std::printf("Kernel density estimation on %s (expf dominates on CPUs, "
                "so sampling the\nreduction loop pays off; §4.3).\n\n",
                device.name.c_str());

    auto variants = app->variants(device);

    // Add a deliberately unsafe "variant" to show the §5 safety story:
    // it indexes past the end of its buffer, traps in the VM, and can
    // never be selected.
    {
        auto module = parser::parse_module(R"(
            __kernel void bad(__global float* out) {
                int i = get_global_id(0);
                out[i * 1000 + 7] = 1.0f;
            }
        )");
        auto program = std::make_shared<vm::Program>(
            vm::compile_kernel(module, "bad"));
        variants.push_back(
            {"broken (out-of-bounds)", 9, [program](std::uint64_t) {
                 exec::Buffer out = exec::Buffer::zeros_f32(64);
                 exec::ArgPack args;
                 args.buffer("out", out);
                 auto launch = exec::launch(
                     *program, args, exec::LaunchConfig::linear(64, 64));
                 runtime::VariantRun run;
                 run.trapped = launch.trapped;
                 run.output = out.to_floats();
                 run.modeled_cycles = 1.0;
                 return run;
             }});
    }

    runtime::Tuner tuner(std::move(variants), app->info().metric, 90.0);
    const auto& profiles = tuner.calibrate({5, 6});
    std::printf("%-28s %-10s %-10s %s\n", "variant", "quality%", "speedup",
                "status");
    for (const auto& profile : profiles) {
        std::printf("%-28s %-10.2f %-10.2f %s\n", profile.label.c_str(),
                    profile.quality, profile.speedup,
                    profile.trapped ? "TRAPPED (excluded)"
                    : profile.meets_toq ? "ok"
                                        : "below TOQ");
    }
    std::printf("\nselected: %s\n", tuner.selected_label().c_str());
    return 0;
}
