/// @file
/// Finance scenario: BlackScholes option pricing with approximate
/// memoization, run under BOTH device models — the paper's "write the
/// kernel once, let Paraprox retune per target" story.  The same variant
/// list is profiled on the GPU-like and CPU-like models and the tuner
/// picks different table configurations for each.
///
///   $ ./examples/finance_blackscholes

#include <cstdio>

#include "apps/app.h"
#include "device/device_model.h"
#include "runtime/tuner.h"

using namespace paraprox;

static void
tune_for(apps::Application& app, const device::DeviceModel& device)
{
    std::printf("---- %s ----\n", device.name.c_str());
    runtime::Tuner tuner(app.variants(device), app.info().metric, 90.0);
    const auto& profiles = tuner.calibrate({11, 22, 33});
    for (const auto& profile : profiles) {
        std::printf("  %-38s quality %6.2f%%  speedup %5.2fx%s\n",
                    profile.label.c_str(), profile.quality,
                    profile.speedup, profile.meets_toq ? "" : "  (below TOQ)");
    }
    std::printf("  => %s\n\n", tuner.selected_label().c_str());
}

int
main()
{
    auto app = apps::make_blackscholes();
    app->set_scale(0.5);

    std::printf("BlackScholes: one ParaCL kernel, tuned per device at "
                "TOQ=90%%.\n");
    std::printf("R and V are constant during profiling, so bit tuning "
                "assigns them zero address bits\n(the paper's Fig. 3/4 "
                "observation); S, X, T share the table's address bits.\n\n");

    tune_for(*app, device::DeviceModel::gtx560());
    tune_for(*app, device::DeviceModel::core_i7());
    return 0;
}
