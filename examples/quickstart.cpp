/// @file
/// Quickstart: the whole Paraprox flow on a user-written kernel — parse
/// ParaCL, hand the kernel to a KernelSession (pattern detection, variant
/// generation, bytecode compilation and table binding in one object),
/// describe the launch once, and let the TOQ-driven tuner pick the
/// fastest variant that meets quality.
///
///   $ ./examples/quickstart

#include <cstdio>

#include "exec/launch.h"
#include "parser/parser.h"
#include "runtime/session.h"
#include "support/rng.h"
#include "vm/program_cache.h"

using namespace paraprox;

// A data-parallel kernel written once in ParaCL, Paraprox's OpenCL-C
// dialect.  `sigmoid_blend` is pure and compute-heavy: a Map pattern.
static const char* kSource = R"(
float sigmoid_blend(float x, float sharpness) {
    float s = 1.0f / (1.0f + expf(-(sharpness * x)));
    return s * sqrtf(1.0f + x * x) + logf(1.0f + expf(x));
}

__kernel void activate(__global float* in, float sharpness,
                       __global float* out) {
    int i = get_global_id(0);
    out[i] = sigmoid_blend(in[i], sharpness);
}
)";

int
main()
{
    const int n = 1 << 16;

    // 1. Parse, then let one KernelSession run the compile flow: pattern
    //    detection, the table-size search against TOQ = 90%, variant
    //    generation, and bytecode for every member through the
    //    process-wide program cache.
    auto module = parser::parse_module(kSource);

    core::CompileOptions options;
    options.toq = 90.0;
    options.device = device::DeviceModel::gtx560();
    // Representative inputs: x spans the data range, sharpness is the
    // constant the application will pass at runtime.
    options.training = [](const std::string&)
        -> std::optional<std::vector<std::vector<float>>> {
        Rng rng(2026);
        std::vector<std::vector<float>> samples(256);
        for (auto& sample : samples)
            sample = {rng.uniform(-4.0f, 4.0f), 2.0f};
        return samples;
    };

    runtime::KernelSession session(module, "activate", options);

    for (auto kind : session.result().detection.kinds())
        std::printf("pattern: %s\n", analysis::to_string(kind).c_str());
    for (const auto& note : session.result().notes)
        std::printf("note: %s\n", note.c_str());
    std::printf("members ready: %zu (exact + %zu approximate)\n\n",
                session.members().size(), session.members().size() - 1);

    // 2. Describe the launch once; the session auto-binds each member's
    //    lookup tables on top of these application arguments.
    core::LaunchPlan plan;
    plan.config = exec::LaunchConfig::linear(n, 64);
    plan.output_buffer = "out";
    plan.bind_inputs =
        [n](std::uint64_t seed, exec::ArgPack& args,
            std::vector<std::unique_ptr<exec::Buffer>>& storage) {
            Rng rng(seed);
            storage.push_back(
                std::make_unique<exec::Buffer>(exec::Buffer::from_floats(
                    rng.uniform_vector(n, -4.0f, 4.0f))));
            args.buffer("in", *storage.back());
            storage.push_back(std::make_unique<exec::Buffer>(
                exec::Buffer::zeros_f32(n)));
            args.buffer("out", *storage.back());
            args.scalar("sharpness", 2.0f);
        };

    // 3. Calibrate: the variant x seed sweep runs on the thread pool;
    //    deterministic modeled cycles decide the selection.
    auto tuner = session.tuner(plan, runtime::Metric::MeanRelativeError);
    for (const auto& profile : tuner.calibrate({1, 2, 3})) {
        std::printf("%-40s %5.2fx at %6.2f%% quality%s\n",
                    profile.label.c_str(), profile.speedup,
                    profile.quality,
                    profile.meets_toq ? "" : "  (rejected)");
    }
    std::printf("\nselected: %s\n", tuner.selected_label().c_str());

    // 4. Steady state: invoke runs the selection, auditing quality every
    //    check_interval invocations and backing off on TOQ violations.
    for (std::uint64_t seed = 100; seed < 110; ++seed)
        tuner.invoke(seed);
    std::printf("invocations: %llu, quality checks: %llu, backoffs: %llu\n",
                static_cast<unsigned long long>(tuner.stats().invocations),
                static_cast<unsigned long long>(
                    tuner.stats().quality_checks),
                static_cast<unsigned long long>(tuner.stats().backoffs));

    // 5. A second session over the same module compiles nothing: every
    //    program is already in the bytecode cache.
    const auto before = vm::ProgramCache::global().stats();
    runtime::KernelSession again(module, "activate", options);
    const auto after = vm::ProgramCache::global().stats();
    std::printf("\nsecond session: %llu cache hits, %llu new compiles\n",
                static_cast<unsigned long long>(after.hits - before.hits),
                static_cast<unsigned long long>(after.misses -
                                                before.misses));
    return 0;
}
