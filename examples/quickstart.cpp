/// @file
/// Quickstart: the whole Paraprox flow on a user-written kernel in ~100
/// lines — parse ParaCL, detect a pattern, generate an approximate
/// variant, run both, and compare speed and quality.
///
///   $ ./examples/quickstart

#include <cstdio>

#include "analysis/patterns.h"
#include "device/memory_model.h"
#include "exec/launch.h"
#include "memo/table.h"
#include "parser/parser.h"
#include "runtime/quality.h"
#include "support/rng.h"
#include "transforms/memoize.h"
#include "vm/compiler.h"

using namespace paraprox;

// A data-parallel kernel written once in ParaCL, Paraprox's OpenCL-C
// dialect.  `sigmoid_blend` is pure and compute-heavy: a Map pattern.
static const char* kSource = R"(
float sigmoid_blend(float x, float sharpness) {
    float s = 1.0f / (1.0f + expf(-(sharpness * x)));
    return s * sqrtf(1.0f + x * x) + logf(1.0f + expf(x));
}

__kernel void activate(__global float* in, float sharpness,
                       __global float* out) {
    int i = get_global_id(0);
    out[i] = sigmoid_blend(in[i], sharpness);
}
)";

int
main()
{
    const int n = 1 << 16;

    // 1. Parse and detect patterns (the paper's Fig. 10 front half).
    auto module = parser::parse_module(kSource);
    const auto device = device::DeviceModel::gtx560();
    auto patterns = analysis::detect_patterns(module, device);
    for (const auto& kernel : patterns) {
        std::printf("kernel `%s`:\n", kernel.kernel.c_str());
        for (auto kind : kernel.kinds())
            std::printf("  pattern: %s\n",
                        analysis::to_string(kind).c_str());
        for (const auto& candidate : kernel.memo_candidates) {
            std::printf("  memoizable call `%s` (est. %.0f cycles, %s)\n",
                        candidate.callee.c_str(), candidate.cycles_needed,
                        candidate.profitable ? "profitable"
                                             : "not profitable");
        }
    }

    // 2. Build the lookup table: profile input ranges on training data,
    //    bit-tune, and search for the smallest table meeting TOQ = 90%.
    Rng rng(2026);
    std::vector<std::vector<float>> training(256);
    for (auto& sample : training)
        sample = {rng.uniform(-4.0f, 4.0f), 2.0f};  // sharpness constant
    memo::ScalarEvaluator evaluator(module, "sigmoid_blend");
    auto search = memo::find_table_for_toq(evaluator, training, 90.0);
    std::printf("\ntable search: %zu entries, tuned quality %.2f%%\n",
                search.table.values.size(), search.table.tuned_quality);

    // 3. Generate the approximate kernel (quantize -> concat -> lookup).
    auto memoized = transforms::memoize_kernel(
        module, "activate", "sigmoid_blend", search.table,
        transforms::TableLocation::Global, transforms::LookupMode::Nearest);

    // 4. Run exact and approximate under the GPU cost model.
    auto exact_prog = vm::compile_kernel(module, "activate");
    auto approx_prog = vm::compile_kernel(memoized.module,
                                          memoized.kernel_name);

    exec::Buffer in =
        exec::Buffer::from_floats(rng.uniform_vector(n, -4.0f, 4.0f));
    exec::Buffer exact_out = exec::Buffer::zeros_f32(n);
    exec::Buffer approx_out = exec::Buffer::zeros_f32(n);
    exec::Buffer table = exec::Buffer::from_floats(memoized.table.values);
    const auto config = exec::LaunchConfig::linear(n, 64);

    exec::ArgPack exact_args;
    exact_args.buffer("in", in).buffer("out", exact_out)
        .scalar("sharpness", 2.0f);
    auto exact = device::run_modeled(exact_prog, exact_args, config,
                                     device);

    exec::ArgPack approx_args;
    approx_args.buffer("in", in).buffer("out", approx_out)
        .scalar("sharpness", 2.0f);
    approx_args.buffer(memoized.table_buffer_param, table);
    auto approx = device::run_modeled(approx_prog, approx_args, config,
                                      device);

    // 5. Compare.
    const double quality = runtime::quality_percent(
        runtime::Metric::MeanRelativeError, exact_out.to_floats(),
        approx_out.to_floats());
    std::printf("\nexact:  %.0f modeled cycles (%.3f ms wall)\n",
                exact.cycles, exact.launch.wall_seconds * 1e3);
    std::printf("approx: %.0f modeled cycles (%.3f ms wall)\n",
                approx.cycles, approx.launch.wall_seconds * 1e3);
    std::printf("speedup %.2fx at %.2f%% output quality\n",
                exact.cycles / approx.cycles, quality);
    std::printf("(wall times include cost-model instrumentation; modeled "
                "cycles are the headline metric)\n");
    return 0;
}
