/// @file
/// The complete adoption path on a user kernel, in four calls:
///
///     parse_module -> core::compile_kernel -> core::make_variants
///                  -> runtime::Tuner
///
/// Paraprox detects the patterns, generates every applicable approximate
/// kernel, and the tuner picks the fastest one meeting the TOQ — no
/// hand-written approximation anywhere.
///
///   $ ./examples/custom_kernel_tuning

#include <cstdio>

#include "core/variants.h"
#include "parser/parser.h"
#include "runtime/tuner.h"
#include "support/rng.h"

using namespace paraprox;

static const char* kSource = R"(
// Softmax-style attention score: a pure, transcendental-heavy map.
float attention(float q, float k) {
    float logit = q * k * 0.125f;
    return expf(logit) / (1.0f + expf(logit));
}

__kernel void score(__global float* queries, __global float* keys,
                    __global float* out) {
    int i = get_global_id(0);
    out[i] = attention(queries[i], keys[i]);
}
)";

int
main()
{
    constexpr int kN = 1 << 15;
    auto module = parser::parse_module(kSource);

    // 1. Compile: detect patterns, run table search + bit tuning, emit
    //    every applicable approximate kernel.
    core::CompileOptions options;
    options.toq = 90.0;
    options.device = device::DeviceModel::gtx560();
    options.training = core::uniform_training(-4.0f, 4.0f);
    auto compiled = core::compile_kernel(module, "score", options);

    std::printf("compiler notes:\n");
    for (const auto& note : compiled.notes)
        std::printf("  %s\n", note.c_str());

    // 2. Describe how the kernel launches (inputs, geometry, output).
    core::LaunchPlan plan;
    plan.config = exec::LaunchConfig::linear(kN, 64);
    plan.output_buffer = "out";
    plan.bind_inputs = [](std::uint64_t seed, exec::ArgPack& args,
                          std::vector<std::unique_ptr<exec::Buffer>>&
                              storage) {
        Rng rng(seed);
        storage.push_back(std::make_unique<exec::Buffer>(
            exec::Buffer::from_floats(
                rng.uniform_vector(kN, -4.0f, 4.0f))));
        args.buffer("queries", *storage.back());
        storage.push_back(std::make_unique<exec::Buffer>(
            exec::Buffer::from_floats(
                rng.uniform_vector(kN, -4.0f, 4.0f))));
        args.buffer("keys", *storage.back());
        storage.push_back(std::make_unique<exec::Buffer>(
            exec::Buffer::zeros_f32(kN)));
        args.buffer("out", *storage.back());
    };

    // 3. Variants + tuner.
    auto variants = core::make_variants(module, "score",
                                        compiled.generated, plan,
                                        options.device);
    runtime::Tuner tuner(std::move(variants),
                         runtime::Metric::MeanRelativeError, options.toq);
    const auto& profiles = tuner.calibrate({1, 2});

    std::printf("\n%-42s %-10s %-9s %s\n", "variant", "quality%",
                "speedup", "TOQ");
    for (const auto& profile : profiles) {
        std::printf("%-42s %-10.2f %-9.2f %s\n", profile.label.c_str(),
                    profile.quality, profile.speedup,
                    profile.meets_toq ? "yes" : "no");
    }
    std::printf("\nselected: %s\n", tuner.selected_label().c_str());

    // 4. Steady state.
    for (int i = 0; i < 20; ++i)
        tuner.invoke(100 + i);
    std::printf("after 20 invocations (%llu audits, %llu violations): "
                "still %s\n",
                static_cast<unsigned long long>(
                    tuner.stats().quality_checks),
                static_cast<unsigned long long>(tuner.stats().violations),
                tuner.selected_label().c_str());
    return 0;
}
