/// @file
/// Image-processing scenario: a Gaussian-blur stage tuned by the TOQ
/// runtime.  Shows the stencil schemes (center/row/column, Fig. 6), the
/// reaching-distance knob, and the tuner picking the fastest variant that
/// holds 90% quality — then continuing to audit quality in steady state.
///
///   $ ./examples/image_pipeline

#include <cstdio>

#include "apps/app.h"
#include "device/device_model.h"
#include "runtime/tuner.h"

using namespace paraprox;

int
main()
{
    auto app = apps::make_gaussian_filter();
    app->set_scale(0.5);

    const auto device = device::DeviceModel::gtx560();
    std::printf("Tuning `%s` for %s at TOQ=90%%...\n\n",
                app->info().name.c_str(), device.name.c_str());

    runtime::Tuner tuner(app->variants(device), app->info().metric, 90.0,
                         /*check_interval=*/10);
    const auto& profiles = tuner.calibrate({1, 2, 3});

    std::printf("%-28s %-10s %-10s %s\n", "variant", "quality%", "speedup",
                "meets TOQ");
    for (const auto& profile : profiles) {
        std::printf("%-28s %-10.2f %-10.2f %s\n", profile.label.c_str(),
                    profile.quality, profile.speedup,
                    profile.meets_toq ? "yes" : "no");
    }
    std::printf("\nselected: %s\n", tuner.selected_label().c_str());

    // Steady state: process a stream of frames; every 10th frame is
    // audited against the exact kernel (SAGE-style periodic checks).
    for (std::uint64_t frame = 0; frame < 40; ++frame)
        tuner.invoke(1000 + frame);
    const auto& stats = tuner.stats();
    std::printf("\nprocessed %llu frames: %llu quality checks, "
                "%llu violations, %llu backoffs\n",
                static_cast<unsigned long long>(stats.invocations),
                static_cast<unsigned long long>(stats.quality_checks),
                static_cast<unsigned long long>(stats.violations),
                static_cast<unsigned long long>(stats.backoffs));
    std::printf("still running: %s\n", tuner.selected_label().c_str());
    return 0;
}
