/// @file
/// Image-processing pipeline: gaussian blur -> sobel -> threshold tuned
/// *jointly* against an end-to-end TOQ on the final edge map.  Shows the
/// joint search (per-stage cost probes, dominated-combination pruning,
/// predicted-speed cap), the calibrated mixed aggressive/exact
/// selection, and steady-state serving with periodic audits.
///
///   $ ./examples/image_pipeline

#include <cstdio>

#include "apps/pipelines.h"
#include "runtime/pipeline.h"

using namespace paraprox;

int
main()
{
    apps::ImagePipelineOptions options;
    options.scale = 0.5;
    auto built = apps::make_image_pipeline(options);
    runtime::PipelineSession session(std::move(built.pipeline));

    std::printf("Pipeline `%s` (%dx%d):", session.name().c_str(),
                built.width, built.height);
    for (std::size_t s = 0; s < session.num_stages(); ++s) {
        std::printf(" %s[%zu variants]",
                    session.pipeline().stages[s].name.c_str(),
                    session.stage_session(s).members().size());
    }
    std::printf("\n\n");

    runtime::Tuner tuner(session.joint_variants(), runtime::Metric::L1Norm,
                         90.0, /*check_interval=*/10);
    const auto& info = session.search_info();
    std::printf("joint search: %zu combinations -> %zu dominated, "
                "%zu capped, %zu measured (%zu stage probes)\n\n",
                info.total_combinations, info.dominated, info.capped,
                info.kept, info.probe_runs);

    const auto& profiles = tuner.calibrate({1, 2, 3});
    std::printf("%-52s %-10s %-10s %s\n", "joint config", "quality%",
                "speedup", "meets TOQ");
    for (const auto& profile : profiles) {
        std::printf("%-52s %-10.2f %-10.2f %s\n", profile.label.c_str(),
                    profile.quality, profile.speedup,
                    profile.meets_toq ? "yes" : "no");
    }
    std::printf("\nselected: %s\n", tuner.selected_label().c_str());

    // Steady state: a stream of frames through the whole chain; every
    // 10th frame audits end-to-end quality against the all-exact chain.
    for (std::uint64_t frame = 0; frame < 40; ++frame)
        tuner.invoke(1000 + frame);
    const auto& stats = tuner.stats();
    std::printf("\nprocessed %llu frames: %llu quality checks, "
                "%llu violations, %llu backoffs\n",
                static_cast<unsigned long long>(stats.invocations),
                static_cast<unsigned long long>(stats.quality_checks),
                static_cast<unsigned long long>(stats.violations),
                static_cast<unsigned long long>(stats.backoffs));
    std::printf("still running: %s\n", tuner.selected_label().c_str());
    return 0;
}
