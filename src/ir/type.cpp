#include "ir/type.h"

namespace paraprox::ir {

std::string
to_string(Scalar scalar)
{
    switch (scalar) {
      case Scalar::Void: return "void";
      case Scalar::Bool: return "bool";
      case Scalar::I32: return "int";
      case Scalar::F32: return "float";
    }
    return "<bad-scalar>";
}

std::string
to_string(AddrSpace space)
{
    switch (space) {
      case AddrSpace::Private: return "__private";
      case AddrSpace::Global: return "__global";
      case AddrSpace::Shared: return "__shared";
      case AddrSpace::Constant: return "__constant";
    }
    return "<bad-space>";
}

std::string
Type::to_string() const
{
    if (!is_pointer)
        return ir::to_string(scalar);
    return ir::to_string(space) + " " + ir::to_string(scalar) + "*";
}

}  // namespace paraprox::ir
