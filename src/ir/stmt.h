/// @file
/// Statement nodes of the ParaCL IR.
///
/// Statements are structured (no goto, no unstructured break): loops carry
/// explicit init/cond/step slots, which is what makes the paper's reduction
/// detection ("multiply the loop step by N") a local rewrite.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ir/expr.h"

namespace paraprox::ir {

class Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

/// Statement node kinds.
enum class StmtKind {
    Block,
    Decl,
    Assign,
    Store,
    If,
    For,
    Return,
    ExprStmt,
    Barrier,
};

/// Base class of all statement nodes.
class Stmt {
  public:
    virtual ~Stmt() = default;
    StmtKind kind() const { return kind_; }

    /// Deep copy.
    virtual StmtPtr clone() const = 0;

  protected:
    explicit Stmt(StmtKind kind) : kind_(kind) {}

  private:
    StmtKind kind_;
};

/// Braced statement sequence.
class Block : public Stmt {
  public:
    Block() : Stmt(StmtKind::Block) {}
    explicit Block(std::vector<StmtPtr> stmts)
        : Stmt(StmtKind::Block), stmts(std::move(stmts)) {}

    StmtPtr
    clone() const override
    {
        auto copy = std::make_unique<Block>();
        copy->stmts.reserve(stmts.size());
        for (const auto& stmt : stmts)
            copy->stmts.push_back(stmt->clone());
        return copy;
    }

    std::vector<StmtPtr> stmts;
};

using BlockPtr = std::unique_ptr<Block>;

/// Local variable declaration with mandatory initializer.
class Decl : public Stmt {
  public:
    Decl(std::string name, Type type, ExprPtr init)
        : Stmt(StmtKind::Decl), name(std::move(name)), type(type),
          init(std::move(init)) {}

    StmtPtr
    clone() const override
    {
        return std::make_unique<Decl>(name, type,
                                      init ? init->clone() : nullptr);
    }

    std::string name;
    Type type;
    ExprPtr init;  ///< May be null (default-initialized to zero).
};

/// Scalar variable assignment: name = value.
class Assign : public Stmt {
  public:
    Assign(std::string name, ExprPtr value)
        : Stmt(StmtKind::Assign), name(std::move(name)),
          value(std::move(value)) {}

    StmtPtr
    clone() const override
    {
        return std::make_unique<Assign>(name, value->clone());
    }

    std::string name;
    ExprPtr value;
};

/// Array element store: array[index] = value.
class Store : public Stmt {
  public:
    Store(std::string array, Type array_type, ExprPtr index, ExprPtr value)
        : Stmt(StmtKind::Store), array(std::move(array)),
          array_type(array_type), index(std::move(index)),
          value(std::move(value)) {}

    StmtPtr
    clone() const override
    {
        return std::make_unique<Store>(array, array_type, index->clone(),
                                       value->clone());
    }

    std::string array;
    Type array_type;
    ExprPtr index;
    ExprPtr value;
};

/// Two-armed conditional; else_body may be empty.
class If : public Stmt {
  public:
    If(ExprPtr cond, BlockPtr then_body, BlockPtr else_body)
        : Stmt(StmtKind::If), cond(std::move(cond)),
          then_body(std::move(then_body)), else_body(std::move(else_body)) {}

    StmtPtr
    clone() const override
    {
        auto then_copy = BlockPtr(static_cast<Block*>(
            then_body->clone().release()));
        BlockPtr else_copy;
        if (else_body) {
            else_copy = BlockPtr(static_cast<Block*>(
                else_body->clone().release()));
        }
        return std::make_unique<If>(cond->clone(), std::move(then_copy),
                                    std::move(else_copy));
    }

    ExprPtr cond;
    BlockPtr then_body;
    BlockPtr else_body;  ///< May be null.
};

/// Structured counted loop: for (init; cond; step) body.
///
/// @p init is a Decl or Assign; @p step is an Assign.  The reduction
/// transform rewrites @p step to skip iterations (§3.3.3).
class For : public Stmt {
  public:
    For(StmtPtr init, ExprPtr cond, StmtPtr step, BlockPtr body)
        : Stmt(StmtKind::For), init(std::move(init)), cond(std::move(cond)),
          step(std::move(step)), body(std::move(body)) {}

    StmtPtr
    clone() const override
    {
        auto body_copy = BlockPtr(static_cast<Block*>(
            body->clone().release()));
        return std::make_unique<For>(init ? init->clone() : nullptr,
                                     cond->clone(),
                                     step ? step->clone() : nullptr,
                                     std::move(body_copy));
    }

    StmtPtr init;  ///< Decl or Assign; may be null.
    ExprPtr cond;
    StmtPtr step;  ///< Assign; may be null.
    BlockPtr body;
};

/// Function return; value is null for void functions.
class Return : public Stmt {
  public:
    explicit Return(ExprPtr value)
        : Stmt(StmtKind::Return), value(std::move(value)) {}

    StmtPtr
    clone() const override
    {
        return std::make_unique<Return>(value ? value->clone() : nullptr);
    }

    ExprPtr value;  ///< May be null.
};

/// Expression evaluated for its side effects (atomics, void calls).
class ExprStmt : public Stmt {
  public:
    explicit ExprStmt(ExprPtr expr)
        : Stmt(StmtKind::ExprStmt), expr(std::move(expr)) {}

    StmtPtr
    clone() const override
    {
        return std::make_unique<ExprStmt>(expr->clone());
    }

    ExprPtr expr;
};

/// Work-group barrier.
class BarrierStmt : public Stmt {
  public:
    BarrierStmt() : Stmt(StmtKind::Barrier) {}
    StmtPtr clone() const override { return std::make_unique<BarrierStmt>(); }
};

/// Downcast helper mirroring expr_as.
template <typename NodeT>
const NodeT*
stmt_as(const Stmt& stmt)
{
    return dynamic_cast<const NodeT*>(&stmt);
}

template <typename NodeT>
NodeT*
stmt_as(Stmt& stmt)
{
    return dynamic_cast<NodeT*>(&stmt);
}

}  // namespace paraprox::ir
