/// @file
/// Expression nodes of the ParaCL IR.
///
/// The IR is a typed abstract syntax tree: Paraprox's pattern detectors walk
/// it (like the paper's Clang AST visitor) and its transforms clone and
/// rewrite it before bytecode compilation.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ir/builtins.h"
#include "ir/type.h"

namespace paraprox::ir {

class Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// Expression node kinds.
enum class ExprKind {
    IntLit,
    FloatLit,
    BoolLit,
    VarRef,
    Unary,
    Binary,
    Call,
    Load,
    Cast,
    Select,
};

/// Unary operators.
enum class UnaryOp {
    Neg,  ///< Arithmetic negation.
    Not,  ///< Logical not.
};

/// Binary operators.
enum class BinaryOp {
    Add, Sub, Mul, Div, Mod,
    Lt, Le, Gt, Ge, Eq, Ne,
    LogicalAnd, LogicalOr,
    BitAnd, BitOr, BitXor, Shl, Shr,
};

/// True for comparison operators (result type Bool).
bool is_comparison(BinaryOp op);

/// ParaCL spelling of an operator, e.g. "<<".
std::string to_string(BinaryOp op);
std::string to_string(UnaryOp op);

/// Base class of all expression nodes.
class Expr {
  public:
    virtual ~Expr() = default;

    ExprKind kind() const { return kind_; }
    const Type& type() const { return type_; }
    void set_type(const Type& type) { type_ = type; }

    /// Deep copy.
    virtual ExprPtr clone() const = 0;

  protected:
    Expr(ExprKind kind, Type type) : kind_(kind), type_(type) {}

  private:
    ExprKind kind_;
    Type type_;
};

/// 32-bit integer literal.
class IntLit : public Expr {
  public:
    explicit IntLit(int value) : Expr(ExprKind::IntLit, Type::i32()),
                                 value(value) {}
    ExprPtr clone() const override { return std::make_unique<IntLit>(value); }

    int value;
};

/// 32-bit float literal.
class FloatLit : public Expr {
  public:
    explicit FloatLit(float value) : Expr(ExprKind::FloatLit, Type::f32()),
                                     value(value) {}
    ExprPtr
    clone() const override
    {
        return std::make_unique<FloatLit>(value);
    }

    float value;
};

/// Boolean literal.
class BoolLit : public Expr {
  public:
    explicit BoolLit(bool value) : Expr(ExprKind::BoolLit, Type::boolean()),
                                   value(value) {}
    ExprPtr
    clone() const override
    {
        return std::make_unique<BoolLit>(value);
    }

    bool value;
};

/// Reference to a named variable or parameter.
class VarRef : public Expr {
  public:
    VarRef(std::string name, Type type)
        : Expr(ExprKind::VarRef, type), name(std::move(name)) {}
    ExprPtr
    clone() const override
    {
        return std::make_unique<VarRef>(name, type());
    }

    std::string name;
};

/// Unary operation.
class Unary : public Expr {
  public:
    Unary(UnaryOp op, ExprPtr operand, Type type)
        : Expr(ExprKind::Unary, type), op(op), operand(std::move(operand)) {}
    ExprPtr
    clone() const override
    {
        return std::make_unique<Unary>(op, operand->clone(), type());
    }

    UnaryOp op;
    ExprPtr operand;
};

/// Binary operation.
class Binary : public Expr {
  public:
    Binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs, Type type)
        : Expr(ExprKind::Binary, type), op(op), lhs(std::move(lhs)),
          rhs(std::move(rhs)) {}
    ExprPtr
    clone() const override
    {
        return std::make_unique<Binary>(op, lhs->clone(), rhs->clone(),
                                        type());
    }

    BinaryOp op;
    ExprPtr lhs;
    ExprPtr rhs;
};

/// Call to a builtin or a user function.
class Call : public Expr {
  public:
    Call(std::string callee, Builtin builtin, std::vector<ExprPtr> args,
         Type type)
        : Expr(ExprKind::Call, type), callee(std::move(callee)),
          builtin(builtin), args(std::move(args)) {}

    ExprPtr
    clone() const override
    {
        std::vector<ExprPtr> cloned;
        cloned.reserve(args.size());
        for (const auto& arg : args)
            cloned.push_back(arg->clone());
        return std::make_unique<Call>(callee, builtin, std::move(cloned),
                                      type());
    }

    std::string callee;       ///< Name as written; set for user functions.
    Builtin builtin;          ///< Builtin::None for user functions.
    std::vector<ExprPtr> args;
};

/// Array element load: base[index], where base is a pointer-typed variable.
class Load : public Expr {
  public:
    Load(std::string array, Type array_type, ExprPtr index)
        : Expr(ExprKind::Load, array_type.pointee()),
          array(std::move(array)), array_type(array_type),
          index(std::move(index)) {}
    ExprPtr
    clone() const override
    {
        return std::make_unique<Load>(array, array_type, index->clone());
    }

    std::string array;
    Type array_type;
    ExprPtr index;
};

/// Scalar conversion, e.g. (float)i.
class Cast : public Expr {
  public:
    Cast(Type to, ExprPtr operand)
        : Expr(ExprKind::Cast, to), operand(std::move(operand)) {}
    ExprPtr
    clone() const override
    {
        return std::make_unique<Cast>(type(), operand->clone());
    }

    ExprPtr operand;
};

/// Ternary select: cond ? if_true : if_false.
class Select : public Expr {
  public:
    Select(ExprPtr cond, ExprPtr if_true, ExprPtr if_false, Type type)
        : Expr(ExprKind::Select, type), cond(std::move(cond)),
          if_true(std::move(if_true)), if_false(std::move(if_false)) {}
    ExprPtr
    clone() const override
    {
        return std::make_unique<Select>(cond->clone(), if_true->clone(),
                                        if_false->clone(), type());
    }

    ExprPtr cond;
    ExprPtr if_true;
    ExprPtr if_false;
};

/// Compile-time integer value of an expression, if it is a literal,
/// possibly wrapped in unary negation or int-to-int casts (e.g. `-1`
/// parses as Neg(IntLit 1)).  Returns false when not constant.
bool const_int_value(const Expr& expr, int& value);

/// Downcast helper: expr_as<Binary>(e) returns nullptr when kinds mismatch.
template <typename NodeT>
const NodeT*
expr_as(const Expr& expr)
{
    return dynamic_cast<const NodeT*>(&expr);
}

template <typename NodeT>
NodeT*
expr_as(Expr& expr)
{
    return dynamic_cast<NodeT*>(&expr);
}

}  // namespace paraprox::ir
