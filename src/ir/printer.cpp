#include "ir/printer.h"

#include <sstream>

#include "support/error.h"

namespace paraprox::ir {

namespace {

/// Operator precedence for minimal-parenthesis printing.  Higher binds
/// tighter.
int
precedence(BinaryOp op)
{
    switch (op) {
      case BinaryOp::Mul:
      case BinaryOp::Div:
      case BinaryOp::Mod:
        return 10;
      case BinaryOp::Add:
      case BinaryOp::Sub:
        return 9;
      case BinaryOp::Shl:
      case BinaryOp::Shr:
        return 8;
      case BinaryOp::Lt:
      case BinaryOp::Le:
      case BinaryOp::Gt:
      case BinaryOp::Ge:
        return 7;
      case BinaryOp::Eq:
      case BinaryOp::Ne:
        return 6;
      case BinaryOp::BitAnd:
        return 5;
      case BinaryOp::BitXor:
        return 4;
      case BinaryOp::BitOr:
        return 3;
      case BinaryOp::LogicalAnd:
        return 2;
      case BinaryOp::LogicalOr:
        return 1;
    }
    return 0;
}

std::string
float_literal(float value)
{
    std::ostringstream os;
    os.precision(9);
    os << value;
    std::string text = os.str();
    // Ensure the token re-lexes as a float, not an int.
    if (text.find('.') == std::string::npos &&
        text.find('e') == std::string::npos &&
        text.find("inf") == std::string::npos &&
        text.find("nan") == std::string::npos) {
        text += ".0";
    }
    text += "f";
    return text;
}

void print_expr(std::ostream& os, const Expr& expr, int parent_prec);

void
print_args(std::ostream& os, const std::vector<ExprPtr>& args)
{
    os << "(";
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (i > 0)
            os << ", ";
        print_expr(os, *args[i], 0);
    }
    os << ")";
}

void
print_expr(std::ostream& os, const Expr& expr, int parent_prec)
{
    switch (expr.kind()) {
      case ExprKind::IntLit:
        os << static_cast<const IntLit&>(expr).value;
        break;
      case ExprKind::FloatLit:
        os << float_literal(static_cast<const FloatLit&>(expr).value);
        break;
      case ExprKind::BoolLit:
        os << (static_cast<const BoolLit&>(expr).value ? "true" : "false");
        break;
      case ExprKind::VarRef:
        os << static_cast<const VarRef&>(expr).name;
        break;
      case ExprKind::Unary: {
        const auto& unary = static_cast<const Unary&>(expr);
        os << to_string(unary.op) << "(";
        print_expr(os, *unary.operand, 0);
        os << ")";
        break;
      }
      case ExprKind::Binary: {
        const auto& binary = static_cast<const Binary&>(expr);
        const int prec = precedence(binary.op);
        const bool parens = prec < parent_prec;
        if (parens)
            os << "(";
        print_expr(os, *binary.lhs, prec);
        os << " " << to_string(binary.op) << " ";
        // Right operand gets prec+1 so non-associative re-parse matches.
        print_expr(os, *binary.rhs, prec + 1);
        if (parens)
            os << ")";
        break;
      }
      case ExprKind::Call: {
        const auto& call = static_cast<const Call&>(expr);
        os << call.callee;
        print_args(os, call.args);
        break;
      }
      case ExprKind::Load: {
        const auto& load = static_cast<const Load&>(expr);
        os << load.array << "[";
        print_expr(os, *load.index, 0);
        os << "]";
        break;
      }
      case ExprKind::Cast: {
        const auto& cast = static_cast<const Cast&>(expr);
        os << "(" << cast.type().to_string() << ")(";
        print_expr(os, *cast.operand, 0);
        os << ")";
        break;
      }
      case ExprKind::Select: {
        const auto& select = static_cast<const Select&>(expr);
        if (parent_prec > 0)
            os << "(";
        print_expr(os, *select.cond, 1);
        os << " ? ";
        print_expr(os, *select.if_true, 1);
        os << " : ";
        print_expr(os, *select.if_false, 0);
        if (parent_prec > 0)
            os << ")";
        break;
      }
    }
}

void
print_indent(std::ostream& os, int indent)
{
    for (int i = 0; i < indent; ++i)
        os << "    ";
}

void print_stmt(std::ostream& os, const Stmt& stmt, int indent);

void
print_block_body(std::ostream& os, const Block& block, int indent)
{
    os << "{\n";
    for (const auto& stmt : block.stmts)
        print_stmt(os, *stmt, indent + 1);
    print_indent(os, indent);
    os << "}";
}

/// Print a Decl or Assign without trailing semicolon/newline (for loop
/// headers).
void
print_inline_stmt(std::ostream& os, const Stmt& stmt)
{
    if (const auto* decl = stmt_as<Decl>(stmt)) {
        os << decl->type.to_string() << " " << decl->name;
        if (decl->init) {
            os << " = ";
            print_expr(os, *decl->init, 0);
        }
    } else if (const auto* assign = stmt_as<Assign>(stmt)) {
        os << assign->name << " = ";
        print_expr(os, *assign->value, 0);
    } else {
        throw InternalError("loop header statement must be Decl or Assign");
    }
}

void
print_stmt(std::ostream& os, const Stmt& stmt, int indent)
{
    print_indent(os, indent);
    switch (stmt.kind()) {
      case StmtKind::Block:
        print_block_body(os, static_cast<const Block&>(stmt), indent);
        os << "\n";
        break;
      case StmtKind::Decl:
      case StmtKind::Assign:
        print_inline_stmt(os, stmt);
        os << ";\n";
        break;
      case StmtKind::Store: {
        const auto& store = static_cast<const Store&>(stmt);
        os << store.array << "[";
        print_expr(os, *store.index, 0);
        os << "] = ";
        print_expr(os, *store.value, 0);
        os << ";\n";
        break;
      }
      case StmtKind::If: {
        const auto& branch = static_cast<const If&>(stmt);
        os << "if (";
        print_expr(os, *branch.cond, 0);
        os << ") ";
        print_block_body(os, *branch.then_body, indent);
        if (branch.else_body) {
            os << " else ";
            print_block_body(os, *branch.else_body, indent);
        }
        os << "\n";
        break;
      }
      case StmtKind::For: {
        const auto& loop = static_cast<const For&>(stmt);
        os << "for (";
        if (loop.init)
            print_inline_stmt(os, *loop.init);
        os << "; ";
        print_expr(os, *loop.cond, 0);
        os << "; ";
        if (loop.step)
            print_inline_stmt(os, *loop.step);
        os << ") ";
        print_block_body(os, *loop.body, indent);
        os << "\n";
        break;
      }
      case StmtKind::Return: {
        const auto& ret = static_cast<const Return&>(stmt);
        os << "return";
        if (ret.value) {
            os << " ";
            print_expr(os, *ret.value, 0);
        }
        os << ";\n";
        break;
      }
      case StmtKind::ExprStmt: {
        const auto& expr_stmt = static_cast<const ExprStmt&>(stmt);
        print_expr(os, *expr_stmt.expr, 0);
        os << ";\n";
        break;
      }
      case StmtKind::Barrier:
        os << "barrier();\n";
        break;
    }
}

}  // namespace

std::string
to_source(const Expr& expr)
{
    std::ostringstream os;
    print_expr(os, expr, 0);
    return os.str();
}

std::string
to_source(const Stmt& stmt, int indent)
{
    std::ostringstream os;
    print_stmt(os, stmt, indent);
    return os.str();
}

std::string
to_source(const Function& function)
{
    std::ostringstream os;
    for (const auto& pragma : function.pragmas)
        os << "#pragma paraprox " << pragma << "\n";
    if (function.is_kernel)
        os << "__kernel ";
    os << function.return_type.to_string() << " " << function.name << "(";
    for (std::size_t i = 0; i < function.params.size(); ++i) {
        if (i > 0)
            os << ", ";
        os << function.params[i].type.to_string() << " "
           << function.params[i].name;
    }
    os << ") ";
    print_block_body(os, *function.body, 0);
    os << "\n";
    return os.str();
}

std::string
to_source(const Module& module)
{
    std::string out;
    for (const auto& function : module.functions()) {
        out += to_source(*function);
        out += "\n";
    }
    return out;
}

std::uint64_t
fingerprint(const Module& module)
{
    const std::string source = to_source(module);
    std::uint64_t hash = 0xcbf29ce484222325ull;
    for (unsigned char c : source) {
        hash ^= c;
        hash *= 0x100000001b3ull;
    }
    return hash;
}

}  // namespace paraprox::ir
