#include "ir/expr.h"

namespace paraprox::ir {

bool
is_comparison(BinaryOp op)
{
    switch (op) {
      case BinaryOp::Lt:
      case BinaryOp::Le:
      case BinaryOp::Gt:
      case BinaryOp::Ge:
      case BinaryOp::Eq:
      case BinaryOp::Ne:
        return true;
      default:
        return false;
    }
}

std::string
to_string(BinaryOp op)
{
    switch (op) {
      case BinaryOp::Add: return "+";
      case BinaryOp::Sub: return "-";
      case BinaryOp::Mul: return "*";
      case BinaryOp::Div: return "/";
      case BinaryOp::Mod: return "%";
      case BinaryOp::Lt: return "<";
      case BinaryOp::Le: return "<=";
      case BinaryOp::Gt: return ">";
      case BinaryOp::Ge: return ">=";
      case BinaryOp::Eq: return "==";
      case BinaryOp::Ne: return "!=";
      case BinaryOp::LogicalAnd: return "&&";
      case BinaryOp::LogicalOr: return "||";
      case BinaryOp::BitAnd: return "&";
      case BinaryOp::BitOr: return "|";
      case BinaryOp::BitXor: return "^";
      case BinaryOp::Shl: return "<<";
      case BinaryOp::Shr: return ">>";
    }
    return "<bad-op>";
}

bool
const_int_value(const Expr& expr, int& value)
{
    switch (expr.kind()) {
      case ExprKind::IntLit:
        value = static_cast<const IntLit&>(expr).value;
        return true;
      case ExprKind::Unary: {
        const auto& unary = static_cast<const Unary&>(expr);
        if (unary.op != UnaryOp::Neg)
            return false;
        if (!const_int_value(*unary.operand, value))
            return false;
        value = -value;
        return true;
      }
      case ExprKind::Cast: {
        const auto& cast = static_cast<const Cast&>(expr);
        if (!cast.type().is_int())
            return false;
        return const_int_value(*cast.operand, value);
      }
      default:
        return false;
    }
}

std::string
to_string(UnaryOp op)
{
    switch (op) {
      case UnaryOp::Neg: return "-";
      case UnaryOp::Not: return "!";
    }
    return "<bad-op>";
}

}  // namespace paraprox::ir
