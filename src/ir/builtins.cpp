#include "ir/builtins.h"

#include <array>

#include "support/error.h"

namespace paraprox::ir {

namespace {

constexpr std::array<BuiltinInfo, 28> kBuiltins = {{
    // builtin, name, arity, result, pure, thread_dep, atomic
    {Builtin::Sqrt, "sqrtf", 1, Scalar::F32, true, false, false},
    {Builtin::Exp, "expf", 1, Scalar::F32, true, false, false},
    {Builtin::Log, "logf", 1, Scalar::F32, true, false, false},
    {Builtin::Sin, "sinf", 1, Scalar::F32, true, false, false},
    {Builtin::Cos, "cosf", 1, Scalar::F32, true, false, false},
    {Builtin::Pow, "powf", 2, Scalar::F32, true, false, false},
    {Builtin::Fabs, "fabsf", 1, Scalar::F32, true, false, false},
    {Builtin::Fmin, "fminf", 2, Scalar::F32, true, false, false},
    {Builtin::Fmax, "fmaxf", 2, Scalar::F32, true, false, false},
    {Builtin::Floor, "floorf", 1, Scalar::F32, true, false, false},
    {Builtin::Lgamma, "lgammaf", 1, Scalar::F32, true, false, false},
    {Builtin::Erf, "erff", 1, Scalar::F32, true, false, false},
    {Builtin::IMin, "min", 2, Scalar::I32, true, false, false},
    {Builtin::IMax, "max", 2, Scalar::I32, true, false, false},

    {Builtin::GlobalId, "get_global_id", 1, Scalar::I32, true, true, false},
    {Builtin::LocalId, "get_local_id", 1, Scalar::I32, true, true, false},
    {Builtin::GroupId, "get_group_id", 1, Scalar::I32, true, true, false},
    {Builtin::LocalSize, "get_local_size", 1, Scalar::I32, true, true, false},
    {Builtin::NumGroups, "get_num_groups", 1, Scalar::I32, true, true, false},
    {Builtin::GlobalSize, "get_global_size", 1, Scalar::I32, true, true,
     false},

    {Builtin::AtomicAdd, "atomic_add", 3, Scalar::F32, false, false, true},
    {Builtin::AtomicMin, "atomic_min", 3, Scalar::F32, false, false, true},
    {Builtin::AtomicMax, "atomic_max", 3, Scalar::F32, false, false, true},
    {Builtin::AtomicInc, "atomic_inc", 2, Scalar::I32, false, false, true},
    {Builtin::AtomicAnd, "atomic_and", 3, Scalar::I32, false, false, true},
    {Builtin::AtomicOr, "atomic_or", 3, Scalar::I32, false, false, true},
    {Builtin::AtomicXor, "atomic_xor", 3, Scalar::I32, false, false, true},

    {Builtin::Barrier, "barrier", 0, Scalar::Void, false, false, false},
}};

}  // namespace

const BuiltinInfo&
builtin_info(Builtin builtin)
{
    PARAPROX_ASSERT(builtin != Builtin::None,
                    "builtin_info called on Builtin::None");
    for (const auto& info : kBuiltins) {
        if (info.builtin == builtin)
            return info;
    }
    throw InternalError("builtin_info: unregistered builtin");
}

std::optional<Builtin>
builtin_by_name(const std::string& name)
{
    for (const auto& info : kBuiltins) {
        if (name == info.name)
            return info.builtin;
    }
    return std::nullopt;
}

bool
is_atomic_builtin(Builtin builtin)
{
    return builtin != Builtin::None && builtin_info(builtin).is_atomic;
}

bool
is_thread_id_builtin(Builtin builtin)
{
    return builtin != Builtin::None &&
           builtin_info(builtin).thread_dependent;
}

bool
is_transcendental_builtin(Builtin builtin)
{
    switch (builtin) {
      case Builtin::Exp:
      case Builtin::Log:
      case Builtin::Sin:
      case Builtin::Cos:
      case Builtin::Pow:
      case Builtin::Lgamma:
      case Builtin::Erf:
        return true;
      default:
        return false;
    }
}

}  // namespace paraprox::ir
