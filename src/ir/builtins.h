/// @file
/// The ParaCL builtin function set: math intrinsics, work-item geometry
/// queries, atomics, and the work-group barrier.
///
/// Purity and latency classification of builtins drives pattern detection:
/// a map candidate may call Sqrt but not GlobalId or AtomicAdd (§3.1.2 of
/// the paper), and Eq. 1's cycles_needed estimate charges each builtin its
/// device-specific latency.

#pragma once

#include <optional>
#include <string>

#include "ir/type.h"

namespace paraprox::ir {

/// Every builtin callable from ParaCL.
enum class Builtin {
    None,  ///< Not a builtin (user-defined function).

    // Math intrinsics (pure).
    Sqrt,
    Exp,
    Log,
    Sin,
    Cos,
    Pow,
    Fabs,
    Fmin,
    Fmax,
    Floor,
    Lgamma,
    Erf,
    IMin,
    IMax,

    // Work-item geometry (pure w.r.t. memory but thread-dependent).
    GlobalId,
    LocalId,
    GroupId,
    LocalSize,
    NumGroups,
    GlobalSize,

    // Atomics (impure): atomic_*(buffer, index, value) except AtomicInc
    // which takes (buffer, index).  All return the old value.
    AtomicAdd,
    AtomicMin,
    AtomicMax,
    AtomicInc,
    AtomicAnd,
    AtomicOr,
    AtomicXor,

    // Work-group synchronization (impure).
    Barrier,
};

/// Static facts about a builtin.
struct BuiltinInfo {
    Builtin builtin;
    const char* name;      ///< ParaCL spelling, e.g. "sqrtf".
    int arity;             ///< Number of arguments; -1 for AtomicInc special.
    Scalar result;         ///< Result scalar type.
    bool pure;             ///< No side effects and input-only dependence.
    bool thread_dependent; ///< Result depends on work-item identity.
    bool is_atomic;        ///< Read-modify-write on memory.
};

/// Lookup by enum; aborts on Builtin::None.
const BuiltinInfo& builtin_info(Builtin builtin);

/// Lookup by ParaCL spelling; nullopt when @p name is not a builtin.
std::optional<Builtin> builtin_by_name(const std::string& name);

/// True for the atomic read-modify-write builtins.
bool is_atomic_builtin(Builtin builtin);

/// True for the work-item geometry builtins.
bool is_thread_id_builtin(Builtin builtin);

/// True for math builtins whose hardware implementation is a transcendental
/// special-function candidate (exp/log/sin/cos/pow/lgamma/erf).
bool is_transcendental_builtin(Builtin builtin);

}  // namespace paraprox::ir
