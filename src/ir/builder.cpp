#include "ir/builder.h"

#include "support/error.h"

namespace paraprox::ir::build {

namespace {

ExprPtr
binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs)
{
    Type result = is_comparison(op) ? Type::boolean() : lhs->type();
    if (op == BinaryOp::LogicalAnd || op == BinaryOp::LogicalOr)
        result = Type::boolean();
    return std::make_unique<Binary>(op, std::move(lhs), std::move(rhs),
                                    result);
}

ExprPtr
geometry(Builtin builtin, int dim)
{
    std::vector<ExprPtr> args;
    args.push_back(int_lit(dim));
    return call(builtin, std::move(args));
}

}  // namespace

ExprPtr
int_lit(int value)
{
    return std::make_unique<IntLit>(value);
}

ExprPtr
float_lit(float value)
{
    return std::make_unique<FloatLit>(value);
}

ExprPtr
bool_lit(bool value)
{
    return std::make_unique<BoolLit>(value);
}

ExprPtr
var(const std::string& name, Type type)
{
    return std::make_unique<VarRef>(name, type);
}

ExprPtr
ivar(const std::string& name)
{
    return std::make_unique<VarRef>(name, Type::i32());
}

ExprPtr
neg(ExprPtr operand)
{
    Type type = operand->type();
    return std::make_unique<Unary>(UnaryOp::Neg, std::move(operand), type);
}

ExprPtr
logical_not(ExprPtr operand)
{
    return std::make_unique<Unary>(UnaryOp::Not, std::move(operand),
                                   Type::boolean());
}

ExprPtr add(ExprPtr l, ExprPtr r) { return binary(BinaryOp::Add, std::move(l), std::move(r)); }
ExprPtr sub(ExprPtr l, ExprPtr r) { return binary(BinaryOp::Sub, std::move(l), std::move(r)); }
ExprPtr mul(ExprPtr l, ExprPtr r) { return binary(BinaryOp::Mul, std::move(l), std::move(r)); }
ExprPtr div(ExprPtr l, ExprPtr r) { return binary(BinaryOp::Div, std::move(l), std::move(r)); }
ExprPtr mod(ExprPtr l, ExprPtr r) { return binary(BinaryOp::Mod, std::move(l), std::move(r)); }
ExprPtr lt(ExprPtr l, ExprPtr r) { return binary(BinaryOp::Lt, std::move(l), std::move(r)); }
ExprPtr le(ExprPtr l, ExprPtr r) { return binary(BinaryOp::Le, std::move(l), std::move(r)); }
ExprPtr gt(ExprPtr l, ExprPtr r) { return binary(BinaryOp::Gt, std::move(l), std::move(r)); }
ExprPtr ge(ExprPtr l, ExprPtr r) { return binary(BinaryOp::Ge, std::move(l), std::move(r)); }
ExprPtr eq(ExprPtr l, ExprPtr r) { return binary(BinaryOp::Eq, std::move(l), std::move(r)); }
ExprPtr ne(ExprPtr l, ExprPtr r) { return binary(BinaryOp::Ne, std::move(l), std::move(r)); }
ExprPtr logical_and(ExprPtr l, ExprPtr r) { return binary(BinaryOp::LogicalAnd, std::move(l), std::move(r)); }
ExprPtr logical_or(ExprPtr l, ExprPtr r) { return binary(BinaryOp::LogicalOr, std::move(l), std::move(r)); }
ExprPtr bit_and(ExprPtr l, ExprPtr r) { return binary(BinaryOp::BitAnd, std::move(l), std::move(r)); }
ExprPtr bit_or(ExprPtr l, ExprPtr r) { return binary(BinaryOp::BitOr, std::move(l), std::move(r)); }
ExprPtr shl(ExprPtr l, ExprPtr r) { return binary(BinaryOp::Shl, std::move(l), std::move(r)); }
ExprPtr shr(ExprPtr l, ExprPtr r) { return binary(BinaryOp::Shr, std::move(l), std::move(r)); }

ExprPtr
call(Builtin builtin, std::vector<ExprPtr> args)
{
    const BuiltinInfo& info = builtin_info(builtin);
    PARAPROX_CHECK(static_cast<int>(args.size()) == info.arity,
                   std::string("builtin `") + info.name +
                       "` called with wrong arity");
    Type result{info.result, false, AddrSpace::Private};
    // Atomic result type follows the target buffer's element type.
    if (info.is_atomic && !args.empty())
        result = args[0]->type().is_pointer ? args[0]->type().pointee()
                                            : args[0]->type();
    return std::make_unique<Call>(info.name, builtin, std::move(args),
                                  result);
}

ExprPtr
call(const std::string& callee, Type result, std::vector<ExprPtr> args)
{
    return std::make_unique<Call>(callee, Builtin::None, std::move(args),
                                  result);
}

ExprPtr global_id(int dim) { return geometry(Builtin::GlobalId, dim); }
ExprPtr local_id(int dim) { return geometry(Builtin::LocalId, dim); }
ExprPtr group_id(int dim) { return geometry(Builtin::GroupId, dim); }
ExprPtr local_size(int dim) { return geometry(Builtin::LocalSize, dim); }
ExprPtr num_groups(int dim) { return geometry(Builtin::NumGroups, dim); }

ExprPtr
load(const std::string& array, Type array_type, ExprPtr index)
{
    PARAPROX_CHECK(array_type.is_pointer, "load target must be a pointer");
    return std::make_unique<Load>(array, array_type, std::move(index));
}

ExprPtr
to_int(ExprPtr operand)
{
    return std::make_unique<Cast>(Type::i32(), std::move(operand));
}

ExprPtr
to_float(ExprPtr operand)
{
    return std::make_unique<Cast>(Type::f32(), std::move(operand));
}

ExprPtr
select(ExprPtr cond, ExprPtr if_true, ExprPtr if_false)
{
    Type type = if_true->type();
    return std::make_unique<Select>(std::move(cond), std::move(if_true),
                                    std::move(if_false), type);
}

BlockPtr
block(std::vector<StmtPtr> stmts)
{
    return std::make_unique<Block>(std::move(stmts));
}

StmtPtr
decl(const std::string& name, Type type, ExprPtr init)
{
    return std::make_unique<Decl>(name, type, std::move(init));
}

StmtPtr
assign(const std::string& name, ExprPtr value)
{
    return std::make_unique<Assign>(name, std::move(value));
}

StmtPtr
store(const std::string& array, Type array_type, ExprPtr index,
      ExprPtr value)
{
    return std::make_unique<Store>(array, array_type, std::move(index),
                                   std::move(value));
}

StmtPtr
if_stmt(ExprPtr cond, BlockPtr then_body, BlockPtr else_body)
{
    return std::make_unique<If>(std::move(cond), std::move(then_body),
                                std::move(else_body));
}

StmtPtr
for_stmt(StmtPtr init, ExprPtr cond, StmtPtr step, BlockPtr body)
{
    return std::make_unique<For>(std::move(init), std::move(cond),
                                 std::move(step), std::move(body));
}

StmtPtr
counted_for(const std::string& name, ExprPtr lo, ExprPtr hi, ExprPtr step,
            BlockPtr body)
{
    auto init = decl(name, Type::i32(), std::move(lo));
    auto cond = lt(ivar(name), std::move(hi));
    auto inc = assign(name, add(ivar(name), std::move(step)));
    return for_stmt(std::move(init), std::move(cond), std::move(inc),
                    std::move(body));
}

StmtPtr
ret(ExprPtr value)
{
    return std::make_unique<Return>(std::move(value));
}

StmtPtr
expr_stmt(ExprPtr expr)
{
    return std::make_unique<ExprStmt>(std::move(expr));
}

StmtPtr
barrier()
{
    return std::make_unique<BarrierStmt>();
}

}  // namespace paraprox::ir::build
