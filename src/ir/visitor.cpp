#include "ir/visitor.h"

#include "support/error.h"

namespace paraprox::ir {

void
Walker::walk(const Function& function)
{
    walk(*function.body);
}

void
Walker::walk(const Stmt& stmt)
{
    if (!on_stmt(stmt))
        return;
    switch (stmt.kind()) {
      case StmtKind::Block: {
        const auto& block = static_cast<const Block&>(stmt);
        for (const auto& child : block.stmts)
            walk(*child);
        break;
      }
      case StmtKind::Decl: {
        const auto& decl = static_cast<const Decl&>(stmt);
        if (decl.init)
            walk(*decl.init);
        break;
      }
      case StmtKind::Assign: {
        const auto& assign = static_cast<const Assign&>(stmt);
        walk(*assign.value);
        break;
      }
      case StmtKind::Store: {
        const auto& store = static_cast<const Store&>(stmt);
        walk(*store.index);
        walk(*store.value);
        break;
      }
      case StmtKind::If: {
        const auto& branch = static_cast<const If&>(stmt);
        walk(*branch.cond);
        walk(*branch.then_body);
        if (branch.else_body)
            walk(*branch.else_body);
        break;
      }
      case StmtKind::For: {
        const auto& loop = static_cast<const For&>(stmt);
        if (loop.init)
            walk(*loop.init);
        walk(*loop.cond);
        if (loop.step)
            walk(*loop.step);
        walk(*loop.body);
        break;
      }
      case StmtKind::Return: {
        const auto& ret = static_cast<const Return&>(stmt);
        if (ret.value)
            walk(*ret.value);
        break;
      }
      case StmtKind::ExprStmt: {
        const auto& expr_stmt = static_cast<const ExprStmt&>(stmt);
        walk(*expr_stmt.expr);
        break;
      }
      case StmtKind::Barrier:
        break;
    }
}

void
Walker::walk(const Expr& expr)
{
    if (!on_expr(expr))
        return;
    switch (expr.kind()) {
      case ExprKind::IntLit:
      case ExprKind::FloatLit:
      case ExprKind::BoolLit:
      case ExprKind::VarRef:
        break;
      case ExprKind::Unary:
        walk(*static_cast<const Unary&>(expr).operand);
        break;
      case ExprKind::Binary: {
        const auto& binary = static_cast<const Binary&>(expr);
        walk(*binary.lhs);
        walk(*binary.rhs);
        break;
      }
      case ExprKind::Call: {
        const auto& call = static_cast<const Call&>(expr);
        for (const auto& arg : call.args)
            walk(*arg);
        break;
      }
      case ExprKind::Load:
        walk(*static_cast<const Load&>(expr).index);
        break;
      case ExprKind::Cast:
        walk(*static_cast<const Cast&>(expr).operand);
        break;
      case ExprKind::Select: {
        const auto& select = static_cast<const Select&>(expr);
        walk(*select.cond);
        walk(*select.if_true);
        walk(*select.if_false);
        break;
      }
    }
}

namespace {

class LambdaWalker : public Walker {
  public:
    std::function<void(const Expr&)> expr_fn;
    std::function<void(const Stmt&)> stmt_fn;

  protected:
    bool
    on_expr(const Expr& expr) override
    {
        if (expr_fn)
            expr_fn(expr);
        return true;
    }

    bool
    on_stmt(const Stmt& stmt) override
    {
        if (stmt_fn)
            stmt_fn(stmt);
        return true;
    }
};

}  // namespace

void
for_each_expr(const Function& function,
              const std::function<void(const Expr&)>& callback)
{
    LambdaWalker walker;
    walker.expr_fn = callback;
    walker.walk(function);
}

void
for_each_stmt(const Function& function,
              const std::function<void(const Stmt&)>& callback)
{
    LambdaWalker walker;
    walker.stmt_fn = callback;
    walker.walk(function);
}

void
for_each_expr(const Stmt& stmt,
              const std::function<void(const Expr&)>& callback)
{
    LambdaWalker walker;
    walker.expr_fn = callback;
    walker.walk(stmt);
}

namespace {

/// Bottom-up rewrite of one owned expression slot.
void
rewrite_slot(ExprPtr& slot, const ExprRewriteFn& rewrite)
{
    if (!slot)
        return;
    switch (slot->kind()) {
      case ExprKind::IntLit:
      case ExprKind::FloatLit:
      case ExprKind::BoolLit:
      case ExprKind::VarRef:
        break;
      case ExprKind::Unary:
        rewrite_slot(static_cast<Unary&>(*slot).operand, rewrite);
        break;
      case ExprKind::Binary: {
        auto& binary = static_cast<Binary&>(*slot);
        rewrite_slot(binary.lhs, rewrite);
        rewrite_slot(binary.rhs, rewrite);
        break;
      }
      case ExprKind::Call: {
        auto& call = static_cast<Call&>(*slot);
        for (auto& arg : call.args)
            rewrite_slot(arg, rewrite);
        break;
      }
      case ExprKind::Load:
        rewrite_slot(static_cast<Load&>(*slot).index, rewrite);
        break;
      case ExprKind::Cast:
        rewrite_slot(static_cast<Cast&>(*slot).operand, rewrite);
        break;
      case ExprKind::Select: {
        auto& select = static_cast<Select&>(*slot);
        rewrite_slot(select.cond, rewrite);
        rewrite_slot(select.if_true, rewrite);
        rewrite_slot(select.if_false, rewrite);
        break;
      }
    }
    if (ExprPtr replacement = rewrite(*slot))
        slot = std::move(replacement);
}

void
rewrite_stmt(Stmt& stmt, const ExprRewriteFn& rewrite)
{
    switch (stmt.kind()) {
      case StmtKind::Block: {
        auto& block = static_cast<Block&>(stmt);
        for (auto& child : block.stmts)
            rewrite_stmt(*child, rewrite);
        break;
      }
      case StmtKind::Decl:
        rewrite_slot(static_cast<Decl&>(stmt).init, rewrite);
        break;
      case StmtKind::Assign:
        rewrite_slot(static_cast<Assign&>(stmt).value, rewrite);
        break;
      case StmtKind::Store: {
        auto& store = static_cast<Store&>(stmt);
        rewrite_slot(store.index, rewrite);
        rewrite_slot(store.value, rewrite);
        break;
      }
      case StmtKind::If: {
        auto& branch = static_cast<If&>(stmt);
        rewrite_slot(branch.cond, rewrite);
        rewrite_stmt(*branch.then_body, rewrite);
        if (branch.else_body)
            rewrite_stmt(*branch.else_body, rewrite);
        break;
      }
      case StmtKind::For: {
        auto& loop = static_cast<For&>(stmt);
        if (loop.init)
            rewrite_stmt(*loop.init, rewrite);
        rewrite_slot(loop.cond, rewrite);
        if (loop.step)
            rewrite_stmt(*loop.step, rewrite);
        rewrite_stmt(*loop.body, rewrite);
        break;
      }
      case StmtKind::Return:
        rewrite_slot(static_cast<Return&>(stmt).value, rewrite);
        break;
      case StmtKind::ExprStmt:
        rewrite_slot(static_cast<ExprStmt&>(stmt).expr, rewrite);
        break;
      case StmtKind::Barrier:
        break;
    }
}

}  // namespace

void
rewrite_exprs(Block& block, const ExprRewriteFn& rewrite)
{
    rewrite_stmt(block, rewrite);
}

void
rewrite_exprs(Function& function, const ExprRewriteFn& rewrite)
{
    rewrite_exprs(*function.body, rewrite);
}

}  // namespace paraprox::ir
