/// @file
/// The ParaCL type system: scalar values and pointers into address spaces.
///
/// ParaCL mirrors the slice of OpenCL C that the Paraprox paper's detectors
/// care about: 32-bit ints, 32-bit floats, booleans, and pointers qualified
/// with an address space (__global, __local/__shared, __constant).

#pragma once

#include <string>

namespace paraprox::ir {

/// Scalar value categories.
enum class Scalar {
    Void,
    Bool,
    I32,
    F32,
};

/// Memory address spaces, matching OpenCL qualifiers.
enum class AddrSpace {
    Private,   ///< Registers / locals (default for scalars).
    Global,    ///< __global: device memory.
    Shared,    ///< __local / __shared: per-work-group scratchpad.
    Constant,  ///< __constant: read-only, cached, broadcast-friendly.
};

/// A ParaCL type: a scalar, or a pointer to an array of scalars living in a
/// particular address space.
struct Type {
    Scalar scalar = Scalar::Void;
    bool is_pointer = false;
    AddrSpace space = AddrSpace::Private;

    static Type void_type() { return {Scalar::Void, false, AddrSpace::Private}; }
    static Type boolean() { return {Scalar::Bool, false, AddrSpace::Private}; }
    static Type i32() { return {Scalar::I32, false, AddrSpace::Private}; }
    static Type f32() { return {Scalar::F32, false, AddrSpace::Private}; }

    static Type
    pointer(Scalar element, AddrSpace where)
    {
        return {element, true, where};
    }

    bool operator==(const Type& other) const = default;

    bool is_scalar() const { return !is_pointer && scalar != Scalar::Void; }
    bool is_float() const { return !is_pointer && scalar == Scalar::F32; }
    bool is_int() const { return !is_pointer && scalar == Scalar::I32; }
    bool is_bool() const { return !is_pointer && scalar == Scalar::Bool; }
    bool is_void() const { return !is_pointer && scalar == Scalar::Void; }

    /// Element type of a pointer.
    Type
    pointee() const
    {
        return {scalar, false, AddrSpace::Private};
    }

    /// Render as ParaCL source, e.g. "__global float*".
    std::string to_string() const;
};

/// Render a scalar kind, e.g. "float".
std::string to_string(Scalar scalar);

/// Render an address-space qualifier, e.g. "__global".
std::string to_string(AddrSpace space);

}  // namespace paraprox::ir
