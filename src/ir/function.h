/// @file
/// Functions, kernels, and modules of the ParaCL IR.

#pragma once

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "ir/stmt.h"

namespace paraprox::ir {

/// A formal parameter.
struct Param {
    std::string name;
    Type type;
};

/// A ParaCL function: either a device helper function or (when is_kernel) a
/// kernel entry point.
class Function {
  public:
    Function(std::string name, Type return_type, std::vector<Param> params,
             BlockPtr body, bool is_kernel)
        : name(std::move(name)), return_type(return_type),
          params(std::move(params)), body(std::move(body)),
          is_kernel(is_kernel) {}

    /// Deep copy, optionally renamed.
    std::unique_ptr<Function> clone(const std::string& new_name = "") const;

    /// Find a parameter by name; nullptr when absent.
    const Param* find_param(const std::string& name) const;

    std::string name;
    Type return_type;
    std::vector<Param> params;
    BlockPtr body;
    bool is_kernel;

    /// Annotations attached via `#pragma paraprox <word>` in source
    /// (e.g. "scan" marks a scan-pattern kernel, per §3.4.2's programmer
    /// hint escape hatch).
    std::set<std::string> pragmas;
};

using FunctionPtr = std::unique_ptr<Function>;

/// A translation unit: an ordered list of functions.
class Module {
  public:
    Module() = default;

    Module(const Module&) = delete;
    Module& operator=(const Module&) = delete;
    Module(Module&&) = default;
    Module& operator=(Module&&) = default;

    /// Deep copy of every function.
    Module clone() const;

    /// Append a function; its name must be unique in the module.
    Function& add_function(FunctionPtr function);

    /// Find by name; nullptr when absent.
    Function* find_function(const std::string& name);
    const Function* find_function(const std::string& name) const;

    /// All kernel entry points, in declaration order.
    std::vector<Function*> kernels();
    std::vector<const Function*> kernels() const;

    const std::vector<FunctionPtr>& functions() const { return functions_; }
    std::vector<FunctionPtr>& functions() { return functions_; }

  private:
    std::vector<FunctionPtr> functions_;
};

}  // namespace paraprox::ir
