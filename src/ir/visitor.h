/// @file
/// Generic IR traversal.
///
/// Walker recursively visits every node of a function body, invoking
/// overridable hooks.  The pattern detectors are all built on top of it,
/// mirroring the paper's Clang ASTVisitor stage (Fig. 10).

#pragma once

#include <functional>

#include "ir/function.h"

namespace paraprox::ir {

/// Pre-order recursive walker over expressions and statements.
///
/// Override the hooks you need; each hook fires before the node's children
/// are visited.  Returning false from an expression/statement hook prunes
/// traversal into that node's children.
class Walker {
  public:
    virtual ~Walker() = default;

    void walk(const Function& function);
    void walk(const Stmt& stmt);
    void walk(const Expr& expr);

  protected:
    /// Called for every statement; return false to skip its children.
    virtual bool on_stmt(const Stmt& stmt) { (void)stmt; return true; }
    /// Called for every expression; return false to skip its children.
    virtual bool on_expr(const Expr& expr) { (void)expr; return true; }
};

/// Visit every expression in @p function (including nested ones).
void for_each_expr(const Function& function,
                   const std::function<void(const Expr&)>& callback);

/// Visit every statement in @p function (including nested ones).
void for_each_stmt(const Function& function,
                   const std::function<void(const Stmt&)>& callback);

/// Visit every expression underneath @p stmt.
void for_each_expr(const Stmt& stmt,
                   const std::function<void(const Expr&)>& callback);

/// Mutable in-place expression rewriting.
///
/// Applies @p rewrite bottom-up to every expression reachable from
/// @p block; when @p rewrite returns non-null, the expression is replaced.
/// The callback receives ownership candidacy via the raw node reference and
/// must build its replacement from clones.
using ExprRewriteFn = std::function<ExprPtr(const Expr&)>;

void rewrite_exprs(Block& block, const ExprRewriteFn& rewrite);
void rewrite_exprs(Function& function, const ExprRewriteFn& rewrite);

}  // namespace paraprox::ir
