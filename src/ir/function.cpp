#include "ir/function.h"

#include "support/error.h"

namespace paraprox::ir {

FunctionPtr
Function::clone(const std::string& new_name) const
{
    auto body_copy = BlockPtr(static_cast<Block*>(body->clone().release()));
    auto copy = std::make_unique<Function>(
        new_name.empty() ? name : new_name, return_type, params,
        std::move(body_copy), is_kernel);
    copy->pragmas = pragmas;
    return copy;
}

const Param*
Function::find_param(const std::string& param_name) const
{
    for (const auto& param : params) {
        if (param.name == param_name)
            return &param;
    }
    return nullptr;
}

Module
Module::clone() const
{
    Module copy;
    for (const auto& function : functions_)
        copy.add_function(function->clone());
    return copy;
}

Function&
Module::add_function(FunctionPtr function)
{
    PARAPROX_CHECK(function != nullptr, "add_function: null function");
    PARAPROX_CHECK(find_function(function->name) == nullptr,
                   "duplicate function name `" + function->name + "`");
    functions_.push_back(std::move(function));
    return *functions_.back();
}

Function*
Module::find_function(const std::string& name)
{
    for (auto& function : functions_) {
        if (function->name == name)
            return function.get();
    }
    return nullptr;
}

const Function*
Module::find_function(const std::string& name) const
{
    for (const auto& function : functions_) {
        if (function->name == name)
            return function.get();
    }
    return nullptr;
}

std::vector<Function*>
Module::kernels()
{
    std::vector<Function*> result;
    for (auto& function : functions_) {
        if (function->is_kernel)
            result.push_back(function.get());
    }
    return result;
}

std::vector<const Function*>
Module::kernels() const
{
    std::vector<const Function*> result;
    for (const auto& function : functions_) {
        if (function->is_kernel)
            result.push_back(function.get());
    }
    return result;
}

}  // namespace paraprox::ir
