/// @file
/// Pretty-printing of IR back to ParaCL source.
///
/// Output is valid ParaCL: the parser round-trips it, which the test suite
/// uses as a structural-equality oracle, and it doubles as the
/// human-readable dump of generated approximate kernels (the analogue of
/// the paper's rewritten CUDA output).

#pragma once

#include <cstdint>
#include <string>

#include "ir/function.h"

namespace paraprox::ir {

std::string to_source(const Expr& expr);
std::string to_source(const Stmt& stmt, int indent = 0);
std::string to_source(const Function& function);
std::string to_source(const Module& module);

/// FNV-1a hash of the module's printed source.  Because printing
/// round-trips through the parser, equal fingerprints mean structurally
/// identical modules — the key vm::ProgramCache uses to share compiled
/// bytecode across sessions.
std::uint64_t fingerprint(const Module& module);

}  // namespace paraprox::ir
