/// @file
/// Convenience constructors for IR nodes.
///
/// The approximation transforms synthesize a lot of IR (quantization
/// arithmetic, adjustment code, tail-replication kernels); these helpers
/// keep that code readable.  All functions return freshly allocated nodes.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ir/function.h"

namespace paraprox::ir::build {

// ---- Expressions -----------------------------------------------------

ExprPtr int_lit(int value);
ExprPtr float_lit(float value);
ExprPtr bool_lit(bool value);

/// Reference a scalar variable of the given type.
ExprPtr var(const std::string& name, Type type = Type::f32());
ExprPtr ivar(const std::string& name);

ExprPtr neg(ExprPtr operand);
ExprPtr logical_not(ExprPtr operand);

/// Arithmetic ops infer the result type from the lhs.
ExprPtr add(ExprPtr lhs, ExprPtr rhs);
ExprPtr sub(ExprPtr lhs, ExprPtr rhs);
ExprPtr mul(ExprPtr lhs, ExprPtr rhs);
ExprPtr div(ExprPtr lhs, ExprPtr rhs);
ExprPtr mod(ExprPtr lhs, ExprPtr rhs);

ExprPtr lt(ExprPtr lhs, ExprPtr rhs);
ExprPtr le(ExprPtr lhs, ExprPtr rhs);
ExprPtr gt(ExprPtr lhs, ExprPtr rhs);
ExprPtr ge(ExprPtr lhs, ExprPtr rhs);
ExprPtr eq(ExprPtr lhs, ExprPtr rhs);
ExprPtr ne(ExprPtr lhs, ExprPtr rhs);
ExprPtr logical_and(ExprPtr lhs, ExprPtr rhs);
ExprPtr logical_or(ExprPtr lhs, ExprPtr rhs);
ExprPtr bit_and(ExprPtr lhs, ExprPtr rhs);
ExprPtr bit_or(ExprPtr lhs, ExprPtr rhs);
ExprPtr shl(ExprPtr lhs, ExprPtr rhs);
ExprPtr shr(ExprPtr lhs, ExprPtr rhs);

/// Call a builtin by enum.
ExprPtr call(Builtin builtin, std::vector<ExprPtr> args);

/// Call a user function.
ExprPtr call(const std::string& callee, Type result,
             std::vector<ExprPtr> args);

/// get_global_id(dim) etc.
ExprPtr global_id(int dim = 0);
ExprPtr local_id(int dim = 0);
ExprPtr group_id(int dim = 0);
ExprPtr local_size(int dim = 0);
ExprPtr num_groups(int dim = 0);

ExprPtr load(const std::string& array, Type array_type, ExprPtr index);

ExprPtr to_int(ExprPtr operand);
ExprPtr to_float(ExprPtr operand);

ExprPtr select(ExprPtr cond, ExprPtr if_true, ExprPtr if_false);

// ---- Statements ------------------------------------------------------

BlockPtr block(std::vector<StmtPtr> stmts = {});
StmtPtr decl(const std::string& name, Type type, ExprPtr init);
StmtPtr assign(const std::string& name, ExprPtr value);
StmtPtr store(const std::string& array, Type array_type, ExprPtr index,
              ExprPtr value);
StmtPtr if_stmt(ExprPtr cond, BlockPtr then_body,
                BlockPtr else_body = nullptr);
StmtPtr for_stmt(StmtPtr init, ExprPtr cond, StmtPtr step, BlockPtr body);

/// Canonical counted loop: for (name = lo; name < hi; name = name + step).
StmtPtr counted_for(const std::string& name, ExprPtr lo, ExprPtr hi,
                    ExprPtr step, BlockPtr body);

StmtPtr ret(ExprPtr value = nullptr);
StmtPtr expr_stmt(ExprPtr expr);
StmtPtr barrier();

}  // namespace paraprox::ir::build
