#include "data/packed_buffer.h"

#include <cmath>
#include <cstring>

#include "support/error.h"
#include "support/faultinject.h"

namespace paraprox::data {

namespace {

/// Deterministic storage corruption for the data.bitflip fault site: flip
/// the two highest stored bits (sign + a high exponent bit for the float
/// codecs, +-64/+-192 quanta for int8) of every other element — strong
/// enough to drag any codec's quality below a 90% TOQ.  Decoding any bit
/// pattern is well-defined for every codec, so the corruption can only
/// degrade output quality — it cannot trap or crash; the serving tier's
/// shadow monitor is what must catch it.
void
flip_bits(Codec codec, std::int32_t* words, std::int64_t count)
{
    const int width = storage_bytes(codec);
    auto* bytes = reinterpret_cast<unsigned char*>(words);
    for (std::int64_t i = 0; i < count; i += 2) {
        unsigned char* top = bytes + i * width + (width - 1);
        *top = static_cast<unsigned char>(*top ^ 0xc0u);
    }
}

}  // namespace

PackedBuffer::PackedBuffer(Codec codec, std::int64_t count, QuantParams quant)
    : codec_(codec), quant_(quant), count_(count),
      words_(static_cast<std::size_t>(packed_words(codec, count)), 0)
{
    PARAPROX_CHECK(count >= 0, "negative packed buffer size");
    if (codec == Codec::Int8) {
        PARAPROX_CHECK(std::isfinite(quant.scale) && quant.scale > 0.0f,
                       "int8 packing requires a finite positive scale");
        PARAPROX_CHECK(std::isfinite(quant.zero),
                       "int8 packing requires a finite zero point");
    }
}

PackedBuffer
PackedBuffer::pack(Codec codec, const std::vector<float>& values,
                   QuantParams quant, std::string_view fault_context)
{
    PackedBuffer buffer(codec, static_cast<std::int64_t>(values.size()),
                        quant);
    buffer.repack(values, fault_context);
    return buffer;
}

void
PackedBuffer::repack(const std::vector<float>& values,
                     std::string_view fault_context)
{
    PARAPROX_CHECK(static_cast<std::int64_t>(values.size()) == count_,
                   "repack size mismatch");
    for (std::int64_t i = 0; i < count_; ++i)
        store_element(codec_, words_.data(), i, values[i], quant_);
    if (fault::fire("data.bitflip", fault_context))
        flip_bits(codec_, words_.data(), count_);
}

std::vector<float>
PackedBuffer::unpack() const
{
    std::vector<float> values(static_cast<std::size_t>(count_));
    for (std::int64_t i = 0; i < count_; ++i)
        values[i] = load_element(codec_, words_.data(), i, quant_);
    return values;
}

float
PackedBuffer::get(std::int64_t index) const
{
    PARAPROX_CHECK(index >= 0 && index < count_,
                   "packed buffer index out of range");
    return load_element(codec_, words_.data(), index, quant_);
}

void
PackedBuffer::set(std::int64_t index, float value)
{
    PARAPROX_CHECK(index >= 0 && index < count_,
                   "packed buffer index out of range");
    store_element(codec_, words_.data(), index, value, quant_);
}

QuantParams
PackedBuffer::fit_quant(const std::vector<float>& values)
{
    float lo = 0.0f;
    float hi = 0.0f;
    bool seen = false;
    for (float v : values) {
        if (!std::isfinite(v))
            continue;
        if (!seen) {
            lo = hi = v;
            seen = true;
        } else {
            lo = std::fmin(lo, v);
            hi = std::fmax(hi, v);
        }
    }
    QuantParams quant;
    if (!seen) {
        return quant;  // all non-finite (or empty): identity params
    }
    quant.zero = lo + (hi - lo) * 0.5f;
    // 254 interior steps keep +-127 inside the finite range even after
    // rounding; a degenerate (single-point) range keeps scale 1.
    const float span = hi - lo;
    if (std::isfinite(span) && span > 0.0f)
        quant.scale = span / 254.0f;
    if (!(std::isfinite(quant.scale) && quant.scale > 0.0f))
        quant.scale = 1.0f;
    if (!std::isfinite(quant.zero))
        quant.zero = 0.0f;
    return quant;
}

}  // namespace paraprox::data
