#include "data/safety.h"

#include <cstdint>

#include "support/error.h"

namespace paraprox::data {

namespace {

using vm::Instr;
using vm::Opcode;

/// Taint sets are slot bitmasks; kernels have well under 64 buffer params.
using Taint = std::uint64_t;

bool
is_atomic(Opcode op)
{
    switch (op) {
      case Opcode::AtomAdd:
      case Opcode::AtomMin:
      case Opcode::AtomMax:
      case Opcode::AtomInc:
      case Opcode::AtomAnd:
      case Opcode::AtomOr:
      case Opcode::AtomXor:
        return true;
      default:
        return false;
    }
}

/// Source registers of @p instr whose *values* flow into the destination
/// (and, for Sel, the condition — control-selected data is data).  Returns
/// the count written into @p regs.  Ld/St/atomics are handled separately
/// by the fixpoint because they also touch memory.
int
value_sources(const Instr& instr, int regs[3])
{
    switch (instr.op) {
      case Opcode::Nop:
      case Opcode::LdImm:
      case Opcode::Gid:
      case Opcode::Lid:
      case Opcode::GrpId:
      case Opcode::LSize:
      case Opcode::NGrp:
      case Opcode::GSize:
      case Opcode::Jmp:
      case Opcode::Jz:
      case Opcode::Barrier:
      case Opcode::Halt:
        return 0;
      case Opcode::Mov:
      case Opcode::NegI:
      case Opcode::NegF:
      case Opcode::NotI:
      case Opcode::IToF:
      case Opcode::FToI:
      case Opcode::Sqrt:
      case Opcode::Exp:
      case Opcode::Log:
      case Opcode::Sin:
      case Opcode::Cos:
      case Opcode::Fabs:
      case Opcode::Floor:
      case Opcode::Lgamma:
      case Opcode::Erf:
        regs[0] = instr.b;
        return 1;
      case Opcode::Sel:
        regs[0] = instr.b;
        regs[1] = instr.c;
        regs[2] = instr.d;
        return 3;
      default:
        // Every remaining canonical opcode is a binary a <- f(b, c).
        regs[0] = instr.b;
        regs[1] = instr.c;
        return 2;
    }
}

/// True when @p instr writes register a (memory ops excluded; handled by
/// the caller).
bool
writes_dest(const Instr& instr)
{
    switch (instr.op) {
      case Opcode::Nop:
      case Opcode::St:
      case Opcode::Jmp:
      case Opcode::Jz:
      case Opcode::Barrier:
      case Opcode::Halt:
        return false;
      default:
        return true;
    }
}

}  // namespace

const char*
to_string(PinReason reason)
{
    switch (reason) {
      case PinReason::None: return "packable";
      case PinReason::NonFloatElem: return "non-float";
      case PinReason::SharedSpace: return "shared";
      case PinReason::ConstantSpace: return "constant";
      case PinReason::AtomicTarget: return "atomic-target";
      case PinReason::ReadWrite: return "read-write";
      case PinReason::IndexSource: return "index-source";
      case PinReason::TableStorage: return "table";
    }
    return "?";
}

std::vector<int>
StorageSafety::packable_slots() const
{
    std::vector<int> slots;
    for (std::size_t i = 0; i < pins.size(); ++i) {
        if (pins[i] == PinReason::None)
            slots.push_back(static_cast<int>(i));
    }
    return slots;
}

StorageSafety
analyze_storage_safety(const vm::Program& program,
                       const std::vector<std::string>& table_buffer_names)
{
    const std::size_t num_slots = program.buffers.size();
    StorageSafety safety;
    safety.pins.assign(num_slots, PinReason::None);
    PARAPROX_CHECK(num_slots <= 64,
                   "storage safety analysis supports at most 64 buffers");

    // Structural pins first (cheapest evidence wins the reported reason).
    for (std::size_t slot = 0; slot < num_slots; ++slot) {
        const auto& info = program.buffers[slot];
        if (info.elem != ir::Scalar::F32)
            safety.pins[slot] = PinReason::NonFloatElem;
        else if (info.space == ir::AddrSpace::Shared)
            safety.pins[slot] = PinReason::SharedSpace;
        else if (info.space == ir::AddrSpace::Constant)
            safety.pins[slot] = PinReason::ConstantSpace;
    }
    for (const std::string& table : table_buffer_names) {
        for (std::size_t slot = 0; slot < num_slots; ++slot) {
            if (program.buffers[slot].name == table &&
                safety.pins[slot] == PinReason::None) {
                safety.pins[slot] = PinReason::TableStorage;
            }
        }
    }

    // Access-pattern pins from the canonical stream.
    std::vector<bool> loaded(num_slots, false);
    std::vector<bool> stored(num_slots, false);
    for (const Instr& instr : program.code) {
        if (instr.op == Opcode::Ld) {
            loaded[static_cast<std::size_t>(instr.imm.i)] = true;
        } else if (instr.op == Opcode::St) {
            stored[static_cast<std::size_t>(instr.imm.i)] = true;
        } else if (is_atomic(instr.op)) {
            const auto slot = static_cast<std::size_t>(instr.imm.i);
            if (safety.pins[slot] == PinReason::None)
                safety.pins[slot] = PinReason::AtomicTarget;
        }
    }
    for (std::size_t slot = 0; slot < num_slots; ++slot) {
        if (loaded[slot] && stored[slot] &&
            safety.pins[slot] == PinReason::None) {
            safety.pins[slot] = PinReason::ReadWrite;
        }
    }

    // Index-source taint fixpoint: which slots' loaded values can reach an
    // index operand, tracking flow through registers and through buffer
    // round-trips.  Flow-insensitive (one taint set per register across
    // the whole program) — conservative over any control flow, including
    // loops, without needing a CFG.
    std::vector<Taint> reg_taint(
        static_cast<std::size_t>(program.num_regs), 0);
    std::vector<Taint> mem_taint(num_slots, 0);
    Taint index_sources = 0;

    for (bool changed = true; changed;) {
        changed = false;
        const auto merge_into = [&changed](Taint& dst, Taint add) {
            if ((dst | add) != dst) {
                dst |= add;
                changed = true;
            }
        };
        for (const Instr& instr : program.code) {
            if (instr.op == Opcode::Ld) {
                const auto slot = static_cast<std::size_t>(instr.imm.i);
                merge_into(index_sources,
                           reg_taint[static_cast<std::size_t>(instr.b)]);
                merge_into(reg_taint[static_cast<std::size_t>(instr.a)],
                           (Taint{1} << slot) | mem_taint[slot]);
            } else if (instr.op == Opcode::St) {
                const auto slot = static_cast<std::size_t>(instr.imm.i);
                merge_into(index_sources,
                           reg_taint[static_cast<std::size_t>(instr.a)]);
                merge_into(mem_taint[slot],
                           reg_taint[static_cast<std::size_t>(instr.b)]);
            } else if (is_atomic(instr.op)) {
                const auto slot = static_cast<std::size_t>(instr.imm.i);
                merge_into(index_sources,
                           reg_taint[static_cast<std::size_t>(instr.b)]);
                merge_into(mem_taint[slot],
                           reg_taint[static_cast<std::size_t>(instr.c)]);
                merge_into(reg_taint[static_cast<std::size_t>(instr.a)],
                           (Taint{1} << slot) | mem_taint[slot]);
            } else if (writes_dest(instr)) {
                int sources[3];
                const int n = value_sources(instr, sources);
                Taint combined = 0;
                for (int i = 0; i < n; ++i)
                    combined |= reg_taint[static_cast<std::size_t>(
                        sources[i])];
                merge_into(reg_taint[static_cast<std::size_t>(instr.a)],
                           combined);
            }
        }
    }

    for (std::size_t slot = 0; slot < num_slots; ++slot) {
        if ((index_sources & (Taint{1} << slot)) != 0 &&
            safety.pins[slot] == PinReason::None) {
            safety.pins[slot] = PinReason::IndexSource;
        }
    }
    return safety;
}

}  // namespace paraprox::data
