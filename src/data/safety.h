/// @file
/// Storage safety analysis: decides, per kernel buffer parameter, whether
/// lossy packed storage is admissible, pinning everything else exact.
///
/// The rules follow Akiyama's data-partitioning criteria for approximate
/// memory (arXiv 2004.01637): data whose *bits control addresses or
/// control flow* — indices, scan offsets — and data that is *accumulated
/// in place* amplify storage error unboundedly and must stay exact, while
/// pure value streams degrade gracefully.  Concretely a buffer slot is
/// pinned when any of:
///
///   NonFloatElem  the element type is not F32 — integer payloads are
///                 typically indices, counts, or histogram bins.
///   SharedSpace   __shared scratchpads are allocated per-group by the VM
///                 and are not part of the data tier.
///   ConstantSpace constant buffers back memoization tables; table storage
///                 is already quantized by the table transform and double
///                 approximation would compound unaudited error.
///   AtomicTarget  an atomic RMW targets the slot — atomics CAS on whole
///                 exact words (the VM traps otherwise).
///   ReadWrite     the kernel both loads and stores the slot: in-place
///                 updates and accumulators re-encode every round, so
///                 codec error compounds per iteration instead of being a
///                 one-shot perturbation.
///   IndexSource   a value loaded from the slot flows (through any
///                 arithmetic, selects, or memory round-trips) into the
///                 index operand of a load, store, or atomic — flipping a
///                 stored bit would redirect an address.
///   TableStorage  the slot is named as a bound memo-table buffer.
///
/// IndexSource is computed by a flow-insensitive taint fixpoint over the
/// canonical code stream (superinstructions never appear there), tracking
/// taint through registers *and* through buffer round-trips (St then Ld).

#pragma once

#include <string>
#include <vector>

#include "vm/bytecode.h"

namespace paraprox::data {

enum class PinReason : std::uint8_t {
    None = 0,  ///< Packable: lossy storage admissible.
    NonFloatElem,
    SharedSpace,
    ConstantSpace,
    AtomicTarget,
    ReadWrite,
    IndexSource,
    TableStorage,
};

const char* to_string(PinReason reason);

/// Per-slot verdicts for one program.
struct StorageSafety {
    std::vector<PinReason> pins;  ///< Indexed by buffer slot.

    bool
    packable(int slot) const
    {
        return slot >= 0 && static_cast<std::size_t>(slot) < pins.size() &&
               pins[static_cast<std::size_t>(slot)] == PinReason::None;
    }

    std::vector<int> packable_slots() const;
};

/// Analyze @p program.  @p table_buffer_names lists buffers bound as memo
/// tables (pinned TableStorage even if otherwise packable).
StorageSafety
analyze_storage_safety(const vm::Program& program,
                       const std::vector<std::string>& table_buffer_names =
                           {});

}  // namespace paraprox::data
