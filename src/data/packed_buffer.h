/// @file
/// PackedBuffer: a buffer whose elements are stored under a lossy codec
/// (data/codec.h) but which presents the same vm::BufferView load/store
/// contract as exec::Buffer — the VM decodes on Ld and encodes on St, so
/// kernels run unmodified while the modeled memory system moves
/// storage_bytes(codec)/4 of the exact traffic.

#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "data/codec.h"
#include "vm/vm.h"

namespace paraprox::data {

/// Lossily-packed device buffer for F32 elements.
///
/// The `data.bitflip` fault site lives on the (re)pack path: chaos tests
/// arm it to flip storage bits after packing, proving that corrupt packed
/// data degrades output quality (caught by the serving tier's shadow
/// monitor) instead of crashing or trapping.
class PackedBuffer {
  public:
    /// Zero-filled packed buffer of @p count logical elements.  For
    /// Codec::Int8, @p quant.scale must be finite and > 0.
    PackedBuffer(Codec codec, std::int64_t count, QuantParams quant = {});

    /// Pack @p values (one per logical element).  @p fault_context names
    /// the buffer for the data.bitflip site's match= filter.
    static PackedBuffer pack(Codec codec, const std::vector<float>& values,
                             QuantParams quant = {},
                             std::string_view fault_context = {});

    /// Re-encode @p values into the existing storage (size must match).
    void repack(const std::vector<float>& values,
                std::string_view fault_context = {});

    std::vector<float> unpack() const;

    float get(std::int64_t index) const;
    void set(std::int64_t index, float value);

    Codec codec() const { return codec_; }
    std::int64_t size() const { return count_; }
    const QuantParams& quant() const { return quant_; }

    /// Storage footprint in bytes (what the memory system would move).
    std::int64_t
    storage_bytes_total() const
    {
        return count_ * storage_bytes(codec_);
    }

    vm::BufferView
    view()
    {
        vm::BufferView v;
        v.data = words_.data();
        v.size = count_;
        v.codec = codec_;
        v.quant = quant_;
        return v;
    }

    /// Affine int8 parameters covering the finite values of @p values:
    /// zero at the range midpoint, scale spanning the range over the 254
    /// interior steps.  Degenerate ranges (empty, all non-finite, or a
    /// single point) get scale 1 so the params are always valid.
    static QuantParams fit_quant(const std::vector<float>& values);

  private:
    Codec codec_;
    QuantParams quant_;
    std::int64_t count_;
    std::vector<std::int32_t> words_;
};

}  // namespace paraprox::data
