/// @file
/// PrecisionPlan: one per-buffer storage-precision assignment — the unit
/// the data tier enumerates (transforms/precision_tx), calibrates
/// (runtime/data_tier), persists (store, ArtifactKind::PrecisionCalibration)
/// and serves.  Buffers not named by a plan stay exact, so the empty plan
/// is the mandatory all-fp32 fallback.

#pragma once

#include <string>
#include <vector>

#include "data/codec.h"

namespace paraprox::data {

/// One buffer's storage codec within a plan.  Quantization parameters are
/// only meaningful for Codec::Int8 (identity defaults otherwise); they are
/// fitted during calibration and persisted so a warm start needs no
/// re-fitting run.
struct PrecisionAssignment {
    std::string buffer;  ///< Kernel parameter name.
    Codec codec = Codec::Exact;
    QuantParams quant;
};

/// A complete precision assignment for one kernel launch.
struct PrecisionPlan {
    std::string label;  ///< e.g. "data[all:bf16]" or "data[in:int8]".
    std::vector<PrecisionAssignment> assignments;

    bool
    all_exact() const
    {
        return assignments.empty();
    }

    /// Monotone aggressiveness for tuner backoff ordering: total codec
    /// rank across assignments (all-exact is 0).
    int
    aggressiveness() const
    {
        int rank = 0;
        for (const auto& a : assignments)
            rank += codec_rank(a.codec);
        return rank;
    }
};

/// Canonical label for a uniform plan ("data[all:bf16]") or a
/// single-buffer plan ("data[in:int8]").
inline std::string
plan_label(const std::string& scope, Codec codec)
{
    return "data[" + scope + ":" + to_string(codec) + "]";
}

}  // namespace paraprox::data
