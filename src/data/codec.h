/// @file
/// Storage codecs for the approximate data tier: lossy fixed-width
/// encodings of fp32 elements that trade mantissa (or dynamic range) for
/// memory footprint.  A packed buffer stores `storage_bytes(codec)` bytes
/// per logical element instead of 4; the VM decodes on Ld and encodes on
/// St, so kernels see ordinary floats while the memory system moves fewer
/// bytes (Akiyama's approximate-memory data partitioning, arXiv
/// 2004.01637; QDOT's bounded-error mixed precision, arXiv 2105.00115).
///
/// This header is intentionally dependency-free (and header-only) so the
/// VM hot loop can inline the codec paths without the vm library linking
/// against paraprox_data; everything stateful (PackedBuffer, safety
/// analysis, plan enumeration) lives in the data library proper.
///
/// Codec specifications (all conversions are defined for every input bit
/// pattern — no UB — and round-trip deterministically):
///
///   Fp24  sign + 8-bit exponent + 15-bit mantissa: fp32 with the low 8
///         mantissa bits dropped, round-to-nearest-even, stored as 3
///         bytes.  Finite values that would round up to infinity
///         saturate to the largest finite fp24; NaN stays NaN.
///   Bf16  bfloat16 (top half of fp32), round-to-nearest-even.  Finite
///         overflow saturates to +-3.3895e38 (0x7f7f); NaN stays NaN.
///   Fp16  IEEE binary16, round-to-nearest-even, denormals supported.
///         Finite values beyond +-65504 saturate to +-65504 (not Inf,
///         so packing cannot manufacture non-finite outputs from finite
///         data); true +-Inf is preserved; NaN stays NaN.
///   Int8  affine quantization: stored q in [-128, 127] approximates
///         real ~= scale * q + zero.  Encoding clamps to the
///         representable range; NaN encodes as q = 0 (decoding to
///         `zero`), +Inf as 127, -Inf as -128.  `scale` must be finite
///         and > 0 (PackedBuffer enforces).
///
/// Concurrency: elements of all codecs occupy disjoint byte ranges, and
/// every encode/decode touches only its own element's bytes (memcpy on
/// the unsigned-char view of the word array), so concurrent work-items
/// writing *different* elements never race even when those elements share
/// a 32-bit storage word.

#pragma once

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>

namespace paraprox::data {

/// Storage precision of one buffer.  Values are part of the on-disk
/// precision-calibration format; do not renumber.
enum class Codec : std::uint8_t {
    Exact = 0,  ///< fp32 words, bit-for-bit (the default tier).
    Fp24 = 1,   ///< 3-byte dropped-mantissa fp32.
    Bf16 = 2,   ///< 2-byte bfloat16.
    Fp16 = 3,   ///< 2-byte IEEE binary16.
    Int8 = 4,   ///< 1-byte affine-quantized.
};

constexpr int kNumCodecs = 5;

/// Bytes one logical element occupies in packed storage.
constexpr int
storage_bytes(Codec codec)
{
    switch (codec) {
      case Codec::Exact: return 4;
      case Codec::Fp24: return 3;
      case Codec::Bf16: return 2;
      case Codec::Fp16: return 2;
      case Codec::Int8: return 1;
    }
    return 4;
}

/// 32-bit words needed to store @p count packed elements (the backing
/// allocation stays a word array so views keep a std::int32_t* base).
constexpr std::int64_t
packed_words(Codec codec, std::int64_t count)
{
    const std::int64_t bytes = count * storage_bytes(codec);
    return (bytes + 3) / 4;
}

constexpr const char*
to_string(Codec codec)
{
    switch (codec) {
      case Codec::Exact: return "fp32";
      case Codec::Fp24: return "fp24";
      case Codec::Bf16: return "bf16";
      case Codec::Fp16: return "fp16";
      case Codec::Int8: return "int8";
    }
    return "?";
}

/// How aggressively a codec degrades storage, for variant ordering: one
/// rank per dropped byte, with int8's range clamp ranked past fp16.
constexpr int
codec_rank(Codec codec)
{
    switch (codec) {
      case Codec::Exact: return 0;
      case Codec::Fp24: return 1;
      case Codec::Bf16: return 2;
      case Codec::Fp16: return 3;
      case Codec::Int8: return 4;
    }
    return 0;
}

namespace detail {

/// Round-to-nearest-even truncation of the low @p drop bits of @p bits,
/// saturating finite values whose round-up would overflow into the
/// infinity encoding.  Works for any fp32-layout truncation (bf16 drops
/// 16, fp24 drops 8).
inline std::uint32_t
truncate_fp32_rne(std::uint32_t bits, int drop)
{
    const std::uint32_t exp_mask = 0x7f800000u;
    if ((bits & exp_mask) == exp_mask) {
        // Inf or NaN: keep the class.  Force a kept-region mantissa bit
        // for NaN so dropping the payload's low bits cannot turn it into
        // an infinity.
        if ((bits & 0x007fffffu) != 0)
            bits |= 0x00400000u;  // quiet-NaN bit survives any truncation
        return bits >> drop << drop;
    }
    const std::uint32_t keep_mask = ~std::uint32_t{0} << drop;
    const std::uint32_t half = 1u << (drop - 1);
    const std::uint32_t trail = bits & ~keep_mask;
    std::uint32_t kept = bits & keep_mask;
    // Ties to even: round up when above half, or exactly half with the
    // lowest kept bit set.
    if (trail > half || (trail == half && (bits & (1u << drop))))
        kept += 1u << drop;
    if ((kept & exp_mask) == exp_mask) {
        // A finite value rounded up into the infinity encoding: saturate
        // to the largest finite truncated value instead (exponent 0xFE,
        // every kept mantissa bit set).
        kept = (bits & 0x80000000u) | (0x7f7fffffu & keep_mask);
    }
    return kept;
}

/// fp32 -> IEEE binary16 bits, round-to-nearest-even, finite saturation.
inline std::uint16_t
fp32_to_fp16(float value)
{
    const std::uint32_t bits = std::bit_cast<std::uint32_t>(value);
    const std::uint32_t sign = (bits >> 16) & 0x8000u;
    const std::uint32_t abs = bits & 0x7fffffffu;

    if (abs >= 0x7f800000u) {
        // Inf / NaN.
        if (abs > 0x7f800000u)
            return static_cast<std::uint16_t>(sign | 0x7e00u);  // qNaN
        return static_cast<std::uint16_t>(sign | 0x7c00u);      // +-Inf
    }
    // Largest finite fp16 is 65504 = 0x477fe000 in fp32; anything that
    // would round beyond it saturates to the max finite half.
    if (abs >= 0x477ff000u)
        return static_cast<std::uint16_t>(sign | 0x7bffu);
    if (abs < 0x33000001u) {
        // Below half the smallest subnormal (2^-25): rounds to +-0.
        return static_cast<std::uint16_t>(sign);
    }
    if (abs < 0x38800000u) {
        // Subnormal half: value * 2^24 is an exact integer + fraction in
        // [1, 2^11); round it to nearest even.
        const float scaled =
            std::bit_cast<float>(abs) * 16777216.0f;  // 2^24
        const std::uint32_t q = static_cast<std::uint32_t>(scaled);
        const float rem = scaled - static_cast<float>(q);
        std::uint32_t mant = q;
        if (rem > 0.5f || (rem == 0.5f && (q & 1u)))
            ++mant;
        return static_cast<std::uint16_t>(sign | mant);
    }
    // Normal range: rebias exponent (127 -> 15) and round 23 -> 10
    // mantissa bits to nearest even.
    const std::uint32_t exp = abs >> 23;
    const std::uint32_t mant = abs & 0x007fffffu;
    std::uint32_t half = ((exp - 112u) << 10) | (mant >> 13);
    const std::uint32_t trail = mant & 0x1fffu;
    if (trail > 0x1000u || (trail == 0x1000u && (half & 1u)))
        ++half;  // may carry into the exponent; 0x477ff000 guard bounds it
    return static_cast<std::uint16_t>(sign | half);
}

/// IEEE binary16 bits -> fp32.
inline float
fp16_to_fp32(std::uint16_t half)
{
    const std::uint32_t sign = (static_cast<std::uint32_t>(half) & 0x8000u)
                               << 16;
    const std::uint32_t exp = (half >> 10) & 0x1fu;
    const std::uint32_t mant = half & 0x3ffu;
    if (exp == 0) {
        if (mant == 0)
            return std::bit_cast<float>(sign);  // +-0
        // Subnormal: +-mant * 2^-24 (every such value is exact in fp32).
        const float magnitude =
            static_cast<float>(mant) * 5.9604644775390625e-8f;
        return sign != 0 ? -magnitude : magnitude;
    }
    if (exp == 0x1fu) {
        return std::bit_cast<float>(sign | 0x7f800000u |
                                    (mant != 0 ? (mant << 13) | 0x00400000u
                                               : 0u));
    }
    return std::bit_cast<float>(sign | ((exp + 112u) << 23) | (mant << 13));
}

}  // namespace detail

/// Affine parameters for Codec::Int8: real ~= scale * q + zero.
struct QuantParams {
    float scale = 1.0f;
    float zero = 0.0f;
};

/// Encode @p value under @p codec.  Returns the stored bit pattern in the
/// low `8 * storage_bytes(codec)` bits (Exact returns the fp32 bits).
inline std::uint32_t
encode_value(Codec codec, float value, const QuantParams& quant)
{
    switch (codec) {
      case Codec::Exact:
        return std::bit_cast<std::uint32_t>(value);
      case Codec::Fp24:
        return detail::truncate_fp32_rne(std::bit_cast<std::uint32_t>(value),
                                         8) >> 8;
      case Codec::Bf16:
        return detail::truncate_fp32_rne(std::bit_cast<std::uint32_t>(value),
                                         16) >> 16;
      case Codec::Fp16:
        return detail::fp32_to_fp16(value);
      case Codec::Int8: {
        if (std::isnan(value))
            return 0;
        // Clamp in the float domain before any float->int conversion so
        // out-of-range and +-Inf inputs saturate instead of invoking UB.
        float q = (value - quant.zero) / quant.scale;
        q = std::nearbyintf(q);
        if (!(q >= -128.0f))  // catches -Inf and NaN-free underflow
            q = -128.0f;
        if (q > 127.0f)
            q = 127.0f;
        return static_cast<std::uint32_t>(
                   static_cast<std::int32_t>(q)) & 0xffu;
      }
    }
    return std::bit_cast<std::uint32_t>(value);
}

/// Decode the stored bit pattern @p stored (low bits) back to fp32.
inline float
decode_value(Codec codec, std::uint32_t stored, const QuantParams& quant)
{
    switch (codec) {
      case Codec::Exact:
        return std::bit_cast<float>(stored);
      case Codec::Fp24:
        return std::bit_cast<float>(stored << 8);
      case Codec::Bf16:
        return std::bit_cast<float>(stored << 16);
      case Codec::Fp16:
        return detail::fp16_to_fp32(static_cast<std::uint16_t>(stored));
      case Codec::Int8: {
        const auto q = static_cast<std::int32_t>(
            static_cast<std::int8_t>(stored & 0xffu));
        return quant.scale * static_cast<float>(q) + quant.zero;
      }
    }
    return std::bit_cast<float>(stored);
}

/// Read element @p index of a packed array based at @p words.
inline float
load_element(Codec codec, const std::int32_t* words, std::int64_t index,
             const QuantParams& quant)
{
    const int width = storage_bytes(codec);
    const auto* bytes = reinterpret_cast<const unsigned char*>(words) +
                        index * width;
    std::uint32_t stored = 0;
    std::memcpy(&stored, bytes, static_cast<std::size_t>(width));
    return decode_value(codec, stored, quant);
}

/// Write element @p index of a packed array based at @p words.  Touches
/// only the element's own bytes (see the concurrency note above).
inline void
store_element(Codec codec, std::int32_t* words, std::int64_t index,
              float value, const QuantParams& quant)
{
    const int width = storage_bytes(codec);
    auto* bytes = reinterpret_cast<unsigned char*>(words) + index * width;
    const std::uint32_t stored = encode_value(codec, value, quant);
    std::memcpy(bytes, &stored, static_cast<std::size_t>(width));
}

}  // namespace paraprox::data
