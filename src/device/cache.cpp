#include "device/cache.h"

#include "support/error.h"

namespace paraprox::device {

CacheSim::CacheSim(std::int64_t size_bytes, int line_bytes,
                   int associativity)
    : line_bytes_(line_bytes), associativity_(associativity)
{
    PARAPROX_CHECK(line_bytes > 0 && associativity > 0 && size_bytes > 0,
                   "cache parameters must be positive");
    PARAPROX_CHECK(size_bytes % (static_cast<std::int64_t>(line_bytes) *
                                 associativity) == 0,
                   "cache size must be divisible by line*assoc");
    num_sets_ = size_bytes / (static_cast<std::int64_t>(line_bytes) *
                              associativity);
    ways_.resize(num_sets_ * associativity);
}

bool
CacheSim::access(std::int64_t addr)
{
    const std::int64_t line = addr / line_bytes_;
    const std::int64_t set = line % num_sets_;
    Way* set_ways = &ways_[set * associativity_];
    ++tick_;

    // Hit?
    for (int w = 0; w < associativity_; ++w) {
        if (set_ways[w].tag == line) {
            set_ways[w].last_used = tick_;
            ++hits_;
            return true;
        }
    }

    // Miss: evict LRU.
    int victim = 0;
    for (int w = 1; w < associativity_; ++w) {
        if (set_ways[w].last_used < set_ways[victim].last_used)
            victim = w;
    }
    set_ways[victim].tag = line;
    set_ways[victim].last_used = tick_;
    ++misses_;
    return false;
}

void
CacheSim::reset()
{
    for (auto& way : ways_) {
        way.tag = -1;
        way.last_used = 0;
    }
    tick_ = hits_ = misses_ = 0;
}

}  // namespace paraprox::device
