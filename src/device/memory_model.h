/// @file
/// Memory-traffic pricing: per-work-group listeners batch warp accesses
/// into transactions; persistent per-SM cache domains (shared by all the
/// groups scheduled onto that SM, exactly like a real L1) price each
/// transaction.

#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <vector>

#include "device/cache.h"
#include "device/device_model.h"
#include "exec/launch.h"

namespace paraprox::device {

/// One modeled SM's caches (L1 + constant), shared by every work-group
/// assigned to that SM and persisting across groups within one launch.
class CacheDomain {
  public:
    explicit CacheDomain(const DeviceModel& device);

    /// Probe the L1 for @p addr; returns true on hit.  Thread-safe.
    bool access_l1(std::int64_t addr);

    /// Probe the constant cache.  Thread-safe.
    bool access_constant(std::int64_t addr);

  private:
    std::mutex mutex_;
    CacheSim l1_;
    CacheSim constant_;
};

/// Prices the memory accesses of one work-group.
///
/// Work-items of a group execute sequentially, so accesses belonging to the
/// same warp arrive contiguously; the listener batches the addresses each
/// static instruction touches within one warp and, when the warp changes,
/// "issues" them: distinct cache lines become transactions (probing the
/// SM's cache domain), and transactions beyond the coalesced minimum are
/// charged the uncoalesced penalty.  Constant-space accesses serialize per
/// distinct address within the warp (broadcast hardware); shared-space
/// accesses are flat-cost scratchpad traffic.
class GroupMemoryListener : public vm::MemoryListener {
  public:
    GroupMemoryListener(const DeviceModel& device, CacheDomain* domain);

    void on_access(int instr_index, int buffer_slot, ir::AddrSpace space,
                   std::int64_t element, bool is_store,
                   std::int64_t global_linear_id) override;

    /// Issue all pending warp batches; called before reading cost().
    void flush();

    const CostBreakdown& cost() const { return cost_; }

  private:
    struct PendingWarp {
        std::int64_t warp = -1;
        ir::AddrSpace space = ir::AddrSpace::Global;
        std::set<std::int64_t> lines;
        std::set<std::int64_t> addrs;
        int accesses = 0;
    };

    void issue(PendingWarp& pending);

    const DeviceModel& device_;
    CacheDomain* domain_;
    std::map<int, PendingWarp> pending_;  ///< Keyed by static instruction.
    CostBreakdown cost_;
};

/// Aggregates group listeners into one launch-level cost; plug into
/// exec::launch as the observer.  Groups are distributed round-robin over
/// memory_lanes cache domains (the modeled SMs / cores).
class MemoryCostObserver : public exec::LaunchObserver {
  public:
    explicit MemoryCostObserver(const DeviceModel& device);

    std::unique_ptr<vm::MemoryListener>
    make_group_listener(std::int64_t group_linear) override;

    void on_group_complete(vm::MemoryListener& listener) override;

    const CostBreakdown& memory_cost() const { return total_; }

  private:
    const DeviceModel& device_;
    std::vector<std::unique_ptr<CacheDomain>> domains_;
    CostBreakdown total_;
};

/// A launch priced by a device model.
struct ModeledResult {
    exec::LaunchResult launch;
    CostBreakdown cost;       ///< Compute + atomic + memory combined.
    double cycles = 0.0;      ///< modeled_cycles(device, cost).
};

/// Run @p program under @p device's cost model.
ModeledResult run_modeled(const vm::Program& program,
                          const exec::ArgPack& args,
                          const exec::LaunchConfig& config,
                          const DeviceModel& device);

}  // namespace paraprox::device
