/// @file
/// Memory-traffic pricing: per-work-group listeners batch warp accesses
/// into transactions; persistent per-SM cache domains (shared by all the
/// groups scheduled onto that SM, exactly like a real L1) price each
/// transaction.
///
/// Groups execute concurrently on the host thread pool, but cache
/// hit/miss pricing must not depend on the host's thread schedule —
/// calibration decisions and the joint pipeline search are specified to
/// be deterministic for a fixed program and input.  Listeners therefore
/// *record* their cache probes during execution and the observer replays
/// every group's stream into its SM's cache domain in canonical
/// group-linear order once the launch completes, i.e. pricing models a
/// fixed round-robin SM schedule rather than whatever interleaving the
/// host happened to produce.

#pragma once

#include <map>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "device/cache.h"
#include "device/device_model.h"
#include "exec/launch.h"

namespace paraprox::device {

/// One modeled SM's caches (L1 + constant), shared by every work-group
/// assigned to that SM and persisting across groups within one launch.
/// Probed only from the single-threaded post-launch replay.
class CacheDomain {
  public:
    explicit CacheDomain(const DeviceModel& device);

    /// Probe the L1 for @p addr; returns true on hit.
    bool access_l1(std::int64_t addr);

    /// Probe the constant cache.
    bool access_constant(std::int64_t addr);

  private:
    CacheSim l1_;
    CacheSim constant_;
};

/// One recorded cache probe: a transaction whose cost depends on cache
/// state and is therefore priced at replay time, not at record time.
struct CacheProbe {
    std::int64_t addr = 0;
    bool constant = false;  ///< Constant cache vs. L1.
};

/// Prices the memory accesses of one work-group.
///
/// Work-items of a group execute sequentially, so accesses belonging to the
/// same warp arrive contiguously; the listener batches the addresses each
/// static instruction touches within one warp and, when the warp changes,
/// "issues" them: distinct cache lines become transactions, and
/// transactions beyond the coalesced minimum are charged the uncoalesced
/// penalty.  Constant-space accesses serialize per distinct address within
/// the warp (broadcast hardware); shared-space accesses are flat-cost
/// scratchpad traffic.  Cache-state-dependent cost (hit vs. miss cycles)
/// is deferred: issued transactions are recorded as CacheProbes for the
/// observer's deterministic replay.
class GroupMemoryListener : public vm::MemoryListener {
  public:
    GroupMemoryListener(const DeviceModel& device,
                        std::int64_t group_linear);

    void on_access(int instr_index, int buffer_slot, ir::AddrSpace space,
                   std::int64_t element, bool is_store,
                   std::int64_t global_linear_id, int elem_bytes) override;

    /// Issue all pending warp batches; called before reading cost().
    void flush();

    /// Schedule-independent cost: shared traffic, transaction counts and
    /// coalescing penalties.  Cache hit/miss cycles are added by the
    /// observer's replay.
    const CostBreakdown& cost() const { return cost_; }

    std::int64_t group_linear() const { return group_linear_; }
    std::vector<CacheProbe> take_probes() { return std::move(probes_); }

  private:
    struct PendingWarp {
        std::int64_t warp = -1;
        ir::AddrSpace space = ir::AddrSpace::Global;
        std::set<std::int64_t> lines;
        std::set<std::int64_t> addrs;
        int accesses = 0;
        std::int64_t bytes = 0;  ///< Payload bytes (codec-aware).
    };

    void issue(PendingWarp& pending);

    const DeviceModel& device_;
    const std::int64_t group_linear_;
    std::map<int, PendingWarp> pending_;  ///< Keyed by static instruction.
    std::vector<CacheProbe> probes_;      ///< In issue order.
    CostBreakdown cost_;
};

/// Aggregates group listeners into one launch-level cost; plug into
/// exec::launch as the observer.  Groups are distributed round-robin over
/// memory_lanes cache domains (the modeled SMs / cores); their recorded
/// probe streams are replayed in group-linear order by memory_cost(), so
/// the priced hit/miss sequence is identical no matter how the host
/// scheduled the groups.
class MemoryCostObserver : public exec::LaunchObserver {
  public:
    explicit MemoryCostObserver(const DeviceModel& device);

    std::unique_ptr<vm::MemoryListener>
    make_group_listener(std::int64_t group_linear) override;

    /// Serialized by the launch's merge lock (exec::launch contract).
    void on_group_complete(vm::MemoryListener& listener) override;

    /// Total memory cost of the launch.  The first call replays every
    /// completed group's cache probes in group-linear order; call only
    /// after the launch has finished.
    const CostBreakdown& memory_cost();

  private:
    const DeviceModel& device_;
    std::vector<std::unique_ptr<CacheDomain>> domains_;
    /// (group_linear, probe stream) per completed group, in completion
    /// order until replay sorts them.
    std::vector<std::pair<std::int64_t, std::vector<CacheProbe>>> streams_;
    CostBreakdown total_;
    bool replayed_ = false;
};

/// A launch priced by a device model.
struct ModeledResult {
    exec::LaunchResult launch;
    CostBreakdown cost;       ///< Compute + atomic + memory combined.
    double cycles = 0.0;      ///< modeled_cycles(device, cost).
};

/// Run @p program under @p device's cost model.
ModeledResult run_modeled(const vm::Program& program,
                          const exec::ArgPack& args,
                          const exec::LaunchConfig& config,
                          const DeviceModel& device);

}  // namespace paraprox::device
