/// @file
/// Device cost models: a GTX 560-like GPU and a Core i7-like CPU.
///
/// The paper evaluates Paraprox on real hardware; we substitute analytic
/// cost models fed by the VM's dynamic opcode counts and memory-access
/// stream.  The models capture the asymmetries the paper's evaluation
/// leans on:
///   - atomics are expensive and serializing on the GPU, cheap on the CPU
///     (Naive Bayes, §4.3);
///   - transcendentals run on GPU special-function units but are costly on
///     the CPU (Kernel Density Estimation, §4.3);
///   - float division is a slow subroutine on the GPU (Fig. 15 discussion);
///   - global memory is priced through an L1 cache simulation plus a warp
///     coalescing model (Figs. 16, 17);
///   - constant memory broadcasts but serializes divergent accesses
///     (Fig. 16);
///   - shared memory is fast but must be staged by the kernel.

#pragma once

#include <string>

#include "vm/bytecode.h"
#include "vm/vm.h"

namespace paraprox::device {

/// Per-opcode-class cycle costs.
///
/// Two instances live in every DeviceModel with different semantics:
///   - `latency`: per-instruction latencies, the paper's Eq. 1 table used
///     by the static cycles_needed estimate (values like an 18-cycle ALU
///     pipe, Wong et al.);
///   - `throughput`: per-warp-instruction issue costs used by the dynamic
///     cost model (a warp's FMA retires every cycle, its transcendentals
///     serialize over 4 SFUs, division is a long subroutine).
struct LatencyTable {
    double trivial = 1.0;
    double int_arith = 1.0;
    double float_arith = 1.0;
    double div = 8.0;
    double transcendental = 8.0;
    double heavy_transcendental = 48.0;
    double simple_math = 2.0;
    double atomic = 16.0;
    double control = 1.0;

    /// Latency of one opcode (memory ops return 0; they are priced by the
    /// memory model).
    double cycles(vm::Opcode op) const;

    /// Latency by class (memory returns 0).
    double cycles(vm::LatencyClass cls) const;
};

/// Memory-hierarchy parameters.
struct MemoryParams {
    int line_bytes = 128;
    std::int64_t l1_size_bytes = 32 * 1024;
    int l1_assoc = 8;
    /// Throughput cost per memory transaction (distinct line per warp).
    double l1_hit_cycles = 2.0;
    double l1_miss_cycles = 24.0;
    /// L1 read *latency* — the paper's Eq. 1 memoization-profitability
    /// reference ("one order of magnitude greater than the L1 read
    /// latency").
    double l1_read_latency = 18.0;

    /// Throughput cost per scratchpad access.
    double shared_cycles = 0.0625;

    std::int64_t constant_cache_bytes = 8 * 1024;
    /// Throughput cost per distinct address in a warp (broadcast hardware
    /// serializes divergent reads).
    double constant_hit_cycles = 2.0;
    double constant_miss_cycles = 24.0;

    /// Work-items per coalescing unit (GPU warp = 32; CPU = 1, i.e. no
    /// coalescing effects).
    int warp_size = 32;
    /// Extra cycles charged per additional memory transaction caused by an
    /// uncoalesced warp access.
    double uncoalesced_penalty_cycles = 24.0;
};

/// A modeled execution target.
struct DeviceModel {
    std::string name;

    /// Effective parallel lanes for compute (arithmetic cycles are divided
    /// by this).
    double compute_lanes = 1.0;
    /// Effective parallelism for memory traffic.
    double memory_lanes = 1.0;
    /// Fraction of atomic cost that serializes (1 = fully serial).
    double atomic_serialization = 1.0;

    LatencyTable latency;      ///< Eq. 1 per-instruction latencies.
    LatencyTable throughput;   ///< Dynamic cost per warp-instruction.
    MemoryParams memory;

    /// Fixed cost charged once per kernel launch (driver submission +
    /// dispatch), in the same cycle domain as the instruction tables.
    /// Defaults to 0 so existing relative-speedup pricing is unchanged;
    /// serving benchmarks set it to study launch-bound regimes, where
    /// coalescing many small same-kernel requests into one launch pays
    /// this once per batch instead of once per request.
    double launch_overhead_cycles = 0.0;

    /// GTX 560-like GPU: wide, SFU transcendentals, costly atomics and
    /// divisions, small per-SM L1, warp coalescing.
    static DeviceModel gtx560();

    /// Core i7 965-like CPU: few wide cores, cheap atomics, costly
    /// transcendentals, larger effective cache, no coalescing.
    static DeviceModel core_i7();
};

/// Cycle totals attributed to one launch.
struct CostBreakdown {
    double compute_cycles = 0.0;   ///< Arithmetic work (pre lane division).
    double atomic_cycles = 0.0;    ///< Atomic RMW cost (pre serialization).
    double memory_cycles = 0.0;    ///< Cache/coalescing-priced traffic.
    std::uint64_t transactions = 0;        ///< Memory transactions issued.
    std::uint64_t extra_transactions = 0;  ///< Above the coalesced minimum.
    /// Payload bytes moved through the priced memory hierarchy (global +
    /// constant; scratchpad traffic is excluded).  Storage codecs shrink
    /// this directly, so it is the data tier's bandwidth metric.
    std::uint64_t payload_bytes = 0;

    void
    merge(const CostBreakdown& other)
    {
        compute_cycles += other.compute_cycles;
        atomic_cycles += other.atomic_cycles;
        memory_cycles += other.memory_cycles;
        transactions += other.transactions;
        extra_transactions += other.extra_transactions;
        payload_bytes += other.payload_bytes;
    }
};

/// Convert a breakdown + device into total modeled cycles.
double modeled_cycles(const DeviceModel& device, const CostBreakdown& cost);

/// Compute-side cost of a launch from dynamic opcode counts.
CostBreakdown compute_cost(const DeviceModel& device,
                           const vm::ExecStats& stats);

}  // namespace paraprox::device
