#include "device/memory_model.h"

#include <algorithm>

namespace paraprox::device {

namespace {

/// Distinct simulated byte address per (buffer slot, element).  Packed
/// buffers place elements `elem_bytes` apart, so a warp's worth of
/// consecutive packed elements spans proportionally fewer cache lines —
/// that density is precisely the data tier's priced benefit.
std::int64_t
element_address(int buffer_slot, std::int64_t element, int elem_bytes)
{
    // Give each buffer its own 1 GiB window so different buffers never
    // alias in the cache simulators.
    return (static_cast<std::int64_t>(buffer_slot) + 1) * (1ll << 30) +
           element * elem_bytes;
}

}  // namespace

CacheDomain::CacheDomain(const DeviceModel& device)
    : l1_(device.memory.l1_size_bytes, device.memory.line_bytes,
          device.memory.l1_assoc),
      constant_(device.memory.constant_cache_bytes,
                device.memory.line_bytes, device.memory.l1_assoc)
{
}

bool
CacheDomain::access_l1(std::int64_t addr)
{
    return l1_.access(addr);
}

bool
CacheDomain::access_constant(std::int64_t addr)
{
    return constant_.access(addr);
}

GroupMemoryListener::GroupMemoryListener(const DeviceModel& device,
                                         std::int64_t group_linear)
    : device_(device), group_linear_(group_linear)
{
}

void
GroupMemoryListener::on_access(int instr_index, int buffer_slot,
                               ir::AddrSpace space, std::int64_t element,
                               bool is_store, std::int64_t global_linear_id,
                               int elem_bytes)
{
    (void)is_store;
    if (space == ir::AddrSpace::Shared) {
        // Scratchpad: flat latency, no coalescing rules.
        cost_.memory_cycles += device_.memory.shared_cycles;
        ++cost_.transactions;
        return;
    }

    const std::int64_t addr =
        element_address(buffer_slot, element, elem_bytes);
    const std::int64_t warp = global_linear_id / device_.memory.warp_size;

    PendingWarp& pending = pending_[instr_index];
    if (pending.warp != warp) {
        if (pending.warp >= 0)
            issue(pending);
        pending.warp = warp;
        pending.space = space;
        pending.lines.clear();
        pending.addrs.clear();
        pending.accesses = 0;
        pending.bytes = 0;
    }
    pending.lines.insert(addr / device_.memory.line_bytes);
    // Multi-byte elements can straddle a line boundary; charge the tail
    // line too so a packed element is never priced cheaper than the lines
    // it actually touches.
    if (elem_bytes > 1) {
        pending.lines.insert((addr + elem_bytes - 1) /
                             device_.memory.line_bytes);
    }
    pending.addrs.insert(addr);
    ++pending.accesses;
    pending.bytes += elem_bytes;
}

void
GroupMemoryListener::issue(PendingWarp& pending)
{
    const MemoryParams& mem = device_.memory;
    cost_.payload_bytes += static_cast<std::uint64_t>(pending.bytes);
    if (pending.space == ir::AddrSpace::Constant) {
        // Broadcast hardware: one probe per distinct address in the warp —
        // divergent table lookups serialize.  Hit/miss cycles are priced
        // at replay.
        for (std::int64_t addr : pending.addrs) {
            probes_.push_back({addr, /*constant=*/true});
            ++cost_.transactions;
        }
        return;
    }

    // Global memory: distinct lines become transactions through the L1.
    // Which of them hit depends on cache state, so they are recorded for
    // the deterministic replay; the transaction and coalescing accounting
    // below depends only on this group's own accesses.
    const auto accessed_lines =
        static_cast<std::uint64_t>(pending.lines.size());
    for (std::int64_t line : pending.lines)
        probes_.push_back({line * mem.line_bytes, /*constant=*/false});
    cost_.transactions += accessed_lines;

    // Coalescing: a warp moving B payload bytes from base-line offset
    // `off` needs at least ceil((off + B) / line) transactions when
    // dense — sub-word codecs (fp24's 3-byte elements) cannot sit on the
    // line grid, and a dense-but-misaligned warp is extra traffic, not
    // divergence.  Packed codecs shrink B, so their dense ideal (and
    // with it the priced penalty) drops proportionally.
    const std::uint64_t offset = static_cast<std::uint64_t>(
        *pending.addrs.begin() % mem.line_bytes);
    const std::uint64_t ideal =
        (offset + static_cast<std::uint64_t>(pending.bytes) +
         mem.line_bytes - 1) /
        mem.line_bytes;
    if (accessed_lines > ideal) {
        const std::uint64_t extra = accessed_lines - ideal;
        cost_.extra_transactions += extra;
        cost_.memory_cycles += static_cast<double>(extra) *
                               mem.uncoalesced_penalty_cycles;
    }
}

void
GroupMemoryListener::flush()
{
    for (auto& [instr, pending] : pending_) {
        if (pending.warp >= 0)
            issue(pending);
        pending.warp = -1;
    }
}

MemoryCostObserver::MemoryCostObserver(const DeviceModel& device)
    : device_(device)
{
    const int num_domains =
        std::max(1, static_cast<int>(device.memory_lanes));
    domains_.reserve(num_domains);
    for (int d = 0; d < num_domains; ++d)
        domains_.push_back(std::make_unique<CacheDomain>(device));
}

std::unique_ptr<vm::MemoryListener>
MemoryCostObserver::make_group_listener(std::int64_t group_linear)
{
    return std::make_unique<GroupMemoryListener>(device_, group_linear);
}

void
MemoryCostObserver::on_group_complete(vm::MemoryListener& listener)
{
    auto& group = static_cast<GroupMemoryListener&>(listener);
    group.flush();
    total_.merge(group.cost());
    streams_.emplace_back(group.group_linear(), group.take_probes());
}

const CostBreakdown&
MemoryCostObserver::memory_cost()
{
    if (replayed_)
        return total_;
    replayed_ = true;

    // Replay every group's probe stream into its SM's caches in
    // group-linear order: the canonical schedule.  Completion order (and
    // with it the host thread count) cannot change the priced cost.
    std::sort(streams_.begin(), streams_.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    const MemoryParams& mem = device_.memory;
    for (const auto& [group_linear, probes] : streams_) {
        CacheDomain& domain =
            *domains_[static_cast<std::size_t>(group_linear) %
                      domains_.size()];
        for (const CacheProbe& probe : probes) {
            if (probe.constant) {
                const bool hit = domain.access_constant(probe.addr);
                total_.memory_cycles += hit ? mem.constant_hit_cycles
                                            : mem.constant_miss_cycles;
            } else {
                const bool hit = domain.access_l1(probe.addr);
                total_.memory_cycles +=
                    hit ? mem.l1_hit_cycles : mem.l1_miss_cycles;
            }
        }
    }
    streams_.clear();
    return total_;
}

ModeledResult
run_modeled(const vm::Program& program, const exec::ArgPack& args,
            const exec::LaunchConfig& config, const DeviceModel& device)
{
    MemoryCostObserver observer(device);
    ModeledResult result;
    result.launch = exec::launch(program, args, config, &observer);
    result.cost = compute_cost(device, result.launch.stats);
    result.cost.merge(observer.memory_cost());
    result.cycles = modeled_cycles(device, result.cost) +
                    device.launch_overhead_cycles;
    return result;
}

}  // namespace paraprox::device
