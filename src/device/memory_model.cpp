#include "device/memory_model.h"

#include <algorithm>

namespace paraprox::device {

namespace {

/// Distinct simulated byte address per (buffer slot, element).
std::int64_t
element_address(int buffer_slot, std::int64_t element)
{
    // Give each buffer its own 1 GiB window so different buffers never
    // alias in the cache simulators.
    return (static_cast<std::int64_t>(buffer_slot) + 1) * (1ll << 30) +
           element * 4;
}

}  // namespace

CacheDomain::CacheDomain(const DeviceModel& device)
    : l1_(device.memory.l1_size_bytes, device.memory.line_bytes,
          device.memory.l1_assoc),
      constant_(device.memory.constant_cache_bytes,
                device.memory.line_bytes, device.memory.l1_assoc)
{
}

bool
CacheDomain::access_l1(std::int64_t addr)
{
    std::lock_guard<std::mutex> lock(mutex_);
    return l1_.access(addr);
}

bool
CacheDomain::access_constant(std::int64_t addr)
{
    std::lock_guard<std::mutex> lock(mutex_);
    return constant_.access(addr);
}

GroupMemoryListener::GroupMemoryListener(const DeviceModel& device,
                                         CacheDomain* domain)
    : device_(device), domain_(domain)
{
}

void
GroupMemoryListener::on_access(int instr_index, int buffer_slot,
                               ir::AddrSpace space, std::int64_t element,
                               bool is_store, std::int64_t global_linear_id)
{
    (void)is_store;
    if (space == ir::AddrSpace::Shared) {
        // Scratchpad: flat latency, no coalescing rules.
        cost_.memory_cycles += device_.memory.shared_cycles;
        ++cost_.transactions;
        return;
    }

    const std::int64_t addr = element_address(buffer_slot, element);
    const std::int64_t warp = global_linear_id / device_.memory.warp_size;

    PendingWarp& pending = pending_[instr_index];
    if (pending.warp != warp) {
        if (pending.warp >= 0)
            issue(pending);
        pending.warp = warp;
        pending.space = space;
        pending.lines.clear();
        pending.addrs.clear();
        pending.accesses = 0;
    }
    pending.lines.insert(addr / device_.memory.line_bytes);
    pending.addrs.insert(addr);
    ++pending.accesses;
}

void
GroupMemoryListener::issue(PendingWarp& pending)
{
    const MemoryParams& mem = device_.memory;
    if (pending.space == ir::AddrSpace::Constant) {
        // Broadcast hardware: one probe per distinct address in the warp —
        // divergent table lookups serialize.
        for (std::int64_t addr : pending.addrs) {
            const bool hit = domain_->access_constant(addr);
            cost_.memory_cycles += hit ? mem.constant_hit_cycles
                                       : mem.constant_miss_cycles;
            ++cost_.transactions;
        }
        return;
    }

    // Global memory: distinct lines become transactions through the L1.
    const auto accessed_lines =
        static_cast<std::uint64_t>(pending.lines.size());
    for (std::int64_t line : pending.lines) {
        const bool hit = domain_->access_l1(line * mem.line_bytes);
        cost_.memory_cycles += hit ? mem.l1_hit_cycles : mem.l1_miss_cycles;
    }
    cost_.transactions += accessed_lines;

    // Coalescing: a warp of N 4-byte accesses needs at least
    // ceil(4N / line) transactions when dense.
    const std::uint64_t ideal =
        (static_cast<std::uint64_t>(pending.accesses) * 4 + mem.line_bytes -
         1) / mem.line_bytes;
    if (accessed_lines > ideal) {
        const std::uint64_t extra = accessed_lines - ideal;
        cost_.extra_transactions += extra;
        cost_.memory_cycles += static_cast<double>(extra) *
                               mem.uncoalesced_penalty_cycles;
    }
}

void
GroupMemoryListener::flush()
{
    for (auto& [instr, pending] : pending_) {
        if (pending.warp >= 0)
            issue(pending);
        pending.warp = -1;
    }
}

MemoryCostObserver::MemoryCostObserver(const DeviceModel& device)
    : device_(device)
{
    const int num_domains =
        std::max(1, static_cast<int>(device.memory_lanes));
    domains_.reserve(num_domains);
    for (int d = 0; d < num_domains; ++d)
        domains_.push_back(std::make_unique<CacheDomain>(device));
}

std::unique_ptr<vm::MemoryListener>
MemoryCostObserver::make_group_listener(std::int64_t group_linear)
{
    CacheDomain* domain =
        domains_[group_linear % domains_.size()].get();
    return std::make_unique<GroupMemoryListener>(device_, domain);
}

void
MemoryCostObserver::on_group_complete(vm::MemoryListener& listener)
{
    auto& group = static_cast<GroupMemoryListener&>(listener);
    group.flush();
    total_.merge(group.cost());
}

ModeledResult
run_modeled(const vm::Program& program, const exec::ArgPack& args,
            const exec::LaunchConfig& config, const DeviceModel& device)
{
    MemoryCostObserver observer(device);
    ModeledResult result;
    result.launch = exec::launch(program, args, config, &observer);
    result.cost = compute_cost(device, result.launch.stats);
    result.cost.merge(observer.memory_cost());
    result.cycles = modeled_cycles(device, result.cost);
    return result;
}

}  // namespace paraprox::device
