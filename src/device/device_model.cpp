#include "device/device_model.h"

namespace paraprox::device {

double
LatencyTable::cycles(vm::LatencyClass cls) const
{
    switch (cls) {
      case vm::LatencyClass::Trivial: return trivial;
      case vm::LatencyClass::IntArith: return int_arith;
      case vm::LatencyClass::FloatArith: return float_arith;
      case vm::LatencyClass::Div: return div;
      case vm::LatencyClass::Transcendental: return transcendental;
      case vm::LatencyClass::HeavyTranscendental:
        return heavy_transcendental;
      case vm::LatencyClass::SimpleMath: return simple_math;
      case vm::LatencyClass::Memory: return 0.0;
      case vm::LatencyClass::Atomic: return atomic;
      case vm::LatencyClass::Control: return control;
    }
    return 0.0;
}

double
LatencyTable::cycles(vm::Opcode op) const
{
    return cycles(vm::latency_class(op));
}

DeviceModel
DeviceModel::gtx560()
{
    DeviceModel model;
    model.name = "GTX560";
    // Dynamic costs are per warp-instruction; a warp is 32 lanes wide and
    // 7 SMs run warps concurrently, so compute_lanes spreads per-item
    // counts over 32 x 7.
    model.compute_lanes = 224.0;
    model.memory_lanes = 7.0;      // one L1 port per SM
    model.atomic_serialization = 1.0;

    // Wong et al. microbenchmark-flavoured *latencies* (Eq. 1):
    // ~18-cycle ALU pipes, SFU-served transcendentals, float division as
    // an expensive software subroutine, serializing atomics.
    model.latency.trivial = 4.0;
    model.latency.int_arith = 18.0;
    model.latency.float_arith = 18.0;
    model.latency.div = 280.0;
    model.latency.transcendental = 45.0;
    model.latency.heavy_transcendental = 160.0;
    model.latency.simple_math = 30.0;
    model.latency.atomic = 180.0;
    model.latency.control = 4.0;

    // Throughput: FMA-class ops retire once per warp-cycle; the 4 SFUs
    // serve a warp's transcendentals in ~8 cycles; division is a long
    // software subroutine; atomics mostly serialize at the L2.
    model.throughput.trivial = 1.0;
    model.throughput.int_arith = 1.0;
    model.throughput.float_arith = 1.0;
    model.throughput.div = 48.0;
    model.throughput.transcendental = 16.0;
    model.throughput.heavy_transcendental = 110.0;  // polynomial + log
    model.throughput.simple_math = 12.0;
    model.throughput.atomic = 40.0;
    model.throughput.control = 1.0;

    model.memory.line_bytes = 128;
    model.memory.l1_size_bytes = 32 * 1024;  // per-SM L1 (configurable)
    model.memory.l1_assoc = 8;
    model.memory.l1_hit_cycles = 2.0;
    model.memory.l1_miss_cycles = 24.0;
    model.memory.l1_read_latency = 18.0;
    model.memory.shared_cycles = 0.0625;  // 2 cycles/warp over 32 lanes
    model.memory.constant_cache_bytes = 8 * 1024;
    model.memory.constant_hit_cycles = 2.0;
    model.memory.constant_miss_cycles = 24.0;
    model.memory.warp_size = 32;
    model.memory.uncoalesced_penalty_cycles = 1.0;
    return model;
}

DeviceModel
DeviceModel::core_i7()
{
    DeviceModel model;
    model.name = "Core i7";
    model.compute_lanes = 16.0;    // 4 cores x 4-wide SSE
    model.memory_lanes = 4.0;      // one load port per core
    model.atomic_serialization = 0.2;

    model.latency.trivial = 1.0;
    model.latency.int_arith = 1.0;
    model.latency.float_arith = 3.0;
    model.latency.div = 22.0;
    model.latency.transcendental = 80.0;  // libm software paths
    model.latency.heavy_transcendental = 250.0;
    model.latency.simple_math = 15.0;
    model.latency.atomic = 20.0;
    model.latency.control = 1.0;

    // Throughput: superscalar ALUs are cheap; libm transcendentals cost
    // tens of cycles even pipelined; atomics are an L1-local lock.
    model.throughput.trivial = 0.25;
    model.throughput.int_arith = 0.5;
    model.throughput.float_arith = 1.0;
    model.throughput.div = 7.0;
    model.throughput.transcendental = 40.0;
    model.throughput.heavy_transcendental = 160.0;
    model.throughput.simple_math = 7.0;
    model.throughput.atomic = 15.0;
    model.throughput.control = 0.25;

    model.memory.line_bytes = 64;
    model.memory.l1_size_bytes = 32 * 1024;
    model.memory.l1_assoc = 8;
    model.memory.l1_hit_cycles = 1.0;
    model.memory.l1_miss_cycles = 10.0;   // L2/L3 behind soften misses
    model.memory.l1_read_latency = 4.0;
    model.memory.shared_cycles = 1.0;     // scratch == L1 on a CPU
    model.memory.constant_cache_bytes = 32 * 1024;
    model.memory.constant_hit_cycles = 1.0;
    model.memory.constant_miss_cycles = 10.0;
    model.memory.warp_size = 1;           // no coalescing effects
    model.memory.uncoalesced_penalty_cycles = 0.0;
    return model;
}

CostBreakdown
compute_cost(const DeviceModel& device, const vm::ExecStats& stats)
{
    CostBreakdown cost;
    for (int op = 0; op < vm::kNumOpcodes; ++op) {
        const auto count = stats.opcode_counts[op];
        if (count == 0)
            continue;
        const auto opcode = static_cast<vm::Opcode>(op);
        const auto cls = vm::latency_class(opcode);
        if (cls == vm::LatencyClass::Atomic) {
            cost.atomic_cycles += static_cast<double>(count) *
                                  device.throughput.atomic;
        } else {
            cost.compute_cycles += static_cast<double>(count) *
                                   device.throughput.cycles(cls);
        }
    }
    return cost;
}

double
modeled_cycles(const DeviceModel& device, const CostBreakdown& cost)
{
    const double compute = cost.compute_cycles / device.compute_lanes;
    const double memory = cost.memory_cycles / device.memory_lanes;
    // Atomics: the serialized fraction is charged in full, the rest rides
    // on the compute lanes.
    const double atomics =
        cost.atomic_cycles * device.atomic_serialization +
        cost.atomic_cycles * (1.0 - device.atomic_serialization) /
            device.compute_lanes;
    return compute + memory + atomics;
}

}  // namespace paraprox::device
