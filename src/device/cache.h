/// @file
/// A small set-associative LRU cache simulator.
///
/// Used by the device memory models to price global-memory and
/// constant-memory traffic: the paper's lookup-table placement study
/// (Fig. 16) and table-size study (Fig. 17) hinge on when a table stops
/// fitting in cache.

#pragma once

#include <cstdint>
#include <vector>

namespace paraprox::device {

/// Byte-addressed set-associative cache with LRU replacement.
class CacheSim {
  public:
    /// @param size_bytes total capacity; @param line_bytes line size;
    /// @param associativity ways per set.  size must be divisible by
    /// line*assoc.
    CacheSim(std::int64_t size_bytes, int line_bytes, int associativity);

    /// Access one address; returns true on hit.  Misses allocate.
    bool access(std::int64_t addr);

    /// Forget everything.
    void reset();

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    int line_bytes() const { return line_bytes_; }

  private:
    struct Way {
        std::int64_t tag = -1;
        std::uint64_t last_used = 0;
    };

    int line_bytes_;
    int associativity_;
    std::int64_t num_sets_;
    std::vector<Way> ways_;  ///< num_sets_ x associativity_.
    std::uint64_t tick_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

}  // namespace paraprox::device
