#include "analysis/purity.h"

#include "ir/visitor.h"

namespace paraprox::analysis {

using namespace ir;

PurityReport
check_purity(const ir::Module& module, const Function& function)
{
    PurityReport report;

    // Pointer parameters mean the function touches device memory.
    for (const auto& param : function.params) {
        if (param.type.is_pointer) {
            report.pure = false;
            report.reason = "takes pointer parameter `" + param.name + "`";
            return report;
        }
    }

    for_each_stmt(function, [&](const Stmt& stmt) {
        if (!report.pure)
            return;
        if (stmt.kind() == StmtKind::Store) {
            report.pure = false;
            report.reason = "writes device memory";
        } else if (stmt.kind() == StmtKind::Barrier) {
            report.pure = false;
            report.reason = "synchronizes with other work-items";
        }
    });
    if (!report.pure)
        return report;

    for_each_expr(function, [&](const Expr& expr) {
        if (!report.pure)
            return;
        switch (expr.kind()) {
          case ExprKind::Load:
            report.pure = false;
            report.reason = "reads device memory";
            break;
          case ExprKind::Call: {
            const auto& call = static_cast<const Call&>(expr);
            if (call.builtin == Builtin::None) {
                const Function* callee = module.find_function(call.callee);
                if (!callee) {
                    report.pure = false;
                    report.reason = "calls unknown function `" +
                                    call.callee + "`";
                } else {
                    PurityReport callee_report =
                        check_purity(module, *callee);
                    if (!callee_report.pure) {
                        report.pure = false;
                        report.reason = "calls impure function `" +
                                        call.callee + "` (" +
                                        callee_report.reason + ")";
                    }
                }
            } else {
                const BuiltinInfo& info = builtin_info(call.builtin);
                if (info.is_atomic) {
                    report.pure = false;
                    report.reason = std::string("uses atomic `") +
                                    info.name + "`";
                } else if (info.thread_dependent) {
                    report.pure = false;
                    report.reason = std::string("depends on work-item id (`") +
                                    info.name + "`)";
                } else if (call.builtin == Builtin::Barrier) {
                    report.pure = false;
                    report.reason = "synchronizes with other work-items";
                }
            }
            break;
          }
          default:
            break;
        }
    });
    return report;
}

bool
is_pure(const ir::Module& module, const Function& function)
{
    return check_purity(module, function).pure;
}

}  // namespace paraprox::analysis
