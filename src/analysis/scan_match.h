/// @file
/// Scan-pattern detection (paper §3.4.2).
///
/// Detecting a scan from arbitrary code is hard; the paper offers two
/// routes and we implement both:
///   1. the programmer marks the kernel with `#pragma paraprox scan`;
///   2. template matching — a recursive post-order traversal of the
///      kernel's AST is compared against the canonical data-parallel scan
///      phase-I template (Hillis-Steele over a __shared tile with
///      barriers).

#pragma once

#include <string>
#include <vector>

#include "ir/function.h"

namespace paraprox::analysis {

/// Structural signature: post-order sequence of node kind codes.  Names
/// and literal values are ignored; builtins and operators are
/// distinguished.
std::vector<int> ast_signature(const ir::Function& function);

/// ParaCL source of the canonical scan phase-I kernel used as the match
/// template.
const std::string& scan_template_source();

/// True when @p kernel is a scan: pragma-marked, or structurally equal to
/// the template.
bool is_scan_kernel(const ir::Function& kernel);

}  // namespace paraprox::analysis
