#include "analysis/patterns.h"

#include <functional>
#include <set>

#include "analysis/latency.h"
#include "analysis/purity.h"
#include "analysis/scan_match.h"
#include "ir/visitor.h"

namespace paraprox::analysis {

using namespace ir;

namespace {

/// Does the kernel read or write device memory through an index that
/// depends (directly, or through intermediate variables) on loaded data?
/// That is the scatter/gather signature: "memory accesses are random"
/// (§2).  A simple flow-insensitive taint analysis: variables assigned
/// from expressions containing loads (or other tainted variables) are
/// tainted; any Load/Store/atomic index reading a taint is data
/// dependent.
bool
has_data_dependent_access(const Function& kernel)
{
    std::set<std::string> tainted;

    std::function<bool(const Expr&)> is_tainted = [&](const Expr& e) {
        if (e.kind() == ExprKind::Load)
            return true;
        if (const auto* ref = expr_as<VarRef>(e))
            return tainted.count(ref->name) > 0;
        bool inner = false;
        switch (e.kind()) {
          case ExprKind::Unary:
            inner = is_tainted(*static_cast<const Unary&>(e).operand);
            break;
          case ExprKind::Binary: {
            const auto& binary = static_cast<const Binary&>(e);
            inner = is_tainted(*binary.lhs) || is_tainted(*binary.rhs);
            break;
          }
          case ExprKind::Call:
            for (const auto& arg : static_cast<const Call&>(e).args)
                inner = inner || is_tainted(*arg);
            break;
          case ExprKind::Cast:
            inner = is_tainted(*static_cast<const Cast&>(e).operand);
            break;
          case ExprKind::Select: {
            const auto& sel = static_cast<const Select&>(e);
            inner = is_tainted(*sel.cond) || is_tainted(*sel.if_true) ||
                    is_tainted(*sel.if_false);
            break;
          }
          default:
            break;
        }
        return inner;
    };

    // Propagate to a fixpoint (loop-carried taint needs repeat passes).
    for (int pass = 0; pass < 4; ++pass) {
        const std::size_t before = tainted.size();
        for_each_stmt(kernel, [&](const Stmt& stmt) {
            if (const auto* decl = stmt_as<Decl>(stmt)) {
                if (decl->init && is_tainted(*decl->init))
                    tainted.insert(decl->name);
            } else if (const auto* assign = stmt_as<Assign>(stmt)) {
                if (is_tainted(*assign->value))
                    tainted.insert(assign->name);
            }
        });
        if (tainted.size() == before)
            break;
    }

    bool found = false;
    for_each_expr(kernel, [&](const Expr& expr) {
        if (found)
            return;
        if (const auto* load = expr_as<Load>(expr)) {
            if (is_tainted(*load->index))
                found = true;
        } else if (const auto* call = expr_as<Call>(expr)) {
            if (is_atomic_builtin(call->builtin) &&
                is_tainted(*call->args[1])) {
                found = true;
            }
        }
    });
    for_each_stmt(kernel, [&](const Stmt& stmt) {
        if (found)
            return;
        if (const auto* store = stmt_as<Store>(stmt)) {
            if (is_tainted(*store->index))
                found = true;
        }
    });
    return found;
}

}  // namespace

std::string
to_string(PatternKind kind)
{
    switch (kind) {
      case PatternKind::Map: return "Map";
      case PatternKind::ScatterGather: return "Scatter/Gather";
      case PatternKind::Reduction: return "Reduction";
      case PatternKind::Scan: return "Scan";
      case PatternKind::Stencil: return "Stencil";
      case PatternKind::Partition: return "Partition";
    }
    return "<bad-pattern>";
}

std::vector<PatternKind>
KernelPatterns::kinds() const
{
    std::vector<PatternKind> out;
    bool map = false, gather = false;
    for (const auto& candidate : memo_candidates) {
        if (!candidate.profitable)
            continue;
        (candidate.gather ? gather : map) = true;
    }
    if (map)
        out.push_back(PatternKind::Map);
    if (gather)
        out.push_back(PatternKind::ScatterGather);
    bool stencil = false, partition = false;
    for (const auto& group : stencils) {
        // Tiles addressed through group/local structure are partitions;
        // neighbourhoods around the work-item are stencils.
        const bool by_block =
            group.block_addressed ||
            group.base_key.find("get_group_id") != std::string::npos ||
            group.base_key.find("get_local_id") != std::string::npos;
        (by_block ? partition : stencil) = true;
    }
    if (stencil)
        out.push_back(PatternKind::Stencil);
    if (partition)
        out.push_back(PatternKind::Partition);
    if (!reductions.empty())
        out.push_back(PatternKind::Reduction);
    if (is_scan)
        out.push_back(PatternKind::Scan);
    return out;
}

KernelPatterns
detect_kernel_patterns(const ir::Module& module, const Function& kernel,
                       const device::DeviceModel& device)
{
    KernelPatterns result;
    result.kernel = kernel.name;

    // Map / scatter-gather: pure, profitable function calls (§3.1.2).
    const bool kernel_gathers = has_data_dependent_access(kernel);
    std::set<const Call*> seen;
    for_each_expr(kernel, [&](const Expr& expr) {
        const auto* call = expr_as<Call>(expr);
        if (!call || call->builtin != Builtin::None || seen.count(call))
            return;
        seen.insert(call);
        const Function* callee = module.find_function(call->callee);
        if (!callee || !is_pure(module, *callee))
            return;
        MemoCandidate candidate;
        candidate.call = call;
        candidate.callee = call->callee;
        candidate.cycles_needed = estimate_cycles(module, *callee, device);
        candidate.profitable =
            memoization_profitable(module, *callee, device);
        candidate.gather = kernel_gathers;
        result.memo_candidates.push_back(candidate);
    });

    result.stencils = detect_stencils(kernel);

    // Provenance of tile index variables: block-derived (group/local id)
    // vs. globally indexed, for the Partition/Stencil split.
    {
        std::set<std::string> block_vars;
        std::set<std::string> global_vars;
        std::function<void(const Expr&, bool&, bool&)> scan =
            [&](const Expr& e, bool& block, bool& global) {
            if (const auto* call = expr_as<Call>(e)) {
                if (call->builtin == Builtin::GroupId ||
                    call->builtin == Builtin::LocalId) {
                    block = true;
                } else if (call->builtin == Builtin::GlobalId) {
                    global = true;
                }
                for (const auto& arg : call->args)
                    scan(*arg, block, global);
                return;
            }
            if (const auto* ref = expr_as<VarRef>(e)) {
                if (block_vars.count(ref->name))
                    block = true;
                if (global_vars.count(ref->name))
                    global = true;
                return;
            }
            switch (e.kind()) {
              case ExprKind::Unary:
                scan(*static_cast<const Unary&>(e).operand, block, global);
                break;
              case ExprKind::Binary: {
                const auto& bin = static_cast<const Binary&>(e);
                scan(*bin.lhs, block, global);
                scan(*bin.rhs, block, global);
                break;
              }
              case ExprKind::Load:
                scan(*static_cast<const Load&>(e).index, block, global);
                break;
              case ExprKind::Cast:
                scan(*static_cast<const Cast&>(e).operand, block, global);
                break;
              case ExprKind::Select: {
                const auto& sel = static_cast<const Select&>(e);
                scan(*sel.cond, block, global);
                scan(*sel.if_true, block, global);
                scan(*sel.if_false, block, global);
                break;
              }
              default:
                break;
            }
        };
        for (int pass = 0; pass < 4; ++pass) {
            const auto before = block_vars.size() + global_vars.size();
            for_each_stmt(kernel, [&](const Stmt& stmt) {
                const Expr* value = nullptr;
                std::string name;
                if (const auto* decl = stmt_as<Decl>(stmt)) {
                    value = decl->init.get();
                    name = decl->name;
                } else if (const auto* assign = stmt_as<Assign>(stmt)) {
                    value = assign->value.get();
                    name = assign->name;
                }
                if (!value)
                    return;
                bool block = false, global = false;
                scan(*value, block, global);
                if (block)
                    block_vars.insert(name);
                if (global)
                    global_vars.insert(name);
            });
            if (block_vars.size() + global_vars.size() == before)
                break;
        }
        for (auto& group : result.stencils) {
            bool block = false, global = false;
            for (const auto& var : group.base_vars) {
                block = block || block_vars.count(var) > 0;
                global = global || global_vars.count(var) > 0;
            }
            group.block_addressed = block && !global;
        }
    }

    result.reductions = detect_reductions(kernel);
    result.is_scan = is_scan_kernel(kernel);
    return result;
}

std::vector<KernelPatterns>
detect_patterns(const ir::Module& module, const device::DeviceModel& device)
{
    std::vector<KernelPatterns> out;
    for (const Function* kernel : module.kernels())
        out.push_back(detect_kernel_patterns(module, *kernel, device));
    return out;
}

}  // namespace paraprox::analysis
