#include "analysis/reduction.h"

#include <functional>
#include <optional>

#include "ir/visitor.h"

namespace paraprox::analysis {

using namespace ir;

namespace {

/// Does @p expr read variable @p name anywhere?
bool
reads_var(const Expr& expr, const std::string& name)
{
    bool found = false;
    std::function<void(const Expr&)> visit = [&](const Expr& e) {
        if (found)
            return;
        if (const auto* ref = expr_as<VarRef>(e)) {
            found = ref->name == name;
            return;
        }
        switch (e.kind()) {
          case ExprKind::Unary:
            visit(*static_cast<const Unary&>(e).operand);
            break;
          case ExprKind::Binary:
            visit(*static_cast<const Binary&>(e).lhs);
            visit(*static_cast<const Binary&>(e).rhs);
            break;
          case ExprKind::Call:
            for (const auto& arg : static_cast<const Call&>(e).args)
                visit(*arg);
            break;
          case ExprKind::Load:
            visit(*static_cast<const Load&>(e).index);
            break;
          case ExprKind::Cast:
            visit(*static_cast<const Cast&>(e).operand);
            break;
          case ExprKind::Select: {
            const auto& sel = static_cast<const Select&>(e);
            visit(*sel.cond);
            visit(*sel.if_true);
            visit(*sel.if_false);
            break;
          }
          default:
            break;
        }
    };
    visit(expr);
    return found;
}

/// If @p assign is accumulative (`a = a op b` with a not in b), return the
/// operation.
std::optional<ReductionOp>
accumulative_op(const Assign& assign)
{
    const std::string& var = assign.name;
    if (const auto* binary = expr_as<Binary>(*assign.value)) {
        ReductionOp op;
        switch (binary->op) {
          case BinaryOp::Add: op = ReductionOp::Add; break;
          case BinaryOp::Mul: op = ReductionOp::Mul; break;
          default: return std::nullopt;
        }
        const auto* lhs_ref = expr_as<VarRef>(*binary->lhs);
        const auto* rhs_ref = expr_as<VarRef>(*binary->rhs);
        if (lhs_ref && lhs_ref->name == var &&
            !reads_var(*binary->rhs, var)) {
            return op;
        }
        if (rhs_ref && rhs_ref->name == var &&
            !reads_var(*binary->lhs, var)) {
            return op;
        }
        return std::nullopt;
    }
    if (const auto* call = expr_as<Call>(*assign.value)) {
        ReductionOp op;
        if (call->builtin == Builtin::Fmin || call->builtin == Builtin::IMin)
            op = ReductionOp::Min;
        else if (call->builtin == Builtin::Fmax ||
                 call->builtin == Builtin::IMax)
            op = ReductionOp::Max;
        else
            return std::nullopt;
        const auto* a0 = expr_as<VarRef>(*call->args[0]);
        const auto* a1 = expr_as<VarRef>(*call->args[1]);
        if (a0 && a0->name == var && !reads_var(*call->args[1], var))
            return op;
        if (a1 && a1->name == var && !reads_var(*call->args[0], var))
            return op;
    }
    return std::nullopt;
}

/// Count reads/writes of @p var in a statement subtree, excluding a given
/// accumulative assignment.
void
count_other_uses(const Stmt& stmt, const std::string& var,
                 const Assign* skip, int& uses)
{
    if (const auto* assign = stmt_as<Assign>(stmt)) {
        if (assign == skip)
            return;
        if (assign->name == var) {
            ++uses;
            return;
        }
        if (reads_var(*assign->value, var))
            ++uses;
        return;
    }
    switch (stmt.kind()) {
      case StmtKind::Block:
        for (const auto& child : static_cast<const Block&>(stmt).stmts)
            count_other_uses(*child, var, skip, uses);
        break;
      case StmtKind::Decl: {
        const auto& decl = static_cast<const Decl&>(stmt);
        if (decl.init && reads_var(*decl.init, var))
            ++uses;
        break;
      }
      case StmtKind::Store: {
        const auto& store = static_cast<const Store&>(stmt);
        if (reads_var(*store.index, var) || reads_var(*store.value, var))
            ++uses;
        break;
      }
      case StmtKind::If: {
        const auto& branch = static_cast<const If&>(stmt);
        if (reads_var(*branch.cond, var))
            ++uses;
        count_other_uses(*branch.then_body, var, skip, uses);
        if (branch.else_body)
            count_other_uses(*branch.else_body, var, skip, uses);
        break;
      }
      case StmtKind::For: {
        const auto& loop = static_cast<const For&>(stmt);
        if (loop.init)
            count_other_uses(*loop.init, var, skip, uses);
        if (reads_var(*loop.cond, var))
            ++uses;
        if (loop.step)
            count_other_uses(*loop.step, var, skip, uses);
        count_other_uses(*loop.body, var, skip, uses);
        break;
      }
      case StmtKind::Return: {
        const auto& ret = static_cast<const Return&>(stmt);
        if (ret.value && reads_var(*ret.value, var))
            ++uses;
        break;
      }
      case StmtKind::ExprStmt:
        if (reads_var(*static_cast<const ExprStmt&>(stmt).expr, var))
            ++uses;
        break;
      case StmtKind::Barrier:
        break;
    }
}

/// Does the loop body contain a reduction-capable atomic?
bool
contains_reduction_atomic(const Block& body)
{
    bool found = false;
    for_each_expr(body, [&](const Expr& expr) {
        if (const auto* call = expr_as<Call>(expr)) {
            if (is_atomic_builtin(call->builtin))
                found = true;
        }
    });
    return found;
}

void
scan_loops(const Stmt& stmt, std::vector<ReductionLoop>& out)
{
    switch (stmt.kind()) {
      case StmtKind::Block:
        for (const auto& child : static_cast<const Block&>(stmt).stmts)
            scan_loops(*child, out);
        break;
      case StmtKind::If: {
        const auto& branch = static_cast<const If&>(stmt);
        scan_loops(*branch.then_body, out);
        if (branch.else_body)
            scan_loops(*branch.else_body, out);
        break;
      }
      case StmtKind::For: {
        const auto& loop = static_cast<const For&>(stmt);

        // Accumulative assignments directly in the loop body.
        for (const auto& child : loop.body->stmts) {
            const auto* assign = stmt_as<Assign>(*child);
            if (!assign)
                continue;
            auto op = accumulative_op(*assign);
            if (!op)
                continue;
            int other_uses = 0;
            count_other_uses(*loop.body, assign->name, assign, other_uses);
            // Also the loop condition/step must not touch it.
            if (reads_var(*loop.cond, assign->name))
                ++other_uses;
            if (other_uses == 0) {
                ReductionLoop found;
                found.loop = &loop;
                found.variable = assign->name;
                found.op = *op;
                found.adjustable = *op == ReductionOp::Add;
                out.push_back(found);
            }
        }

        if (contains_reduction_atomic(*loop.body)) {
            ReductionLoop found;
            found.loop = &loop;
            found.op = ReductionOp::Atomic;
            found.adjustable = false;
            out.push_back(found);
        }

        scan_loops(*loop.body, out);
        break;
      }
      default:
        break;
    }
}

}  // namespace

std::string
to_string(ReductionOp op)
{
    switch (op) {
      case ReductionOp::Add: return "add";
      case ReductionOp::Mul: return "mul";
      case ReductionOp::Min: return "min";
      case ReductionOp::Max: return "max";
      case ReductionOp::Atomic: return "atomic";
    }
    return "<bad-op>";
}

std::vector<ReductionLoop>
detect_reductions(const Function& kernel)
{
    std::vector<ReductionLoop> out;
    scan_loops(*kernel.body, out);
    return out;
}

}  // namespace paraprox::analysis
