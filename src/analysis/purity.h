/// @file
/// Purity analysis (paper §3.1.2).
///
/// A function is a memoization candidate when it is pure AND does not
/// touch global memory or depend on the work-item identity:
///   - no reads/writes of __global/__shared/__constant buffers,
///   - no atomic operations,
///   - no thread/block-id builtins,
///   - no calls to impure functions,
///   - (ParaCL has no I/O or mutable globals, so those rules hold by
///     construction).

#pragma once

#include <string>

#include "ir/function.h"

namespace paraprox::analysis {

/// Why a function failed the purity check (empty when pure).
struct PurityReport {
    bool pure = true;
    std::string reason;
};

/// Analyze one function; callees are analyzed recursively through
/// @p module.
PurityReport check_purity(const ir::Module& module,
                          const ir::Function& function);

/// Convenience: true when check_purity(...).pure.
bool is_pure(const ir::Module& module, const ir::Function& function);

}  // namespace paraprox::analysis
