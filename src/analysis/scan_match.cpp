#include "analysis/scan_match.h"

#include <mutex>

#include "parser/parser.h"

namespace paraprox::analysis {

using namespace ir;

namespace {

void signature_stmt(const Stmt& stmt, std::vector<int>& out);

void
signature_expr(const Expr& expr, std::vector<int>& out)
{
    switch (expr.kind()) {
      case ExprKind::Unary: {
        const auto& unary = static_cast<const Unary&>(expr);
        signature_expr(*unary.operand, out);
        out.push_back(150 + static_cast<int>(unary.op));
        return;
      }
      case ExprKind::Binary: {
        const auto& binary = static_cast<const Binary&>(expr);
        signature_expr(*binary.lhs, out);
        signature_expr(*binary.rhs, out);
        out.push_back(200 + static_cast<int>(binary.op));
        return;
      }
      case ExprKind::Call: {
        const auto& call = static_cast<const Call&>(expr);
        for (const auto& arg : call.args)
            signature_expr(*arg, out);
        out.push_back(call.builtin == Builtin::None
                          ? 399
                          : 300 + static_cast<int>(call.builtin));
        return;
      }
      case ExprKind::Load:
        signature_expr(*static_cast<const Load&>(expr).index, out);
        out.push_back(50);
        return;
      case ExprKind::Cast:
        signature_expr(*static_cast<const Cast&>(expr).operand, out);
        out.push_back(51);
        return;
      case ExprKind::Select: {
        const auto& select = static_cast<const Select&>(expr);
        signature_expr(*select.cond, out);
        signature_expr(*select.if_true, out);
        signature_expr(*select.if_false, out);
        out.push_back(52);
        return;
      }
      default:
        // Literals and variable references collapse to one leaf code:
        // template matching must ignore names and constants.
        out.push_back(static_cast<int>(expr.kind()));
        return;
    }
}

void
signature_stmt(const Stmt& stmt, std::vector<int>& out)
{
    switch (stmt.kind()) {
      case StmtKind::Block:
        for (const auto& child : static_cast<const Block&>(stmt).stmts)
            signature_stmt(*child, out);
        break;
      case StmtKind::Decl: {
        const auto& decl = static_cast<const Decl&>(stmt);
        if (decl.init)
            signature_expr(*decl.init, out);
        break;
      }
      case StmtKind::Assign:
        signature_expr(*static_cast<const Assign&>(stmt).value, out);
        break;
      case StmtKind::Store: {
        const auto& store = static_cast<const Store&>(stmt);
        signature_expr(*store.index, out);
        signature_expr(*store.value, out);
        break;
      }
      case StmtKind::If: {
        const auto& branch = static_cast<const If&>(stmt);
        signature_expr(*branch.cond, out);
        signature_stmt(*branch.then_body, out);
        if (branch.else_body)
            signature_stmt(*branch.else_body, out);
        break;
      }
      case StmtKind::For: {
        const auto& loop = static_cast<const For&>(stmt);
        if (loop.init)
            signature_stmt(*loop.init, out);
        signature_expr(*loop.cond, out);
        if (loop.step)
            signature_stmt(*loop.step, out);
        signature_stmt(*loop.body, out);
        break;
      }
      case StmtKind::Return: {
        const auto& ret = static_cast<const Return&>(stmt);
        if (ret.value)
            signature_expr(*ret.value, out);
        break;
      }
      case StmtKind::ExprStmt:
        signature_expr(*static_cast<const ExprStmt&>(stmt).expr, out);
        break;
      case StmtKind::Barrier:
        break;
    }
    out.push_back(100 + static_cast<int>(stmt.kind()));
}

}  // namespace

std::vector<int>
ast_signature(const Function& function)
{
    std::vector<int> out;
    signature_stmt(*function.body, out);
    return out;
}

const std::string&
scan_template_source()
{
    // The canonical three-phase data-parallel scan's phase I: each
    // work-group Hillis-Steele-scans one subarray in __shared memory and
    // exports the subarray total (Fig. 9 of the paper).
    static const std::string source = R"(
__kernel void scan_phase1_template(__global float* in, __global float* out,
                                   __global float* sums,
                                   __shared float* tile) {
    int l = get_local_id(0);
    int g = get_global_id(0);
    int n = get_local_size(0);
    tile[l] = in[g];
    barrier();
    for (int off = 1; off < n; off = off * 2) {
        float v = 0.0f;
        if (l >= off) { v = tile[l - off]; }
        barrier();
        tile[l] = tile[l] + v;
        barrier();
    }
    out[g] = tile[l];
    if (l == n - 1) { sums[get_group_id(0)] = tile[l]; }
}
)";
    return source;
}

bool
is_scan_kernel(const Function& kernel)
{
    if (kernel.pragmas.count("scan"))
        return true;

    static std::vector<int> template_signature;
    static std::once_flag once;
    std::call_once(once, [] {
        auto module = parser::parse_module(scan_template_source());
        template_signature =
            ast_signature(*module.find_function("scan_phase1_template"));
    });
    return ast_signature(kernel) == template_signature;
}

}  // namespace paraprox::analysis
