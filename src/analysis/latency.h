/// @file
/// Static latency estimation — Eq. 1 of the paper:
///
///     cycles_needed = sum over instructions of latency(inst)
///
/// Each IR operation is charged its device latency; bodies of loops with
/// compile-time-constant trip counts are multiplied by the trip count.
/// Paraprox applies approximate memoization only to functions whose
/// cycles_needed is at least one order of magnitude above the device's L1
/// read latency (§3.1.2).

#pragma once

#include "device/device_model.h"
#include "ir/function.h"

namespace paraprox::analysis {

/// Estimated cycles for one evaluation of @p function on @p device.
double estimate_cycles(const ir::Module& module,
                       const ir::Function& function,
                       const device::DeviceModel& device);

/// The memoization profitability test from §3.1.2: estimated cycles at
/// least 10x the L1 read latency.
bool memoization_profitable(const ir::Module& module,
                            const ir::Function& function,
                            const device::DeviceModel& device);

}  // namespace paraprox::analysis
