/// @file
/// The pattern-detection driver (paper §2, Fig. 10's "Pattern Detection"
/// stage): runs every detector over every kernel of a module and reports
/// which of the six data-parallel patterns each kernel exhibits.

#pragma once

#include <string>
#include <vector>

#include "analysis/reduction.h"
#include "analysis/stencil.h"
#include "device/device_model.h"
#include "ir/function.h"

namespace paraprox::analysis {

/// The six patterns of Fig. 1.
enum class PatternKind {
    Map,
    ScatterGather,
    Reduction,
    Scan,
    Stencil,
    Partition,
};

std::string to_string(PatternKind kind);

/// A pure, compute-heavy function call eligible for approximate
/// memoization (§3.1).
struct MemoCandidate {
    const ir::Call* call = nullptr;  ///< Call site inside the kernel.
    std::string callee;
    double cycles_needed = 0.0;      ///< Eq. 1 estimate.
    bool profitable = false;         ///< cycles >= 10x L1 latency.
    bool gather = false;             ///< Fed by data-dependent loads.
};

/// Everything detected in one kernel.
struct KernelPatterns {
    std::string kernel;
    std::vector<MemoCandidate> memo_candidates;
    std::vector<StencilGroup> stencils;
    std::vector<ReductionLoop> reductions;
    bool is_scan = false;

    /// The pattern labels this kernel earns (Table 1 style).
    std::vector<PatternKind> kinds() const;
};

/// Run all detectors over every kernel in @p module.  @p device supplies
/// the latency table for Eq. 1 profitability.
std::vector<KernelPatterns> detect_patterns(
    const ir::Module& module, const device::DeviceModel& device);

/// Detect patterns in a single kernel.
KernelPatterns detect_kernel_patterns(const ir::Module& module,
                                      const ir::Function& kernel,
                                      const device::DeviceModel& device);

}  // namespace paraprox::analysis
