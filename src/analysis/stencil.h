/// @file
/// Stencil / partition detection (paper §3.2.2).
///
/// Paraprox looks for a constant number of affine loads of the same array
/// whose indices have the form (f + i) * w + (g + j): f, g, w loop
/// invariant, i and j hand-coded constants or induction variables of
/// constant-trip loops.  The dynamic range of i and j gives the tile
/// shape.
///
/// We implement this by flattening each load index into additive terms,
/// extracting the constant column offset (j), and — when a single
/// multiplicative term (row * width) is present — the constant row offset
/// (i) inside it.  Loads indexed through constant-range induction
/// variables are enumerated at each induction value, so both manually
/// unrolled stencils (Mean Filter) and loop-shaped stencils (Gaussian)
/// are detected.

#pragma once

#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "ir/function.h"

namespace paraprox::analysis {

/// A loop with compile-time-constant bounds: var iterates
/// lo, lo+step, ... < hi_exclusive.
struct LoopRange {
    std::string var;
    int lo = 0;
    int hi_exclusive = 0;
    int step = 1;

    std::vector<int> values() const;
    int trips() const { return static_cast<int>(values().size()); }
};

/// Recognize a canonical constant-trip counted loop
/// (`for (int v = c0; v < c1; v = v + c2)`, Le also accepted);
/// nullopt when any bound is not a literal.
std::optional<LoopRange> constant_loop_range(const ir::For& loop);

/// One affine access within a detected tile.
struct StencilAccess {
    const ir::Load* load;  ///< The (possibly loop-enumerated) load site.
    int dy = 0;            ///< Row offset i.
    int dx = 0;            ///< Column offset j.
};

/// A group of affine accesses to one array sharing a base expression —
/// i.e. a tile.
struct StencilGroup {
    std::string array;
    std::string base_key;     ///< Canonical base-index expression.
    bool two_dimensional = false;
    std::vector<StencilAccess> accesses;
    /// Clone of the row-stride (width) factor for 2D tiles; null for 1D.
    std::shared_ptr<const ir::Expr> width;
    /// Variables the tile's index expressions read (for provenance
    /// classification: partition vs. stencil).
    std::set<std::string> base_vars;
    /// Set by the pattern driver when base_vars derive from work-group
    /// structure (get_group_id/get_local_id) rather than global ids:
    /// the tile is a Partition (Fig. 1f).
    bool block_addressed = false;
    int min_dy = 0, max_dy = 0;
    int min_dx = 0, max_dx = 0;

    int tile_height() const { return max_dy - min_dy + 1; }
    int tile_width() const { return max_dx - min_dx + 1; }
    int tile_size() const { return tile_height() * tile_width(); }
};

/// Detect every tile read by @p kernel.  Only groups with at least two
/// distinct offsets qualify (a single access is not a tile).
std::vector<StencilGroup> detect_stencils(const ir::Function& kernel);

}  // namespace paraprox::analysis
