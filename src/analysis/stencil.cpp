#include <functional>
#include "analysis/stencil.h"

#include <algorithm>
#include <map>
#include <optional>

#include "ir/printer.h"
#include "ir/visitor.h"

namespace paraprox::analysis {

using namespace ir;

std::vector<int>
LoopRange::values() const
{
    std::vector<int> out;
    for (int v = lo; v < hi_exclusive; v += step)
        out.push_back(v);
    return out;
}

std::optional<LoopRange>
constant_loop_range(const For& loop)
{
    const Decl* init = loop.init ? stmt_as<Decl>(*loop.init) : nullptr;
    if (!init || !init->init)
        return std::nullopt;
    int lo = 0;
    if (!const_int_value(*init->init, lo))
        return std::nullopt;
    const auto* cond = expr_as<Binary>(*loop.cond);
    if (!cond || (cond->op != BinaryOp::Lt && cond->op != BinaryOp::Le))
        return std::nullopt;
    const auto* cond_var = expr_as<VarRef>(*cond->lhs);
    int hi = 0;
    if (!cond_var || cond_var->name != init->name ||
        !const_int_value(*cond->rhs, hi)) {
        return std::nullopt;
    }
    const Assign* step = loop.step ? stmt_as<Assign>(*loop.step) : nullptr;
    if (!step || step->name != init->name)
        return std::nullopt;
    const auto* add = expr_as<Binary>(*step->value);
    if (!add || add->op != BinaryOp::Add)
        return std::nullopt;
    const auto* step_var = expr_as<VarRef>(*add->lhs);
    int step_value = 0;
    if (!step_var || step_var->name != init->name ||
        !const_int_value(*add->rhs, step_value) || step_value <= 0) {
        return std::nullopt;
    }
    const int hi_excl = cond->op == BinaryOp::Le ? hi + 1 : hi;
    if (hi_excl <= lo)
        return std::nullopt;
    return LoopRange{init->name, lo, hi_excl, step_value};
}

namespace {

/// One additive term with sign.
struct Term {
    const Expr* expr;
    int sign;
};

void
flatten(const Expr& expr, int sign, std::vector<Term>& terms)
{
    if (const auto* binary = expr_as<Binary>(expr)) {
        if (binary->op == BinaryOp::Add) {
            flatten(*binary->lhs, sign, terms);
            flatten(*binary->rhs, sign, terms);
            return;
        }
        if (binary->op == BinaryOp::Sub) {
            flatten(*binary->lhs, sign, terms);
            flatten(*binary->rhs, -sign, terms);
            return;
        }
    }
    if (const auto* unary = expr_as<Unary>(expr)) {
        if (unary->op == UnaryOp::Neg) {
            flatten(*unary->operand, -sign, terms);
            return;
        }
    }
    if (const auto* cast = expr_as<Cast>(expr)) {
        if (cast->type().is_int() && cast->operand->type().is_int()) {
            flatten(*cast->operand, sign, terms);
            return;
        }
    }
    terms.push_back({&expr, sign});
}

/// The decomposition of one index expression.
struct AccessForm {
    std::string key;
    bool two_dimensional = false;
    int dy = 0;
    int dx = 0;
    std::shared_ptr<const Expr> width;  ///< Row-stride factor (2D only).
};

/// Split a Mul term into (row base key, row constant offset, width key);
/// returns false if neither factor is additive-with-constant material.
bool
split_mul(const Binary& mul, std::string& ybase_key, int& dy,
          std::string& width_key, std::shared_ptr<const Expr>& width_expr)
{
    auto try_factor = [&](const Expr& row, const Expr& width) {
        width_expr = std::shared_ptr<const Expr>(width.clone().release());
        std::vector<Term> row_terms;
        flatten(row, 1, row_terms);
        int offset = 0;
        std::vector<std::string> base;
        for (const Term& term : row_terms) {
            int lit_value = 0;
            if (const_int_value(*term.expr, lit_value)) {
                offset += term.sign * lit_value;
            } else {
                base.push_back((term.sign < 0 ? "-" : "+") +
                               to_source(*term.expr));
            }
        }
        std::sort(base.begin(), base.end());
        ybase_key.clear();
        for (const auto& piece : base)
            ybase_key += piece;
        dy = offset;
        width_key = to_source(width);
        return true;
    };
    // Prefer the factor that actually carries a constant offset; fall back
    // to the left factor.
    std::vector<Term> left_terms, right_terms;
    flatten(*mul.lhs, 1, left_terms);
    flatten(*mul.rhs, 1, right_terms);
    const auto has_const = [](const std::vector<Term>& terms) {
        int ignored = 0;
        for (const Term& term : terms)
            if (const_int_value(*term.expr, ignored))
                return true;
        return false;
    };
    if (!has_const(left_terms) && has_const(right_terms))
        return try_factor(*mul.rhs, *mul.lhs);
    return try_factor(*mul.lhs, *mul.rhs);
}

AccessForm
analyze_index(const Expr& index)
{
    AccessForm form;
    std::vector<Term> terms;
    flatten(index, 1, terms);

    const Binary* row_term = nullptr;
    int row_sign = 1;
    std::vector<std::string> base;
    for (const Term& term : terms) {
        int lit_value = 0;
        if (const_int_value(*term.expr, lit_value)) {
            form.dx += term.sign * lit_value;
            continue;
        }
        const auto* binary = expr_as<Binary>(*term.expr);
        if (binary && binary->op == BinaryOp::Mul && !row_term &&
            term.sign > 0) {
            row_term = binary;
            row_sign = term.sign;
            continue;
        }
        base.push_back((term.sign < 0 ? "-" : "+") + to_source(*term.expr));
    }

    if (row_term) {
        std::string ybase_key, width_key;
        if (split_mul(*row_term, ybase_key, form.dy, width_key,
                      form.width)) {
            form.dy *= row_sign;
            form.two_dimensional = true;
            std::sort(base.begin(), base.end());
            form.key = "(" + ybase_key + ")*(" + width_key + ")";
            for (const auto& piece : base)
                form.key += piece;
            return form;
        }
    }

    std::sort(base.begin(), base.end());
    for (const auto& piece : base)
        form.key += piece;
    return form;
}

/// Recursively collect loads with their enclosing constant loops.
class LoadCollector {
  public:
    struct Site {
        const Load* load;
        std::vector<LoopRange> loops;  ///< Constant loops in scope.
    };

    std::vector<Site> sites;

    void
    collect(const Stmt& stmt)
    {
        switch (stmt.kind()) {
          case StmtKind::Block:
            for (const auto& child : static_cast<const Block&>(stmt).stmts)
                collect(*child);
            break;
          case StmtKind::Decl: {
            const auto& decl = static_cast<const Decl&>(stmt);
            if (decl.init)
                collect_expr(*decl.init);
            break;
          }
          case StmtKind::Assign:
            collect_expr(*static_cast<const Assign&>(stmt).value);
            break;
          case StmtKind::Store: {
            const auto& store = static_cast<const Store&>(stmt);
            collect_expr(*store.index);
            collect_expr(*store.value);
            break;
          }
          case StmtKind::If: {
            const auto& branch = static_cast<const If&>(stmt);
            collect_expr(*branch.cond);
            collect(*branch.then_body);
            if (branch.else_body)
                collect(*branch.else_body);
            break;
          }
          case StmtKind::For: {
            const auto& loop = static_cast<const For&>(stmt);
            auto range = constant_loop_range(loop);
            if (range && range->values().size() <= 64)
                loop_stack_.push_back(*range);
            collect(*loop.body);
            if (range && range->values().size() <= 64)
                loop_stack_.pop_back();
            break;
          }
          case StmtKind::Return: {
            const auto& ret = static_cast<const Return&>(stmt);
            if (ret.value)
                collect_expr(*ret.value);
            break;
          }
          case StmtKind::ExprStmt:
            collect_expr(*static_cast<const ExprStmt&>(stmt).expr);
            break;
          case StmtKind::Barrier:
            break;
        }
    }

  private:
    void
    collect_expr(const Expr& expr)
    {
        for_each_in_expr(expr);
    }

    void
    for_each_in_expr(const Expr& expr)
    {
        if (const auto* load = expr_as<Load>(expr)) {
            sites.push_back({load, loop_stack_});
            for_each_in_expr(*load->index);
            return;
        }
        switch (expr.kind()) {
          case ExprKind::Unary:
            for_each_in_expr(*static_cast<const Unary&>(expr).operand);
            break;
          case ExprKind::Binary: {
            const auto& binary = static_cast<const Binary&>(expr);
            for_each_in_expr(*binary.lhs);
            for_each_in_expr(*binary.rhs);
            break;
          }
          case ExprKind::Call:
            for (const auto& arg :
                 static_cast<const Call&>(expr).args)
                for_each_in_expr(*arg);
            break;
          case ExprKind::Cast:
            for_each_in_expr(*static_cast<const Cast&>(expr).operand);
            break;
          case ExprKind::Select: {
            const auto& select = static_cast<const Select&>(expr);
            for_each_in_expr(*select.cond);
            for_each_in_expr(*select.if_true);
            for_each_in_expr(*select.if_false);
            break;
          }
          default:
            break;
        }
    }

    std::vector<LoopRange> loop_stack_;
};

/// Which of the in-scope loop vars actually appear in @p expr?
std::vector<const LoopRange*>
referenced_loops(const Expr& expr, const std::vector<LoopRange>& loops)
{
    std::vector<const LoopRange*> used;
    for (const auto& loop : loops) {
        bool found = false;
        // Cheap textual check is wrong; walk the expression.
        std::function<void(const Expr&)> visit = [&](const Expr& e) {
            if (found)
                return;
            if (const auto* ref = expr_as<VarRef>(e)) {
                if (ref->name == loop.var)
                    found = true;
                return;
            }
            switch (e.kind()) {
              case ExprKind::Unary:
                visit(*static_cast<const Unary&>(e).operand);
                break;
              case ExprKind::Binary:
                visit(*static_cast<const Binary&>(e).lhs);
                visit(*static_cast<const Binary&>(e).rhs);
                break;
              case ExprKind::Call:
                for (const auto& arg : static_cast<const Call&>(e).args)
                    visit(*arg);
                break;
              case ExprKind::Load:
                visit(*static_cast<const Load&>(e).index);
                break;
              case ExprKind::Cast:
                visit(*static_cast<const Cast&>(e).operand);
                break;
              case ExprKind::Select: {
                const auto& sel = static_cast<const Select&>(e);
                visit(*sel.cond);
                visit(*sel.if_true);
                visit(*sel.if_false);
                break;
              }
              default:
                break;
            }
        };
        visit(expr);
        if (found)
            used.push_back(&loop);
    }
    return used;
}

/// Substitute loop variables with literals in a cloned expression.
ExprPtr
substitute(const Expr& expr, const std::map<std::string, int>& values)
{
    ExprPtr copy = expr.clone();
    // In-place rewrite on a temporary block is overkill; do a recursive
    // functional rewrite instead.
    std::function<ExprPtr(const Expr&)> rewrite =
        [&](const Expr& e) -> ExprPtr {
        if (const auto* ref = expr_as<VarRef>(e)) {
            auto it = values.find(ref->name);
            if (it != values.end())
                return std::make_unique<IntLit>(it->second);
            return e.clone();
        }
        switch (e.kind()) {
          case ExprKind::Unary: {
            const auto& unary = static_cast<const Unary&>(e);
            return std::make_unique<Unary>(unary.op,
                                           rewrite(*unary.operand),
                                           unary.type());
          }
          case ExprKind::Binary: {
            const auto& binary = static_cast<const Binary&>(e);
            return std::make_unique<Binary>(binary.op,
                                            rewrite(*binary.lhs),
                                            rewrite(*binary.rhs),
                                            binary.type());
          }
          case ExprKind::Cast: {
            const auto& cast = static_cast<const Cast&>(e);
            return std::make_unique<Cast>(cast.type(),
                                          rewrite(*cast.operand));
          }
          default:
            return e.clone();
        }
    };
    return rewrite(*copy);
}

}  // namespace

std::vector<StencilGroup>
detect_stencils(const Function& kernel)
{
    LoadCollector collector;
    collector.collect(*kernel.body);

    // Group accesses by (array, base key).
    std::map<std::pair<std::string, std::string>, StencilGroup> groups;

    for (const auto& site : collector.sites) {
        const auto used = referenced_loops(*site.load->index, site.loops);
        if (used.size() > 2)
            continue;  // more than 2D: not a tile shape we model

        // Enumerate induction values (singleton {} when no loops used).
        std::vector<std::map<std::string, int>> combos{{}};
        for (const LoopRange* loop : used) {
            std::vector<std::map<std::string, int>> next;
            for (const auto& combo : combos) {
                for (int v : loop->values()) {
                    auto extended = combo;
                    extended[loop->var] = v;
                    next.push_back(std::move(extended));
                }
            }
            combos = std::move(next);
            if (combos.size() > 128)
                break;
        }
        if (combos.size() > 128)
            continue;

        for (const auto& combo : combos) {
            ExprPtr concrete = substitute(*site.load->index, combo);
            AccessForm form = analyze_index(*concrete);
            auto key = std::make_pair(site.load->array, form.key);
            StencilGroup& group = groups[key];
            if (group.accesses.empty()) {
                group.array = site.load->array;
                group.base_key = form.key;
                group.two_dimensional = form.two_dimensional;
                group.width = form.width;
                // Record the index's variable reads for provenance.
                std::function<void(const Expr&)> vars =
                    [&](const Expr& e) {
                    if (const auto* ref = expr_as<VarRef>(e)) {
                        group.base_vars.insert(ref->name);
                        return;
                    }
                    switch (e.kind()) {
                      case ExprKind::Unary:
                        vars(*static_cast<const Unary&>(e).operand);
                        break;
                      case ExprKind::Binary: {
                        const auto& bin = static_cast<const Binary&>(e);
                        vars(*bin.lhs);
                        vars(*bin.rhs);
                        break;
                      }
                      case ExprKind::Call:
                        for (const auto& arg :
                             static_cast<const Call&>(e).args)
                            vars(*arg);
                        break;
                      case ExprKind::Load:
                        vars(*static_cast<const Load&>(e).index);
                        break;
                      case ExprKind::Cast:
                        vars(*static_cast<const Cast&>(e).operand);
                        break;
                      case ExprKind::Select: {
                        const auto& sel = static_cast<const Select&>(e);
                        vars(*sel.cond);
                        vars(*sel.if_true);
                        vars(*sel.if_false);
                        break;
                      }
                      default:
                        break;
                    }
                };
                vars(*site.load->index);
                group.min_dy = group.max_dy = form.dy;
                group.min_dx = group.max_dx = form.dx;
            }
            group.min_dy = std::min(group.min_dy, form.dy);
            group.max_dy = std::max(group.max_dy, form.dy);
            group.min_dx = std::min(group.min_dx, form.dx);
            group.max_dx = std::max(group.max_dx, form.dx);
            group.accesses.push_back({site.load, form.dy, form.dx});
        }
    }

    std::vector<StencilGroup> result;
    for (auto& [key, group] : groups) {
        // A tile needs at least two distinct offsets.
        if (group.tile_size() >= 2 && group.accesses.size() >= 2)
            result.push_back(std::move(group));
    }
    return result;
}

}  // namespace paraprox::analysis
