#include "analysis/latency.h"

#include <optional>

#include "support/error.h"

namespace paraprox::analysis {

using namespace ir;

namespace {

class Estimator {
  public:
    Estimator(const ir::Module& module, const device::DeviceModel& device)
        : module_(module), device_(device) {}

    double
    function_cycles(const Function& function)
    {
        PARAPROX_CHECK(depth_ < 32, "call graph too deep (recursion?)");
        ++depth_;
        const double cycles = block_cycles(*function.body);
        --depth_;
        return cycles;
    }

  private:
    double
    block_cycles(const Block& block)
    {
        double cycles = 0.0;
        for (const auto& stmt : block.stmts)
            cycles += stmt_cycles(*stmt);
        return cycles;
    }

    /// Constant trip count of a canonical counted loop, if derivable.
    std::optional<double>
    trip_count(const For& loop)
    {
        // for (i = lo; i < hi; i = i + step) with integer literals.
        int lo = 0, hi = 0, step = 1;
        bool le = false;

        const Decl* init_decl =
            loop.init ? stmt_as<Decl>(*loop.init) : nullptr;
        const Assign* init_assign =
            loop.init ? stmt_as<Assign>(*loop.init) : nullptr;
        const Expr* init_expr = nullptr;
        std::string var;
        if (init_decl && init_decl->init) {
            init_expr = init_decl->init.get();
            var = init_decl->name;
        } else if (init_assign) {
            init_expr = init_assign->value.get();
            var = init_assign->name;
        }
        if (!init_expr || !const_int_value(*init_expr, lo))
            return std::nullopt;

        const auto* cond = expr_as<Binary>(*loop.cond);
        if (!cond || (cond->op != BinaryOp::Lt && cond->op != BinaryOp::Le))
            return std::nullopt;
        le = cond->op == BinaryOp::Le;
        const auto* cond_var = expr_as<VarRef>(*cond->lhs);
        if (!cond_var || cond_var->name != var ||
            !const_int_value(*cond->rhs, hi)) {
            return std::nullopt;
        }

        const Assign* step_assign =
            loop.step ? stmt_as<Assign>(*loop.step) : nullptr;
        if (!step_assign || step_assign->name != var)
            return std::nullopt;
        const auto* step_add = expr_as<Binary>(*step_assign->value);
        if (!step_add || step_add->op != BinaryOp::Add)
            return std::nullopt;
        if (!const_int_value(*step_add->rhs, step) || step <= 0)
            return std::nullopt;

        const int span = (le ? hi + 1 : hi) - lo;
        if (span <= 0)
            return 0.0;
        return static_cast<double>((span + step - 1) / step);
    }

    double
    stmt_cycles(const Stmt& stmt)
    {
        switch (stmt.kind()) {
          case StmtKind::Block:
            return block_cycles(static_cast<const Block&>(stmt));
          case StmtKind::Decl: {
            const auto& decl = static_cast<const Decl&>(stmt);
            return decl.init ? expr_cycles(*decl.init) : 0.0;
          }
          case StmtKind::Assign:
            return expr_cycles(*static_cast<const Assign&>(stmt).value);
          case StmtKind::Store: {
            const auto& store = static_cast<const Store&>(stmt);
            return expr_cycles(*store.index) + expr_cycles(*store.value) +
                   device_.memory.l1_read_latency;
          }
          case StmtKind::If: {
            const auto& branch = static_cast<const If&>(stmt);
            // Charge the max of both arms (worst-case path).
            const double then_cycles = block_cycles(*branch.then_body);
            const double else_cycles =
                branch.else_body ? block_cycles(*branch.else_body) : 0.0;
            return expr_cycles(*branch.cond) +
                   std::max(then_cycles, else_cycles);
          }
          case StmtKind::For: {
            const auto& loop = static_cast<const For&>(stmt);
            const double body =
                block_cycles(*loop.body) + expr_cycles(*loop.cond) +
                (loop.step ? stmt_cycles(*loop.step) : 0.0);
            const double init = loop.init ? stmt_cycles(*loop.init) : 0.0;
            const auto trips = trip_count(loop);
            // Unknown trip counts are charged a nominal 8 iterations.
            return init + body * (trips ? *trips : 8.0);
          }
          case StmtKind::Return: {
            const auto& ret = static_cast<const Return&>(stmt);
            return ret.value ? expr_cycles(*ret.value) : 0.0;
          }
          case StmtKind::ExprStmt:
            return expr_cycles(*static_cast<const ExprStmt&>(stmt).expr);
          case StmtKind::Barrier:
            return device_.latency.control;
        }
        return 0.0;
    }

    double
    expr_cycles(const Expr& expr)
    {
        const device::LatencyTable& lat = device_.latency;
        switch (expr.kind()) {
          case ExprKind::IntLit:
          case ExprKind::FloatLit:
          case ExprKind::BoolLit:
          case ExprKind::VarRef:
            return 0.0;
          case ExprKind::Unary: {
            const auto& unary = static_cast<const Unary&>(expr);
            return expr_cycles(*unary.operand) + lat.int_arith;
          }
          case ExprKind::Binary: {
            const auto& binary = static_cast<const Binary&>(expr);
            const double operands =
                expr_cycles(*binary.lhs) + expr_cycles(*binary.rhs);
            const bool is_float = binary.lhs->type().is_float();
            switch (binary.op) {
              case BinaryOp::Div:
              case BinaryOp::Mod:
                return operands + lat.div;
              default:
                return operands + (is_float ? lat.float_arith
                                            : lat.int_arith);
            }
          }
          case ExprKind::Call: {
            const auto& call = static_cast<const Call&>(expr);
            double operands = 0.0;
            for (const auto& arg : call.args)
                operands += expr_cycles(*arg);
            if (call.builtin == Builtin::None) {
                const Function* callee = module_.find_function(call.callee);
                PARAPROX_CHECK(callee, "call to unknown function `" +
                                           call.callee + "`");
                return operands + function_cycles(*callee);
            }
            if (is_atomic_builtin(call.builtin))
                return operands + lat.atomic;
            if (is_thread_id_builtin(call.builtin))
                return operands + lat.trivial;
            if (call.builtin == Builtin::Lgamma ||
                call.builtin == Builtin::Erf) {
                return operands + lat.heavy_transcendental;
            }
            if (is_transcendental_builtin(call.builtin))
                return operands + lat.transcendental;
            return operands + lat.simple_math;
          }
          case ExprKind::Load: {
            const auto& load = static_cast<const Load&>(expr);
            return expr_cycles(*load.index) +
                   device_.memory.l1_read_latency;
          }
          case ExprKind::Cast:
            return expr_cycles(*static_cast<const Cast&>(expr).operand) +
                   lat.float_arith;
          case ExprKind::Select: {
            const auto& select = static_cast<const Select&>(expr);
            return expr_cycles(*select.cond) +
                   expr_cycles(*select.if_true) +
                   expr_cycles(*select.if_false) + lat.trivial;
          }
        }
        return 0.0;
    }

    const ir::Module& module_;
    const device::DeviceModel& device_;
    int depth_ = 0;
};

}  // namespace

double
estimate_cycles(const ir::Module& module, const Function& function,
                const device::DeviceModel& device)
{
    return Estimator(module, device).function_cycles(function);
}

bool
memoization_profitable(const ir::Module& module, const Function& function,
                       const device::DeviceModel& device)
{
    return estimate_cycles(module, function, device) >=
           10.0 * device.memory.l1_read_latency;
}

}  // namespace paraprox::analysis
