/// @file
/// Reduction-loop detection (paper §3.3.2).
///
/// A reduction loop (a) contains an accumulative statement
/// `a = a op b` — op in {+, *, min, max} — and (b) never otherwise reads
/// or writes the reduction variable inside the loop.  Loops containing
/// reduction-capable atomics (atomic_add/min/max/inc/and/or/xor) are also
/// marked as reduction loops.

#pragma once

#include <string>
#include <vector>

#include "ir/function.h"

namespace paraprox::analysis {

/// The combining operation of a detected reduction.
enum class ReductionOp {
    Add,
    Mul,
    Min,
    Max,
    Atomic,  ///< Loop reduced through atomic builtins.
};

std::string to_string(ReductionOp op);

/// One detected reduction loop.
struct ReductionLoop {
    const ir::For* loop = nullptr;
    std::string variable;       ///< Reduction variable (empty for Atomic).
    ReductionOp op = ReductionOp::Add;
    /// True when the sampling transform can re-scale the result
    /// (op == Add, including atomic adds; paper §3.3.3).
    bool adjustable = false;
};

/// Find every reduction loop in @p kernel.
std::vector<ReductionLoop> detect_reductions(const ir::Function& kernel);

}  // namespace paraprox::analysis
