/// @file
/// The register-bytecode ISA that ParaCL kernels compile to.
///
/// Exact and Paraprox-approximated kernels are both lowered to this ISA and
/// executed by the same VM, so speedups measured between them reflect real
/// reductions in dynamic instruction and memory-operation counts — the same
/// mechanism the paper exploits on GPUs/CPUs.  Each opcode also carries a
/// latency class that the device models (src/device) use to convert dynamic
/// counts into modeled cycles.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/type.h"

namespace paraprox::vm {

/// A 32-bit register/word value; opcodes determine the interpretation.
union Value {
    std::int32_t i;
    float f;
};

inline Value
make_int(std::int32_t v)
{
    Value value;
    value.i = v;
    return value;
}

inline Value
make_float(float v)
{
    Value value;
    value.f = v;
    return value;
}

/// Bytecode operations.  Suffix I/F distinguishes int/float variants.
///
/// Opcodes after Halt are *superinstructions*: fused pairs emitted by the
/// peephole pass (fuse_superinstructions) into Program::fast_code.  They
/// never appear in Program::code, so instrumented execution and the device
/// cost models only ever see canonical opcodes.
enum class Opcode : std::uint8_t {
    Nop,
    LdImm,    ///< a <- imm (payload already typed).
    Mov,      ///< a <- b.

    AddI, SubI, MulI, DivI, ModI,
    AddF, SubF, MulF, DivF,
    NegI, NegF, NotI,

    LtI, LeI, GtI, GeI, EqI, NeI,
    LtF, LeF, GtF, GeF, EqF, NeF,

    AndI, OrI, XorI, ShlI, ShrI,

    IToF,    ///< a.f <- (float)b.i
    FToI,    ///< a.i <- (int)b.f (truncating, saturating; NaN -> 0)

    Sqrt, Exp, Log, Sin, Cos, Pow, Fabs, Fmin, Fmax, Floor, Lgamma, Erf,
    IMin, IMax,

    Gid,     ///< a <- global id in dim imm.i
    Lid,     ///< a <- local id in dim imm.i
    GrpId,   ///< a <- group id in dim imm.i
    LSize,   ///< a <- local size in dim imm.i
    NGrp,    ///< a <- number of groups in dim imm.i
    GSize,   ///< a <- global size in dim imm.i

    Ld,      ///< a <- buffer[imm.i][reg b]
    St,      ///< buffer[imm.i][reg a] <- reg b

    AtomAdd, AtomMin, AtomMax, AtomInc, AtomAnd, AtomOr, AtomXor,
             ///< a <- old; buffer imm.i, index reg b, operand reg c.

    Sel,     ///< a <- b ? c : d

    Jmp,     ///< pc <- imm.i
    Jz,      ///< if (!reg a) pc <- imm.i

    Barrier,
    Halt,

    // ---- Superinstructions (fast_code only) ----------------------------
    // Every fusion still writes the first instruction's destination
    // register, so the pair's architectural effects are preserved exactly
    // even when a later instruction reads the intermediate value.

    CmpJz,   ///< a <- cmp(b, c); if (!a) pc <- imm.i.  d = compare Opcode.
    LdAddF,  ///< d <- buffer[slot][b]; a.f <- d.f + c.f (order via flag).
    LdMulF,  ///< d <- buffer[slot][b]; a.f <- d.f * c.f (order via flag).
    LdSubF,  ///< d <- buffer[slot][b]; a.f <- d.f - c.f (order via flag).
    LdAddI,  ///< d <- buffer[slot][b]; a.i <- d.i + c.i (order via flag).
    AddFSt,  ///< d.f <- b.f + c.f; buffer[imm.i][reg a] <- d.
    MulFSt,  ///< d.f <- b.f * c.f; buffer[imm.i][reg a] <- d.
    AddISt,  ///< d.i <- b.i + c.i; buffer[imm.i][reg a] <- d.
    MaddF,   ///< t.f <- b.f * c.f; a.f <- t.f + d.f (order via flag);
             ///<   t = imm.i & kFusedRegMask.
    MaddI,   ///< t.i <- b.i * c.i; a.i <- t.i + d.i; t = imm.i.
};

constexpr int kNumOpcodes = static_cast<int>(Opcode::MaddI) + 1;
constexpr int kNumCanonicalOpcodes = static_cast<int>(Opcode::Halt) + 1;

/// True for the fused opcodes that only appear in Program::fast_code.
constexpr bool
is_superinstruction(Opcode op)
{
    return static_cast<int>(op) >= kNumCanonicalOpcodes;
}

/// Superinstruction imm.i packing: the low bits carry the buffer slot
/// (Ld/St fusions) or the intermediate register (MaddF/MaddI); the flag
/// bit records that the *second* instruction read the fused value as its
/// right-hand operand, preserving float operand order bit-exactly.
constexpr std::int32_t kFusedSwapFlag = 1 << 30;
constexpr std::int32_t kFusedRegMask = kFusedSwapFlag - 1;

/// Mnemonic for dumps and tests.
std::string to_string(Opcode op);

/// One decoded instruction.  a is the destination register unless noted.
struct Instr {
    Opcode op = Opcode::Nop;
    std::int32_t a = 0;
    std::int32_t b = 0;
    std::int32_t c = 0;
    std::int32_t d = 0;
    Value imm = make_int(0);
};

/// A buffer-typed kernel parameter.
struct BufferParamInfo {
    std::string name;
    ir::Scalar elem;
    ir::AddrSpace space;
};

/// A scalar kernel parameter preloaded into a register before execution.
struct ScalarParamInfo {
    std::string name;
    ir::Scalar scalar;
    int reg;
};

/// How a program is executed (paper §5/§6: calibrate once, serve lean).
enum class ExecMode {
    /// Full dynamic accounting: per-opcode ExecStats, MemoryListener
    /// callbacks, and a per-dispatch instruction-budget check.  This is
    /// what the device cost models and Tuner::calibrate consume.
    Instrumented,
    /// Steady-state serving: runs the fused fast_code stream, counts only
    /// total dispatches, checks the runaway budget at control transfers,
    /// and compiles out the listener branches.  Outputs are bit-identical
    /// to instrumented execution; only the accounting differs.
    Fast,
};

/// A compiled kernel.
struct Program {
    std::string kernel_name;
    std::vector<Instr> code;
    /// Peephole-fused copy of `code` executed in ExecMode::Fast; built by
    /// fuse_superinstructions at compile time.  Empty fast_code makes
    /// fast execution fall back to `code` (hand-built test programs).
    std::vector<Instr> fast_code;
    int num_regs = 0;
    std::vector<BufferParamInfo> buffers;
    std::vector<ScalarParamInfo> scalars;
    bool has_barrier = false;

    /// Disassembly for debugging (canonical stream; pass true for the
    /// fused fast stream).
    std::string dump(bool fast = false) const;
};

/// Latency classes used by device models to price an opcode.
enum class LatencyClass {
    Trivial,         ///< mov/immediate/geometry/jumps.
    IntArith,
    FloatArith,
    Div,             ///< int/float division & modulo (subroutine on GPUs).
    Transcendental,  ///< exp/log/sin/cos/pow (SFU-capable).
    HeavyTranscendental,  ///< lgamma/erf: long software routines.
    SimpleMath,      ///< sqrt/fabs/min/max/floor.
    Memory,          ///< Ld/St — priced by the memory model instead.
    Atomic,
    Control,         ///< barrier/halt.
};

/// Classify an opcode.
LatencyClass latency_class(Opcode op);

}  // namespace paraprox::vm
