/// @file
/// The register-bytecode ISA that ParaCL kernels compile to.
///
/// Exact and Paraprox-approximated kernels are both lowered to this ISA and
/// executed by the same VM, so speedups measured between them reflect real
/// reductions in dynamic instruction and memory-operation counts — the same
/// mechanism the paper exploits on GPUs/CPUs.  Each opcode also carries a
/// latency class that the device models (src/device) use to convert dynamic
/// counts into modeled cycles.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/type.h"

namespace paraprox::vm {

/// A 32-bit register/word value; opcodes determine the interpretation.
union Value {
    std::int32_t i;
    float f;
};

inline Value
make_int(std::int32_t v)
{
    Value value;
    value.i = v;
    return value;
}

inline Value
make_float(float v)
{
    Value value;
    value.f = v;
    return value;
}

/// Bytecode operations.  Suffix I/F distinguishes int/float variants.
enum class Opcode : std::uint8_t {
    Nop,
    LdImm,    ///< a <- imm (payload already typed).
    Mov,      ///< a <- b.

    AddI, SubI, MulI, DivI, ModI,
    AddF, SubF, MulF, DivF,
    NegI, NegF, NotI,

    LtI, LeI, GtI, GeI, EqI, NeI,
    LtF, LeF, GtF, GeF, EqF, NeF,

    AndI, OrI, XorI, ShlI, ShrI,

    IToF,    ///< a.f <- (float)b.i
    FToI,    ///< a.i <- (int)b.f (truncating)

    Sqrt, Exp, Log, Sin, Cos, Pow, Fabs, Fmin, Fmax, Floor, Lgamma, Erf,
    IMin, IMax,

    Gid,     ///< a <- global id in dim imm.i
    Lid,     ///< a <- local id in dim imm.i
    GrpId,   ///< a <- group id in dim imm.i
    LSize,   ///< a <- local size in dim imm.i
    NGrp,    ///< a <- number of groups in dim imm.i
    GSize,   ///< a <- global size in dim imm.i

    Ld,      ///< a <- buffer[imm.i][reg b]
    St,      ///< buffer[imm.i][reg a] <- reg b

    AtomAdd, AtomMin, AtomMax, AtomInc, AtomAnd, AtomOr, AtomXor,
             ///< a <- old; buffer imm.i, index reg b, operand reg c.

    Sel,     ///< a <- b ? c : d

    Jmp,     ///< pc <- imm.i
    Jz,      ///< if (!reg a) pc <- imm.i

    Barrier,
    Halt,
};

constexpr int kNumOpcodes = static_cast<int>(Opcode::Halt) + 1;

/// Mnemonic for dumps and tests.
std::string to_string(Opcode op);

/// One decoded instruction.  a is the destination register unless noted.
struct Instr {
    Opcode op = Opcode::Nop;
    std::int32_t a = 0;
    std::int32_t b = 0;
    std::int32_t c = 0;
    std::int32_t d = 0;
    Value imm = make_int(0);
};

/// A buffer-typed kernel parameter.
struct BufferParamInfo {
    std::string name;
    ir::Scalar elem;
    ir::AddrSpace space;
};

/// A scalar kernel parameter preloaded into a register before execution.
struct ScalarParamInfo {
    std::string name;
    ir::Scalar scalar;
    int reg;
};

/// A compiled kernel.
struct Program {
    std::string kernel_name;
    std::vector<Instr> code;
    int num_regs = 0;
    std::vector<BufferParamInfo> buffers;
    std::vector<ScalarParamInfo> scalars;
    bool has_barrier = false;

    /// Disassembly for debugging.
    std::string dump() const;
};

/// Latency classes used by device models to price an opcode.
enum class LatencyClass {
    Trivial,         ///< mov/immediate/geometry/jumps.
    IntArith,
    FloatArith,
    Div,             ///< int/float division & modulo (subroutine on GPUs).
    Transcendental,  ///< exp/log/sin/cos/pow (SFU-capable).
    HeavyTranscendental,  ///< lgamma/erf: long software routines.
    SimpleMath,      ///< sqrt/fabs/min/max/floor.
    Memory,          ///< Ld/St — priced by the memory model instead.
    Atomic,
    Control,         ///< barrier/halt.
};

/// Classify an opcode.
LatencyClass latency_class(Opcode op);

}  // namespace paraprox::vm
