/// @file
/// Process-wide bytecode cache.
///
/// Paraprox generates a family of kernels per compile (exact + every
/// approximate variant), and callers historically re-lowered them to
/// bytecode on every variant-list construction.  The cache keys compiled
/// programs by (module fingerprint, kernel name) so each distinct kernel
/// is compiled exactly once per process, no matter how many sessions,
/// tuners, or pipeline invocations ask for it.

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>

#include "ir/function.h"
#include "vm/bytecode.h"

namespace paraprox::vm {

/// Thread-safe (fingerprint, kernel) -> compiled Program cache with an
/// optional second (disk) tier: memory -> disk -> compile.
class ProgramCache {
  public:
    struct Stats {
        std::uint64_t hits = 0;    ///< Served from memory.
        std::uint64_t misses = 0;  ///< Compiled from source.
        std::size_t entries = 0;
        std::uint64_t disk_hits = 0;    ///< Served from the disk tier.
        std::uint64_t disk_stores = 0;  ///< Compiles offered to the tier.
    };

    /// Backing tier consulted on a memory miss, before compiling (see
    /// store::ArtifactStore, which registers itself here when the global
    /// store is configured).  Implementations must be thread-safe and
    /// must treat corrupt or stale records as load() misses.
    class DiskTier {
      public:
        virtual ~DiskTier() = default;
        virtual std::optional<Program>
        load(std::uint64_t fingerprint,
             const std::string& kernel_name) = 0;
        virtual void save(std::uint64_t fingerprint,
                          const std::string& kernel_name,
                          const Program& program) = 0;
    };

    /// Fetch the compiled form of @p kernel_name in @p module: from
    /// memory, else from the disk tier, else by compiling (the result is
    /// offered back to the tier).  Concurrent misses on the same key may
    /// compile redundantly (compilation is pure); the first insertion
    /// wins, and every caller receives the same shared program afterwards.
    std::shared_ptr<const Program>
    get_or_compile(const ir::Module& module,
                   const std::string& kernel_name);

    /// Attach (or, with nullptr, detach) the disk tier.  Takes effect on
    /// the next miss; in-memory entries are unaffected.
    void set_disk_tier(std::shared_ptr<DiskTier> tier);

    Stats stats() const;

    /// Drop every entry and reset the counters (tests and benchmarks —
    /// e.g. to simulate a fresh process against a warm disk tier).  The
    /// disk tier stays attached.
    void clear();

    /// The process-wide cache.
    static ProgramCache& global();

  private:
    using Key = std::pair<std::uint64_t, std::string>;

    mutable std::mutex mutex_;
    std::map<Key, std::shared_ptr<const Program>> entries_;
    std::shared_ptr<DiskTier> disk_tier_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t disk_hits_ = 0;
    std::uint64_t disk_stores_ = 0;
};

}  // namespace paraprox::vm
