/// @file
/// Process-wide bytecode cache.
///
/// Paraprox generates a family of kernels per compile (exact + every
/// approximate variant), and callers historically re-lowered them to
/// bytecode on every variant-list construction.  The cache keys compiled
/// programs by (module fingerprint, kernel name) so each distinct kernel
/// is compiled exactly once per process, no matter how many sessions,
/// tuners, or pipeline invocations ask for it.

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "ir/function.h"
#include "vm/bytecode.h"

namespace paraprox::vm {

/// Thread-safe (fingerprint, kernel) -> compiled Program cache.
class ProgramCache {
  public:
    struct Stats {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::size_t entries = 0;
    };

    /// Fetch the compiled form of @p kernel_name in @p module, compiling
    /// it on first request.  Concurrent misses on the same key may compile
    /// redundantly (compilation is pure); the first insertion wins, and
    /// every caller receives the same shared program afterwards.
    std::shared_ptr<const Program>
    get_or_compile(const ir::Module& module,
                   const std::string& kernel_name);

    Stats stats() const;

    /// Drop every entry and reset the hit/miss counters (tests only).
    void clear();

    /// The process-wide cache.
    static ProgramCache& global();

  private:
    using Key = std::pair<std::uint64_t, std::string>;

    mutable std::mutex mutex_;
    std::map<Key, std::shared_ptr<const Program>> entries_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

}  // namespace paraprox::vm
