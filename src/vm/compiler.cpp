#include "vm/compiler.h"

#include <map>
#include <optional>

#include "ir/builtins.h"
#include "support/error.h"

namespace paraprox::vm {

using namespace ir;

namespace {

/// What a name is bound to during compilation.
struct Binding {
    enum class Kind { Register, Buffer };
    Kind kind;
    int index;  ///< Register number or buffer slot.
};

/// One inlining frame: name bindings plus the return plumbing of the
/// function currently being lowered.
struct Frame {
    std::map<std::string, Binding> names;
    int return_reg = -1;      ///< Where `return expr` writes.
    int exit_label = -1;      ///< Jump target for `return`.
    const Frame* parent = nullptr;

    const Binding*
    lookup(const std::string& name) const
    {
        auto it = names.find(name);
        if (it != names.end())
            return &it->second;
        // Only the current frame is visible for registers (no closures),
        // but kernels have a single frame and inlined callees see only
        // their own params/locals, so no parent chase is wanted here.
        return nullptr;
    }
};

class Compiler {
  public:
    Compiler(const ir::Module& module) : module_(module) {}

    Program
    compile(const Function& kernel, bool standalone_scalar)
    {
        program_.kernel_name = kernel.name;
        Frame frame;

        if (standalone_scalar) {
            // Scalar function entry: params become preloaded registers and
            // the result is written to register 0.
            result_reg_ = alloc_reg();  // register 0
            PARAPROX_ASSERT(result_reg_ == 0, "result register must be 0");
            for (const auto& param : kernel.params) {
                PARAPROX_CHECK(!param.type.is_pointer,
                               "scalar function cannot take pointers");
                const int reg = alloc_reg();
                frame.names[param.name] = {Binding::Kind::Register, reg};
                program_.scalars.push_back(
                    {param.name, param.type.scalar, reg});
            }
            frame.return_reg = result_reg_;
            frame.exit_label = make_label();
            compile_block(*kernel.body, frame);
            bind_label(frame.exit_label);
            emit(Opcode::Halt);
        } else {
            for (const auto& param : kernel.params) {
                if (param.type.is_pointer) {
                    const int slot =
                        static_cast<int>(program_.buffers.size());
                    program_.buffers.push_back(
                        {param.name, param.type.scalar, param.type.space});
                    frame.names[param.name] = {Binding::Kind::Buffer, slot};
                } else {
                    const int reg = alloc_reg();
                    frame.names[param.name] = {Binding::Kind::Register, reg};
                    program_.scalars.push_back(
                        {param.name, param.type.scalar, reg});
                }
            }
            frame.return_reg = -1;
            frame.exit_label = make_label();
            compile_block(*kernel.body, frame);
            bind_label(frame.exit_label);
            emit(Opcode::Halt);
        }

        resolve_labels();
        program_.num_regs = next_reg_;
        return std::move(program_);
    }

  private:
    // ---- Emission helpers ----------------------------------------------

    int
    emit(Opcode op, int a = 0, int b = 0, int c = 0, int d = 0,
         Value imm = make_int(0))
    {
        program_.code.push_back({op, a, b, c, d, imm});
        if (op == Opcode::Barrier)
            program_.has_barrier = true;
        return static_cast<int>(program_.code.size()) - 1;
    }

    int alloc_reg() { return next_reg_++; }

    /// Labels are resolved to instruction indices after codegen.
    int
    make_label()
    {
        labels_.push_back(-1);
        return static_cast<int>(labels_.size()) - 1;
    }

    void
    bind_label(int label)
    {
        labels_[label] = static_cast<int>(program_.code.size());
    }

    /// Emit a jump whose imm.i is a label id, fixed up later.
    int
    emit_jump(Opcode op, int label, int cond_reg = 0)
    {
        const int index = emit(op, cond_reg, 0, 0, 0, make_int(label));
        jump_sites_.push_back(index);
        return index;
    }

    void
    resolve_labels()
    {
        for (int site : jump_sites_) {
            Instr& instr = program_.code[site];
            const int label = instr.imm.i;
            PARAPROX_ASSERT(labels_[label] >= 0, "unbound label");
            instr.imm.i = labels_[label];
        }
    }

    int
    load_const_int(int value)
    {
        const int reg = alloc_reg();
        emit(Opcode::LdImm, reg, 0, 0, 0, make_int(value));
        return reg;
    }

    int
    load_const_float(float value)
    {
        const int reg = alloc_reg();
        emit(Opcode::LdImm, reg, 0, 0, 0, make_float(value));
        return reg;
    }

    // ---- Statements -----------------------------------------------------

    void
    compile_block(const Block& block, Frame& frame)
    {
        for (const auto& stmt : block.stmts)
            compile_stmt(*stmt, frame);
    }

    void
    compile_stmt(const Stmt& stmt, Frame& frame)
    {
        switch (stmt.kind()) {
          case StmtKind::Block:
            compile_block(static_cast<const Block&>(stmt), frame);
            break;
          case StmtKind::Decl: {
            const auto& decl = static_cast<const Decl&>(stmt);
            const int reg = alloc_reg();
            if (decl.init) {
                const int value = compile_expr(*decl.init, frame);
                emit(Opcode::Mov, reg, value);
            } else {
                emit(Opcode::LdImm, reg, 0, 0, 0,
                     decl.type.is_float() ? make_float(0.0f) : make_int(0));
            }
            frame.names[decl.name] = {Binding::Kind::Register, reg};
            break;
          }
          case StmtKind::Assign: {
            const auto& assign = static_cast<const Assign&>(stmt);
            const Binding* binding = frame.lookup(assign.name);
            PARAPROX_CHECK(binding &&
                               binding->kind == Binding::Kind::Register,
                           "assignment to unknown variable `" +
                               assign.name + "`");
            const int value = compile_expr(*assign.value, frame);
            emit(Opcode::Mov, binding->index, value);
            break;
          }
          case StmtKind::Store: {
            const auto& store = static_cast<const Store&>(stmt);
            const Binding* binding = frame.lookup(store.array);
            PARAPROX_CHECK(binding && binding->kind == Binding::Kind::Buffer,
                           "store to unknown buffer `" + store.array + "`");
            const int index = compile_expr(*store.index, frame);
            const int value = compile_expr(*store.value, frame);
            emit(Opcode::St, index, value, 0, 0, make_int(binding->index));
            break;
          }
          case StmtKind::If: {
            const auto& branch = static_cast<const If&>(stmt);
            const int cond = compile_expr(*branch.cond, frame);
            const int else_label = make_label();
            const int end_label = make_label();
            emit_jump(Opcode::Jz, else_label, cond);
            compile_block(*branch.then_body, frame);
            emit_jump(Opcode::Jmp, end_label);
            bind_label(else_label);
            if (branch.else_body)
                compile_block(*branch.else_body, frame);
            bind_label(end_label);
            break;
          }
          case StmtKind::For: {
            const auto& loop = static_cast<const For&>(stmt);
            if (loop.init)
                compile_stmt(*loop.init, frame);
            const int head_label = make_label();
            const int end_label = make_label();
            bind_label(head_label);
            const int cond = compile_expr(*loop.cond, frame);
            emit_jump(Opcode::Jz, end_label, cond);
            compile_block(*loop.body, frame);
            if (loop.step)
                compile_stmt(*loop.step, frame);
            emit_jump(Opcode::Jmp, head_label);
            bind_label(end_label);
            break;
          }
          case StmtKind::Return: {
            const auto& ret = static_cast<const Return&>(stmt);
            if (ret.value) {
                PARAPROX_CHECK(frame.return_reg >= 0,
                               "return with value in void context");
                const int value = compile_expr(*ret.value, frame);
                emit(Opcode::Mov, frame.return_reg, value);
            }
            emit_jump(Opcode::Jmp, frame.exit_label);
            break;
          }
          case StmtKind::ExprStmt:
            compile_expr(*static_cast<const ExprStmt&>(stmt).expr, frame);
            break;
          case StmtKind::Barrier:
            emit(Opcode::Barrier);
            break;
        }
    }

    // ---- Expressions ------------------------------------------------------

    int
    compile_expr(const Expr& expr, Frame& frame)
    {
        switch (expr.kind()) {
          case ExprKind::IntLit:
            return load_const_int(static_cast<const IntLit&>(expr).value);
          case ExprKind::FloatLit:
            return load_const_float(
                static_cast<const FloatLit&>(expr).value);
          case ExprKind::BoolLit:
            return load_const_int(
                static_cast<const BoolLit&>(expr).value ? 1 : 0);
          case ExprKind::VarRef: {
            const auto& ref = static_cast<const VarRef&>(expr);
            const Binding* binding = frame.lookup(ref.name);
            PARAPROX_CHECK(binding, "unknown variable `" + ref.name + "`");
            PARAPROX_CHECK(binding->kind == Binding::Kind::Register,
                           "buffer `" + ref.name + "` used as a scalar");
            return binding->index;
          }
          case ExprKind::Unary:
            return compile_unary(static_cast<const Unary&>(expr), frame);
          case ExprKind::Binary:
            return compile_binary(static_cast<const Binary&>(expr), frame);
          case ExprKind::Call:
            return compile_call(static_cast<const Call&>(expr), frame);
          case ExprKind::Load: {
            const auto& load = static_cast<const Load&>(expr);
            const Binding* binding = frame.lookup(load.array);
            PARAPROX_CHECK(binding && binding->kind == Binding::Kind::Buffer,
                           "unknown buffer `" + load.array + "`");
            const int index = compile_expr(*load.index, frame);
            const int dest = alloc_reg();
            emit(Opcode::Ld, dest, index, 0, 0, make_int(binding->index));
            return dest;
          }
          case ExprKind::Cast:
            return compile_cast(static_cast<const Cast&>(expr), frame);
          case ExprKind::Select: {
            const auto& select = static_cast<const Select&>(expr);
            const int cond = compile_expr(*select.cond, frame);
            const int if_true = compile_expr(*select.if_true, frame);
            const int if_false = compile_expr(*select.if_false, frame);
            const int dest = alloc_reg();
            emit(Opcode::Sel, dest, cond, if_true, if_false);
            return dest;
          }
        }
        throw InternalError("unreachable expression kind");
    }

    int
    compile_unary(const Unary& unary, Frame& frame)
    {
        const int operand = compile_expr(*unary.operand, frame);
        const int dest = alloc_reg();
        switch (unary.op) {
          case UnaryOp::Neg:
            emit(unary.operand->type().is_float() ? Opcode::NegF
                                                  : Opcode::NegI,
                 dest, operand);
            break;
          case UnaryOp::Not:
            emit(Opcode::NotI, dest, operand);
            break;
        }
        return dest;
    }

    int
    compile_binary(const Binary& binary, Frame& frame)
    {
        const int lhs = compile_expr(*binary.lhs, frame);
        const int rhs = compile_expr(*binary.rhs, frame);
        const bool float_operands = binary.lhs->type().is_float();
        const int dest = alloc_reg();

        auto pick = [&](Opcode int_op, Opcode float_op) {
            return float_operands ? float_op : int_op;
        };

        Opcode op;
        switch (binary.op) {
          case BinaryOp::Add: op = pick(Opcode::AddI, Opcode::AddF); break;
          case BinaryOp::Sub: op = pick(Opcode::SubI, Opcode::SubF); break;
          case BinaryOp::Mul: op = pick(Opcode::MulI, Opcode::MulF); break;
          case BinaryOp::Div: op = pick(Opcode::DivI, Opcode::DivF); break;
          case BinaryOp::Mod: op = Opcode::ModI; break;
          case BinaryOp::Lt: op = pick(Opcode::LtI, Opcode::LtF); break;
          case BinaryOp::Le: op = pick(Opcode::LeI, Opcode::LeF); break;
          case BinaryOp::Gt: op = pick(Opcode::GtI, Opcode::GtF); break;
          case BinaryOp::Ge: op = pick(Opcode::GeI, Opcode::GeF); break;
          case BinaryOp::Eq: op = pick(Opcode::EqI, Opcode::EqF); break;
          case BinaryOp::Ne: op = pick(Opcode::NeI, Opcode::NeF); break;
          case BinaryOp::LogicalAnd: op = Opcode::AndI; break;
          case BinaryOp::LogicalOr: op = Opcode::OrI; break;
          case BinaryOp::BitAnd: op = Opcode::AndI; break;
          case BinaryOp::BitOr: op = Opcode::OrI; break;
          case BinaryOp::BitXor: op = Opcode::XorI; break;
          case BinaryOp::Shl: op = Opcode::ShlI; break;
          case BinaryOp::Shr: op = Opcode::ShrI; break;
          default:
            throw InternalError("unhandled binary op");
        }
        emit(op, dest, lhs, rhs);
        return dest;
    }

    int
    compile_cast(const Cast& cast, Frame& frame)
    {
        const int operand = compile_expr(*cast.operand, frame);
        const Type from = cast.operand->type();
        const Type to = cast.type();
        const int dest = alloc_reg();
        if (from.is_float() && !to.is_float()) {
            if (to.is_bool()) {
                const int zero = load_const_float(0.0f);
                emit(Opcode::NeF, dest, operand, zero);
            } else {
                emit(Opcode::FToI, dest, operand);
            }
        } else if (!from.is_float() && to.is_float()) {
            emit(Opcode::IToF, dest, operand);
        } else if (to.is_bool() && from.is_int()) {
            const int zero = load_const_int(0);
            emit(Opcode::NeI, dest, operand, zero);
        } else {
            emit(Opcode::Mov, dest, operand);
        }
        return dest;
    }

    int
    compile_call(const Call& call, Frame& frame)
    {
        if (call.builtin == Builtin::None)
            return inline_user_call(call, frame);
        return compile_builtin(call, frame);
    }

    int
    compile_builtin(const Call& call, Frame& frame)
    {
        const Builtin builtin = call.builtin;
        const BuiltinInfo& info = builtin_info(builtin);

        if (is_thread_id_builtin(builtin)) {
            const auto* dim = expr_as<IntLit>(*call.args[0]);
            PARAPROX_CHECK(dim,
                           std::string(info.name) +
                               " requires a constant dimension");
            PARAPROX_CHECK(dim->value >= 0 && dim->value < 3,
                           "dimension must be 0, 1 or 2");
            Opcode op;
            switch (builtin) {
              case Builtin::GlobalId: op = Opcode::Gid; break;
              case Builtin::LocalId: op = Opcode::Lid; break;
              case Builtin::GroupId: op = Opcode::GrpId; break;
              case Builtin::LocalSize: op = Opcode::LSize; break;
              case Builtin::NumGroups: op = Opcode::NGrp; break;
              case Builtin::GlobalSize: op = Opcode::GSize; break;
              default: throw InternalError("bad geometry builtin");
            }
            const int dest = alloc_reg();
            emit(op, dest, 0, 0, 0, make_int(dim->value));
            return dest;
        }

        if (info.is_atomic) {
            const auto* target = expr_as<VarRef>(*call.args[0]);
            PARAPROX_ASSERT(target, "atomic target must be a VarRef");
            const Binding* binding = frame.lookup(target->name);
            PARAPROX_CHECK(binding && binding->kind == Binding::Kind::Buffer,
                           "atomic on unknown buffer `" + target->name +
                               "`");
            const int index = compile_expr(*call.args[1], frame);
            int operand = 0;
            if (call.args.size() == 3)
                operand = compile_expr(*call.args[2], frame);
            Opcode op;
            switch (builtin) {
              case Builtin::AtomicAdd: op = Opcode::AtomAdd; break;
              case Builtin::AtomicMin: op = Opcode::AtomMin; break;
              case Builtin::AtomicMax: op = Opcode::AtomMax; break;
              case Builtin::AtomicInc: op = Opcode::AtomInc; break;
              case Builtin::AtomicAnd: op = Opcode::AtomAnd; break;
              case Builtin::AtomicOr: op = Opcode::AtomOr; break;
              case Builtin::AtomicXor: op = Opcode::AtomXor; break;
              default: throw InternalError("bad atomic builtin");
            }
            const int dest = alloc_reg();
            emit(op, dest, index, operand, 0, make_int(binding->index));
            return dest;
        }

        if (builtin == Builtin::Barrier) {
            emit(Opcode::Barrier);
            return 0;
        }

        // Plain math builtins.
        std::vector<int> arg_regs;
        arg_regs.reserve(call.args.size());
        for (const auto& arg : call.args)
            arg_regs.push_back(compile_expr(*arg, frame));
        Opcode op;
        switch (builtin) {
          case Builtin::Sqrt: op = Opcode::Sqrt; break;
          case Builtin::Exp: op = Opcode::Exp; break;
          case Builtin::Log: op = Opcode::Log; break;
          case Builtin::Sin: op = Opcode::Sin; break;
          case Builtin::Cos: op = Opcode::Cos; break;
          case Builtin::Pow: op = Opcode::Pow; break;
          case Builtin::Fabs: op = Opcode::Fabs; break;
          case Builtin::Fmin: op = Opcode::Fmin; break;
          case Builtin::Fmax: op = Opcode::Fmax; break;
          case Builtin::Floor: op = Opcode::Floor; break;
          case Builtin::Lgamma: op = Opcode::Lgamma; break;
          case Builtin::Erf: op = Opcode::Erf; break;
          case Builtin::IMin: op = Opcode::IMin; break;
          case Builtin::IMax: op = Opcode::IMax; break;
          default: throw InternalError("unhandled builtin");
        }
        const int dest = alloc_reg();
        emit(op, dest, arg_regs[0], arg_regs.size() > 1 ? arg_regs[1] : 0);
        return dest;
    }

    int
    inline_user_call(const Call& call, Frame& frame)
    {
        const Function* callee = module_.find_function(call.callee);
        PARAPROX_CHECK(callee, "call to unknown function `" + call.callee +
                                   "`");
        PARAPROX_CHECK(callee->params.size() == call.args.size(),
                       "arity mismatch calling `" + call.callee + "`");
        PARAPROX_CHECK(inline_depth_ < 32,
                       "function inlining too deep (recursion?)");

        Frame callee_frame;
        for (std::size_t i = 0; i < call.args.size(); ++i) {
            const Param& param = callee->params[i];
            if (param.type.is_pointer) {
                const auto* arg_ref = expr_as<VarRef>(*call.args[i]);
                PARAPROX_CHECK(arg_ref,
                               "pointer argument must be a buffer name");
                const Binding* binding = frame.lookup(arg_ref->name);
                PARAPROX_CHECK(binding &&
                                   binding->kind == Binding::Kind::Buffer,
                               "pointer argument must name a buffer");
                callee_frame.names[param.name] = *binding;
            } else {
                const int value = compile_expr(*call.args[i], frame);
                const int param_reg = alloc_reg();
                emit(Opcode::Mov, param_reg, value);
                callee_frame.names[param.name] = {Binding::Kind::Register,
                                                  param_reg};
            }
        }

        const int result_reg = alloc_reg();
        callee_frame.return_reg =
            callee->return_type.is_void() ? -1 : result_reg;
        callee_frame.exit_label = make_label();

        ++inline_depth_;
        compile_block(*callee->body, callee_frame);
        --inline_depth_;
        bind_label(callee_frame.exit_label);
        return result_reg;
    }

    const ir::Module& module_;
    Program program_;
    int next_reg_ = 0;
    int result_reg_ = -1;
    int inline_depth_ = 0;
    std::vector<int> labels_;
    std::vector<int> jump_sites_;
};

/// True when @p op is one of the twelve compare opcodes fusable with Jz.
bool
is_compare(Opcode op)
{
    switch (op) {
      case Opcode::LtI: case Opcode::LeI: case Opcode::GtI:
      case Opcode::GeI: case Opcode::EqI: case Opcode::NeI:
      case Opcode::LtF: case Opcode::LeF: case Opcode::GtF:
      case Opcode::GeF: case Opcode::EqF: case Opcode::NeF:
        return true;
      default:
        return false;
    }
}

/// Fused Ld+arith opcode for @p arith, or Nop when the pair is not fused.
Opcode
ld_arith_fusion(Opcode arith)
{
    switch (arith) {
      case Opcode::AddF: return Opcode::LdAddF;
      case Opcode::MulF: return Opcode::LdMulF;
      case Opcode::SubF: return Opcode::LdSubF;
      case Opcode::AddI: return Opcode::LdAddI;
      default: return Opcode::Nop;
    }
}

/// Fused arith+St opcode for @p arith, or Nop.
Opcode
arith_st_fusion(Opcode arith)
{
    switch (arith) {
      case Opcode::AddF: return Opcode::AddFSt;
      case Opcode::MulF: return Opcode::MulFSt;
      case Opcode::AddI: return Opcode::AddISt;
      default: return Opcode::Nop;
    }
}

/// Try to fuse (first, second); returns the superinstruction when a rule
/// matches (with its imm target still in *old* pc space for CmpJz).
std::optional<Instr>
try_fuse(const Instr& first, const Instr& second)
{
    // compare + Jz on the compare result.
    if (is_compare(first.op) && second.op == Opcode::Jz &&
        second.a == first.a) {
        return Instr{Opcode::CmpJz, first.a, first.b, first.c,
                     static_cast<std::int32_t>(first.op), second.imm};
    }

    // Ld + arith consuming the loaded value.  The flag records whether the
    // loaded value was the arith's rhs so float operand order (and with it
    // NaN propagation) is preserved bit-exactly.
    if (first.op == Opcode::Ld) {
        const Opcode fused = ld_arith_fusion(second.op);
        if (fused != Opcode::Nop &&
            (second.b == first.a || second.c == first.a)) {
            const bool loaded_is_lhs = second.b == first.a;
            const std::int32_t other = loaded_is_lhs ? second.c : second.b;
            return Instr{fused, second.a, first.b, other, first.a,
                         make_int(first.imm.i |
                                  (loaded_is_lhs ? 0 : kFusedSwapFlag))};
        }
    }

    // arith + St of the arith result.
    if (second.op == Opcode::St && second.b == first.a) {
        const Opcode fused = arith_st_fusion(first.op);
        if (fused != Opcode::Nop) {
            return Instr{fused, second.a, first.b, first.c, first.a,
                         second.imm};
        }
    }

    // mul + add consuming the product.
    if (first.op == Opcode::MulF && second.op == Opcode::AddF &&
        (second.b == first.a || second.c == first.a)) {
        const bool product_is_lhs = second.b == first.a;
        const std::int32_t addend = product_is_lhs ? second.c : second.b;
        return Instr{Opcode::MaddF, second.a, first.b, first.c, addend,
                     make_int(first.a |
                              (product_is_lhs ? 0 : kFusedSwapFlag))};
    }
    if (first.op == Opcode::MulI && second.op == Opcode::AddI &&
        (second.b == first.a || second.c == first.a)) {
        const std::int32_t addend =
            second.b == first.a ? second.c : second.b;
        return Instr{Opcode::MaddI, second.a, first.b, first.c, addend,
                     make_int(first.a)};
    }

    return std::nullopt;
}

}  // namespace

void
fuse_superinstructions(Program& program)
{
    const std::vector<Instr>& code = program.code;
    const std::size_t n = code.size();

    // A pair straddling a jump target cannot fuse: control flow may enter
    // at its second instruction.
    std::vector<bool> is_target(n + 1, false);
    for (const Instr& instr : code) {
        if (instr.op == Opcode::Jmp || instr.op == Opcode::Jz)
            is_target[instr.imm.i] = true;
    }

    std::vector<Instr> fast;
    fast.reserve(n);
    std::vector<std::int32_t> remap(n + 1, 0);
    for (std::size_t pc = 0; pc < n; ++pc) {
        remap[pc] = static_cast<std::int32_t>(fast.size());
        if (pc + 1 < n && !is_target[pc + 1]) {
            if (auto fused = try_fuse(code[pc], code[pc + 1])) {
                // Both halves of the pair map to the fused instruction
                // (nothing jumps to the second half by construction).
                remap[pc + 1] = remap[pc];
                fast.push_back(*fused);
                ++pc;
                continue;
            }
        }
        fast.push_back(code[pc]);
    }
    remap[n] = static_cast<std::int32_t>(fast.size());

    for (Instr& instr : fast) {
        if (instr.op == Opcode::Jmp || instr.op == Opcode::Jz ||
            instr.op == Opcode::CmpJz) {
            instr.imm.i = remap[instr.imm.i];
        }
    }
    program.fast_code = std::move(fast);
}

Program
compile_kernel(const ir::Module& module, const std::string& kernel_name)
{
    const Function* kernel = module.find_function(kernel_name);
    PARAPROX_CHECK(kernel, "no function named `" + kernel_name + "`");
    PARAPROX_CHECK(kernel->is_kernel,
                   "`" + kernel_name + "` is not a kernel");
    Program program = Compiler(module).compile(*kernel, false);
    fuse_superinstructions(program);
    return program;
}

Program
compile_scalar_function(const ir::Module& module,
                        const std::string& function_name)
{
    const Function* function = module.find_function(function_name);
    PARAPROX_CHECK(function,
                   "no function named `" + function_name + "`");
    PARAPROX_CHECK(!function->return_type.is_void(),
                   "scalar function must return a value");
    Program program = Compiler(module).compile(*function, true);
    fuse_superinstructions(program);
    return program;
}

}  // namespace paraprox::vm
