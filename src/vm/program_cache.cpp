#include "vm/program_cache.h"

#include "ir/printer.h"
#include "vm/compiler.h"

namespace paraprox::vm {

std::shared_ptr<const Program>
ProgramCache::get_or_compile(const ir::Module& module,
                             const std::string& kernel_name)
{
    const Key key{ir::fingerprint(module), kernel_name};
    std::shared_ptr<DiskTier> tier;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = entries_.find(key);
        if (it != entries_.end()) {
            ++hits_;
            return it->second;
        }
        tier = disk_tier_;
    }

    // Both tiers run outside the lock so a slow miss does not serialize
    // parallel calibration; a concurrent miss on the same key produces
    // the same pure result and the first insertion wins.
    if (tier) {
        if (auto stored = tier->load(key.first, kernel_name)) {
            auto program =
                std::make_shared<const Program>(std::move(*stored));
            std::lock_guard<std::mutex> lock(mutex_);
            ++disk_hits_;
            auto [it, inserted] = entries_.emplace(key,
                                                   std::move(program));
            return it->second;
        }
    }

    auto program = std::make_shared<const Program>(
        compile_kernel(module, kernel_name));
    if (tier)
        tier->save(key.first, kernel_name, *program);

    std::lock_guard<std::mutex> lock(mutex_);
    ++misses_;
    if (tier)
        ++disk_stores_;
    auto [it, inserted] = entries_.emplace(key, std::move(program));
    return it->second;
}

void
ProgramCache::set_disk_tier(std::shared_ptr<DiskTier> tier)
{
    std::lock_guard<std::mutex> lock(mutex_);
    disk_tier_ = std::move(tier);
}

ProgramCache::Stats
ProgramCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return {hits_, misses_, entries_.size(), disk_hits_, disk_stores_};
}

void
ProgramCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    hits_ = 0;
    misses_ = 0;
    disk_hits_ = 0;
    disk_stores_ = 0;
}

ProgramCache&
ProgramCache::global()
{
    static ProgramCache cache;
    return cache;
}

}  // namespace paraprox::vm
