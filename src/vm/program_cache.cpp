#include "vm/program_cache.h"

#include "ir/printer.h"
#include "vm/compiler.h"

namespace paraprox::vm {

std::shared_ptr<const Program>
ProgramCache::get_or_compile(const ir::Module& module,
                             const std::string& kernel_name)
{
    const Key key{ir::fingerprint(module), kernel_name};
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = entries_.find(key);
        if (it != entries_.end()) {
            ++hits_;
            return it->second;
        }
    }

    // Compile outside the lock so a slow miss does not serialize parallel
    // calibration; a concurrent miss on the same key compiles the same
    // pure result and the first insertion wins.
    auto program = std::make_shared<const Program>(
        compile_kernel(module, kernel_name));

    std::lock_guard<std::mutex> lock(mutex_);
    ++misses_;
    auto [it, inserted] = entries_.emplace(key, std::move(program));
    return it->second;
}

ProgramCache::Stats
ProgramCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return {hits_, misses_, entries_.size()};
}

void
ProgramCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    hits_ = 0;
    misses_ = 0;
}

ProgramCache&
ProgramCache::global()
{
    static ProgramCache cache;
    return cache;
}

}  // namespace paraprox::vm
