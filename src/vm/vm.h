/// @file
/// The bytecode virtual machine: executes one work-group of a compiled
/// kernel, with work-item geometry, barriers, atomics, bounds-checked
/// memory, and dynamic-instruction accounting.
///
/// Execution statistics (per-opcode dynamic counts) and the memory-access
/// stream are the raw material for the device cost models: the paper's
/// GPU/CPU asymmetries (atomic cost, SFU transcendentals, cache behaviour
/// of lookup tables, coalescing) are all priced from what the VM reports.

#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "data/codec.h"
#include "support/error.h"
#include "vm/bytecode.h"

namespace paraprox::vm {

/// Raised when an approximate kernel does something unsafe (out-of-bounds
/// access, integer division by zero, barrier divergence).  The runtime
/// catches this and falls back to the exact kernel (paper §5, "Safety of
/// Optimizations").
class TrapError : public Error {
  public:
    explicit TrapError(const std::string& what) : Error(what) {}
};

/// Why a launch was cancelled.  First cancel wins; later cancels with a
/// different reason are ignored so the owner always observes the cause
/// that actually stopped the launch.
enum class CancelReason : int {
    None = 0,
    Deadline = 1,  ///< The request's deadline expired mid-launch.
    Watchdog = 2,  ///< The launch exceeded its hang ceiling.
};

/// Cooperative cancellation flag threaded from the serving layer down to
/// the interpreter: one relaxed atomic, the same shape as the launch
/// layer's trap-abort flag.  The GroupRunner polls it at control
/// transfers (where the fast loop already hoists its budget check) and
/// between work-items/rounds, so a cancelled launch stops within one
/// group round instead of running to completion.  Distinct from a trap:
/// cancellation is the *harness* terminating healthy-but-unwanted work,
/// so it must not feed quarantine breakers by itself.
class CancelToken {
  public:
    /// Request cancellation.  Returns true if this call was the one that
    /// cancelled (first reason wins).
    bool
    cancel(CancelReason reason)
    {
        int expected = 0;
        return state_.compare_exchange_strong(
            expected, static_cast<int>(reason), std::memory_order_relaxed,
            std::memory_order_relaxed);
    }

    bool
    cancelled() const
    {
        return state_.load(std::memory_order_relaxed) != 0;
    }

    CancelReason
    reason() const
    {
        return static_cast<CancelReason>(
            state_.load(std::memory_order_relaxed));
    }

  private:
    std::atomic<int> state_{static_cast<int>(CancelReason::None)};
};

/// Raised by the GroupRunner when its cancel token fires.  Deliberately
/// NOT a TrapError: traps mean the kernel misbehaved (and charge its
/// quarantine breaker); cancellation means the harness no longer wants
/// the result.  The launch layer converts this into a cancelled
/// LaunchResult instead of a trap.
class CancelledError : public Error {
  public:
    explicit CancelledError(const std::string& what) : Error(what) {}
};

/// Dynamic execution statistics for a launch (or a slice of one).
struct ExecStats {
    std::array<std::uint64_t, kNumOpcodes> opcode_counts{};
    std::uint64_t total_instructions = 0;

    void
    merge(const ExecStats& other)
    {
        for (int i = 0; i < kNumOpcodes; ++i)
            opcode_counts[i] += other.opcode_counts[i];
        total_instructions += other.total_instructions;
    }

    std::uint64_t
    count(Opcode op) const
    {
        return opcode_counts[static_cast<int>(op)];
    }
};

/// Receives every Ld/St/atomic performed by a work-group; implemented by
/// the device memory models.
class MemoryListener {
  public:
    virtual ~MemoryListener() = default;

    /// @param instr_index static instruction id within the program.
    /// @param buffer_slot which kernel buffer parameter was touched.
    /// @param space address space of that buffer.
    /// @param element index of the element accessed.
    /// @param is_store true for St and all atomics.
    /// @param global_linear_id flattened global work-item id (warp grouping
    ///        uses consecutive ids).
    /// @param elem_bytes storage footprint of the element (4 for exact
    ///        buffers, fewer for packed codecs) — the memory cost models
    ///        charge bytes moved, so packed buffers coalesce into
    ///        proportionally fewer cache lines.
    virtual void on_access(int instr_index, int buffer_slot,
                           ir::AddrSpace space, std::int64_t element,
                           bool is_store, std::int64_t global_linear_id,
                           int elem_bytes) = 0;
};

/// A runtime view of a buffer argument.  `size` is always the *logical*
/// element count (bounds checks are codec-independent); for a packed view
/// (`codec != Exact`) the backing array holds
/// data::packed_words(codec, size) words and every Ld/St goes through the
/// codec's decode/encode (see data/codec.h).  Atomics require an exact
/// view — the VM traps otherwise, and the storage safety analysis pins
/// such buffers exact so the trap is unreachable from tuned plans.
struct BufferView {
    std::int32_t* data = nullptr;
    std::int64_t size = 0;
    data::Codec codec = data::Codec::Exact;
    data::QuantParams quant;

    /// Words actually backing this view.
    std::int64_t
    storage_words() const
    {
        return data::packed_words(codec, size);
    }
};

/// Position of one work-group within the launch grid.
struct GroupGeometry {
    std::array<int, 3> group_id{0, 0, 0};
    std::array<int, 3> num_groups{1, 1, 1};
    std::array<int, 3> local_size{1, 1, 1};

    int
    local_count() const
    {
        return local_size[0] * local_size[1] * local_size[2];
    }

    std::int64_t
    group_linear() const
    {
        return (static_cast<std::int64_t>(group_id[2]) * num_groups[1] +
                group_id[1]) * num_groups[0] + group_id[0];
    }
};

/// Executes every work-item of one work-group.
///
/// Groups without barriers run their work-items to completion one after
/// another; groups with barriers run all work-items cooperatively in
/// barrier-delimited rounds (detecting divergent barriers).
///
/// Two execution modes (ExecMode): Instrumented runs the canonical code
/// stream with per-opcode counting, listener callbacks, and a
/// per-dispatch budget check; Fast runs the fused fast_code stream,
/// counts only total dispatches, hoists the budget check to control
/// transfers, and compiles the listener branches out entirely.  Safety
/// traps (bounds, division by zero, divergent barriers) are identical in
/// both modes, as are all outputs.
class GroupRunner {
  public:
    /// @param shared_sizes element counts for each Shared buffer slot;
    ///        ignored entries for non-shared slots.
    /// @param mode Fast requires @p listener to be null (the fast loop
    ///        has no listener callbacks to deliver).
    /// @param cancel optional cooperative cancellation token, polled at
    ///        control transfers and between work-items; null = the
    ///        launch cannot be cancelled.
    GroupRunner(const Program& program,
                std::vector<BufferView> global_buffers,
                const std::vector<Value>& scalar_args,
                const std::vector<std::int64_t>& shared_sizes,
                const GroupGeometry& geometry, ExecStats* stats,
                MemoryListener* listener,
                ExecMode mode = ExecMode::Instrumented,
                const CancelToken* cancel = nullptr);

    /// Run the whole group.  Throws TrapError on unsafe behaviour.
    void run();

    /// Register file of the last work-item that completed, captured after
    /// run().  Used by host-side scalar evaluation (register 0 holds the
    /// result of a compile_scalar_function program).
    const std::vector<Value>& final_regs() const { return final_regs_; }

    /// Upper bound on dynamic instructions per work-item before the VM
    /// assumes a runaway loop and traps (defends tests against infinite
    /// loops in generated kernels).
    static constexpr std::uint64_t kMaxInstructionsPerItem = 1ull << 33;

  private:
    struct ItemState {
        std::vector<Value> regs;
        std::int64_t pc = 0;
        bool halted = false;
    };

    /// Run one work-item until Halt (or Barrier when @p stop_at_barrier),
    /// returning true if it stopped at a barrier.  The template parameter
    /// selects the instrumented or fast dispatch loop at compile time, so
    /// the fast instantiation carries no profiling branches at all.
    template <bool kInstrumented>
    bool run_item(ItemState& item, const std::array<int, 3>& local_id,
                  bool stop_at_barrier);

    /// Throw CancelledError if the launch's token fired.
    void check_cancel() const;

    BufferView& buffer(int slot);

    const Program& program_;
    std::vector<BufferView> buffers_;  ///< Global + per-group shared views.
    std::vector<std::vector<std::int32_t>> shared_storage_;
    const std::vector<Value>& scalar_args_;
    GroupGeometry geometry_;
    ExecStats* stats_;
    MemoryListener* listener_;
    ExecMode mode_;
    const CancelToken* cancel_;
    ExecStats local_stats_;
    std::vector<Value> final_regs_;
};

/// Execute a compile_scalar_function() program once with @p args bound to
/// its scalar parameters (in declaration order) and return register 0.
Value run_scalar_program(const Program& program,
                         const std::vector<Value>& args);

}  // namespace paraprox::vm
