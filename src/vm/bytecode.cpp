#include "vm/bytecode.h"

#include <sstream>

namespace paraprox::vm {

std::string
to_string(Opcode op)
{
    switch (op) {
      case Opcode::Nop: return "nop";
      case Opcode::LdImm: return "ldimm";
      case Opcode::Mov: return "mov";
      case Opcode::AddI: return "addi";
      case Opcode::SubI: return "subi";
      case Opcode::MulI: return "muli";
      case Opcode::DivI: return "divi";
      case Opcode::ModI: return "modi";
      case Opcode::AddF: return "addf";
      case Opcode::SubF: return "subf";
      case Opcode::MulF: return "mulf";
      case Opcode::DivF: return "divf";
      case Opcode::NegI: return "negi";
      case Opcode::NegF: return "negf";
      case Opcode::NotI: return "noti";
      case Opcode::LtI: return "lti";
      case Opcode::LeI: return "lei";
      case Opcode::GtI: return "gti";
      case Opcode::GeI: return "gei";
      case Opcode::EqI: return "eqi";
      case Opcode::NeI: return "nei";
      case Opcode::LtF: return "ltf";
      case Opcode::LeF: return "lef";
      case Opcode::GtF: return "gtf";
      case Opcode::GeF: return "gef";
      case Opcode::EqF: return "eqf";
      case Opcode::NeF: return "nef";
      case Opcode::AndI: return "andi";
      case Opcode::OrI: return "ori";
      case Opcode::XorI: return "xori";
      case Opcode::ShlI: return "shli";
      case Opcode::ShrI: return "shri";
      case Opcode::IToF: return "itof";
      case Opcode::FToI: return "ftoi";
      case Opcode::Sqrt: return "sqrt";
      case Opcode::Exp: return "exp";
      case Opcode::Log: return "log";
      case Opcode::Sin: return "sin";
      case Opcode::Cos: return "cos";
      case Opcode::Pow: return "pow";
      case Opcode::Fabs: return "fabs";
      case Opcode::Fmin: return "fmin";
      case Opcode::Fmax: return "fmax";
      case Opcode::Floor: return "floor";
      case Opcode::Lgamma: return "lgamma";
      case Opcode::Erf: return "erf";
      case Opcode::IMin: return "imin";
      case Opcode::IMax: return "imax";
      case Opcode::Gid: return "gid";
      case Opcode::Lid: return "lid";
      case Opcode::GrpId: return "grpid";
      case Opcode::LSize: return "lsize";
      case Opcode::NGrp: return "ngrp";
      case Opcode::GSize: return "gsize";
      case Opcode::Ld: return "ld";
      case Opcode::St: return "st";
      case Opcode::AtomAdd: return "atom_add";
      case Opcode::AtomMin: return "atom_min";
      case Opcode::AtomMax: return "atom_max";
      case Opcode::AtomInc: return "atom_inc";
      case Opcode::AtomAnd: return "atom_and";
      case Opcode::AtomOr: return "atom_or";
      case Opcode::AtomXor: return "atom_xor";
      case Opcode::Sel: return "sel";
      case Opcode::Jmp: return "jmp";
      case Opcode::Jz: return "jz";
      case Opcode::Barrier: return "barrier";
      case Opcode::Halt: return "halt";
      case Opcode::CmpJz: return "cmp_jz";
      case Opcode::LdAddF: return "ld_addf";
      case Opcode::LdMulF: return "ld_mulf";
      case Opcode::LdSubF: return "ld_subf";
      case Opcode::LdAddI: return "ld_addi";
      case Opcode::AddFSt: return "addf_st";
      case Opcode::MulFSt: return "mulf_st";
      case Opcode::AddISt: return "addi_st";
      case Opcode::MaddF: return "maddf";
      case Opcode::MaddI: return "maddi";
    }
    return "<bad-op>";
}

LatencyClass
latency_class(Opcode op)
{
    switch (op) {
      case Opcode::Nop:
      case Opcode::LdImm:
      case Opcode::Mov:
      case Opcode::Gid:
      case Opcode::Lid:
      case Opcode::GrpId:
      case Opcode::LSize:
      case Opcode::NGrp:
      case Opcode::GSize:
      case Opcode::Jmp:
      case Opcode::Jz:
      case Opcode::Sel:
        return LatencyClass::Trivial;

      case Opcode::AddI:
      case Opcode::SubI:
      case Opcode::MulI:
      case Opcode::NegI:
      case Opcode::NotI:
      case Opcode::LtI:
      case Opcode::LeI:
      case Opcode::GtI:
      case Opcode::GeI:
      case Opcode::EqI:
      case Opcode::NeI:
      case Opcode::AndI:
      case Opcode::OrI:
      case Opcode::XorI:
      case Opcode::ShlI:
      case Opcode::ShrI:
      case Opcode::IMin:
      case Opcode::IMax:
        return LatencyClass::IntArith;

      case Opcode::AddF:
      case Opcode::SubF:
      case Opcode::MulF:
      case Opcode::NegF:
      case Opcode::LtF:
      case Opcode::LeF:
      case Opcode::GtF:
      case Opcode::GeF:
      case Opcode::EqF:
      case Opcode::NeF:
      case Opcode::IToF:
      case Opcode::FToI:
      // Select/clamp/round float ops execute on the regular ALU pipes.
      case Opcode::Fabs:
      case Opcode::Fmin:
      case Opcode::Fmax:
      case Opcode::Floor:
        return LatencyClass::FloatArith;

      case Opcode::DivI:
      case Opcode::ModI:
      case Opcode::DivF:
        return LatencyClass::Div;

      case Opcode::Exp:
      case Opcode::Log:
      case Opcode::Sin:
      case Opcode::Cos:
      case Opcode::Pow:
        return LatencyClass::Transcendental;

      case Opcode::Lgamma:
      case Opcode::Erf:
        return LatencyClass::HeavyTranscendental;

      case Opcode::Sqrt:
        return LatencyClass::SimpleMath;

      case Opcode::Ld:
      case Opcode::St:
        return LatencyClass::Memory;

      case Opcode::AtomAdd:
      case Opcode::AtomMin:
      case Opcode::AtomMax:
      case Opcode::AtomInc:
      case Opcode::AtomAnd:
      case Opcode::AtomOr:
      case Opcode::AtomXor:
        return LatencyClass::Atomic;

      case Opcode::Barrier:
      case Opcode::Halt:
        return LatencyClass::Control;

      // Superinstructions only execute in fast mode, whose stats never
      // reach the cost models; classify by the dominant half anyway so a
      // stray count prices sensibly.
      case Opcode::CmpJz:
        return LatencyClass::IntArith;
      case Opcode::LdAddF:
      case Opcode::LdMulF:
      case Opcode::LdSubF:
      case Opcode::LdAddI:
      case Opcode::AddFSt:
      case Opcode::MulFSt:
      case Opcode::AddISt:
        return LatencyClass::Memory;
      case Opcode::MaddF:
        return LatencyClass::FloatArith;
      case Opcode::MaddI:
        return LatencyClass::IntArith;
    }
    return LatencyClass::Trivial;
}

std::string
Program::dump(bool fast) const
{
    std::ostringstream os;
    const std::vector<Instr>& stream = fast ? fast_code : code;
    os << "kernel " << kernel_name << " (regs=" << num_regs
       << (fast ? ", fast" : "") << ")\n";
    for (std::size_t i = 0; i < stream.size(); ++i) {
        const Instr& instr = stream[i];
        os << "  " << i << ": " << to_string(instr.op) << " a=" << instr.a
           << " b=" << instr.b << " c=" << instr.c << " d=" << instr.d
           << " imm.i=" << instr.imm.i << "\n";
    }
    return os.str();
}

}  // namespace paraprox::vm
