/// @file
/// Lowers ParaCL IR kernels to register bytecode.
///
/// User-function calls are inlined (ParaCL forbids recursion), so the VM
/// needs no call stack and the dynamic instruction count of a kernel
/// directly reflects the work its source performs — including the work
/// removed by Paraprox's approximation transforms.

#pragma once

#include "ir/function.h"
#include "vm/bytecode.h"

namespace paraprox::vm {

/// Compile @p kernel_name from @p module.  Throws UserError on constructs
/// the backend rejects (e.g. non-constant get_global_id dimension).
Program compile_kernel(const ir::Module& module,
                       const std::string& kernel_name);

/// Compile a pure scalar function to a standalone program whose scalar
/// parameters are preloaded registers and whose return value lands in
/// register 0.  Used by host-side evaluation (lookup-table population and
/// bit tuning).
Program compile_scalar_function(const ir::Module& module,
                                const std::string& function_name);

/// Build @p program's fast_code stream: a single peephole pass over the
/// canonical code that fuses adjacent pairs into superinstructions
/// (compare+Jz, Ld+arith, arith+St, mul+add -> Madd) and remaps jump
/// targets.  Pairs straddling a jump target are never fused, and every
/// fusion still writes the first instruction's destination register, so
/// fast execution is architecturally identical to the canonical stream.
/// Called automatically by compile_kernel / compile_scalar_function;
/// exposed for tests and hand-built programs.
void fuse_superinstructions(Program& program);

}  // namespace paraprox::vm
