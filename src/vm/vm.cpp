#include "vm/vm.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cmath>
#include <limits>
#include <thread>

#include "support/faultinject.h"

namespace paraprox::vm {

namespace {

/// Atomic read-modify-write on a 4-byte word shared between host threads.
template <typename ApplyFn>
std::int32_t
atomic_rmw(std::int32_t* word, ApplyFn apply)
{
    std::atomic_ref<std::int32_t> ref(*word);
    std::int32_t old_word = ref.load(std::memory_order_relaxed);
    for (;;) {
        const std::int32_t new_word = apply(old_word);
        if (ref.compare_exchange_weak(old_word, new_word,
                                      std::memory_order_acq_rel,
                                      std::memory_order_relaxed)) {
            return old_word;
        }
    }
}

float
as_float(std::int32_t word)
{
    return std::bit_cast<float>(word);
}

std::int32_t
as_word(float value)
{
    return std::bit_cast<std::int32_t>(value);
}

/// float -> int with GPU `__float2int_rz` semantics: truncate toward zero,
/// saturate out-of-range values, and map NaN to 0.  A plain static_cast is
/// undefined behaviour for NaN and for values outside [INT32_MIN, INT32_MAX].
std::int32_t
float_to_int_rz(float value)
{
    if (std::isnan(value))
        return 0;
    // 2^31 is exactly representable as float; every float >= it is out of
    // int32 range.  INT32_MIN itself is representable, so only values
    // strictly below it saturate.
    if (value >= 2147483648.0f)
        return std::numeric_limits<std::int32_t>::max();
    if (value < -2147483648.0f)
        return std::numeric_limits<std::int32_t>::min();
    return static_cast<std::int32_t>(value);
}

/// Left shift through uint32 so a negative value or a shift producing a
/// sign-bit change is well-defined (wraps mod 2^32, like GPU hardware).
/// Shift counts are masked to 5 bits, matching NVIDIA/AMD ISA behaviour.
std::int32_t
shift_left(std::int32_t value, std::int32_t count)
{
    const unsigned sh = static_cast<std::uint32_t>(count) & 31u;
    return static_cast<std::int32_t>(static_cast<std::uint32_t>(value)
                                     << sh);
}

/// Arithmetic (sign-filling) right shift implemented on uint32 so the
/// semantics don't depend on the implementation-defined behaviour of `>>`
/// on negative operands.
std::int32_t
shift_right_arith(std::int32_t value, std::int32_t count)
{
    const unsigned sh = static_cast<std::uint32_t>(count) & 31u;
    std::uint32_t word = static_cast<std::uint32_t>(value) >> sh;
    if (value < 0 && sh != 0)
        word |= ~std::uint32_t{0} << (32u - sh);
    return static_cast<std::int32_t>(word);
}

/// Load one element through the view's storage codec.  The Exact branch is
/// the original word load; packed views decode to fp32 (packed buffers are
/// restricted to F32 elements at launch time, so the register image is
/// always a float's bit pattern).
inline std::int32_t
codec_load(const BufferView& view, std::int64_t index)
{
    if (view.codec == data::Codec::Exact) [[likely]]
        return view.data[index];
    return as_word(
        data::load_element(view.codec, view.data, index, view.quant));
}

/// Store one element through the view's storage codec.
inline void
codec_store(BufferView& view, std::int64_t index, std::int32_t word)
{
    if (view.codec == data::Codec::Exact) [[likely]] {
        view.data[index] = word;
        return;
    }
    data::store_element(view.codec, view.data, index, as_float(word),
                        view.quant);
}

/// Evaluate the canonical compare opcode carried in a CmpJz's d field.
std::int32_t
eval_compare(Opcode op, Value lhs, Value rhs)
{
    switch (op) {
      case Opcode::LtI: return lhs.i < rhs.i;
      case Opcode::LeI: return lhs.i <= rhs.i;
      case Opcode::GtI: return lhs.i > rhs.i;
      case Opcode::GeI: return lhs.i >= rhs.i;
      case Opcode::EqI: return lhs.i == rhs.i;
      case Opcode::NeI: return lhs.i != rhs.i;
      case Opcode::LtF: return lhs.f < rhs.f;
      case Opcode::LeF: return lhs.f <= rhs.f;
      case Opcode::GtF: return lhs.f > rhs.f;
      case Opcode::GeF: return lhs.f >= rhs.f;
      case Opcode::EqF: return lhs.f == rhs.f;
      case Opcode::NeF: return lhs.f != rhs.f;
      default:
        PARAPROX_ASSERT(false, "CmpJz carries a non-compare opcode");
        return 0;
    }
}

}  // namespace

GroupRunner::GroupRunner(const Program& program,
                         std::vector<BufferView> global_buffers,
                         const std::vector<Value>& scalar_args,
                         const std::vector<std::int64_t>& shared_sizes,
                         const GroupGeometry& geometry, ExecStats* stats,
                         MemoryListener* listener, ExecMode mode,
                         const CancelToken* cancel)
    : program_(program), buffers_(std::move(global_buffers)),
      scalar_args_(scalar_args), geometry_(geometry), stats_(stats),
      listener_(listener), mode_(mode), cancel_(cancel)
{
    PARAPROX_CHECK(buffers_.size() == program.buffers.size(),
                   "kernel buffer argument count mismatch");
    PARAPROX_CHECK(mode_ == ExecMode::Instrumented || listener_ == nullptr,
                   "fast execution cannot deliver memory-listener "
                   "callbacks; use ExecMode::Instrumented");
    PARAPROX_CHECK(scalar_args_.size() == program.scalars.size(),
                   "kernel scalar argument count mismatch");
    // Allocate per-group storage for __shared buffers.
    for (std::size_t slot = 0; slot < program.buffers.size(); ++slot) {
        if (program.buffers[slot].space == ir::AddrSpace::Shared) {
            PARAPROX_CHECK(slot < shared_sizes.size() &&
                               shared_sizes[slot] > 0,
                           "missing size for __shared buffer `" +
                               program.buffers[slot].name + "`");
            shared_storage_.emplace_back(shared_sizes[slot], 0);
            buffers_[slot] = {shared_storage_.back().data(),
                              static_cast<std::int64_t>(shared_sizes[slot])};
        }
    }
}

BufferView&
GroupRunner::buffer(int slot)
{
    return buffers_[slot];
}

void
GroupRunner::check_cancel() const
{
    if (cancel_ && cancel_->cancelled()) {
        throw CancelledError("launch cancelled in kernel `" +
                             program_.kernel_name + "`");
    }
}

void
GroupRunner::run()
{
    // Chaos-testing site: manufacture a trap before any work-item runs, so
    // the trap surfaces through the same launch/abort machinery as a real
    // divergent barrier or budget overrun.
    if (fault::fire("vm.trap", program_.kernel_name)) {
        throw TrapError("injected fault: vm.trap in kernel `" +
                        program_.kernel_name + "`");
    }

    // Chaos-testing site: spin like a pathological kernel stuck in a loop
    // the instruction budget has not caught yet.  Only cooperative
    // cancellation ends it promptly — exactly what the hung-launch
    // watchdog exists to deliver.  A hard wall ceiling below keeps an
    // unwatched hang from stalling a test run forever; giving up that way
    // is a trap (the kernel really is pathological).
    if (fault::fire("vm.hang", program_.kernel_name)) {
        const auto hang_started = std::chrono::steady_clock::now();
        constexpr auto kHangGiveUp = std::chrono::seconds(20);
        for (;;) {
            check_cancel();
            if (std::chrono::steady_clock::now() - hang_started >
                kHangGiveUp) {
                throw TrapError("injected fault: vm.hang in kernel `" +
                                program_.kernel_name +
                                "` ran unwatched past its ceiling");
            }
            std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
    }

    const int count = geometry_.local_count();
    // Pick the instrumented or fast instantiation once; the per-item branch
    // is negligible next to the per-instruction work it removes.
    const bool instrumented = mode_ == ExecMode::Instrumented;
    const auto step = [&](ItemState& item, const std::array<int, 3>& lid,
                          bool stop_at_barrier) {
        return instrumented ? run_item<true>(item, lid, stop_at_barrier)
                            : run_item<false>(item, lid, stop_at_barrier);
    };
    const auto make_local_id = [&](int linear) {
        std::array<int, 3> local_id;
        local_id[0] = linear % geometry_.local_size[0];
        local_id[1] = (linear / geometry_.local_size[0]) %
                      geometry_.local_size[1];
        local_id[2] = linear / (geometry_.local_size[0] *
                                geometry_.local_size[1]);
        return local_id;
    };

    if (!program_.has_barrier) {
        // Independent work-items: run each to completion, reusing one
        // register file.
        ItemState item;
        item.regs.resize(program_.num_regs);
        for (int linear = 0; linear < count; ++linear) {
            check_cancel();
            item.pc = 0;
            item.halted = false;
            for (std::size_t s = 0; s < program_.scalars.size(); ++s)
                item.regs[program_.scalars[s].reg] = scalar_args_[s];
            step(item, make_local_id(linear), false);
        }
        final_regs_ = item.regs;
    } else {
        // Cooperative execution in barrier-delimited rounds.
        std::vector<ItemState> items(count);
        std::vector<std::array<int, 3>> local_ids(count);
        for (int linear = 0; linear < count; ++linear) {
            items[linear].regs.resize(program_.num_regs);
            for (std::size_t s = 0; s < program_.scalars.size(); ++s)
                items[linear].regs[program_.scalars[s].reg] =
                    scalar_args_[s];
            local_ids[linear] = make_local_id(linear);
        }
        for (;;) {
            check_cancel();
            int at_barrier = 0;
            int halted = 0;
            for (int linear = 0; linear < count; ++linear) {
                ItemState& item = items[linear];
                if (item.halted) {
                    ++halted;
                    continue;
                }
                if (step(item, local_ids[linear], true))
                    ++at_barrier;
                else
                    ++halted;
            }
            if (at_barrier == 0) {
                if (!items.empty())
                    final_regs_ = items.back().regs;
                break;
            }
            // Some work-items reached the barrier while others exited:
            // divergent barrier.
            if (halted != 0) {
                throw TrapError("divergent barrier in kernel `" +
                                program_.kernel_name + "`");
            }
        }
    }

    // Chaos-testing site: silently poison the kernel's output so the
    // corruption is only catchable by a quality audit, not by a trap.
    // quality_percent skips non-finite pairs and scores an all-NaN output
    // as 0, so the whole first global buffer is poisoned, not one element.
    if (fault::fire("vm.nan", program_.kernel_name)) {
        const std::int32_t nan_word =
            as_word(std::numeric_limits<float>::quiet_NaN());
        for (std::size_t slot = 0; slot < program_.buffers.size(); ++slot) {
            if (program_.buffers[slot].space == ir::AddrSpace::Global &&
                buffers_[slot].size > 0) {
                // Fill the physical words, not the logical element count:
                // a packed view backs fewer words than elements.
                std::fill_n(buffers_[slot].data,
                            buffers_[slot].storage_words(), nan_word);
                break;
            }
        }
    }

    if (stats_) {
        // Merge once per group; the launch layer synchronizes.
        stats_->merge(local_stats_);
    }
}

template <bool kInstrumented>
bool
GroupRunner::run_item(ItemState& item, const std::array<int, 3>& local_id,
                      bool stop_at_barrier)
{
    // Fast mode runs the fused stream when the compiler built one;
    // hand-assembled test programs fall back to the canonical code.
    const std::vector<Instr>& stream =
        (!kInstrumented && !program_.fast_code.empty()) ? program_.fast_code
                                                        : program_.code;
    const Instr* code = stream.data();
    const auto code_size = static_cast<std::int64_t>(stream.size());
    Value* regs = item.regs.data();
    [[maybe_unused]] auto& counts = local_stats_.opcode_counts;
    std::uint64_t executed = 0;

    const std::int64_t group_linear = geometry_.group_linear();
    const std::int64_t global_linear =
        group_linear * geometry_.local_count() +
        (static_cast<std::int64_t>(local_id[2]) * geometry_.local_size[1] +
         local_id[1]) * geometry_.local_size[0] + local_id[0];

    // In fast mode the runaway-loop budget is only compared at control
    // transfers (Jmp/Jz/CmpJz): straight-line code strictly advances pc, so
    // any unbounded execution must keep taking jumps, and every jump sees
    // the check.  `executed` itself still counts every dispatch.
    const auto check_budget = [&executed] {
        if (executed > kMaxInstructionsPerItem)
            throw TrapError("instruction budget exceeded (runaway loop?)");
    };

    std::int64_t pc = item.pc;
    for (;;) {
        PARAPROX_ASSERT(pc >= 0 && pc < code_size, "pc out of range");
        const Instr& instr = code[pc];
        ++executed;
        if constexpr (kInstrumented) {
            ++counts[static_cast<int>(instr.op)];
            check_budget();
        }

        switch (instr.op) {
          case Opcode::Nop:
            break;
          case Opcode::LdImm:
            regs[instr.a] = instr.imm;
            break;
          case Opcode::Mov:
            regs[instr.a] = regs[instr.b];
            break;

          case Opcode::AddI:
            regs[instr.a].i = regs[instr.b].i + regs[instr.c].i;
            break;
          case Opcode::SubI:
            regs[instr.a].i = regs[instr.b].i - regs[instr.c].i;
            break;
          case Opcode::MulI:
            regs[instr.a].i = regs[instr.b].i * regs[instr.c].i;
            break;
          case Opcode::DivI:
            if (regs[instr.c].i == 0)
                throw TrapError("integer division by zero");
            regs[instr.a].i = regs[instr.b].i / regs[instr.c].i;
            break;
          case Opcode::ModI:
            if (regs[instr.c].i == 0)
                throw TrapError("integer modulo by zero");
            regs[instr.a].i = regs[instr.b].i % regs[instr.c].i;
            break;
          case Opcode::AddF:
            regs[instr.a].f = regs[instr.b].f + regs[instr.c].f;
            break;
          case Opcode::SubF:
            regs[instr.a].f = regs[instr.b].f - regs[instr.c].f;
            break;
          case Opcode::MulF:
            regs[instr.a].f = regs[instr.b].f * regs[instr.c].f;
            break;
          case Opcode::DivF:
            regs[instr.a].f = regs[instr.b].f / regs[instr.c].f;
            break;
          case Opcode::NegI:
            regs[instr.a].i = -regs[instr.b].i;
            break;
          case Opcode::NegF:
            regs[instr.a].f = -regs[instr.b].f;
            break;
          case Opcode::NotI:
            regs[instr.a].i = regs[instr.b].i == 0 ? 1 : 0;
            break;

          case Opcode::LtI:
            regs[instr.a].i = regs[instr.b].i < regs[instr.c].i;
            break;
          case Opcode::LeI:
            regs[instr.a].i = regs[instr.b].i <= regs[instr.c].i;
            break;
          case Opcode::GtI:
            regs[instr.a].i = regs[instr.b].i > regs[instr.c].i;
            break;
          case Opcode::GeI:
            regs[instr.a].i = regs[instr.b].i >= regs[instr.c].i;
            break;
          case Opcode::EqI:
            regs[instr.a].i = regs[instr.b].i == regs[instr.c].i;
            break;
          case Opcode::NeI:
            regs[instr.a].i = regs[instr.b].i != regs[instr.c].i;
            break;
          case Opcode::LtF:
            regs[instr.a].i = regs[instr.b].f < regs[instr.c].f;
            break;
          case Opcode::LeF:
            regs[instr.a].i = regs[instr.b].f <= regs[instr.c].f;
            break;
          case Opcode::GtF:
            regs[instr.a].i = regs[instr.b].f > regs[instr.c].f;
            break;
          case Opcode::GeF:
            regs[instr.a].i = regs[instr.b].f >= regs[instr.c].f;
            break;
          case Opcode::EqF:
            regs[instr.a].i = regs[instr.b].f == regs[instr.c].f;
            break;
          case Opcode::NeF:
            regs[instr.a].i = regs[instr.b].f != regs[instr.c].f;
            break;

          case Opcode::AndI:
            regs[instr.a].i = regs[instr.b].i & regs[instr.c].i;
            break;
          case Opcode::OrI:
            regs[instr.a].i = regs[instr.b].i | regs[instr.c].i;
            break;
          case Opcode::XorI:
            regs[instr.a].i = regs[instr.b].i ^ regs[instr.c].i;
            break;
          case Opcode::ShlI:
            regs[instr.a].i = shift_left(regs[instr.b].i, regs[instr.c].i);
            break;
          case Opcode::ShrI:
            regs[instr.a].i =
                shift_right_arith(regs[instr.b].i, regs[instr.c].i);
            break;

          case Opcode::IToF:
            regs[instr.a].f = static_cast<float>(regs[instr.b].i);
            break;
          case Opcode::FToI:
            regs[instr.a].i = float_to_int_rz(regs[instr.b].f);
            break;

          case Opcode::Sqrt:
            regs[instr.a].f = std::sqrt(regs[instr.b].f);
            break;
          case Opcode::Exp:
            regs[instr.a].f = std::exp(regs[instr.b].f);
            break;
          case Opcode::Log:
            regs[instr.a].f = std::log(regs[instr.b].f);
            break;
          case Opcode::Sin:
            regs[instr.a].f = std::sin(regs[instr.b].f);
            break;
          case Opcode::Cos:
            regs[instr.a].f = std::cos(regs[instr.b].f);
            break;
          case Opcode::Pow:
            regs[instr.a].f = std::pow(regs[instr.b].f, regs[instr.c].f);
            break;
          case Opcode::Fabs:
            regs[instr.a].f = std::fabs(regs[instr.b].f);
            break;
          case Opcode::Fmin:
            regs[instr.a].f = std::fmin(regs[instr.b].f, regs[instr.c].f);
            break;
          case Opcode::Fmax:
            regs[instr.a].f = std::fmax(regs[instr.b].f, regs[instr.c].f);
            break;
          case Opcode::Floor:
            regs[instr.a].f = std::floor(regs[instr.b].f);
            break;
          case Opcode::Lgamma:
            regs[instr.a].f = std::lgamma(regs[instr.b].f);
            break;
          case Opcode::Erf:
            regs[instr.a].f = std::erf(regs[instr.b].f);
            break;
          case Opcode::IMin:
            regs[instr.a].i = std::min(regs[instr.b].i, regs[instr.c].i);
            break;
          case Opcode::IMax:
            regs[instr.a].i = std::max(regs[instr.b].i, regs[instr.c].i);
            break;

          case Opcode::Gid: {
            const int dim = instr.imm.i;
            regs[instr.a].i = geometry_.group_id[dim] *
                                  geometry_.local_size[dim] +
                              local_id[dim];
            break;
          }
          case Opcode::Lid:
            regs[instr.a].i = local_id[instr.imm.i];
            break;
          case Opcode::GrpId:
            regs[instr.a].i = geometry_.group_id[instr.imm.i];
            break;
          case Opcode::LSize:
            regs[instr.a].i = geometry_.local_size[instr.imm.i];
            break;
          case Opcode::NGrp:
            regs[instr.a].i = geometry_.num_groups[instr.imm.i];
            break;
          case Opcode::GSize:
            regs[instr.a].i = geometry_.num_groups[instr.imm.i] *
                              geometry_.local_size[instr.imm.i];
            break;

          case Opcode::Ld: {
            const int slot = instr.imm.i;
            BufferView& view = buffer(slot);
            const std::int64_t index = regs[instr.b].i;
            if (index < 0 || index >= view.size) {
                throw TrapError("out-of-bounds load from `" +
                                program_.buffers[slot].name + "`");
            }
            if constexpr (kInstrumented) {
                if (listener_) {
                    listener_->on_access(static_cast<int>(pc), slot,
                                         program_.buffers[slot].space, index,
                                         false, global_linear,
                                         data::storage_bytes(view.codec));
                }
            }
            regs[instr.a].i = codec_load(view, index);
            break;
          }
          case Opcode::St: {
            const int slot = instr.imm.i;
            BufferView& view = buffer(slot);
            const std::int64_t index = regs[instr.a].i;
            if (index < 0 || index >= view.size) {
                throw TrapError("out-of-bounds store to `" +
                                program_.buffers[slot].name + "`");
            }
            if constexpr (kInstrumented) {
                if (listener_) {
                    listener_->on_access(static_cast<int>(pc), slot,
                                         program_.buffers[slot].space, index,
                                         true, global_linear,
                                         data::storage_bytes(view.codec));
                }
            }
            codec_store(view, index, regs[instr.b].i);
            break;
          }

          case Opcode::AtomAdd:
          case Opcode::AtomMin:
          case Opcode::AtomMax:
          case Opcode::AtomInc:
          case Opcode::AtomAnd:
          case Opcode::AtomOr:
          case Opcode::AtomXor: {
            const int slot = instr.imm.i;
            BufferView& view = buffer(slot);
            const std::int64_t index = regs[instr.b].i;
            if (index < 0 || index >= view.size) {
                throw TrapError("out-of-bounds atomic on `" +
                                program_.buffers[slot].name + "`");
            }
            // Atomics need a whole, exactly-stored word to CAS on; the
            // storage safety analysis pins atomic targets exact, so this
            // trap is defense-in-depth against hand-built plans.
            if (view.codec != data::Codec::Exact) {
                throw TrapError("atomic on packed buffer `" +
                                program_.buffers[slot].name + "`");
            }
            if constexpr (kInstrumented) {
                if (listener_) {
                    listener_->on_access(static_cast<int>(pc), slot,
                                         program_.buffers[slot].space, index,
                                         true, global_linear, 4);
                }
            }
            std::int32_t* word = &view.data[index];
            const bool is_float_elem =
                program_.buffers[slot].elem == ir::Scalar::F32;
            const Value operand = regs[instr.c];
            std::int32_t old_word = 0;
            switch (instr.op) {
              case Opcode::AtomAdd:
                old_word = atomic_rmw(word, [&](std::int32_t w) {
                    return is_float_elem
                               ? as_word(as_float(w) + operand.f)
                               : w + operand.i;
                });
                break;
              case Opcode::AtomMin:
                old_word = atomic_rmw(word, [&](std::int32_t w) {
                    return is_float_elem
                               ? as_word(std::fmin(as_float(w), operand.f))
                               : std::min(w, operand.i);
                });
                break;
              case Opcode::AtomMax:
                old_word = atomic_rmw(word, [&](std::int32_t w) {
                    return is_float_elem
                               ? as_word(std::fmax(as_float(w), operand.f))
                               : std::max(w, operand.i);
                });
                break;
              case Opcode::AtomInc:
                old_word = atomic_rmw(word, [](std::int32_t w) {
                    return w + 1;
                });
                break;
              case Opcode::AtomAnd:
                old_word = atomic_rmw(word, [&](std::int32_t w) {
                    return w & operand.i;
                });
                break;
              case Opcode::AtomOr:
                old_word = atomic_rmw(word, [&](std::int32_t w) {
                    return w | operand.i;
                });
                break;
              case Opcode::AtomXor:
                old_word = atomic_rmw(word, [&](std::int32_t w) {
                    return w ^ operand.i;
                });
                break;
              default:
                break;
            }
            regs[instr.a].i = old_word;
            break;
          }

          case Opcode::Sel:
            regs[instr.a] = regs[instr.b].i != 0 ? regs[instr.c]
                                                 : regs[instr.d];
            break;

          case Opcode::Jmp:
            if constexpr (!kInstrumented)
                check_budget();
            check_cancel();
            pc = instr.imm.i;
            continue;
          case Opcode::Jz:
            if constexpr (!kInstrumented)
                check_budget();
            check_cancel();
            if (regs[instr.a].i == 0) {
                pc = instr.imm.i;
                continue;
            }
            break;

          case Opcode::Barrier:
            if (stop_at_barrier) {
                item.pc = pc + 1;
                local_stats_.total_instructions += executed;
                return true;
            }
            // A barrier in a 1-item group (or barrier-free schedule) is a
            // no-op.
            break;

          case Opcode::Halt:
            item.halted = true;
            local_stats_.total_instructions += executed;
            return false;

          // ---- Superinstructions (fast_code only) ----------------------
          // Each case replays its canonical pair in the original order:
          // the first instruction's destination register is written before
          // the second instruction's operands are read, so register
          // aliasing between the two halves behaves exactly as unfused.

          case Opcode::CmpJz: {
            if constexpr (!kInstrumented)
                check_budget();
            check_cancel();
            const std::int32_t flag =
                eval_compare(static_cast<Opcode>(instr.d), regs[instr.b],
                             regs[instr.c]);
            regs[instr.a].i = flag;
            if (flag == 0) {
                pc = instr.imm.i;
                continue;
            }
            break;
          }

          case Opcode::LdAddF:
          case Opcode::LdMulF:
          case Opcode::LdSubF:
          case Opcode::LdAddI: {
            const int slot = instr.imm.i & kFusedRegMask;
            BufferView& view = buffer(slot);
            const std::int64_t index = regs[instr.b].i;
            if (index < 0 || index >= view.size) {
                throw TrapError("out-of-bounds load from `" +
                                program_.buffers[slot].name + "`");
            }
            Value loaded;
            loaded.i = codec_load(view, index);
            regs[instr.d] = loaded;
            // Read the other operand only after the load's destination is
            // written: the canonical arith may read its own input there.
            const Value other = regs[instr.c];
            const bool swapped = (instr.imm.i & kFusedSwapFlag) != 0;
            const Value lhs = swapped ? other : loaded;
            const Value rhs = swapped ? loaded : other;
            switch (instr.op) {
              case Opcode::LdAddF: regs[instr.a].f = lhs.f + rhs.f; break;
              case Opcode::LdMulF: regs[instr.a].f = lhs.f * rhs.f; break;
              case Opcode::LdSubF: regs[instr.a].f = lhs.f - rhs.f; break;
              default:             regs[instr.a].i = lhs.i + rhs.i; break;
            }
            break;
          }

          case Opcode::AddFSt:
          case Opcode::MulFSt:
          case Opcode::AddISt: {
            Value value;
            switch (instr.op) {
              case Opcode::AddFSt:
                value.f = regs[instr.b].f + regs[instr.c].f;
                break;
              case Opcode::MulFSt:
                value.f = regs[instr.b].f * regs[instr.c].f;
                break;
              default:
                value.i = regs[instr.b].i + regs[instr.c].i;
                break;
            }
            regs[instr.d] = value;
            // The store's index register may alias the arith destination;
            // canonical order reads it after that write.
            const int slot = instr.imm.i;
            BufferView& view = buffer(slot);
            const std::int64_t index = regs[instr.a].i;
            if (index < 0 || index >= view.size) {
                throw TrapError("out-of-bounds store to `" +
                                program_.buffers[slot].name + "`");
            }
            codec_store(view, index, value.i);
            break;
          }

          case Opcode::MaddF: {
            const float product = regs[instr.b].f * regs[instr.c].f;
            regs[instr.imm.i & kFusedRegMask].f = product;
            // Addend read after the product write (it may be the same
            // register); operand order preserved for bit-exact NaN/FP
            // behaviour.
            const float addend = regs[instr.d].f;
            const bool swapped = (instr.imm.i & kFusedSwapFlag) != 0;
            regs[instr.a].f = swapped ? addend + product : product + addend;
            break;
          }
          case Opcode::MaddI: {
            const std::int32_t product = regs[instr.b].i * regs[instr.c].i;
            regs[instr.imm.i].i = product;
            regs[instr.a].i = regs[instr.d].i + product;
            break;
          }
        }
        ++pc;
    }
}

Value
run_scalar_program(const Program& program, const std::vector<Value>& args)
{
    PARAPROX_CHECK(program.buffers.empty(),
                   "scalar program must not take buffers");
    GroupGeometry geometry;  // one work-item
    // Host-side scalar evaluation (table population, bit tuning) never
    // consumes stats, so take the fast loop.
    GroupRunner runner(program, {}, args, {}, geometry, nullptr, nullptr,
                       ExecMode::Fast);
    runner.run();
    PARAPROX_ASSERT(!runner.final_regs().empty(),
                    "scalar program produced no registers");
    return runner.final_regs()[0];
}

}  // namespace paraprox::vm
