#include "store/format.h"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>

namespace paraprox::store {

namespace {

/// Header layout: magic u32, version u32, kind u32, reserved u32,
/// payload_size u64, payload_checksum u64.
constexpr std::size_t kHeaderBytes = 4 + 4 + 4 + 4 + 8 + 8;

/// Strings and vectors longer than this are treated as corruption; no
/// legitimate artifact approaches it.
constexpr std::size_t kMaxLength = std::size_t{1} << 28;

std::uint32_t
load_u32(const std::uint8_t* p)
{
    return static_cast<std::uint32_t>(p[0]) |
           static_cast<std::uint32_t>(p[1]) << 8 |
           static_cast<std::uint32_t>(p[2]) << 16 |
           static_cast<std::uint32_t>(p[3]) << 24;
}

std::uint64_t
load_u64(const std::uint8_t* p)
{
    return static_cast<std::uint64_t>(load_u32(p)) |
           static_cast<std::uint64_t>(load_u32(p + 4)) << 32;
}

}  // namespace

std::uint64_t
fnv1a64(const void* data, std::size_t size, std::uint64_t seed)
{
    const auto* bytes = static_cast<const std::uint8_t*>(data);
    std::uint64_t hash = seed;
    for (std::size_t i = 0; i < size; ++i) {
        hash ^= bytes[i];
        hash *= 0x100000001b3ull;
    }
    return hash;
}

void
ByteWriter::u32(std::uint32_t v)
{
    bytes_.push_back(static_cast<std::uint8_t>(v));
    bytes_.push_back(static_cast<std::uint8_t>(v >> 8));
    bytes_.push_back(static_cast<std::uint8_t>(v >> 16));
    bytes_.push_back(static_cast<std::uint8_t>(v >> 24));
}

void
ByteWriter::u64(std::uint64_t v)
{
    u32(static_cast<std::uint32_t>(v));
    u32(static_cast<std::uint32_t>(v >> 32));
}

void
ByteWriter::f32(float v)
{
    std::uint32_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u32(bits);
}

void
ByteWriter::f64(double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
}

void
ByteWriter::str(const std::string& v)
{
    u64(v.size());
    bytes_.insert(bytes_.end(), v.begin(), v.end());
}

bool
ByteReader::take(std::size_t n)
{
    if (failed_ || n > size_ - pos_) {
        failed_ = true;
        return false;
    }
    return true;
}

std::uint8_t
ByteReader::u8()
{
    if (!take(1))
        return 0;
    return data_[pos_++];
}

std::uint32_t
ByteReader::u32()
{
    if (!take(4))
        return 0;
    const std::uint32_t v = load_u32(data_ + pos_);
    pos_ += 4;
    return v;
}

std::uint64_t
ByteReader::u64()
{
    if (!take(8))
        return 0;
    const std::uint64_t v = load_u64(data_ + pos_);
    pos_ += 8;
    return v;
}

float
ByteReader::f32()
{
    const std::uint32_t bits = u32();
    float v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
}

double
ByteReader::f64()
{
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
}

std::string
ByteReader::str()
{
    const std::uint64_t length = u64();
    if (failed_ || length > kMaxLength || !take(length)) {
        failed_ = true;
        return {};
    }
    std::string out(reinterpret_cast<const char*>(data_ + pos_),
                    static_cast<std::size_t>(length));
    pos_ += static_cast<std::size_t>(length);
    return out;
}

std::size_t
ByteReader::count(std::size_t min_element_bytes)
{
    const std::uint64_t declared = u64();
    if (failed_ || declared > kMaxLength ||
        declared * min_element_bytes > size_ - pos_) {
        failed_ = true;
        return 0;
    }
    return static_cast<std::size_t>(declared);
}

std::vector<std::uint8_t>
encode_record(ArtifactKind kind, const std::vector<std::uint8_t>& payload)
{
    ByteWriter header;
    header.u32(kMagic);
    header.u32(kFormatVersion);
    header.u32(static_cast<std::uint32_t>(kind));
    header.u32(0);  // reserved
    header.u64(payload.size());
    header.u64(fnv1a64(payload.data(), payload.size()));

    std::vector<std::uint8_t> out = header.bytes();
    out.insert(out.end(), payload.begin(), payload.end());
    return out;
}

RecordInfo
probe_record(const std::vector<std::uint8_t>& file)
{
    RecordInfo info;
    if (file.size() < kHeaderBytes || load_u32(file.data()) != kMagic)
        return info;
    info.version = load_u32(file.data() + 4);
    info.kind = static_cast<ArtifactKind>(load_u32(file.data() + 8));
    info.payload_size = load_u64(file.data() + 16);
    const std::uint64_t checksum = load_u64(file.data() + 24);
    info.valid =
        info.version == kFormatVersion &&
        (info.kind == ArtifactKind::Program ||
         info.kind == ArtifactKind::Table ||
         info.kind == ArtifactKind::Calibration ||
         info.kind == ArtifactKind::PipelineCalibration ||
         info.kind == ArtifactKind::PrecisionCalibration ||
         info.kind == ArtifactKind::FleetCalibration ||
         info.kind == ArtifactKind::Lease) &&
        info.payload_size == file.size() - kHeaderBytes &&
        checksum == fnv1a64(file.data() + kHeaderBytes,
                            file.size() - kHeaderBytes);
    return info;
}

std::optional<std::vector<std::uint8_t>>
decode_record(const std::vector<std::uint8_t>& file, ArtifactKind expected)
{
    const RecordInfo info = probe_record(file);
    if (!info.valid || info.kind != expected)
        return std::nullopt;
    return std::vector<std::uint8_t>(file.begin() + kHeaderBytes,
                                     file.end());
}

std::optional<std::vector<std::uint8_t>>
read_file_bytes(const std::filesystem::path& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return std::nullopt;
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    if (in.bad())
        return std::nullopt;
    return bytes;
}

bool
write_file_atomic(const std::filesystem::path& path,
                  const std::vector<std::uint8_t>& bytes)
{
    std::error_code ec;
    std::filesystem::create_directories(path.parent_path(), ec);

    // Unique-per-writer temp name so concurrent writers of the same key
    // never interleave; the rename makes whichever finishes last win with
    // a complete record either way.
    static std::atomic<std::uint64_t> counter{0};
    const auto tmp = path.parent_path() /
                     (path.filename().string() + ".tmp" +
                      std::to_string(counter.fetch_add(1)) + "." +
                      std::to_string(
                          static_cast<unsigned long>(::getpid())));
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            return false;
        out.write(reinterpret_cast<const char*>(bytes.data()),
                  static_cast<std::streamsize>(bytes.size()));
        if (!out)
            return false;
    }
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        std::filesystem::remove(tmp, ec);
        return false;
    }
    return true;
}

}  // namespace paraprox::store
