/// @file
/// On-disk record framing for the artifact store.
///
/// Every artifact file is one framed record: a fixed header (magic,
/// format version, artifact kind, payload size, payload checksum)
/// followed by the payload bytes.  Readers treat *any* deviation — short
/// file, wrong magic, unknown version or kind, size mismatch, checksum
/// mismatch — as a plain cache miss, never an error: a corrupted or stale
/// store must not be able to crash a process or poison its results.
///
/// Payloads are built with ByteWriter and decoded with ByteReader, a
/// bounds-checked cursor that latches a failure flag instead of throwing,
/// so decoders can run to completion on garbage and report one verdict.

#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

namespace paraprox::store {

/// Bumped whenever any payload layout changes; records written by other
/// versions are misses (the issue's invalidation rule: version mismatch
/// never deserializes).
constexpr std::uint32_t kFormatVersion = 1;

/// "PPXS" little-endian.
constexpr std::uint32_t kMagic = 0x53585050u;

/// What a record holds.  Values are part of the on-disk format.
enum class ArtifactKind : std::uint32_t {
    Program = 1,      ///< vm::Program bytecode (canonical + fast streams).
    Table = 2,        ///< memo::LookupTable + TableConfig bit assignment.
    Calibration = 3,  ///< VariantProfile set + fallback order + selection.
    /// Joint pipeline calibration: stage names, the per-stage member
    /// labels of every surviving joint config, and the tuner state over
    /// them.  Restoring one skips the joint search entirely.
    PipelineCalibration = 4,
    /// Data-tier precision calibration: every enumerated per-buffer
    /// storage-codec plan (with its int8 quantization parameters) plus
    /// the tuner state over them.  Restoring one skips the traffic
    /// profiling, quantization fitting, and precision search entirely.
    PrecisionCalibration = 5,
    /// Fleet-shared calibration published by the scale-out plane: a
    /// monotonically versioned CalibrationState plus the quarantine
    /// verdicts in force when it was published.  Replicas adopt a newer
    /// version instead of recalibrating redundantly.
    FleetCalibration = 6,
    /// Drift-recalibration lease: which replica owns the right to
    /// recalibrate a key, until an expiry stamp.  Acquired with
    /// O_CREAT|O_EXCL (never temp+rename, which would silently replace
    /// a live owner); an expired lease is stolen via exclusive rename.
    Lease = 7,
};

/// FNV-1a over @p size bytes, seeded so it can be chained.
std::uint64_t fnv1a64(const void* data, std::size_t size,
                      std::uint64_t seed = 0xcbf29ce484222325ull);

/// Little-endian payload builder.
class ByteWriter {
  public:
    void u8(std::uint8_t v) { bytes_.push_back(v); }
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
    void f32(float v);
    void f64(double v);
    void str(const std::string& v);

    const std::vector<std::uint8_t>& bytes() const { return bytes_; }

  private:
    std::vector<std::uint8_t> bytes_;
};

/// Bounds-checked little-endian cursor.  Reads past the end (or absurd
/// lengths) return zero values and latch ok() == false; decoders check
/// ok() once at the end.
class ByteReader {
  public:
    ByteReader(const std::uint8_t* data, std::size_t size)
        : data_(data), size_(size)
    {
    }

    std::uint8_t u8();
    std::uint32_t u32();
    std::uint64_t u64();
    std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
    float f32();
    double f64();
    std::string str();

    /// A declared element count for a vector about to be read.  Fails
    /// unless `count * min_element_bytes` still fits in the remaining
    /// input, so corrupt counts cannot trigger huge allocations.
    std::size_t count(std::size_t min_element_bytes);

    bool ok() const { return !failed_; }
    bool at_end() const { return !failed_ && pos_ == size_; }

  private:
    bool take(std::size_t n);

    const std::uint8_t* data_;
    std::size_t size_;
    std::size_t pos_ = 0;
    bool failed_ = false;
};

/// Frame @p payload as a complete record of @p kind.
std::vector<std::uint8_t> encode_record(
    ArtifactKind kind, const std::vector<std::uint8_t>& payload);

/// Unframe @p file; nullopt (a miss) on any malformed header, kind
/// mismatch, or checksum failure.
std::optional<std::vector<std::uint8_t>> decode_record(
    const std::vector<std::uint8_t>& file, ArtifactKind expected);

/// Header fields of a record, for inspection tools.
struct RecordInfo {
    std::uint32_t version = 0;
    ArtifactKind kind{};
    std::uint64_t payload_size = 0;
    bool valid = false;  ///< Full validation incl. checksum.
};
RecordInfo probe_record(const std::vector<std::uint8_t>& file);

/// Whole-file read; nullopt if the file is missing or unreadable.
std::optional<std::vector<std::uint8_t>> read_file_bytes(
    const std::filesystem::path& path);

/// Atomic write: temp file in the same directory + rename, so readers
/// only ever observe complete records.  Returns false on any filesystem
/// error (the store degrades to write-through-nothing).
bool write_file_atomic(const std::filesystem::path& path,
                       const std::vector<std::uint8_t>& bytes);

}  // namespace paraprox::store
