/// @file
/// ArtifactStore: the versioned, checksummed on-disk tier under the
/// runtime's tuning pipeline.
///
/// PR 1 measured that a warm session's remaining setup cost is the
/// table-size search and calibration, not compilation; this store makes
/// all three durable across processes (autoAx's pre-characterized
/// component library, HPAC-Offload's amortize-tuning-across-runs):
///
///   - vm::Program bytecode (canonical + fused fast streams), plugged in
///     as the second tier of vm::ProgramCache (memory -> disk -> compile);
///   - memo::LookupTable contents with their TableConfig bit assignment,
///     consulted by core::compile_kernel before find_table_for_toq;
///   - calibrated runtime::VariantProfile sets with the fallback order
///     and selection, restored into a Tuner by
///     KernelSession::warm_tuner / serve::ApproxService::register_kernel.
///
/// Records are keyed by ir::fingerprint(module) x kernel name x
/// device-model id x TOQ x metric x store-format version (StoreKey); the
/// canonical key string is embedded in every payload and re-checked on
/// load, so a filename-hash collision is a miss, not a wrong answer.
/// Writes are atomic (temp file + rename); reads reject bad magic,
/// version, checksum, or truncation as plain misses.

#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "data/precision_plan.h"
#include "memo/table.h"
#include "runtime/tuner.h"
#include "store/format.h"
#include "vm/bytecode.h"

namespace paraprox::store {

/// What a stored artifact was produced from.  Fields irrelevant to an
/// artifact kind stay at their defaults (bytecode has no device or TOQ);
/// the format version participates implicitly — records from other
/// versions never decode.
struct StoreKey {
    std::uint64_t module_fingerprint = 0;
    std::string kernel;
    std::string device;  ///< DeviceModel::name; empty for bytecode.
    double toq = 0.0;    ///< 0 when quality-independent (bytecode).
    std::string metric;  ///< runtime metric name; empty unless calibration.
    std::string detail;  ///< Kind-specific discriminator, e.g. "memo:cnd#0".

    /// Deterministic human-readable form; embedded in payloads and used
    /// for the filename hash.
    std::string canonical() const;
    std::uint64_t hash() const;
};

/// Per-store counters (atomics; read with stats()).
struct StoreStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;           ///< No file under the key.
    std::uint64_t corrupt_rejects = 0;  ///< Bad frame/decode/key echo.
    std::uint64_t writes = 0;
    std::uint64_t write_failures = 0;
};

/// A persisted calibration: what Tuner::calibration_state() captures and
/// Tuner::restore_calibration() re-validates and installs.
using CalibrationArtifact = runtime::CalibrationState;

/// A persisted joint pipeline calibration: the searched plan (per-stage
/// member labels of every surviving joint config, index-aligned with the
/// calibration's profiles) plus the tuner state over it.  Restoring one
/// rebuilds the joint variant list without any cost probes and installs
/// the calibration — a warm start skips the joint search entirely.
struct PipelineCalibrationArtifact {
    std::vector<std::string> stage_names;
    /// configs[i][s] = member label of stage s in joint config i;
    /// configs[0] is the all-exact config.
    std::vector<std::vector<std::string>> configs;
    runtime::CalibrationState calibration;
    double toq = 0.0;
    std::string metric;
};

/// A persisted data-tier precision calibration: every enumerated
/// per-buffer codec plan (plans[0] is the mandatory all-exact fallback,
/// with no assignments) with its fitted int8 quantization parameters,
/// plus the tuner state over them, index-aligned plan <-> profile.
/// Restoring one rebuilds the precision variant list without traffic
/// profiling, quantization fitting, or any calibration runs.
struct PrecisionCalibrationArtifact {
    std::vector<data::PrecisionPlan> plans;
    runtime::CalibrationState calibration;
    double toq = 0.0;
    std::string metric;
};

/// A fleet-shared calibration, published once per drift event by the
/// replica that won the drift lease and adopted by every peer.  The
/// version is monotonic per key — only the lease holder writes, so a
/// read-increment-write under the lease is race-free — and peers poll it
/// (fleet_calibration_version) to detect a publish without paying a full
/// decode.  Quarantine verdicts ride along so a variant one replica
/// proved unsafe is benched fleet-wide.
struct FleetCalibrationArtifact {
    std::uint64_t version = 0;
    runtime::CalibrationState calibration;
    std::vector<std::string> quarantined;  ///< Benched variant labels.
    double toq = 0.0;
    std::string metric;
};

/// A decoded drift lease.
struct LeaseInfo {
    std::string owner;            ///< Replica id that holds the lease.
    std::uint64_t expires_ms = 0; ///< system_clock epoch milliseconds.
    std::uint64_t token = 0;      ///< Unique per acquisition (release check).
};

class ArtifactStore {
  public:
    /// Opens (creating if needed) the store at @p dir.  A directory that
    /// cannot be created leaves the store functional but write-dead
    /// (every load is a miss, every save reports failure).
    explicit ArtifactStore(std::filesystem::path dir);

    const std::filesystem::path& dir() const { return dir_; }

    std::optional<vm::Program> load_program(const StoreKey& key) const;
    bool save_program(const StoreKey& key, const vm::Program& program) const;

    std::optional<memo::LookupTable> load_table(const StoreKey& key) const;
    bool save_table(const StoreKey& key,
                    const memo::LookupTable& table) const;

    std::optional<CalibrationArtifact>
    load_calibration(const StoreKey& key) const;
    bool save_calibration(const StoreKey& key,
                          const CalibrationArtifact& calibration) const;

    std::optional<PipelineCalibrationArtifact>
    load_pipeline_calibration(const StoreKey& key) const;
    bool save_pipeline_calibration(
        const StoreKey& key,
        const PipelineCalibrationArtifact& artifact) const;

    std::optional<PrecisionCalibrationArtifact>
    load_precision_calibration(const StoreKey& key) const;
    bool save_precision_calibration(
        const StoreKey& key,
        const PrecisionCalibrationArtifact& artifact) const;

    // ---- Scale-out calibration plane ---------------------------------

    std::optional<FleetCalibrationArtifact>
    load_fleet_calibration(const StoreKey& key) const;
    bool save_fleet_calibration(const StoreKey& key,
                                const FleetCalibrationArtifact& artifact)
        const;

    /// The published version under @p key, or 0 when no (valid) record
    /// exists.  This is the replicas' watch poll: it runs every few tens
    /// of milliseconds per tracked kernel, so unlike the load_* family
    /// it deliberately does not count hits/misses.
    std::uint64_t fleet_calibration_version(const StoreKey& key) const;

    /// Try to acquire the drift lease for @p key on behalf of @p owner,
    /// valid for @p ttl_ms.  Returns the lease token on success, nullopt
    /// when a live peer holds it.  Creation is O_CREAT|O_EXCL so
    /// concurrent acquirers race safely; an expired or undecodable lease
    /// is stolen through an exclusive rename (only one stealer's rename
    /// succeeds), so a replica that died mid-recalibration blocks peers
    /// only until its lease expires.
    std::optional<std::uint64_t>
    try_acquire_lease(const StoreKey& key, const std::string& owner,
                      std::uint64_t ttl_ms) const;

    /// Release the lease if it is still ours: the on-disk owner and
    /// token must both match (the token guards the ABA case where our
    /// expired lease was stolen and re-acquired by the same owner id).
    void release_lease(const StoreKey& key, const std::string& owner,
                       std::uint64_t token) const;

    /// Decode the current lease under @p key, if any (diagnostics).
    std::optional<LeaseInfo> read_lease(const StoreKey& key) const;

    /// One store file, as seen by list()/verify/prune.
    struct Entry {
        std::filesystem::path file;
        ArtifactKind kind{};
        std::string key;  ///< Canonical key (empty if undecodable).
        std::uintmax_t size_bytes = 0;
        bool valid = false;
    };

    /// Every record file in the directory, with validation verdicts.
    std::vector<Entry> list() const;

    /// Delete invalid record files (and stray temp files); @p everything
    /// deletes valid records too.  Returns the number removed.
    std::size_t prune(bool everything = false) const;

    StoreStats stats() const;

    /// Where an artifact under @p key lives (exists or not).
    std::filesystem::path path_for(const StoreKey& key,
                                   ArtifactKind kind) const;

    // ---- Global store -------------------------------------------------
    //
    // The process-wide store is configured from PARAPROX_STORE_DIR on
    // first use (unset -> disabled, global() == nullptr) and attaches
    // itself as vm::ProgramCache's disk tier.  configure_global /
    // disable_global override it (tools, benches, tests).

    static std::shared_ptr<ArtifactStore> global();
    static std::shared_ptr<ArtifactStore>
    configure_global(const std::filesystem::path& dir);
    static void disable_global();

  private:
    std::optional<std::vector<std::uint8_t>>
    load_payload(const StoreKey& key, ArtifactKind kind) const;
    bool save_payload(const StoreKey& key, ArtifactKind kind,
                      const std::vector<std::uint8_t>& payload) const;

    std::filesystem::path dir_;

    mutable std::atomic<std::uint64_t> hits_{0};
    mutable std::atomic<std::uint64_t> misses_{0};
    mutable std::atomic<std::uint64_t> corrupt_rejects_{0};
    mutable std::atomic<std::uint64_t> writes_{0};
    mutable std::atomic<std::uint64_t> write_failures_{0};
};

/// The key under which ProgramCache's disk tier files @p kernel_name of
/// the module with @p fingerprint.
StoreKey program_key(std::uint64_t fingerprint,
                     const std::string& kernel_name);

/// Decode a pipeline-calibration payload without knowing its key (the
/// embedded canonical key is reported through @p key_out instead of
/// verified) — for inspection tools rendering arbitrary records.
std::optional<PipelineCalibrationArtifact>
inspect_pipeline_calibration(const std::vector<std::uint8_t>& payload,
                             std::string* key_out);

/// Unkeyed decode of a precision-calibration payload, for inspection
/// tools rendering arbitrary records.
std::optional<PrecisionCalibrationArtifact>
inspect_precision_calibration(const std::vector<std::uint8_t>& payload,
                              std::string* key_out);

/// Unkeyed decode of a fleet-calibration payload, for inspection tools.
std::optional<FleetCalibrationArtifact>
inspect_fleet_calibration(const std::vector<std::uint8_t>& payload,
                          std::string* key_out);

}  // namespace paraprox::store
