#include "store/artifact_store.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include <fcntl.h>
#include <unistd.h>

#include "support/faultinject.h"
#include "vm/program_cache.h"

namespace paraprox::store {

namespace {

const char*
kind_prefix(ArtifactKind kind)
{
    switch (kind) {
        case ArtifactKind::Program: return "prog";
        case ArtifactKind::Table: return "table";
        case ArtifactKind::Calibration: return "calib";
        case ArtifactKind::PipelineCalibration: return "pcal";
        case ArtifactKind::PrecisionCalibration: return "dcal";
        case ArtifactKind::FleetCalibration: return "fleet";
        case ArtifactKind::Lease: return "lease";
    }
    return "unknown";
}

std::string
hex16(std::uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

std::string
format_double(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return buf;
}

// ---- Payload codecs --------------------------------------------------------
//
// Every payload starts with the canonical key string, so a filename-hash
// collision (or a hand-renamed file) is detected and treated as a miss.

void
encode_instr(ByteWriter& w, const vm::Instr& instr)
{
    w.u8(static_cast<std::uint8_t>(instr.op));
    w.i32(instr.a);
    w.i32(instr.b);
    w.i32(instr.c);
    w.i32(instr.d);
    std::uint32_t imm_bits;
    std::memcpy(&imm_bits, &instr.imm, sizeof imm_bits);
    w.u32(imm_bits);
}

bool
decode_instr(ByteReader& r, bool fast_stream, vm::Instr& out)
{
    const std::uint8_t op = r.u8();
    const int limit =
        fast_stream ? vm::kNumOpcodes : vm::kNumCanonicalOpcodes;
    if (op >= static_cast<std::uint8_t>(limit))
        return false;
    out.op = static_cast<vm::Opcode>(op);
    out.a = r.i32();
    out.b = r.i32();
    out.c = r.i32();
    out.d = r.i32();
    const std::uint32_t imm_bits = r.u32();
    std::memcpy(&out.imm, &imm_bits, sizeof out.imm);
    return r.ok();
}

constexpr std::size_t kInstrBytes = 1 + 4 * 4 + 4;

std::vector<std::uint8_t>
encode_program(const StoreKey& key, const vm::Program& program)
{
    ByteWriter w;
    w.str(key.canonical());
    w.str(program.kernel_name);
    w.i32(program.num_regs);
    w.u8(program.has_barrier ? 1 : 0);
    w.u64(program.code.size());
    for (const auto& instr : program.code)
        encode_instr(w, instr);
    w.u64(program.fast_code.size());
    for (const auto& instr : program.fast_code)
        encode_instr(w, instr);
    w.u64(program.buffers.size());
    for (const auto& buffer : program.buffers) {
        w.str(buffer.name);
        w.u32(static_cast<std::uint32_t>(buffer.elem));
        w.u32(static_cast<std::uint32_t>(buffer.space));
    }
    w.u64(program.scalars.size());
    for (const auto& scalar : program.scalars) {
        w.str(scalar.name);
        w.u32(static_cast<std::uint32_t>(scalar.scalar));
        w.i32(scalar.reg);
    }
    return w.bytes();
}

std::optional<vm::Program>
decode_program(const StoreKey& key,
               const std::vector<std::uint8_t>& payload)
{
    ByteReader r(payload.data(), payload.size());
    if (r.str() != key.canonical())
        return std::nullopt;
    vm::Program program;
    program.kernel_name = r.str();
    program.num_regs = r.i32();
    program.has_barrier = r.u8() != 0;
    if (!r.ok() || program.num_regs < 0 ||
        program.num_regs > (1 << 20))
        return std::nullopt;

    const std::size_t code_count = r.count(kInstrBytes);
    program.code.resize(code_count);
    for (auto& instr : program.code) {
        if (!decode_instr(r, /*fast_stream=*/false, instr))
            return std::nullopt;
    }
    const std::size_t fast_count = r.count(kInstrBytes);
    program.fast_code.resize(fast_count);
    for (auto& instr : program.fast_code) {
        if (!decode_instr(r, /*fast_stream=*/true, instr))
            return std::nullopt;
    }

    const std::size_t buffer_count = r.count(1);
    program.buffers.resize(buffer_count);
    for (auto& buffer : program.buffers) {
        buffer.name = r.str();
        const std::uint32_t elem = r.u32();
        const std::uint32_t space = r.u32();
        if (elem > static_cast<std::uint32_t>(ir::Scalar::F32) ||
            space > static_cast<std::uint32_t>(ir::AddrSpace::Constant))
            return std::nullopt;
        buffer.elem = static_cast<ir::Scalar>(elem);
        buffer.space = static_cast<ir::AddrSpace>(space);
    }
    const std::size_t scalar_count = r.count(1);
    program.scalars.resize(scalar_count);
    for (auto& scalar : program.scalars) {
        scalar.name = r.str();
        const std::uint32_t kind = r.u32();
        if (kind > static_cast<std::uint32_t>(ir::Scalar::F32))
            return std::nullopt;
        scalar.scalar = static_cast<ir::Scalar>(kind);
        scalar.reg = r.i32();
    }
    if (!r.at_end())
        return std::nullopt;
    return program;
}

std::vector<std::uint8_t>
encode_table(const StoreKey& key, const memo::LookupTable& table)
{
    ByteWriter w;
    w.str(key.canonical());
    w.u64(table.config.inputs.size());
    for (const auto& input : table.config.inputs) {
        w.str(input.name);
        w.f32(input.lo);
        w.f32(input.hi);
        w.i32(input.bits);
        w.u8(input.is_constant ? 1 : 0);
        w.f32(input.constant_value);
    }
    w.f64(table.tuned_quality);
    w.u64(table.values.size());
    for (const float v : table.values)
        w.f32(v);
    return w.bytes();
}

std::optional<memo::LookupTable>
decode_table(const StoreKey& key, const std::vector<std::uint8_t>& payload)
{
    ByteReader r(payload.data(), payload.size());
    if (r.str() != key.canonical())
        return std::nullopt;
    memo::LookupTable table;
    const std::size_t input_count = r.count(1);
    table.config.inputs.resize(input_count);
    for (auto& input : table.config.inputs) {
        input.name = r.str();
        input.lo = r.f32();
        input.hi = r.f32();
        input.bits = r.i32();
        input.is_constant = r.u8() != 0;
        input.constant_value = r.f32();
        if (!r.ok() || input.bits < 0 || input.bits > 24)
            return std::nullopt;
    }
    table.tuned_quality = r.f64();
    const std::size_t value_count = r.count(sizeof(float));
    table.values.resize(value_count);
    for (float& v : table.values)
        v = r.f32();
    if (!r.at_end())
        return std::nullopt;
    // The address space and the stored contents must agree, or lookups
    // would index out of range.
    if (table.config.address_bits() > 24 ||
        static_cast<std::int64_t>(table.values.size()) !=
            table.config.table_size())
        return std::nullopt;
    return table;
}

void
encode_calibration_state(ByteWriter& w,
                         const runtime::CalibrationState& calibration)
{
    w.u64(calibration.profiles.size());
    for (const auto& profile : calibration.profiles) {
        w.str(profile.label);
        w.f64(profile.speedup);
        w.f64(profile.wall_speedup);
        w.f64(profile.quality);
        w.u8(profile.meets_toq ? 1 : 0);
        w.u8(profile.trapped ? 1 : 0);
    }
    w.u64(calibration.fallback_order.size());
    for (const int index : calibration.fallback_order)
        w.i32(index);
    w.i32(calibration.selected);
}

/// Structural sanity only; Tuner::restore_calibration re-validates
/// against the live variant list before installing anything.
bool
decode_calibration_state(ByteReader& r,
                         runtime::CalibrationState& calibration)
{
    const std::size_t profile_count = r.count(1);
    calibration.profiles.resize(profile_count);
    for (auto& profile : calibration.profiles) {
        profile.label = r.str();
        profile.speedup = r.f64();
        profile.wall_speedup = r.f64();
        profile.quality = r.f64();
        profile.meets_toq = r.u8() != 0;
        profile.trapped = r.u8() != 0;
    }
    const std::size_t order_count = r.count(4);
    calibration.fallback_order.resize(order_count);
    for (int& index : calibration.fallback_order)
        index = r.i32();
    calibration.selected = r.i32();
    if (!r.ok())
        return false;
    const int size = static_cast<int>(calibration.profiles.size());
    if (calibration.selected < 0 || calibration.selected >= size)
        return false;
    for (const int index : calibration.fallback_order) {
        if (index < 0 || index >= size)
            return false;
    }
    return true;
}

std::vector<std::uint8_t>
encode_calibration(const StoreKey& key,
                   const CalibrationArtifact& calibration)
{
    ByteWriter w;
    w.str(key.canonical());
    encode_calibration_state(w, calibration);
    return w.bytes();
}

std::optional<CalibrationArtifact>
decode_calibration(const StoreKey& key,
                   const std::vector<std::uint8_t>& payload)
{
    ByteReader r(payload.data(), payload.size());
    if (r.str() != key.canonical())
        return std::nullopt;
    CalibrationArtifact calibration;
    if (!decode_calibration_state(r, calibration) || !r.at_end())
        return std::nullopt;
    return calibration;
}

std::vector<std::uint8_t>
encode_fleet_calibration(const StoreKey& key,
                         const FleetCalibrationArtifact& artifact)
{
    ByteWriter w;
    w.str(key.canonical());
    w.u64(artifact.version);
    w.f64(artifact.toq);
    w.str(artifact.metric);
    w.u64(artifact.quarantined.size());
    for (const auto& label : artifact.quarantined)
        w.str(label);
    encode_calibration_state(w, artifact.calibration);
    return w.bytes();
}

std::optional<FleetCalibrationArtifact>
decode_fleet_calibration(const std::vector<std::uint8_t>& payload,
                         const std::string* expected_key,
                         std::string* key_out)
{
    ByteReader r(payload.data(), payload.size());
    const std::string embedded = r.str();
    if (key_out != nullptr)
        *key_out = embedded;
    if (expected_key != nullptr && embedded != *expected_key)
        return std::nullopt;
    FleetCalibrationArtifact artifact;
    artifact.version = r.u64();
    artifact.toq = r.f64();
    artifact.metric = r.str();
    const std::size_t quarantined = r.count(1);
    artifact.quarantined.resize(quarantined);
    for (auto& label : artifact.quarantined)
        label = r.str();
    if (!decode_calibration_state(r, artifact.calibration) || !r.at_end())
        return std::nullopt;
    if (artifact.version == 0)
        return std::nullopt;  // 0 is the "nothing published" sentinel.
    return artifact;
}

std::vector<std::uint8_t>
encode_lease(const StoreKey& key, const LeaseInfo& lease)
{
    ByteWriter w;
    w.str(key.canonical());
    w.str(lease.owner);
    w.u64(lease.expires_ms);
    w.u64(lease.token);
    return w.bytes();
}

std::optional<LeaseInfo>
decode_lease(const StoreKey& key, const std::vector<std::uint8_t>& payload)
{
    ByteReader r(payload.data(), payload.size());
    if (r.str() != key.canonical())
        return std::nullopt;
    LeaseInfo lease;
    lease.owner = r.str();
    lease.expires_ms = r.u64();
    lease.token = r.u64();
    if (!r.at_end())
        return std::nullopt;
    return lease;
}

std::uint64_t
wall_now_ms()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
}

/// A process-unique lease token: pid in the high bits (distinct across
/// the replica fleet) plus a per-process counter (distinct across
/// acquisitions within one process).
std::uint64_t
next_lease_token()
{
    static std::atomic<std::uint64_t> counter{0};
    const std::uint64_t serial =
        counter.fetch_add(1, std::memory_order_relaxed) + 1;
    return (static_cast<std::uint64_t>(::getpid()) << 32) ^ serial;
}

std::vector<std::uint8_t>
encode_pipeline_calibration(const StoreKey& key,
                            const PipelineCalibrationArtifact& artifact)
{
    ByteWriter w;
    w.str(key.canonical());
    w.u64(artifact.stage_names.size());
    for (const auto& name : artifact.stage_names)
        w.str(name);
    w.u64(artifact.configs.size());
    for (const auto& config : artifact.configs) {
        w.u64(config.size());
        for (const auto& label : config)
            w.str(label);
    }
    encode_calibration_state(w, artifact.calibration);
    w.f64(artifact.toq);
    w.str(artifact.metric);
    return w.bytes();
}

/// Body shared by the store's keyed load and the inspection tool's
/// unkeyed decode: @p r is positioned just past the canonical key.
std::optional<PipelineCalibrationArtifact>
decode_pipeline_calibration_body(ByteReader& r)
{
    PipelineCalibrationArtifact artifact;
    const std::size_t name_count = r.count(1);
    artifact.stage_names.resize(name_count);
    for (auto& name : artifact.stage_names)
        name = r.str();
    const std::size_t config_count = r.count(1);
    artifact.configs.resize(config_count);
    for (auto& config : artifact.configs) {
        const std::size_t label_count = r.count(1);
        config.resize(label_count);
        for (auto& label : config)
            label = r.str();
        if (config.size() != artifact.stage_names.size())
            return std::nullopt;
    }
    if (!decode_calibration_state(r, artifact.calibration))
        return std::nullopt;
    artifact.toq = r.f64();
    artifact.metric = r.str();
    if (!r.at_end())
        return std::nullopt;
    // Every joint config must back one calibration profile and the
    // mandatory all-exact config must exist.
    if (artifact.configs.empty() ||
        artifact.configs.size() != artifact.calibration.profiles.size())
        return std::nullopt;
    return artifact;
}

std::optional<PipelineCalibrationArtifact>
decode_pipeline_calibration(const StoreKey& key,
                            const std::vector<std::uint8_t>& payload)
{
    ByteReader r(payload.data(), payload.size());
    if (r.str() != key.canonical())
        return std::nullopt;
    return decode_pipeline_calibration_body(r);
}

std::vector<std::uint8_t>
encode_precision_calibration(const StoreKey& key,
                             const PrecisionCalibrationArtifact& artifact)
{
    ByteWriter w;
    w.str(key.canonical());
    w.u64(artifact.plans.size());
    for (const auto& plan : artifact.plans) {
        w.str(plan.label);
        w.u64(plan.assignments.size());
        for (const auto& assignment : plan.assignments) {
            w.str(assignment.buffer);
            w.u8(static_cast<std::uint8_t>(assignment.codec));
            w.f32(assignment.quant.scale);
            w.f32(assignment.quant.zero);
        }
    }
    encode_calibration_state(w, artifact.calibration);
    w.f64(artifact.toq);
    w.str(artifact.metric);
    return w.bytes();
}

/// Body shared by the keyed load and the inspection tool: @p r is
/// positioned just past the canonical key.
std::optional<PrecisionCalibrationArtifact>
decode_precision_calibration_body(ByteReader& r)
{
    PrecisionCalibrationArtifact artifact;
    const std::size_t plan_count = r.count(1);
    artifact.plans.resize(plan_count);
    for (auto& plan : artifact.plans) {
        plan.label = r.str();
        const std::size_t assignment_count = r.count(1);
        plan.assignments.resize(assignment_count);
        for (auto& assignment : plan.assignments) {
            assignment.buffer = r.str();
            const std::uint8_t codec = r.u8();
            if (codec >= data::kNumCodecs)
                return std::nullopt;
            assignment.codec = static_cast<data::Codec>(codec);
            assignment.quant.scale = r.f32();
            assignment.quant.zero = r.f32();
            // A corrupt scale must not survive into live packing: int8
            // decoding multiplies by it on every load.
            if (assignment.codec == data::Codec::Int8 &&
                !(std::isfinite(assignment.quant.scale) &&
                  assignment.quant.scale > 0.0f &&
                  std::isfinite(assignment.quant.zero)))
                return std::nullopt;
        }
    }
    if (!decode_calibration_state(r, artifact.calibration))
        return std::nullopt;
    artifact.toq = r.f64();
    artifact.metric = r.str();
    if (!r.at_end())
        return std::nullopt;
    // Plan/profile index alignment, and the all-exact fallback must lead.
    if (artifact.plans.empty() ||
        artifact.plans.size() != artifact.calibration.profiles.size() ||
        !artifact.plans.front().all_exact())
        return std::nullopt;
    return artifact;
}

std::optional<PrecisionCalibrationArtifact>
decode_precision_calibration(const StoreKey& key,
                             const std::vector<std::uint8_t>& payload)
{
    ByteReader r(payload.data(), payload.size());
    if (r.str() != key.canonical())
        return std::nullopt;
    return decode_precision_calibration_body(r);
}

}  // namespace

std::optional<PipelineCalibrationArtifact>
inspect_pipeline_calibration(const std::vector<std::uint8_t>& payload,
                             std::string* key_out)
{
    ByteReader r(payload.data(), payload.size());
    const std::string key = r.str();
    if (!r.ok())
        return std::nullopt;
    if (key_out)
        *key_out = key;
    return decode_pipeline_calibration_body(r);
}

std::optional<PrecisionCalibrationArtifact>
inspect_precision_calibration(const std::vector<std::uint8_t>& payload,
                              std::string* key_out)
{
    ByteReader r(payload.data(), payload.size());
    const std::string key = r.str();
    if (!r.ok())
        return std::nullopt;
    if (key_out)
        *key_out = key;
    return decode_precision_calibration_body(r);
}

std::optional<FleetCalibrationArtifact>
inspect_fleet_calibration(const std::vector<std::uint8_t>& payload,
                          std::string* key_out)
{
    return decode_fleet_calibration(payload, nullptr, key_out);
}

// ---- StoreKey --------------------------------------------------------------

std::string
StoreKey::canonical() const
{
    return "v" + std::to_string(kFormatVersion) + "|fp=" +
           hex16(module_fingerprint) + "|kernel=" + kernel + "|dev=" +
           device + "|toq=" + format_double(toq) + "|metric=" + metric +
           "|detail=" + detail;
}

std::uint64_t
StoreKey::hash() const
{
    const std::string c = canonical();
    return fnv1a64(c.data(), c.size());
}

StoreKey
program_key(std::uint64_t fingerprint, const std::string& kernel_name)
{
    StoreKey key;
    key.module_fingerprint = fingerprint;
    key.kernel = kernel_name;
    key.detail = "program";
    return key;
}

// ---- ArtifactStore ---------------------------------------------------------

ArtifactStore::ArtifactStore(std::filesystem::path dir)
    : dir_(std::move(dir))
{
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
}

std::filesystem::path
ArtifactStore::path_for(const StoreKey& key, ArtifactKind kind) const
{
    return dir_ / (std::string(kind_prefix(kind)) + "-" +
                   hex16(key.hash()) + ".ppx");
}

std::optional<std::vector<std::uint8_t>>
ArtifactStore::load_payload(const StoreKey& key, ArtifactKind kind) const
{
    auto file = read_file_bytes(path_for(key, kind));
    if (!file) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
    }
    // Chaos-testing site: flip one byte mid-record so the load exercises
    // the real checksum-rejection path rather than a synthetic error.
    if (!file->empty() && fault::fire("store.corrupt", key.canonical()))
        (*file)[file->size() / 2] ^= 0x40;
    auto payload = decode_record(*file, kind);
    if (!payload)
        corrupt_rejects_.fetch_add(1, std::memory_order_relaxed);
    return payload;
}

bool
ArtifactStore::save_payload(const StoreKey& key, ArtifactKind kind,
                            const std::vector<std::uint8_t>& payload) const
{
    const bool ok =
        write_file_atomic(path_for(key, kind), encode_record(kind, payload));
    (ok ? writes_ : write_failures_).fetch_add(1,
                                               std::memory_order_relaxed);
    return ok;
}

std::optional<vm::Program>
ArtifactStore::load_program(const StoreKey& key) const
{
    const auto payload = load_payload(key, ArtifactKind::Program);
    if (!payload)
        return std::nullopt;
    auto program = decode_program(key, *payload);
    (program ? hits_ : corrupt_rejects_)
        .fetch_add(1, std::memory_order_relaxed);
    return program;
}

bool
ArtifactStore::save_program(const StoreKey& key,
                            const vm::Program& program) const
{
    return save_payload(key, ArtifactKind::Program,
                        encode_program(key, program));
}

std::optional<memo::LookupTable>
ArtifactStore::load_table(const StoreKey& key) const
{
    const auto payload = load_payload(key, ArtifactKind::Table);
    if (!payload)
        return std::nullopt;
    auto table = decode_table(key, *payload);
    (table ? hits_ : corrupt_rejects_)
        .fetch_add(1, std::memory_order_relaxed);
    return table;
}

bool
ArtifactStore::save_table(const StoreKey& key,
                          const memo::LookupTable& table) const
{
    return save_payload(key, ArtifactKind::Table,
                        encode_table(key, table));
}

std::optional<CalibrationArtifact>
ArtifactStore::load_calibration(const StoreKey& key) const
{
    const auto payload = load_payload(key, ArtifactKind::Calibration);
    if (!payload)
        return std::nullopt;
    auto calibration = decode_calibration(key, *payload);
    (calibration ? hits_ : corrupt_rejects_)
        .fetch_add(1, std::memory_order_relaxed);
    return calibration;
}

bool
ArtifactStore::save_calibration(const StoreKey& key,
                                const CalibrationArtifact& calibration) const
{
    return save_payload(key, ArtifactKind::Calibration,
                        encode_calibration(key, calibration));
}

std::optional<PipelineCalibrationArtifact>
ArtifactStore::load_pipeline_calibration(const StoreKey& key) const
{
    const auto payload =
        load_payload(key, ArtifactKind::PipelineCalibration);
    if (!payload)
        return std::nullopt;
    auto artifact = decode_pipeline_calibration(key, *payload);
    (artifact ? hits_ : corrupt_rejects_)
        .fetch_add(1, std::memory_order_relaxed);
    return artifact;
}

bool
ArtifactStore::save_pipeline_calibration(
    const StoreKey& key, const PipelineCalibrationArtifact& artifact) const
{
    return save_payload(key, ArtifactKind::PipelineCalibration,
                        encode_pipeline_calibration(key, artifact));
}

std::optional<PrecisionCalibrationArtifact>
ArtifactStore::load_precision_calibration(const StoreKey& key) const
{
    const auto payload =
        load_payload(key, ArtifactKind::PrecisionCalibration);
    if (!payload)
        return std::nullopt;
    auto artifact = decode_precision_calibration(key, *payload);
    (artifact ? hits_ : corrupt_rejects_)
        .fetch_add(1, std::memory_order_relaxed);
    return artifact;
}

bool
ArtifactStore::save_precision_calibration(
    const StoreKey& key, const PrecisionCalibrationArtifact& artifact) const
{
    return save_payload(key, ArtifactKind::PrecisionCalibration,
                        encode_precision_calibration(key, artifact));
}

std::optional<FleetCalibrationArtifact>
ArtifactStore::load_fleet_calibration(const StoreKey& key) const
{
    const auto payload = load_payload(key, ArtifactKind::FleetCalibration);
    if (!payload)
        return std::nullopt;
    const std::string canonical = key.canonical();
    auto artifact = decode_fleet_calibration(*payload, &canonical, nullptr);
    (artifact ? hits_ : corrupt_rejects_)
        .fetch_add(1, std::memory_order_relaxed);
    return artifact;
}

bool
ArtifactStore::save_fleet_calibration(
    const StoreKey& key, const FleetCalibrationArtifact& artifact) const
{
    if (artifact.version == 0)
        return false;  // Reserved: "nothing published yet".
    return save_payload(key, ArtifactKind::FleetCalibration,
                        encode_fleet_calibration(key, artifact));
}

std::uint64_t
ArtifactStore::fleet_calibration_version(const StoreKey& key) const
{
    // The watch poll: deliberately uncounted (it runs every few tens of
    // milliseconds per tracked kernel) and decoding only far enough to
    // pull the version stamp.
    const auto file =
        read_file_bytes(path_for(key, ArtifactKind::FleetCalibration));
    if (!file)
        return 0;
    const auto payload = decode_record(*file, ArtifactKind::FleetCalibration);
    if (!payload)
        return 0;
    ByteReader r(payload->data(), payload->size());
    if (r.str() != key.canonical())
        return 0;
    const std::uint64_t version = r.u64();
    return r.ok() ? version : 0;
}

std::optional<std::uint64_t>
ArtifactStore::try_acquire_lease(const StoreKey& key,
                                 const std::string& owner,
                                 std::uint64_t ttl_ms) const
{
    const std::filesystem::path path = path_for(key, ArtifactKind::Lease);
    for (int attempt = 0; attempt < 4; ++attempt) {
        LeaseInfo lease;
        lease.owner = owner;
        lease.expires_ms = wall_now_ms() + ttl_ms;
        lease.token = next_lease_token();
        const auto bytes =
            encode_record(ArtifactKind::Lease, encode_lease(key, lease));
        // Write the full record to a private temp file, then link() it
        // into place: the lease appears with its content atomically, so
        // a peer can never observe a half-written (hence "undecodable,
        // steal it") lease from a perfectly healthy writer.  link()
        // fails with EEXIST when a lease already exists — the same
        // exclusivity O_EXCL would give, without the content race.
        const std::filesystem::path temp =
            path.string() + ".claim-" + hex16(lease.token);
        const int fd = ::open(temp.c_str(),
                              O_CREAT | O_EXCL | O_WRONLY | O_CLOEXEC,
                              0644);
        if (fd < 0)
            return std::nullopt;
        const ssize_t written = ::write(fd, bytes.data(), bytes.size());
        ::close(fd);
        if (written != static_cast<ssize_t>(bytes.size())) {
            ::unlink(temp.c_str());
            return std::nullopt;
        }
        const int linked = ::link(temp.c_str(), path.c_str());
        ::unlink(temp.c_str());
        if (linked == 0)
            return lease.token;
        if (errno != EEXIST)
            return std::nullopt;
        const auto current = read_lease(key);
        if (current && wall_now_ms() <= current->expires_ms)
            return std::nullopt;  // Held by a live peer.
        // Expired (or undecodable) lease: steal it.  rename() is the
        // arbiter — exactly one concurrent stealer's rename succeeds;
        // the losers loop back to the O_EXCL create and find the
        // winner's fresh lease.
        const std::filesystem::path stale =
            path.string() + ".stale-" + hex16(next_lease_token());
        if (::rename(path.c_str(), stale.c_str()) == 0)
            ::unlink(stale.c_str());
    }
    return std::nullopt;
}

void
ArtifactStore::release_lease(const StoreKey& key, const std::string& owner,
                             std::uint64_t token) const
{
    const auto current = read_lease(key);
    if (current && current->owner == owner && current->token == token)
        ::unlink(path_for(key, ArtifactKind::Lease).c_str());
}

std::optional<LeaseInfo>
ArtifactStore::read_lease(const StoreKey& key) const
{
    const auto file = read_file_bytes(path_for(key, ArtifactKind::Lease));
    if (!file)
        return std::nullopt;
    const auto payload = decode_record(*file, ArtifactKind::Lease);
    if (!payload)
        return std::nullopt;
    return decode_lease(key, *payload);
}

std::vector<ArtifactStore::Entry>
ArtifactStore::list() const
{
    std::vector<Entry> out;
    std::error_code ec;
    for (const auto& dirent :
         std::filesystem::directory_iterator(dir_, ec)) {
        if (!dirent.is_regular_file() ||
            dirent.path().extension() != ".ppx")
            continue;
        Entry entry;
        entry.file = dirent.path();
        entry.size_bytes = dirent.file_size(ec);
        const auto file = read_file_bytes(entry.file);
        if (file) {
            const RecordInfo info = probe_record(*file);
            entry.kind = info.kind;
            entry.valid = info.valid;
            if (info.valid) {
                // The canonical key leads every payload.
                if (auto payload = decode_record(*file, info.kind)) {
                    ByteReader r(payload->data(), payload->size());
                    entry.key = r.str();
                    if (!r.ok())
                        entry.valid = false;
                }
            }
        }
        out.push_back(std::move(entry));
    }
    std::sort(out.begin(), out.end(),
              [](const Entry& a, const Entry& b) { return a.file < b.file; });
    return out;
}

std::size_t
ArtifactStore::prune(bool everything) const
{
    std::size_t removed = 0;
    std::error_code ec;
    // Stray temp files (a writer died mid-save) always go.
    for (const auto& dirent :
         std::filesystem::directory_iterator(dir_, ec)) {
        if (!dirent.is_regular_file())
            continue;
        const std::string name = dirent.path().filename().string();
        if (name.find(".ppx.tmp") != std::string::npos ||
            name.find(".ppx.claim-") != std::string::npos ||
            name.find(".ppx.stale-") != std::string::npos) {
            if (std::filesystem::remove(dirent.path(), ec))
                ++removed;
        }
    }
    for (const Entry& entry : list()) {
        if (entry.valid && !everything)
            continue;
        if (std::filesystem::remove(entry.file, ec))
            ++removed;
    }
    return removed;
}

StoreStats
ArtifactStore::stats() const
{
    StoreStats out;
    out.hits = hits_.load(std::memory_order_relaxed);
    out.misses = misses_.load(std::memory_order_relaxed);
    out.corrupt_rejects = corrupt_rejects_.load(std::memory_order_relaxed);
    out.writes = writes_.load(std::memory_order_relaxed);
    out.write_failures = write_failures_.load(std::memory_order_relaxed);
    return out;
}

// ---- Global store ----------------------------------------------------------

namespace {

/// ProgramCache's second tier: (fingerprint, kernel) -> stored bytecode.
class StoreDiskTier final : public vm::ProgramCache::DiskTier {
  public:
    explicit StoreDiskTier(std::shared_ptr<ArtifactStore> store)
        : store_(std::move(store))
    {
    }

    std::optional<vm::Program>
    load(std::uint64_t fingerprint, const std::string& kernel_name) override
    {
        return store_->load_program(program_key(fingerprint, kernel_name));
    }

    void
    save(std::uint64_t fingerprint, const std::string& kernel_name,
         const vm::Program& program) override
    {
        store_->save_program(program_key(fingerprint, kernel_name),
                             program);
    }

  private:
    std::shared_ptr<ArtifactStore> store_;
};

std::mutex g_global_mutex;
std::shared_ptr<ArtifactStore> g_global_store;
bool g_global_resolved = false;

}  // namespace

std::shared_ptr<ArtifactStore>
ArtifactStore::global()
{
    std::lock_guard<std::mutex> lock(g_global_mutex);
    if (!g_global_resolved) {
        g_global_resolved = true;
        if (const char* dir = std::getenv("PARAPROX_STORE_DIR");
            dir != nullptr && *dir != '\0') {
            g_global_store = std::make_shared<ArtifactStore>(dir);
            vm::ProgramCache::global().set_disk_tier(
                std::make_shared<StoreDiskTier>(g_global_store));
        }
    }
    return g_global_store;
}

std::shared_ptr<ArtifactStore>
ArtifactStore::configure_global(const std::filesystem::path& dir)
{
    std::lock_guard<std::mutex> lock(g_global_mutex);
    g_global_resolved = true;
    g_global_store = std::make_shared<ArtifactStore>(dir);
    vm::ProgramCache::global().set_disk_tier(
        std::make_shared<StoreDiskTier>(g_global_store));
    return g_global_store;
}

void
ArtifactStore::disable_global()
{
    std::lock_guard<std::mutex> lock(g_global_mutex);
    g_global_resolved = true;
    g_global_store.reset();
    vm::ProgramCache::global().set_disk_tier(nullptr);
}

}  // namespace paraprox::store
