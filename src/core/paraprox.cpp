#include "core/paraprox.h"

#include <algorithm>
#include <map>

#include "memo/bit_tuning.h"
#include "support/error.h"
#include "support/rng.h"
#include "transforms/safety.h"
#include "transforms/unroll.h"

namespace paraprox::core {

using analysis::PatternKind;

TrainingProvider
uniform_training(float lo, float hi, int samples, std::uint64_t seed)
{
    return [lo, hi, samples, seed](const std::string& function)
               -> std::optional<std::vector<std::vector<float>>> {
        // Arity is resolved by the caller; here we cannot know it, so the
        // provider is re-wrapped inside compile_kernel with the actual
        // parameter count.  This base form returns one-wide samples; the
        // driver widens them.
        (void)function;
        Rng rng(seed);
        std::vector<std::vector<float>> out(samples);
        for (auto& sample : out)
            sample = {rng.uniform(lo, hi)};
        return out;
    };
}

namespace {

/// Widen or regenerate training tuples to the callee's arity: a provider
/// may return tuples of any width; the driver resamples each column
/// cyclically so every parameter gets a value.
std::vector<std::vector<float>>
fit_training_to_arity(const std::vector<std::vector<float>>& raw,
                      std::size_t arity)
{
    std::vector<std::vector<float>> out;
    out.reserve(raw.size());
    for (const auto& sample : raw) {
        PARAPROX_CHECK(!sample.empty(), "training sample is empty");
        std::vector<float> widened(arity);
        for (std::size_t i = 0; i < arity; ++i)
            widened[i] = sample[i % sample.size()];
        out.push_back(std::move(widened));
    }
    return out;
}

/// A memo candidate that survived profitability + training, with its
/// TOQ-searched table — the input to chained (multi-callee) variants.
struct MemoPrep {
    std::string callee;
    memo::LookupTable table;
    bool gather = false;
};

void
generate_memo_variants(const ir::Module& module, const std::string& kernel,
                       const analysis::MemoCandidate& candidate,
                       const CompileOptions& options,
                       KernelCompileResult& result,
                       std::vector<MemoPrep>& preps)
{
    using transforms::LookupMode;
    using transforms::TableLocation;

    if (!candidate.profitable) {
        result.notes.push_back(
            "skip memoizing `" + candidate.callee +
            "`: estimated " + std::to_string(
                static_cast<int>(candidate.cycles_needed)) +
            " cycles is under 10x the L1 read latency (Eq. 1)");
        return;
    }
    auto raw_training = options.training(candidate.callee);
    if (!raw_training) {
        result.notes.push_back("skip memoizing `" + candidate.callee +
                               "`: no training data provided");
        return;
    }

    const ir::Function* callee = module.find_function(candidate.callee);
    PARAPROX_ASSERT(callee, "memo candidate callee vanished");
    const auto training =
        fit_training_to_arity(*raw_training, callee->params.size());

    memo::ScalarEvaluator evaluator(module, candidate.callee);

    // The artifact-store tier: a cached table under this key replaces the
    // whole TOQ-driven size search (the dominant warm-session cost).
    memo::LookupTable base_table;
    bool restored = false;
    if (options.table_lookup) {
        if (auto stored = options.table_lookup(candidate.callee, 0)) {
            base_table = std::move(*stored);
            restored = true;
            result.notes.push_back(
                "memoize `" + candidate.callee +
                "`: table restored from artifact store (" +
                std::to_string(base_table.values.size()) +
                " entries at tuned quality " +
                std::to_string(base_table.tuned_quality).substr(0, 5) +
                "%)");
        }
    }
    if (!restored) {
        auto search = memo::find_table_for_toq(evaluator, training,
                                               options.toq, 3,
                                               options.max_table_bits);
        base_table = std::move(search.table);
        result.notes.push_back(
            "memoize `" + candidate.callee + "`: table size search -> " +
            std::to_string(base_table.values.size()) +
            " entries at tuned quality " +
            std::to_string(base_table.tuned_quality).substr(0, 5) + "%");
        if (options.table_publish)
            options.table_publish(candidate.callee, 0, base_table);
    }

    const PatternKind pattern = candidate.gather
                                    ? PatternKind::ScatterGather
                                    : PatternKind::Map;

    auto emit = [&](const memo::LookupTable& table, TableLocation location,
                    LookupMode mode, int aggressiveness) {
        auto memoized = transforms::memoize_kernel(module, kernel,
                                                   candidate.callee, table,
                                                   location, mode);
        GeneratedKernel generated;
        generated.label = "memo " + transforms::to_string(location) + "/" +
                          transforms::to_string(mode) + " " +
                          std::to_string(table.values.size()) + " entries";
        generated.pattern = pattern;
        generated.aggressiveness = aggressiveness;
        generated.kernel_name = memoized.kernel_name;
        generated.tables.push_back({memoized.table_buffer_param,
                                    memoized.shared_table_param, table});
        generated.module = std::move(memoized.module);
        if (options.guard_divisions) {
            int guards = 0;
            generated.module = transforms::guard_divisions(
                generated.module, generated.kernel_name, &guards);
            if (guards > 0) {
                result.notes.push_back(generated.label + ": guarded " +
                                       std::to_string(guards) +
                                       " division(s)");
            }
        }
        result.generated.push_back(std::move(generated));
    };

    preps.push_back({candidate.callee, base_table, candidate.gather});

    emit(base_table, TableLocation::Global, LookupMode::Nearest, 1);
    if (options.linear_mode)
        emit(base_table, TableLocation::Global, LookupMode::Linear, 1);
    if (options.table_placements) {
        emit(base_table, TableLocation::Constant, LookupMode::Nearest,
             1);
        emit(base_table, TableLocation::Shared, LookupMode::Nearest, 1);
    }

    // Two more aggressive (smaller) sizes, re-bit-tuned (or restored).
    int aggressiveness = 2;
    for (int shrink = 1; shrink <= 2; ++shrink) {
        const int bits = base_table.config.address_bits() - shrink;
        if (bits < 3)
            break;
        memo::LookupTable table;
        bool shrink_restored = false;
        if (options.table_lookup) {
            if (auto stored = options.table_lookup(candidate.callee,
                                                   shrink);
                stored && stored->config.address_bits() == bits) {
                table = std::move(*stored);
                shrink_restored = true;
            }
        }
        if (!shrink_restored) {
            auto tuning = memo::bit_tune(evaluator, training, bits);
            table = memo::build_table(evaluator, tuning.config);
            table.tuned_quality = tuning.quality;
            if (options.table_publish)
                options.table_publish(candidate.callee, shrink, table);
        }
        emit(table, TableLocation::Global, LookupMode::Nearest,
             aggressiveness++);
    }
}

/// When a kernel has several profitable memo candidates, also emit
/// variants with *all* of them memoized at once by chaining the memoize
/// transform across callees (what an application would hand-wire for a
/// kernel like Box-Muller with two heavy callees).
void
generate_chained_memo_variants(const ir::Module& module,
                               const std::string& kernel,
                               const std::vector<MemoPrep>& preps,
                               const CompileOptions& options,
                               KernelCompileResult& result)
{
    using transforms::LookupMode;
    using transforms::TableLocation;

    if (preps.size() < 2)
        return;

    const bool any_gather =
        std::any_of(preps.begin(), preps.end(),
                    [](const MemoPrep& prep) { return prep.gather; });

    auto emit = [&](LookupMode mode) {
        GeneratedKernel generated;
        const ir::Module* current = &module;
        std::string current_kernel = kernel;
        ir::Module owned;
        std::int64_t entries = 0;
        for (const auto& prep : preps) {
            auto memoized = transforms::memoize_kernel(
                *current, current_kernel, prep.callee, prep.table,
                TableLocation::Global, mode);
            generated.tables.push_back({memoized.table_buffer_param,
                                        memoized.shared_table_param,
                                        prep.table});
            entries += static_cast<std::int64_t>(prep.table.values.size());
            owned = std::move(memoized.module);
            current = &owned;
            current_kernel = memoized.kernel_name;
        }
        generated.label = "memo all global/" +
                          transforms::to_string(mode) + " " +
                          std::to_string(entries) + " entries";
        generated.pattern = any_gather ? PatternKind::ScatterGather
                                       : PatternKind::Map;
        generated.aggressiveness = 1;
        generated.kernel_name = current_kernel;
        generated.module = std::move(owned);
        if (options.guard_divisions) {
            int guards = 0;
            generated.module = transforms::guard_divisions(
                generated.module, generated.kernel_name, &guards);
            if (guards > 0) {
                result.notes.push_back(generated.label + ": guarded " +
                                       std::to_string(guards) +
                                       " division(s)");
            }
        }
        result.generated.push_back(std::move(generated));
    };

    result.notes.push_back("memoize all " + std::to_string(preps.size()) +
                           " profitable callees together (chained)");
    emit(LookupMode::Nearest);
    if (options.linear_mode)
        emit(LookupMode::Linear);
}

void
generate_stencil_variants(const ir::Module& module,
                          const std::string& kernel,
                          const analysis::StencilGroup& group,
                          const CompileOptions& options,
                          KernelCompileResult& result,
                          const std::string& origin_note = "")
{
    using transforms::StencilScheme;

    result.notes.push_back(
        "stencil on `" + group.array + "`: " +
        std::to_string(group.tile_height()) + "x" +
        std::to_string(group.tile_width()) + " tile, " +
        std::to_string(group.accesses.size()) + " accesses" +
        origin_note);

    // Schemes that can merge anything for this tile shape.
    std::vector<StencilScheme> schemes;
    if (group.two_dimensional && group.tile_height() > 1 &&
        group.tile_width() > 1) {
        schemes = {StencilScheme::Row, StencilScheme::Column,
                   StencilScheme::Center};
    } else if (group.tile_height() > 1) {
        schemes = {StencilScheme::Row};
    } else {
        schemes = {StencilScheme::Column};
    }

    for (int rd : options.reaching_distances) {
        for (auto scheme : schemes) {
            auto variant = transforms::stencil_approx(module, kernel,
                                                      group, scheme, rd);
            if (variant.loads_after >= variant.loads_before)
                continue;  // nothing merged; skip the useless variant
            GeneratedKernel generated;
            generated.label = "stencil " + transforms::to_string(scheme) +
                              " rd=" + std::to_string(rd);
            generated.pattern = PatternKind::Stencil;
            generated.aggressiveness =
                rd + (scheme == StencilScheme::Center ? 1 : 0);
            generated.kernel_name = variant.kernel_name;
            generated.module = std::move(variant.module);
            result.generated.push_back(std::move(generated));
        }
    }
}

void
generate_reduction_variants(const ir::Module& module,
                            const std::string& kernel, int reduction_index,
                            const analysis::ReductionLoop& loop,
                            const CompileOptions& options,
                            KernelCompileResult& result)
{
    result.notes.push_back(
        "reduction loop #" + std::to_string(reduction_index) + " (" +
        analysis::to_string(loop.op) +
        (loop.variable.empty() ? "" : (" on `" + loop.variable + "`")) +
        ")");
    int aggressiveness = 1;
    for (int skip : options.skip_rates) {
        auto variant = transforms::reduction_approx(
            module, kernel, reduction_index, skip,
            options.reduction_adjust);
        GeneratedKernel generated;
        generated.label = "reduction #" +
                          std::to_string(reduction_index) + " skip=" +
                          std::to_string(skip);
        generated.pattern = PatternKind::Reduction;
        generated.aggressiveness = aggressiveness++;
        generated.kernel_name = variant.kernel_name;
        generated.module = std::move(variant.module);
        result.generated.push_back(std::move(generated));
    }
}

}  // namespace

KernelCompileResult
compile_kernel(const ir::Module& module, const std::string& kernel,
               const CompileOptions& options)
{
    const ir::Function* target = module.find_function(kernel);
    PARAPROX_CHECK(target && target->is_kernel,
                   "compile_kernel: no kernel `" + kernel + "`");

    KernelCompileResult result;
    result.kernel = kernel;
    result.detection =
        analysis::detect_kernel_patterns(module, *target, options.device);

    std::vector<MemoPrep> memo_preps;
    for (const auto& candidate : result.detection.memo_candidates) {
        generate_memo_variants(module, kernel, candidate, options, result,
                               memo_preps);
    }
    generate_chained_memo_variants(module, kernel, memo_preps, options,
                                   result);

    // Stencils: loop-shaped tiles are unrolled first so the tile
    // transform can merge their (then constant-offset) accesses.
    std::optional<ir::Module> unrolled;
    std::vector<analysis::StencilGroup> unrolled_groups;
    for (const auto& group : result.detection.stencils) {
        std::map<const ir::Load*, int> occurrences;
        for (const auto& access : group.accesses)
            ++occurrences[access.load];
        const bool loop_shaped =
            std::any_of(occurrences.begin(), occurrences.end(),
                        [](const auto& entry) { return entry.second > 1; });
        if (!loop_shaped) {
            generate_stencil_variants(module, kernel, group, options,
                                      result);
            continue;
        }
        if (!unrolled) {
            unrolled = transforms::unroll_constant_loops(module, kernel);
            unrolled_groups = analysis::detect_stencils(
                *unrolled->find_function(kernel));
        }
        const analysis::StencilGroup* match = nullptr;
        for (const auto& candidate : unrolled_groups) {
            if (candidate.array == group.array &&
                candidate.base_key == group.base_key) {
                match = &candidate;
                break;
            }
        }
        if (!match) {
            result.notes.push_back("stencil on `" + group.array +
                                   "`: loop-shaped tile did not survive "
                                   "unrolling; left exact");
            continue;
        }
        generate_stencil_variants(*unrolled, kernel, *match, options,
                                  result, " (after loop unrolling)");
    }

    for (std::size_t r = 0; r < result.detection.reductions.size(); ++r) {
        generate_reduction_variants(module, kernel, static_cast<int>(r),
                                    result.detection.reductions[r],
                                    options, result);
    }

    if (result.detection.is_scan) {
        result.notes.push_back(
            "scan pattern detected: approximate at the pipeline level "
            "with transforms::scan_approx (needs the host's subarray "
            "geometry)");
    }
    if (result.generated.empty() && result.notes.empty())
        result.notes.push_back("no applicable pattern detected");
    return result;
}

std::vector<KernelCompileResult>
compile_module(const ir::Module& module, const CompileOptions& options)
{
    std::vector<KernelCompileResult> out;
    for (const ir::Function* kernel : module.kernels())
        out.push_back(compile_kernel(module, kernel->name, options));
    return out;
}

}  // namespace paraprox::core
