#include "core/variants.h"

#include "device/memory_model.h"
#include "runtime/variant_run.h"
#include "support/error.h"
#include "vm/program_cache.h"

namespace paraprox::core {

void
bind_tables(const std::vector<TableBinding>& tables, exec::ArgPack& args,
            std::vector<std::unique_ptr<exec::Buffer>>& storage)
{
    for (const auto& binding : tables) {
        storage.push_back(std::make_unique<exec::Buffer>(
            exec::Buffer::from_floats(binding.table.values)));
        args.buffer(binding.buffer_param, *storage.back());
        if (!binding.shared_param.empty()) {
            args.shared(binding.shared_param,
                        static_cast<std::int64_t>(
                            binding.table.values.size()));
        }
    }
}

namespace {

/// Shared immutable state captured by every variant closure.
struct VariantContext {
    device::DeviceModel device;
    LaunchPlan plan;
};

runtime::VariantRun
run_one(const vm::Program& program,
        const std::vector<TableBinding>& tables,
        const VariantContext& context, std::uint64_t seed,
        vm::ExecMode mode)
{
    exec::ArgPack args;
    std::vector<std::unique_ptr<exec::Buffer>> storage;
    context.plan.bind_inputs(seed, args, storage);
    bind_tables(tables, args, storage);

    runtime::VariantRun run =
        mode == vm::ExecMode::Fast
            ? runtime::run_fast_unpriced(program, args, context.plan.config)
            : runtime::run_priced(program, args, context.plan.config,
                                  context.device);
    const exec::Buffer* output =
        args.find_buffer(context.plan.output_buffer);
    PARAPROX_CHECK(output, "LaunchPlan output buffer `" +
                               context.plan.output_buffer +
                               "` was not bound");
    runtime::attach_output(run, *output);
    return run;
}

std::vector<runtime::VariantRun>
run_many(const vm::Program& program,
         const std::vector<TableBinding>& tables,
         const VariantContext& context,
         const std::vector<std::uint64_t>& seeds)
{
    // The per-request fixed costs a batch amortizes: the lookup tables
    // are copied into Buffers once (bind_tables per request is the
    // dominant bind cost for memoized kernels), and one concatenated
    // launch replaces seeds.size() pool dispatches.  Only the per-seed
    // inputs are bound per member, on a copy of the shared base pack.
    exec::ArgPack base;
    std::vector<std::unique_ptr<exec::Buffer>> storage;
    bind_tables(tables, base, storage);

    std::vector<exec::ArgPack> packs;
    packs.reserve(seeds.size());
    std::vector<const exec::ArgPack*> members;
    members.reserve(seeds.size());
    for (const std::uint64_t seed : seeds) {
        packs.push_back(base);
        context.plan.bind_inputs(seed, packs.back(), storage);
        members.push_back(&packs.back());
    }

    std::vector<runtime::VariantRun> runs =
        runtime::run_batch_unpriced(program, members, context.plan.config);
    for (std::size_t i = 0; i < runs.size(); ++i) {
        const exec::Buffer* output =
            packs[i].find_buffer(context.plan.output_buffer);
        PARAPROX_CHECK(output, "LaunchPlan output buffer `" +
                                   context.plan.output_buffer +
                                   "` was not bound");
        runtime::attach_output(runs[i], *output);
    }
    return runs;
}

}  // namespace

std::vector<runtime::Variant>
make_variants(const ir::Module& module, const std::string& kernel,
              const std::vector<GeneratedKernel>& generated,
              const LaunchPlan& plan, const device::DeviceModel& device)
{
    PARAPROX_CHECK(plan.bind_inputs != nullptr,
                   "LaunchPlan needs a bind_inputs callback");
    auto context = std::make_shared<VariantContext>();
    context->device = device;
    context->plan = plan;

    // All programs come from the process-wide cache, so rebuilding the
    // variant list (or a KernelSession over the same module) compiles
    // nothing twice.
    // Every variant carries two closures over the same program and
    // bindings: `run` prices the launch under the device model (what
    // calibration needs) and `run_fast` serves in vm::ExecMode::Fast.
    auto make_variant = [&context](std::string label, int aggressiveness,
                                   std::shared_ptr<const vm::Program> program,
                                   std::shared_ptr<std::vector<TableBinding>>
                                       tables) {
        runtime::Variant variant;
        variant.label = std::move(label);
        variant.aggressiveness = aggressiveness;
        variant.run = [program, tables, context](std::uint64_t seed) {
            return run_one(*program, *tables, *context, seed,
                           vm::ExecMode::Instrumented);
        };
        variant.run_fast = [program, tables, context](std::uint64_t seed) {
            return run_one(*program, *tables, *context, seed,
                           vm::ExecMode::Fast);
        };
        variant.run_batch =
            [program, tables, context](
                const std::vector<std::uint64_t>& seeds) {
                return run_many(*program, *tables, *context, seeds);
            };
        return variant;
    };

    auto& cache = vm::ProgramCache::global();
    std::vector<runtime::Variant> variants;
    variants.push_back(
        make_variant("exact", 0, cache.get_or_compile(module, kernel),
                     std::make_shared<std::vector<TableBinding>>()));

    for (const auto& kernel_variant : generated) {
        variants.push_back(make_variant(
            kernel_variant.label, kernel_variant.aggressiveness,
            cache.get_or_compile(kernel_variant.module,
                                 kernel_variant.kernel_name),
            std::make_shared<std::vector<TableBinding>>(
                kernel_variant.tables)));
    }
    return variants;
}

std::vector<runtime::Variant>
make_variants(const ir::Module& module, const std::string& kernel,
              const CompileOptions& options, const LaunchPlan& plan)
{
    auto compiled = compile_kernel(module, kernel, options);
    return make_variants(module, kernel, compiled.generated, plan,
                         options.device);
}

}  // namespace paraprox::core
