#include "core/variants.h"

#include "device/memory_model.h"
#include "runtime/variant_run.h"
#include "support/error.h"
#include "vm/program_cache.h"

namespace paraprox::core {

void
bind_tables(const std::vector<TableBinding>& tables, exec::ArgPack& args,
            std::vector<std::unique_ptr<exec::Buffer>>& storage)
{
    for (const auto& binding : tables) {
        storage.push_back(std::make_unique<exec::Buffer>(
            exec::Buffer::from_floats(binding.table.values)));
        args.buffer(binding.buffer_param, *storage.back());
        if (!binding.shared_param.empty()) {
            args.shared(binding.shared_param,
                        static_cast<std::int64_t>(
                            binding.table.values.size()));
        }
    }
}

namespace {

/// Shared immutable state captured by every variant closure.
struct VariantContext {
    device::DeviceModel device;
    LaunchPlan plan;
};

runtime::VariantRun
run_one(const vm::Program& program,
        const std::vector<TableBinding>& tables,
        const VariantContext& context, std::uint64_t seed)
{
    exec::ArgPack args;
    std::vector<std::unique_ptr<exec::Buffer>> storage;
    context.plan.bind_inputs(seed, args, storage);
    bind_tables(tables, args, storage);

    runtime::VariantRun run = runtime::run_priced(
        program, args, context.plan.config, context.device);
    const exec::Buffer* output =
        args.find_buffer(context.plan.output_buffer);
    PARAPROX_CHECK(output, "LaunchPlan output buffer `" +
                               context.plan.output_buffer +
                               "` was not bound");
    runtime::attach_output(run, *output);
    return run;
}

}  // namespace

std::vector<runtime::Variant>
make_variants(const ir::Module& module, const std::string& kernel,
              const std::vector<GeneratedKernel>& generated,
              const LaunchPlan& plan, const device::DeviceModel& device)
{
    PARAPROX_CHECK(plan.bind_inputs != nullptr,
                   "LaunchPlan needs a bind_inputs callback");
    auto context = std::make_shared<VariantContext>();
    context->device = device;
    context->plan = plan;

    // All programs come from the process-wide cache, so rebuilding the
    // variant list (or a KernelSession over the same module) compiles
    // nothing twice.
    auto& cache = vm::ProgramCache::global();
    std::vector<runtime::Variant> variants;
    auto exact_program = cache.get_or_compile(module, kernel);
    variants.push_back({"exact", 0,
                        [exact_program, context](std::uint64_t seed) {
                            return run_one(*exact_program, {}, *context,
                                           seed);
                        }});

    for (const auto& kernel_variant : generated) {
        auto program = cache.get_or_compile(kernel_variant.module,
                                            kernel_variant.kernel_name);
        auto tables = std::make_shared<std::vector<TableBinding>>(
            kernel_variant.tables);
        variants.push_back(
            {kernel_variant.label, kernel_variant.aggressiveness,
             [program, tables, context](std::uint64_t seed) {
                 return run_one(*program, *tables, *context, seed);
             }});
    }
    return variants;
}

std::vector<runtime::Variant>
make_variants(const ir::Module& module, const std::string& kernel,
              const CompileOptions& options, const LaunchPlan& plan)
{
    auto compiled = compile_kernel(module, kernel, options);
    return make_variants(module, kernel, compiled.generated, plan,
                         options.device);
}

}  // namespace paraprox::core
