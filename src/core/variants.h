/// @file
/// Bridge from generated approximate kernels to runtime tuner variants:
/// the caller describes how inputs are bound and launched (once), and
/// every GeneratedKernel becomes a runtime::Variant with its lookup
/// tables bound and its cost priced by the device model.  Together with
/// core::compile_kernel this is the complete adoption path:
///
///     parse -> compile_kernel -> make_variants -> Tuner.

#pragma once

#include <functional>
#include <memory>

#include "core/paraprox.h"
#include "exec/launch.h"
#include "runtime/tuner.h"

namespace paraprox::core {

/// How the application launches the kernel.
struct LaunchPlan {
    exec::LaunchConfig config;

    /// Create and bind every application argument (inputs, outputs,
    /// scalars) for the input identified by @p seed.  Buffers must be
    /// appended to @p storage, which outlives the launch.
    std::function<void(std::uint64_t seed, exec::ArgPack& args,
                       std::vector<std::unique_ptr<exec::Buffer>>& storage)>
        bind_inputs;

    /// Name of the output buffer scored by the quality metric.
    std::string output_buffer;
};

/// Bind each table's buffer (and, for shared placement, its size) into
/// @p args; backing Buffers are appended to @p storage, which must
/// outlive the launch.
void bind_tables(const std::vector<TableBinding>& tables,
                 exec::ArgPack& args,
                 std::vector<std::unique_ptr<exec::Buffer>>& storage);

/// Build the tuner-ready variant list: variants[0] is the exact kernel,
/// followed by one variant per generated kernel (tables bound
/// automatically).  All programs are compiled eagerly so launch-time work
/// is only binding + execution.
std::vector<runtime::Variant> make_variants(
    const ir::Module& module, const std::string& kernel,
    const std::vector<GeneratedKernel>& generated, const LaunchPlan& plan,
    const device::DeviceModel& device);

/// One-call convenience: compile_kernel + make_variants.
std::vector<runtime::Variant> make_variants(
    const ir::Module& module, const std::string& kernel,
    const CompileOptions& options, const LaunchPlan& plan);

}  // namespace paraprox::core
