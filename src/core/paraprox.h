/// @file
/// The Paraprox compiler driver — the paper's primary artifact (Fig. 2 /
/// Fig. 10).  Given a ParaCL module, a target device, and a TOQ, it runs
/// pattern detection over every kernel and generates the full family of
/// parameterized approximate kernels:
///
///   - Map / Scatter-Gather  -> memoized variants (table-size search, bit
///     tuning, nearest/linear, global/constant/shared placement);
///   - Stencil / Partition   -> center/row/column schemes over a reaching-
///     distance sweep;
///   - Reduction             -> sampling + adjustment over a skip-rate
///     sweep;
///   - Scan                  -> flagged for pipeline-level approximation
///     (transforms::scan_approx needs the host's launch geometry).
///
/// Generated kernels can be compiled with vm::compile_kernel and handed to
/// runtime::Tuner, or pretty-printed back to ParaCL source — the original
/// system's source-to-source behaviour (see tools/paraproxc).

#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "analysis/patterns.h"
#include "device/device_model.h"
#include "ir/function.h"
#include "memo/table.h"
#include "transforms/memoize.h"
#include "transforms/reduction_tx.h"
#include "transforms/stencil_tx.h"

namespace paraprox::core {

/// Supplies training input tuples for a memoization candidate, keyed by
/// function name (the paper's offline profiling data).  Return nullopt to
/// skip memoizing that function.
using TrainingProvider =
    std::function<std::optional<std::vector<std::vector<float>>>(
        const std::string& function)>;

/// A TrainingProvider drawing each argument uniformly from [lo, hi) —
/// convenient when representative inputs share a domain.
TrainingProvider uniform_training(float lo, float hi, int samples = 256,
                                  std::uint64_t seed = 0x7a1ull);

/// Knobs of the generation process.
struct CompileOptions {
    double toq = 90.0;
    device::DeviceModel device = device::DeviceModel::gtx560();
    TrainingProvider training = uniform_training(0.0f, 1.0f);

    std::vector<int> skip_rates = {2, 4, 8};
    std::vector<int> reaching_distances = {1, 2};
    /// Rescale sampled reductions by iterations/sampled (§3.3).  Turn off
    /// for self-normalizing reductions (e.g. weighted averages that divide
    /// an accumulator by an equally-sampled weight sum).
    bool reduction_adjust = true;
    bool table_placements = true;   ///< Emit constant/shared variants too.
    bool linear_mode = true;        ///< Emit linear-interpolation variants.
    bool guard_divisions = true;    ///< §5 safety guards on approx kernels.
    int max_table_bits = 18;

    /// Optional memo-table cache (runtime::KernelSession wires these to
    /// the global store::ArtifactStore).  `table_lookup(callee, shrink)`
    /// is consulted before the table-size search (shrink 0) and before
    /// each re-bit-tuned smaller size (shrink 1, 2); a hit skips the
    /// search / tuning entirely.  When a table is computed fresh it is
    /// offered to `table_publish` under the same key.  Both hooks must be
    /// deterministic for a fixed key: the cache assumes the training
    /// provider is too (see docs/store.md's invalidation rules).
    std::function<std::optional<memo::LookupTable>(
        const std::string& callee, int shrink)>
        table_lookup;
    std::function<void(const std::string& callee, int shrink,
                       const memo::LookupTable& table)>
        table_publish;
};

/// How one generated kernel's lookup tables must be bound at launch.
struct TableBinding {
    std::string buffer_param;   ///< Bind the table Buffer here.
    std::string shared_param;   ///< Non-empty: bind its size (= entries).
    memo::LookupTable table;
};

/// One generated approximate kernel.
struct GeneratedKernel {
    std::string label;           ///< e.g. "memo global/nearest 2^11".
    analysis::PatternKind pattern;
    int aggressiveness = 1;      ///< Backoff ordering hint.
    ir::Module module;           ///< Holds the rewritten kernel.
    std::string kernel_name;
    std::vector<TableBinding> tables;  ///< Empty unless memoized.
};

/// Everything Paraprox produced for one kernel.
struct KernelCompileResult {
    std::string kernel;
    analysis::KernelPatterns detection;
    std::vector<GeneratedKernel> generated;
    /// Human-readable log of what was generated or skipped and why.
    std::vector<std::string> notes;
};

/// Run the full Paraprox flow on one kernel.
KernelCompileResult compile_kernel(const ir::Module& module,
                                   const std::string& kernel,
                                   const CompileOptions& options);

/// Run the full Paraprox flow on every kernel of a module.
std::vector<KernelCompileResult> compile_module(
    const ir::Module& module, const CompileOptions& options);

}  // namespace paraprox::core
