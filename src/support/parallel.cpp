#include "support/parallel.h"

#include <atomic>
#include <cstdlib>
#include <exception>

#include "support/error.h"

namespace paraprox {

ThreadPool::ThreadPool(std::size_t num_threads)
{
    if (num_threads == 0) {
        num_threads = std::thread::hardware_concurrency();
        if (num_threads == 0)
            num_threads = 4;
    }
    workers_.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i)
        workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    for (auto& worker : workers_)
        worker.join();
}

void
ThreadPool::worker_loop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
            if (stopping_ && tasks_.empty())
                return;
            task = std::move(tasks_.front());
            tasks_.pop();
        }
        task();
    }
}

void
ThreadPool::parallel_for(std::size_t count,
                         const std::function<void(std::size_t)>& body)
{
    if (count == 0)
        return;
    if (count == 1) {
        body(0);
        return;
    }

    struct Shared {
        std::atomic<std::size_t> next{0};
        std::atomic<std::size_t> done{0};
        std::atomic<bool> failed{false};
        std::exception_ptr error;
        std::mutex error_mutex;
        std::mutex done_mutex;
        std::condition_variable done_cv;
    };
    auto shared = std::make_shared<Shared>();

    // Block-chunked dynamic scheduling: each claim grabs a block of
    // indices, not one, so group-per-task launches over large NDRanges do
    // not pay one atomic round-trip per index.  Blocks are sized to give
    // every participant several claims, keeping dynamic load balance.
    const std::size_t num_tasks = std::min(count, workers_.size());
    const std::size_t participants = workers_.size() + 1;
    const std::size_t block =
        std::max<std::size_t>(1, count / (participants * 8));
    auto run_chunk = [shared, count, block, &body] {
        std::size_t completed = 0;
        for (;;) {
            const std::size_t begin =
                shared->next.fetch_add(block, std::memory_order_relaxed);
            if (begin >= count)
                break;
            const std::size_t end = std::min(count, begin + block);
            for (std::size_t i = begin; i < end; ++i) {
                if (!shared->failed.load(std::memory_order_relaxed)) {
                    try {
                        body(i);
                    } catch (...) {
                        std::lock_guard<std::mutex> lock(
                            shared->error_mutex);
                        if (!shared->failed.exchange(true))
                            shared->error = std::current_exception();
                    }
                }
                ++completed;
            }
        }
        return completed;
    };

    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (std::size_t t = 0; t + 1 < num_tasks; ++t) {
            tasks_.push([shared, run_chunk, count] {
                const std::size_t completed = run_chunk();
                const std::size_t done = shared->done.fetch_add(
                                             completed,
                                             std::memory_order_acq_rel) +
                                         completed;
                if (done >= count) {
                    std::lock_guard<std::mutex> done_lock(shared->done_mutex);
                    shared->done_cv.notify_all();
                }
            });
        }
    }
    wake_.notify_all();

    // The calling thread participates instead of idling.
    const std::size_t completed = run_chunk();
    shared->done.fetch_add(completed, std::memory_order_acq_rel);

    std::unique_lock<std::mutex> lock(shared->done_mutex);
    shared->done_cv.wait(lock, [&] {
        return shared->done.load(std::memory_order_acquire) >= count;
    });

    if (shared->failed.load())
        std::rethrow_exception(shared->error);
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        tasks_.push(std::move(task));
    }
    wake_.notify_one();
}

ThreadPool&
ThreadPool::global()
{
    static ThreadPool pool(thread_override_from_env());
    return pool;
}

void
parallel_for(std::size_t count, const std::function<void(std::size_t)>& body)
{
    ThreadPool::global().parallel_for(count, body);
}

std::size_t
thread_override_from_env()
{
    const char* text = std::getenv("PARAPROX_THREADS");
    if (text == nullptr || *text == '\0')
        return 0;
    char* end = nullptr;
    const long value = std::strtol(text, &end, 10);
    if (end == nullptr || *end != '\0' || value <= 0)
        return 0;
    return static_cast<std::size_t>(value);
}

}  // namespace paraprox
