#include "support/faultinject.h"

#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "support/error.h"
#include "support/rng.h"

namespace paraprox::fault {

namespace {

std::uint64_t
fnv1a(std::string_view text)
{
    std::uint64_t hash = 0xcbf29ce484222325ull;
    for (const char c : text) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 0x100000001b3ull;
    }
    return hash;
}

double
parse_number(const std::string& value, const std::string& spec)
{
    char* end = nullptr;
    const double parsed = std::strtod(value.c_str(), &end);
    PARAPROX_CHECK(end != value.c_str() && *end == '\0' && parsed >= 0.0,
                   "bad numeric value `" + value + "` in fault spec `" +
                       spec + "`");
    return parsed;
}

}  // namespace

/// A FaultSpec plus its runtime counters and its own deterministic
/// random stream (seeded from the global seed and the spec identity, so
/// adding a spec never perturbs another spec's decisions).
struct FaultInjector::ArmedSpec {
    FaultSpec spec;
    std::uint64_t occurrences = 0;
    std::uint64_t fired = 0;
    Rng rng{0};
};

struct FaultInjector::State {
    mutable std::mutex mutex;
    std::vector<ArmedSpec> specs;
};

FaultInjector::FaultInjector() : state_(new State)
{
    arm_from_env();
}

FaultInjector&
FaultInjector::instance()
{
    static FaultInjector* injector = new FaultInjector;
    return *injector;
}

void
FaultInjector::arm(std::vector<FaultSpec> specs, std::uint64_t seed)
{
    std::vector<ArmedSpec> armed;
    armed.reserve(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        PARAPROX_CHECK(!specs[i].site.empty(),
                       "fault spec needs a site name");
        PARAPROX_CHECK(specs[i].probability >= 0.0 &&
                           specs[i].probability <= 1.0,
                       "fault probability must be within [0, 1]");
        ArmedSpec entry;
        entry.spec = std::move(specs[i]);
        entry.rng = Rng(seed ^ fnv1a(entry.spec.site) ^
                        (fnv1a(entry.spec.match) + i));
        armed.push_back(std::move(entry));
    }
    const bool any = !armed.empty();
    {
        std::lock_guard<std::mutex> lock(state_->mutex);
        state_->specs = std::move(armed);
    }
    armed_.store(any, std::memory_order_release);
}

void
FaultInjector::disarm()
{
    armed_.store(false, std::memory_order_release);
    std::lock_guard<std::mutex> lock(state_->mutex);
    state_->specs.clear();
}

void
FaultInjector::arm_from_env()
{
    const char* text = std::getenv("PARAPROX_FAULTS");
    if (text == nullptr || *text == '\0') {
        disarm();
        return;
    }
    std::uint64_t seed = 0;
    if (const char* seed_text = std::getenv("PARAPROX_FAULT_SEED"))
        seed = std::strtoull(seed_text, nullptr, 10);
    try {
        arm(parse(text), seed);
    } catch (const Error& error) {
        std::fprintf(stderr,
                     "paraprox: ignoring PARAPROX_FAULTS: %s\n",
                     error.what());
        disarm();
    }
}

std::vector<FaultSpec>
FaultInjector::parse(const std::string& text)
{
    std::vector<FaultSpec> specs;
    std::size_t begin = 0;
    while (begin <= text.size()) {
        std::size_t end = text.find(';', begin);
        if (end == std::string::npos)
            end = text.size();
        const std::string entry = text.substr(begin, end - begin);
        begin = end + 1;
        if (entry.empty())
            continue;

        FaultSpec spec;
        const std::size_t colon = entry.find(':');
        spec.site = entry.substr(0, colon);
        PARAPROX_CHECK(!spec.site.empty(),
                       "fault spec `" + entry + "` is missing a site");
        if (colon == std::string::npos) {
            // Bare site: fire on every occurrence.
            spec.every = 1;
            specs.push_back(std::move(spec));
            continue;
        }

        std::size_t key_begin = colon + 1;
        bool any_mode = false;
        while (key_begin <= entry.size()) {
            std::size_t key_end = entry.find(',', key_begin);
            if (key_end == std::string::npos)
                key_end = entry.size();
            const std::string pair =
                entry.substr(key_begin, key_end - key_begin);
            key_begin = key_end + 1;
            if (pair.empty())
                continue;
            const std::size_t eq = pair.find('=');
            PARAPROX_CHECK(eq != std::string::npos && eq > 0,
                           "fault control `" + pair + "` in `" + entry +
                               "` is not key=value");
            const std::string key = pair.substr(0, eq);
            const std::string value = pair.substr(eq + 1);
            if (key == "match") {
                spec.match = value;
            } else if (key == "prob") {
                spec.probability = parse_number(value, entry);
                PARAPROX_CHECK(spec.probability <= 1.0,
                               "fault prob must be within [0, 1] in `" +
                                   entry + "`");
                any_mode = true;
            } else if (key == "every") {
                spec.every = static_cast<std::uint64_t>(
                    parse_number(value, entry));
                PARAPROX_CHECK(spec.every > 0,
                               "fault every=N needs N >= 1 in `" + entry +
                                   "`");
                any_mode = true;
            } else if (key == "after") {
                spec.after = static_cast<std::uint64_t>(
                    parse_number(value, entry));
            } else if (key == "limit") {
                spec.limit = static_cast<std::uint64_t>(
                    parse_number(value, entry));
            } else if (key == "ms") {
                spec.latency_ms = parse_number(value, entry);
            } else {
                PARAPROX_CHECK(false, "unknown fault control `" + key +
                                          "` in `" + entry + "`");
            }
        }
        if (!any_mode)
            spec.every = 1;  // Controls but no mode: every occurrence.
        specs.push_back(std::move(spec));
    }
    return specs;
}

Outcome
FaultInjector::decide(std::string_view site, std::string_view context)
{
    Outcome outcome;
    if (!armed())
        return outcome;
    std::lock_guard<std::mutex> lock(state_->mutex);
    for (ArmedSpec& armed_spec : state_->specs) {
        FaultSpec& spec = armed_spec.spec;
        if (spec.site != site)
            continue;
        if (!spec.match.empty() &&
            context.find(spec.match) == std::string_view::npos)
            continue;
        const std::uint64_t ordinal = ++armed_spec.occurrences;
        if (ordinal <= spec.after)
            continue;
        if (spec.limit != 0 && armed_spec.fired >= spec.limit)
            continue;
        bool fire_now = false;
        if (spec.every != 0)
            fire_now = (ordinal - spec.after) % spec.every == 0;
        if (!fire_now && spec.probability > 0.0)
            fire_now = armed_spec.rng.next_double() < spec.probability;
        if (!fire_now)
            continue;
        ++armed_spec.fired;
        outcome.fire = true;
        if (spec.latency_ms > outcome.latency_ms)
            outcome.latency_ms = spec.latency_ms;
    }
    return outcome;
}

std::vector<FaultStats>
FaultInjector::stats() const
{
    std::lock_guard<std::mutex> lock(state_->mutex);
    std::vector<FaultStats> out;
    out.reserve(state_->specs.size());
    for (const ArmedSpec& armed_spec : state_->specs) {
        FaultStats stats;
        stats.site = armed_spec.spec.site;
        stats.match = armed_spec.spec.match;
        stats.occurrences = armed_spec.occurrences;
        stats.fires = armed_spec.fired;
        out.push_back(std::move(stats));
    }
    return out;
}

std::uint64_t
FaultInjector::fires(std::string_view site) const
{
    std::lock_guard<std::mutex> lock(state_->mutex);
    std::uint64_t total = 0;
    for (const ArmedSpec& armed_spec : state_->specs) {
        if (armed_spec.spec.site == site)
            total += armed_spec.fired;
    }
    return total;
}

}  // namespace paraprox::fault
