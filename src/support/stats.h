/// @file
/// Small statistics helpers used by quality metrics and the benchmark
/// harnesses (means, percentiles, CDFs, geometric means).

#pragma once

#include <cstddef>
#include <vector>

namespace paraprox::stats {

/// Arithmetic mean; returns 0 for an empty input.
double mean(const std::vector<double>& xs);

/// Population standard deviation; returns 0 for fewer than two samples.
double stddev(const std::vector<double>& xs);

/// Geometric mean; all inputs must be positive.  Returns 0 for empty input.
double geomean(const std::vector<double>& xs);

/// The @p q quantile (0 <= q <= 1) using linear interpolation between order
/// statistics.  The input need not be sorted.
double percentile(std::vector<double> xs, double q);

/// One bucket of an empirical CDF.
struct CdfPoint {
    double upper_bound;  ///< Inclusive upper edge of the bucket.
    double fraction;     ///< Fraction of samples <= upper_bound.
};

/// Empirical CDF of @p xs evaluated at @p num_buckets evenly spaced points
/// spanning [lo, hi].
std::vector<CdfPoint> cdf(const std::vector<double>& xs, double lo, double hi,
                          std::size_t num_buckets);

/// Fraction of samples strictly below @p threshold.
double fraction_below(const std::vector<double>& xs, double threshold);

}  // namespace paraprox::stats
