/// @file
/// Deterministic, seeded fault injection for chaos testing.
///
/// Production code marks *fault sites* — named points where a failure can
/// be manufactured: `vm.trap` (GroupRunner raises a TrapError before
/// executing a group), `vm.nan` (a kernel's global output is poisoned
/// with NaN), `serve.latency` (a worker stalls before serving),
/// `store.corrupt` (an artifact record's bytes are flipped before
/// decoding, driving the real corruption-rejection path), `data.bitflip`
/// (bits are flipped in a packed approximate buffer after encoding —
/// degrades quality, never traps), `vm.hang` (a work-group spins at a
/// control transfer until a cancel token fires, driving the hung-launch
/// watchdog), and `replica.crash` (a replica process _Exits mid-request
/// — arm only in forked children; it drives the supervisor's restart
/// path).  Sites cost one
/// relaxed atomic load when nothing is armed, so they stay compiled into
/// release builds.
///
/// Faults are armed with FaultSpecs, either programmatically (tests) or
/// from the PARAPROX_FAULTS environment variable (tools, benches, CI):
///
///     PARAPROX_FAULTS="vm.trap:match=__,every=5,limit=4;serve.latency:prob=0.1,ms=2"
///     PARAPROX_FAULT_SEED=42
///
/// Each spec names a site plus optional key=value controls:
///   match=S   fire only when the context string contains S
///             (kernel names of generated variants contain "__", so
///             match=__ spares the exact kernels)
///   every=N   fire on every Nth matching occurrence (1-based)
///   after=N   skip the first N matching occurrences
///   prob=P    fire with probability P per occurrence (seeded; a fixed
///             seed and occurrence order reproduce the same decisions)
///   limit=N   stop after N fires
///   ms=X      payload for latency sites: how long to stall
///
/// `every`/`after` decisions depend only on the occurrence ordinal, so a
/// single-threaded driver replays a fault schedule exactly;
/// tests/chaos_test.cpp builds on that determinism.

#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace paraprox::fault {

/// One armed fault rule.  `probability` and `every` are alternative
/// firing modes; when both are set, either firing condition suffices.
struct FaultSpec {
    std::string site;           ///< e.g. "vm.trap"; required.
    std::string match;          ///< Context substring filter; "" = any.
    double probability = 0.0;   ///< Per-occurrence chance in [0, 1].
    std::uint64_t every = 0;    ///< Fire on every Nth occurrence; 0 = off.
    std::uint64_t after = 0;    ///< Skip the first N matching occurrences.
    std::uint64_t limit = 0;    ///< Max fires; 0 = unlimited.
    double latency_ms = 0.0;    ///< Stall payload for latency sites.
};

/// Per-spec accounting, for assertions and reports.
struct FaultStats {
    std::string site;
    std::string match;
    std::uint64_t occurrences = 0;  ///< Matching visits to the site.
    std::uint64_t fires = 0;        ///< Times the fault was injected.
};

/// What a site visit decided.
struct Outcome {
    bool fire = false;
    double latency_ms = 0.0;  ///< From the spec that fired (else 0).
};

/// Process-wide injector.  Disarmed by default; PARAPROX_FAULTS arms it
/// on first use.  All state transitions are mutex-guarded — sites are on
/// failure-testing paths, never on a measured hot loop.
class FaultInjector {
  public:
    static FaultInjector& instance();

    /// Arm @p specs, replacing any previous set and resetting counters.
    /// @p seed drives the probability mode reproducibly.
    void arm(std::vector<FaultSpec> specs, std::uint64_t seed = 0);

    /// Arm from PARAPROX_FAULTS / PARAPROX_FAULT_SEED, resetting all
    /// counters (no-op disarm when the variable is unset).  A malformed
    /// spec disarms and warns on stderr rather than poisoning the host
    /// process: chaos config must never be able to take the service down
    /// by itself.
    void arm_from_env();

    void disarm();
    bool armed() const { return armed_.load(std::memory_order_relaxed); }

    /// Count one visit to @p site and decide whether an armed spec fires.
    Outcome decide(std::string_view site, std::string_view context = {});

    std::vector<FaultStats> stats() const;

    /// Total fires across specs for @p site (all matches).
    std::uint64_t fires(std::string_view site) const;

    /// Parse the PARAPROX_FAULTS grammar.  Throws UserError on a
    /// malformed spec (arm_from_env catches and warns instead).
    static std::vector<FaultSpec> parse(const std::string& text);

  private:
    FaultInjector();

    struct ArmedSpec;
    struct State;
    State* state_;  ///< Leaked intentionally: sites may fire at exit.
    std::atomic<bool> armed_{false};
};

/// Visit @p site: true when an armed fault fires.  Free when disarmed.
inline bool
fire(std::string_view site, std::string_view context = {})
{
    FaultInjector& injector = FaultInjector::instance();
    if (!injector.armed())
        return false;
    return injector.decide(site, context).fire;
}

/// Visit a latency site: milliseconds to stall (0 when nothing fired).
inline double
latency_ms(std::string_view site, std::string_view context = {})
{
    FaultInjector& injector = FaultInjector::instance();
    if (!injector.armed())
        return 0.0;
    return injector.decide(site, context).latency_ms;
}

}  // namespace paraprox::fault
