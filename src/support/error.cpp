#include "support/error.h"

#include <cstring>
#include <sstream>

namespace paraprox::detail {

void
throw_check_failure(const char* kind, const char* cond, const char* file,
                    int line, const std::string& message)
{
    // Strip the build-tree prefix so messages stay readable.
    const char* basename = std::strrchr(file, '/');
    basename = basename ? basename + 1 : file;

    std::ostringstream os;
    os << message << " [" << kind << " `" << cond << "` failed at "
       << basename << ":" << line << "]";
    if (std::strcmp(kind, "assert") == 0) {
        throw InternalError(os.str());
    }
    throw UserError(os.str());
}

}  // namespace paraprox::detail
