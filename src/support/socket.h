/// @file
/// Minimal AF_UNIX stream-socket primitives for the scale-out plane.
///
/// Unix-domain sockets keep the front door / replica protocol inside the
/// filesystem namespace: no port allocation, no loopback configuration,
/// and tests can place endpoints in a per-test temp directory that is
/// torn down wholesale.  The wrappers are deliberately tiny — RAII over
/// a file descriptor plus whole-buffer send/recv loops — because the
/// wire layer above (`net::send_frame`/`net::recv_frame`) owns framing,
/// validation, and fault injection.
///
/// All operations report failure by return value; a peer disappearing
/// mid-conversation (the chaos "killed replica" case) surfaces as a
/// short read or a failed send, never a signal (sends use MSG_NOSIGNAL).

#pragma once

#include <atomic>
#include <cstddef>
#include <string>

namespace paraprox {

/// RAII wrapper over a connected stream-socket file descriptor.
/// Move-only; the destructor closes the descriptor.
class Socket {
  public:
    Socket() = default;
    explicit Socket(int fd) : fd_(fd) {}
    Socket(Socket&& other) noexcept;
    Socket& operator=(Socket&& other) noexcept;
    Socket(const Socket&) = delete;
    Socket& operator=(const Socket&) = delete;
    ~Socket();

    bool valid() const { return fd_ >= 0; }
    int fd() const { return fd_; }

    /// Write exactly @p size bytes; false on any error (including a
    /// closed peer — EPIPE is suppressed via MSG_NOSIGNAL).
    bool send_all(const void* data, std::size_t size);

    /// Read exactly @p size bytes; false on EOF or error.
    bool recv_all(void* data, std::size_t size);

    /// Half-close both directions, unblocking any thread inside
    /// send/recv on this descriptor.  The fd stays owned (and is still
    /// closed by the destructor) so a concurrent reader never touches a
    /// recycled descriptor.
    void shutdown_both();

    void close();

  private:
    int fd_ = -1;
};

/// Connect to the AF_UNIX endpoint at @p path.  Invalid Socket on
/// failure.
Socket connect_unix(const std::string& path);

/// Listening AF_UNIX endpoint bound to a filesystem path.  `close()`
/// (or destruction) unlinks the path and unblocks a concurrent
/// `accept()`.
class Listener {
  public:
    Listener() = default;
    Listener(Listener&&) = delete;
    Listener& operator=(Listener&&) = delete;
    ~Listener();

    /// Bind + listen on @p path, replacing any stale socket file from a
    /// crashed predecessor.  False on failure (path too long for
    /// sockaddr_un, permissions, ...).
    bool listen_unix(const std::string& path, int backlog = 64);

    /// Block for the next connection.  Invalid Socket once the listener
    /// is closed (the shutdown path) or on a persistent error.
    Socket accept();

    void close();

    bool listening() const
    {
        return fd_ >= 0 && !closed_.load(std::memory_order_acquire);
    }
    const std::string& path() const { return path_; }

  private:
    int fd_ = -1;
    int wake_pipe_[2] = {-1, -1};
    std::atomic<bool> closed_{false};
    std::string path_;
};

}  // namespace paraprox
