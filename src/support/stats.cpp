#include "support/stats.h"

#include <algorithm>
#include <cmath>

#include "support/error.h"

namespace paraprox::stats {

double
mean(const std::vector<double>& xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

double
stddev(const std::vector<double>& xs)
{
    if (xs.size() < 2)
        return 0.0;
    const double m = mean(xs);
    double acc = 0.0;
    for (double x : xs)
        acc += (x - m) * (x - m);
    return std::sqrt(acc / static_cast<double>(xs.size()));
}

double
geomean(const std::vector<double>& xs)
{
    if (xs.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double x : xs) {
        PARAPROX_CHECK(x > 0.0, "geomean requires positive samples");
        log_sum += std::log(x);
    }
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

double
percentile(std::vector<double> xs, double q)
{
    PARAPROX_CHECK(!xs.empty(), "percentile of empty sample");
    PARAPROX_CHECK(q >= 0.0 && q <= 1.0, "percentile q must be in [0, 1]");
    std::sort(xs.begin(), xs.end());
    if (xs.size() == 1)
        return xs.front();
    const double pos = q * static_cast<double>(xs.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, xs.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

std::vector<CdfPoint>
cdf(const std::vector<double>& xs, double lo, double hi,
    std::size_t num_buckets)
{
    PARAPROX_CHECK(num_buckets > 0, "cdf needs at least one bucket");
    PARAPROX_CHECK(hi > lo, "cdf range must be nonempty");
    std::vector<CdfPoint> points(num_buckets);
    const double step = (hi - lo) / static_cast<double>(num_buckets);
    for (std::size_t b = 0; b < num_buckets; ++b) {
        const double edge = lo + step * static_cast<double>(b + 1);
        std::size_t count = 0;
        for (double x : xs) {
            if (x <= edge)
                ++count;
        }
        const double denom = xs.empty() ? 1.0
                                        : static_cast<double>(xs.size());
        points[b] = {edge, static_cast<double>(count) / denom};
    }
    return points;
}

double
fraction_below(const std::vector<double>& xs, double threshold)
{
    if (xs.empty())
        return 0.0;
    std::size_t count = 0;
    for (double x : xs) {
        if (x < threshold)
            ++count;
    }
    return static_cast<double>(count) / static_cast<double>(xs.size());
}

}  // namespace paraprox::stats
