#include "support/rng.h"

#include <cmath>

#include "support/error.h"

namespace paraprox {

namespace {

std::uint64_t
splitmix64(std::uint64_t& x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed)
{
    // Expand the seed through splitmix64 as the xoshiro authors recommend;
    // this also guards against the all-zero state.
    std::uint64_t s = seed;
    for (auto& word : state_)
        word = splitmix64(s);
}

std::uint64_t
Rng::next_u64()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

std::uint64_t
Rng::next_below(std::uint64_t bound)
{
    PARAPROX_CHECK(bound != 0, "Rng::next_below bound must be nonzero");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        const std::uint64_t r = next_u64();
        if (r >= threshold)
            return r % bound;
    }
}

float
Rng::next_float()
{
    return static_cast<float>(next_u64() >> 40) * 0x1.0p-24f;
}

double
Rng::next_double()
{
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

float
Rng::uniform(float lo, float hi)
{
    return lo + (hi - lo) * next_float();
}

int
Rng::uniform_int(int lo, int hi)
{
    PARAPROX_CHECK(lo <= hi, "Rng::uniform_int requires lo <= hi");
    const std::uint64_t span =
        static_cast<std::uint64_t>(static_cast<std::int64_t>(hi) - lo) + 1;
    return lo + static_cast<int>(next_below(span));
}

float
Rng::normal()
{
    if (has_cached_normal_) {
        has_cached_normal_ = false;
        return cached_normal_;
    }
    // Box-Muller: two uniforms to two independent normals.
    float u1 = next_float();
    while (u1 <= 1e-12f)
        u1 = next_float();
    const float u2 = next_float();
    const float radius = std::sqrt(-2.0f * std::log(u1));
    const float angle = 2.0f * 3.14159265358979323846f * u2;
    cached_normal_ = radius * std::sin(angle);
    has_cached_normal_ = true;
    return radius * std::cos(angle);
}

float
Rng::normal(float mean, float stddev)
{
    return mean + stddev * normal();
}

std::vector<float>
Rng::uniform_vector(std::size_t n, float lo, float hi)
{
    std::vector<float> out(n);
    for (auto& v : out)
        v = uniform(lo, hi);
    return out;
}

std::vector<float>
Rng::normal_vector(std::size_t n)
{
    std::vector<float> out(n);
    for (auto& v : out)
        v = normal();
    return out;
}

}  // namespace paraprox
