/// @file
/// Deterministic pseudo-random number generation.
///
/// All workload generators in the benchmark suite draw from this generator so
/// that experiments are reproducible run-to-run: the paper's evaluation
/// averages over repeated executions with different input sets, and we want
/// "different input sets" to mean "different but fixed seeds".

#pragma once

#include <cstdint>
#include <vector>

namespace paraprox {

/// A small, fast, seedable PRNG (xoshiro256** by Blackman & Vigna).
///
/// Not cryptographically secure — it only feeds synthetic workloads and
/// sampling decisions.
class Rng {
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /// Next raw 64-bit value.
    std::uint64_t next_u64();

    /// Uniform in [0, bound).  @p bound must be nonzero.
    std::uint64_t next_below(std::uint64_t bound);

    /// Uniform float in [0, 1).
    float next_float();

    /// Uniform double in [0, 1).
    double next_double();

    /// Uniform float in [lo, hi).
    float uniform(float lo, float hi);

    /// Uniform int in [lo, hi] inclusive.
    int uniform_int(int lo, int hi);

    /// Standard normal via Box-Muller (caches the second variate).
    float normal();

    /// Normal with the given mean and standard deviation.
    float normal(float mean, float stddev);

    /// A vector of @p n floats uniform in [lo, hi).
    std::vector<float> uniform_vector(std::size_t n, float lo, float hi);

    /// A vector of @p n standard-normal floats.
    std::vector<float> normal_vector(std::size_t n);

  private:
    std::uint64_t state_[4];
    bool has_cached_normal_ = false;
    float cached_normal_ = 0.0f;
};

}  // namespace paraprox
