/// @file
/// Host-side parallelism: a persistent thread pool and a blocking
/// parallel_for over index ranges.
///
/// The execution engine maps one simulated work-group to one pool task; the
/// pool is what makes "exact vs. approximate wall-clock" comparisons honest,
/// since both run on the same number of host threads.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace paraprox {

/// Fixed-size worker pool with a blocking run-to-completion helper.
class ThreadPool {
  public:
    /// @param num_threads worker count; 0 means hardware_concurrency().
    explicit ThreadPool(std::size_t num_threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    std::size_t size() const { return workers_.size(); }

    /// Run @p body(i) for every i in [0, count), blocking until all
    /// iterations finish.  Exceptions thrown by @p body are rethrown on the
    /// calling thread (the first one wins).
    void parallel_for(std::size_t count,
                      const std::function<void(std::size_t)>& body);

    /// Fire-and-forget: enqueue @p task for execution on some worker and
    /// return immediately.  The task must not throw — an exception escaping
    /// it terminates the process (there is no caller to rethrow to).
    /// Completion, if the caller cares, must be signalled by the task
    /// itself (serve::ApproxService counts pending recalibrations this
    /// way).
    void submit(std::function<void()> task);

    /// The process-wide default pool.  Its worker count is resolved once,
    /// at first use: the PARAPROX_THREADS environment variable when set to
    /// a positive integer (see thread_override_from_env), otherwise
    /// hardware_concurrency().  CI and benchmark harnesses use the env
    /// override to pin worker counts.
    static ThreadPool& global();

  private:
    void worker_loop();

    std::vector<std::thread> workers_;
    std::queue<std::function<void()>> tasks_;
    std::mutex mutex_;
    std::condition_variable wake_;
    bool stopping_ = false;
};

/// Convenience wrapper over ThreadPool::global().parallel_for.
void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& body);

/// The PARAPROX_THREADS worker-count override: the parsed value when the
/// variable is set to a positive integer, otherwise 0 (meaning "use the
/// hardware default").  Read once by ThreadPool::global() at first use.
std::size_t thread_override_from_env();

}  // namespace paraprox
