#include "support/socket.h"

#include <cerrno>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace paraprox {
namespace {

/// Fill a sockaddr_un for @p path; false when the path does not fit
/// (sun_path is ~107 bytes — callers use short temp-dir paths).
bool
make_address(const std::string& path, sockaddr_un* address)
{
    if (path.empty() || path.size() >= sizeof(address->sun_path))
        return false;
    std::memset(address, 0, sizeof(*address));
    address->sun_family = AF_UNIX;
    std::memcpy(address->sun_path, path.c_str(), path.size() + 1);
    return true;
}

}  // namespace

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_)
{
    other.fd_ = -1;
}

Socket&
Socket::operator=(Socket&& other) noexcept
{
    if (this != &other) {
        close();
        fd_ = other.fd_;
        other.fd_ = -1;
    }
    return *this;
}

Socket::~Socket()
{
    close();
}

bool
Socket::send_all(const void* data, std::size_t size)
{
    const char* cursor = static_cast<const char*>(data);
    while (size > 0) {
        const ssize_t sent = ::send(fd_, cursor, size, MSG_NOSIGNAL);
        if (sent < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (sent == 0)
            return false;
        cursor += sent;
        size -= static_cast<std::size_t>(sent);
    }
    return true;
}

bool
Socket::recv_all(void* data, std::size_t size)
{
    char* cursor = static_cast<char*>(data);
    while (size > 0) {
        const ssize_t got = ::recv(fd_, cursor, size, 0);
        if (got < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (got == 0)
            return false;  // Peer closed mid-message.
        cursor += got;
        size -= static_cast<std::size_t>(got);
    }
    return true;
}

void
Socket::shutdown_both()
{
    if (fd_ >= 0)
        ::shutdown(fd_, SHUT_RDWR);
}

void
Socket::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

Socket
connect_unix(const std::string& path)
{
    sockaddr_un address;
    if (!make_address(path, &address))
        return Socket();
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0)
        return Socket();
    for (;;) {
        if (::connect(fd, reinterpret_cast<const sockaddr*>(&address),
                      sizeof(address)) == 0)
            return Socket(fd);
        if (errno != EINTR)
            break;
    }
    ::close(fd);
    return Socket();
}

Listener::~Listener()
{
    close();
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    for (int end : wake_pipe_) {
        if (end >= 0)
            ::close(end);
    }
}

bool
Listener::listen_unix(const std::string& path, int backlog)
{
    sockaddr_un address;
    if (fd_ >= 0 || !make_address(path, &address))
        return false;
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0)
        return false;
    ::unlink(path.c_str());  // Stale endpoint from a crashed predecessor.
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&address),
               sizeof(address)) != 0 ||
        ::listen(fd, backlog) != 0) {
        ::close(fd);
        return false;
    }
    if (::pipe(wake_pipe_) != 0) {
        ::close(fd);
        return false;
    }
    fd_ = fd;
    path_ = path;
    closed_.store(false, std::memory_order_release);
    return true;
}

Socket
Listener::accept()
{
    while (!closed_.load(std::memory_order_acquire)) {
        pollfd fds[2] = {{fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
        const int ready = ::poll(fds, 2, -1);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            return Socket();
        }
        if (fds[1].revents != 0)
            return Socket();  // close() signalled shutdown.
        if ((fds[0].revents & POLLIN) == 0)
            continue;
        const int fd = ::accept4(fd_, nullptr, nullptr, SOCK_CLOEXEC);
        if (fd >= 0)
            return Socket(fd);
        if (errno != EINTR && errno != ECONNABORTED)
            return Socket();
    }
    return Socket();
}

void
Listener::close()
{
    if (fd_ < 0 || closed_.exchange(true, std::memory_order_acq_rel))
        return;
    // Refuse further connects (they fail ECONNREFUSED from here on)
    // before the path is unlinked, so no client can slip into the
    // backlog after the drain below.  The fds themselves stay open
    // until the destructor so a blocked accept() never touches a
    // recycled descriptor.
    ::shutdown(fd_, SHUT_RDWR);
    // Wake the accept loop.
    if (wake_pipe_[1] >= 0) {
        const char byte = 0;
        [[maybe_unused]] const ssize_t n =
            ::write(wake_pipe_[1], &byte, 1);
    }
    if (!path_.empty())
        ::unlink(path_.c_str());
    // Release every embryonic connection still parked in the backlog.
    // Their peers already connected successfully and are blocked in
    // recv; with the listening fd held open (see above) they would
    // otherwise never observe EOF.  Closing the drained fd resets the
    // peer.  Queued embryos still come out of accept() after the
    // shutdown, and the racing acceptor thread dequeuing one first is
    // fine — it lands on the normal stopping path.
    for (;;) {
        const int fd = ::accept4(fd_, nullptr, nullptr,
                                 SOCK_CLOEXEC | SOCK_NONBLOCK);
        if (fd < 0)
            break;
        ::close(fd);
    }
}

}  // namespace paraprox
