/// @file
/// Error-handling primitives shared by every Paraprox module.
///
/// Paraprox distinguishes, in the spirit of gem5's fatal()/panic() split,
/// between errors caused by the user of the library (bad kernel source,
/// invalid tuning parameters) and internal invariant violations.  The former
/// raise UserError, the latter InternalError; both derive from Error so
/// callers can catch everything Paraprox throws with one handler.

#pragma once

#include <cstdio>
#include <stdexcept>
#include <string>

namespace paraprox {

/// Base class for every exception thrown by Paraprox.
class Error : public std::runtime_error {
  public:
    explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// The caller did something wrong: malformed ParaCL source, a kernel launch
/// with missing arguments, an out-of-range tuning knob, and so on.
class UserError : public Error {
  public:
    explicit UserError(const std::string& what) : Error(what) {}
};

/// An internal invariant was violated; this is a Paraprox bug.
class InternalError : public Error {
  public:
    explicit InternalError(const std::string& what) : Error(what) {}
};

namespace detail {

[[noreturn]] void throw_check_failure(const char* kind, const char* cond,
                                      const char* file, int line,
                                      const std::string& message);

}  // namespace detail

/// Validate a user-facing precondition; throws UserError on failure.
#define PARAPROX_CHECK(cond, message)                                        \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::paraprox::detail::throw_check_failure("check", #cond,         \
                                                    __FILE__, __LINE__,     \
                                                    (message));             \
        }                                                                    \
    } while (0)

/// Validate an internal invariant; throws InternalError on failure.
#define PARAPROX_ASSERT(cond, message)                                      \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::paraprox::detail::throw_check_failure("assert", #cond,        \
                                                    __FILE__, __LINE__,     \
                                                    (message));             \
        }                                                                    \
    } while (0)

}  // namespace paraprox
