/// @file
/// ApproxService: the concurrent approximation-serving front end.
///
/// A KernelSession (or any variant list) ends at a calibrated
/// runtime::Tuner — a single-caller object.  ApproxService is what turns
/// that into a service: requests enter through per-kernel sharded queues
/// with reject-on-full backpressure, worker threads pop whole same-kernel
/// batches (holding an undersized batch open for a deadline-bounded
/// gather window) and execute them as one concatenated launch against the
/// kernel's currently selected variant, and a per-kernel QualityMonitor
/// shadows a sample of requests with the exact kernel.  On sustained TOQ
/// violation the monitor triggers an asynchronous recalibration (on the
/// global ThreadPool) over the seeds that actually drifted; while it
/// runs, the kernel's requests are served by the always-safe exact
/// member, so nothing queued is ever dropped.
///
///     submit -> ShardedQueue[kernel] -> workers -> Tuner::serve_batch
///                                         |-> QualityMonitor (per member)
///                                                |-> recalibrate (async)

#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "runtime/data_tier.h"
#include "runtime/pipeline.h"
#include "runtime/tuner.h"
#include "serve/metrics.h"
#include "serve/monitor.h"
#include "serve/queue.h"
#include "serve/watchdog.h"
#include "store/artifact_store.h"

namespace paraprox::serve {

/// Load-shedding policy: under sustained queue pressure the service
/// steps every kernel's serving point toward cheaper calibrated variants
/// (the paper's quality/speed knob used as a degradation ladder) and
/// steps back up once pressure clears.
struct DegradationConfig {
    bool enabled = true;
    /// Queue fill fraction at/above which pressure accumulates.
    double high_watermark = 0.75;
    /// Queue fill fraction at/below which relief accumulates.
    double low_watermark = 0.25;
    /// Pressure (relief) observations required to step down (up) —
    /// one per dequeued request, so a popped batch of N counts N times.
    /// Hysteresis against bursts.
    int sustain = 32;
    /// Deepest ladder level the service will shed to.
    int max_level = 3;
    /// How often an *idle* worker contributes a relief observation.
    /// Pressure used to be evaluated only when a request was dequeued,
    /// so a service that degraded under a burst and then went quiet
    /// stayed degraded indefinitely and served its first post-idle
    /// requests at reduced quality; the idle tick lets the ladder
    /// restore while no traffic flows.
    std::chrono::steady_clock::duration idle_tick =
        std::chrono::milliseconds(10);
};

/// Same-kernel request coalescing knobs.
struct BatchConfig {
    /// Most requests one worker pop may serve as a single concatenated
    /// launch.  1 disables batching entirely.
    std::size_t max_batch = 16;
    /// How long an undersized batch holds its kernel's shard open for
    /// late same-kernel arrivals.  Zero = take what is queued and go.
    /// The window never extends past the tightest member deadline minus
    /// `deadline_headroom`.
    std::chrono::steady_clock::duration gather_window =
        std::chrono::microseconds(200);
    /// Safety margin reserved for the launch itself when member
    /// deadlines bound the gather window.
    std::chrono::steady_clock::duration deadline_headroom{};
};

struct ServiceConfig {
    /// Worker threads; 0 resolves like ThreadPool::global() (the
    /// PARAPROX_THREADS override, then hardware_concurrency).
    std::size_t num_workers = 0;
    /// Bounded queue capacity *per kernel shard*; pushes beyond it are
    /// rejected.  Each registered kernel owns a shard, so kernels no
    /// longer compete for one global admission budget.
    std::size_t queue_capacity = 256;
    /// Same-kernel coalescing (gather window, max batch).
    BatchConfig batching;
    /// Per-kernel monitoring knobs.
    QualityMonitor::Config monitor;
    /// How workers execute variants.  Serving defaults to the fast VM
    /// loop: calibration (inside register_kernel) always runs
    /// instrumented for the device cost models, but steady-state requests
    /// should not pay for profiling they never read.  Variants without a
    /// run_fast closure are unaffected.
    vm::ExecMode exec_mode = vm::ExecMode::Fast;
    /// Circuit-breaker policy installed on every kernel's tuner.  Unlike
    /// the tuner's own permanent-demotion default, a service expects
    /// transient faults: three failures inside a 64-invocation window
    /// quarantine a variant for 256 invocations (doubling per repeat
    /// offense), after which half-open probes can reinstate it.
    runtime::QuarantineConfig quarantine{
        /*failure_threshold=*/3, /*failure_window=*/64, /*cooldown=*/256,
        /*cooldown_growth=*/2.0, /*max_cooldown=*/1u << 20,
        /*probe_quota=*/1};
    /// Load-adaptive degradation ladder knobs.
    DegradationConfig degradation;
    /// Launch-termination authority: per-member deadline cancellation and
    /// hung-launch detection (see serve::Watchdog).
    WatchdogConfig watchdog;
};

/// How the scale-out calibration plane arbitrates a drift event.  The
/// service consults an installed RecalibrationGate before burning CPU on
/// a recalibration; without a gate every drift proceeds locally.
enum class RecalibrationDecision {
    /// Recalibrate locally (the single-process default).
    Proceed,
    /// A peer owns this drift event (it holds the lease): serve exact
    /// and wait for adopt_calibration() instead of recalibrating.
    AwaitAdoption,
    /// The fleet already resolved this event (the gate adopted the
    /// published calibration inline): clear the drift evidence and keep
    /// serving — no exact detour, no local recalibration.
    AlreadyResolved,
};

/// Fleet arbitration hook, called once per drift event with the kernel
/// name.  Runs on the triggering worker thread; keep it fast.
using RecalibrationGate =
    std::function<RecalibrationDecision(const std::string& kernel)>;

/// Publish hook, called off the request path (on the recalibration task)
/// after a locally won recalibration completes, with the fresh
/// calibration and the quarantine verdicts in force.
using CalibrationPublisher = std::function<void(
    const std::string& kernel, const runtime::CalibrationState& calibration,
    const std::vector<std::string>& quarantined)>;

/// How an accepted request resolved.
enum class ServeStatus {
    Ok,
    DeadlineExceeded,  ///< Expired while queued; run is empty.
};

const char* to_string(ServeStatus status);

/// What one served request produced.
struct Response {
    ServeStatus status = ServeStatus::Ok;
    runtime::VariantRun run;     ///< Empty when status != Ok.
    std::string served_by;       ///< Label of the variant that ran.
    bool shadowed = false;
    double shadow_quality = -1.0;  ///< Valid when shadowed.
    /// Served below the calibrated selection by the degradation ladder.
    bool degraded = false;
    /// The approximate run trapped; the exact kernel re-served it.
    bool trap_fallback = false;
    /// The watchdog cancelled the approximate launch (hang ceiling
    /// exceeded); the exact kernel re-served it and the hang was charged
    /// to the variant's breaker.
    bool watchdog_fallback = false;
};

/// Per-request admission options.
struct SubmitOptions {
    /// Absolute deadline: the request is rejected at admission when it
    /// cannot be met, and resolved with ServeStatus::DeadlineExceeded if
    /// it expires while queued.  No deadline = serve whenever.
    std::optional<std::chrono::steady_clock::time_point> deadline;

    /// Convenience: a deadline @p budget from now.
    static SubmitOptions within(std::chrono::steady_clock::duration budget)
    {
        SubmitOptions options;
        options.deadline = std::chrono::steady_clock::now() + budget;
        return options;
    }
};

/// Outcome of submit(): either a future or a rejection reason.
struct Ticket {
    bool accepted = false;
    std::string reject_reason;  ///< Empty when accepted.
    std::future<Response> response;  ///< Valid when accepted.
};

/// Per-stage attribution for registered pipelines: which stage of the
/// chain trapped.  Breakers quarantine whole joint configs (they are the
/// serving unit); this names the culprit stage inside them.
struct PipelineStageSnapshot {
    std::string stage;
    std::uint64_t traps = 0;
};

/// Per-kernel observability: selection, tuner stats, monitor state.
struct KernelSnapshot {
    std::string kernel;
    std::string selected;
    bool recalibrating = false;
    /// Waiting for a peer's published calibration (scale-out): requests
    /// are served exact until adopt_calibration() lands.
    bool awaiting_adoption = false;
    int degradation_level = 0;
    runtime::TunerStats tuner;
    QualityMonitor::Snapshot monitor;
    std::vector<runtime::BreakerSnapshot> breakers;
    /// Empty unless registered via register_pipeline().
    std::vector<PipelineStageSnapshot> stages;
    /// Requests waiting in this kernel's shard right now.
    std::size_t queue_depth = 0;
};

/// Whole-service observability; metrics.backoffs and the breaker
/// counters (quarantines, reinstatements, probes) are aggregated from
/// the per-kernel tuner stats here.
struct ServiceSnapshot {
    MetricsSnapshot metrics;
    std::vector<KernelSnapshot> kernels;
};

class ApproxService {
  public:
    explicit ApproxService(ServiceConfig config = {});
    ~ApproxService();  ///< stop()s if the caller has not.

    ApproxService(const ApproxService&) = delete;
    ApproxService& operator=(const ApproxService&) = delete;

    /// Register a kernel family under @p name and calibrate its tuner on
    /// @p training_seeds (variants[0] must be the exact kernel).
    /// Registering while serving is safe; re-registering a name is an
    /// error.  With a @p warm_key and a global ArtifactStore, a stored
    /// calibration matching the key skips the profiling sweep (the tuner
    /// re-validates quality on its first audit); a cold calibration is
    /// persisted under the key for the next process.
    /// KernelSession::calibration_key() produces the right key.
    void register_kernel(const std::string& name,
                         std::vector<runtime::Variant> variants,
                         runtime::Metric metric, double toq_percent,
                         const std::vector<std::uint64_t>& training_seeds,
                         std::optional<store::StoreKey> warm_key = {});

    /// Register a whole pipeline under @p name: joint variants from
    /// @p session, calibrated end-to-end against @p toq_percent on the
    /// final stage's output.  Submits against the name ride the exact
    /// same admission/deadline/quarantine/degradation machinery as
    /// single kernels — one deadline covers the whole chain (a request
    /// is one joint execution), breakers quarantine joint configs, and
    /// kernel_snapshot() additionally attributes traps to stages.  With
    /// a global ArtifactStore, a stored joint calibration under
    /// session.calibration_key() restores the searched plan without any
    /// probe runs (metrics().warm_pipelines) and a cold search +
    /// calibration is persisted.  The session may be destroyed after
    /// registration; the closures and stage stats outlive it.
    void register_pipeline(const std::string& name,
                           runtime::PipelineSession& session,
                           runtime::Metric metric, double toq_percent,
                           const std::vector<std::uint64_t>& training_seeds,
                           const runtime::JointSearchOptions& search = {});

    /// Register @p session's exact kernel as a precision-variant family
    /// under @p name: runtime::build_data_tier enumerates per-buffer
    /// storage-codec plans (pruned by the static safety analysis and one
    /// traffic-profiling run), each plan serves as an ordinary variant,
    /// so quarantine breakers and the degradation ladder apply to
    /// precision exactly as to algorithmic approximation.  With a global
    /// ArtifactStore, a stored PrecisionCalibration under
    /// runtime::data_calibration_key() restores plans + calibration with
    /// zero profiling or search runs (metrics().warm_data_tiers); a cold
    /// build is persisted.  The session may be destroyed afterwards.
    void register_data_kernel(const std::string& name,
                              const runtime::KernelSession& session,
                              const core::LaunchPlan& plan,
                              runtime::Metric metric, double toq_percent,
                              const std::vector<std::uint64_t>&
                                  training_seeds,
                              const runtime::DataTierOptions& options = {});

    /// Admit one request.  Never blocks: a full queue, an unknown kernel,
    /// a stopped service, or an unmeetable deadline (already expired, or
    /// the head-of-line request has been waiting longer than the
    /// remaining budget) rejects immediately with a reason.
    Ticket submit(const std::string& kernel, std::uint64_t seed,
                  const SubmitOptions& options = {});

    /// Operator hook: asynchronously recalibrate @p kernel over @p seeds
    /// (the registration seeds when empty).  Shadowing cannot observe
    /// recovery while the selection is exact, so re-promotion after a
    /// drift episode ends is a driver decision.  No-op if a
    /// recalibration is already in flight; drain() waits for it.
    void recalibrate_kernel(const std::string& kernel,
                            std::vector<std::uint64_t> seeds = {});

    // ---- Scale-out calibration plane ---------------------------------
    //
    // A net::CalibrationPlane installs a gate (drift arbitration) and a
    // publisher (share the won recalibration) and feeds peer publishes
    // back through adopt_calibration().  Install the hooks before
    // serving traffic; they are copied under a lock per drift event, so
    // replacing them mid-flight is safe but the old hook may still see
    // one in-progress event.

    void set_recalibration_gate(RecalibrationGate gate);
    void set_calibration_publisher(CalibrationPublisher publisher);

    /// Install a peer-published calibration (and its quarantine
    /// verdicts) into @p kernel's tuner, clearing any awaiting-adoption
    /// state and the monitor's drift evidence.  False (and
    /// metrics().adoption_rejects) when the kernel is unknown or the
    /// payload fails restore validation against the live variant list —
    /// an adoption across a module edit degrades to a counted no-op.
    bool adopt_calibration(const std::string& kernel,
                           const runtime::CalibrationState& calibration,
                           const std::vector<std::string>& quarantined);

    /// True while @p kernel serves exact awaiting a peer's publish.
    bool awaiting_adoption(const std::string& kernel) const;

    /// Block until every accepted request has been served and no
    /// recalibration is in flight.
    void drain();

    /// Reject new requests, serve everything already queued, join the
    /// workers, and wait out pending recalibrations.  Idempotent and
    /// safe to race with itself and with submit(): late submits reject
    /// with "queue closed" / "service stopped", and a second stop()
    /// waits for the first to finish the shutdown.
    void stop();

    std::size_t num_workers() const { return workers_.size(); }
    const Metrics& metrics() const { return metrics_; }
    ServiceSnapshot snapshot() const;
    KernelSnapshot kernel_snapshot(const std::string& kernel) const;

  private:
    struct KernelState {
        KernelState(std::string name_, std::vector<runtime::Variant> vs,
                    runtime::Metric metric_, double toq_,
                    QualityMonitor::Config monitor_config,
                    std::vector<std::uint64_t> seeds)
            : name(std::move(name_)),
              tuner(std::move(vs), metric_, toq_),
              metric(metric_), toq(toq_),
              monitor(toq_, monitor_config),
              training_seeds(std::move(seeds)) {}

        const std::string name;
        runtime::Tuner tuner;
        const runtime::Metric metric;
        const double toq;
        QualityMonitor monitor;
        const std::vector<std::uint64_t> training_seeds;
        std::atomic<bool> recalibrating{false};
        /// Scale-out: a peer owns the current drift event; serve exact
        /// until its publish is adopted.
        std::atomic<bool> awaiting_adoption{false};
        /// Per-stage trap attribution; null for single kernels.
        std::shared_ptr<const runtime::PipelineStats> pipeline_stats;
        /// This kernel's shard in the sharded queue.
        std::size_t shard = 0;
        /// EWMA of recent clean launch wall clocks (seconds); 0 until the
        /// first observation.  The watchdog's hang ceiling is
        /// hang_multiplier x this, floored at hang_floor.
        std::atomic<double> expected_launch_seconds{0.0};
    };

    struct Job {
        KernelState* kernel = nullptr;
        std::uint64_t seed = 0;
        std::optional<std::chrono::steady_clock::time_point> deadline;
        /// Admission time, for sojourn latency (submit -> resolution).
        std::chrono::steady_clock::time_point submitted_at;
        std::promise<Response> promise;
    };

    void worker_loop(std::size_t worker_index);
    /// Serve one request; @p cancel (may be null) is armed around the
    /// primary tuner call only — exact detours (recalibration, probes,
    /// trap and watchdog fallbacks) always run to completion.
    Response serve_one(KernelState& state, std::uint64_t seed,
                       const vm::CancelToken* cancel);
    /// Serve one popped batch (all jobs share a kernel): scatter expired
    /// members to DeadlineExceeded, run the rest as one coalesced launch
    /// registered with the watchdog under @p worker's slot, and resolve
    /// every member's future.
    void serve_batch(std::size_t worker, KernelState& state,
                     std::vector<Job>& jobs);
    /// Resolve one job's future with @p response.  Ok responses record
    /// sojourn latency and the served counter; non-Ok responses (deadline
    /// cancellations) resolve the future and the flight only, keeping
    /// `served` a count of successfully served requests.
    void resolve_job(Job& job, Response response);
    /// Post-launch handling for a run the token stopped mid-flight:
    /// Deadline -> DeadlineExceeded response; Watchdog -> charge the
    /// variant's breaker (once per launch, see @p hang_charged) and
    /// re-serve exact.  Returns the response to resolve with.
    Response finish_cancelled(KernelState& state, std::uint64_t seed,
                              const runtime::ServedRun& served,
                              const vm::CancelToken& cancel,
                              bool& hang_charged);
    /// The hang ceiling for one launch of @p state right now.
    std::chrono::steady_clock::duration hang_ceiling(
        const KernelState& state) const;
    /// Fold a clean launch wall clock into the kernel's EWMA.
    static void observe_launch_wall(KernelState& state, double seconds);
    /// Shared registration tail: service-level tuner policy + insertion.
    void install_kernel(std::unique_ptr<KernelState> state);
    /// Empty @p seeds: use the monitor's recent (drifted) seeds, then the
    /// registration seeds.
    void trigger_recalibration(KernelState& state,
                               std::vector<std::uint64_t> seeds);
    KernelState* find_kernel(const std::string& name) const;
    void finish_one();
    /// Fold @p weight pressure observations of a shard at @p depth into
    /// the degradation ladder (a popped batch of N counts N times; an
    /// idle tick counts once at depth 0); steps the ladder when the
    /// streak crosses the sustain threshold.
    void update_pressure(std::size_t depth, int weight);
    KernelSnapshot snapshot_kernel(const KernelState& state) const;

    const ServiceConfig config_;
    Metrics metrics_;
    ShardedQueue<Job> queue_;
    /// Deadline/hang sweeper over the workers' in-flight launches.
    /// Declared before workers_ so it outlives them on destruction.
    Watchdog watchdog_;

    /// Scale-out hooks (see set_recalibration_gate).
    mutable std::mutex hooks_mutex_;
    RecalibrationGate recalibration_gate_;
    CalibrationPublisher calibration_publisher_;

    mutable std::mutex kernels_mutex_;
    std::map<std::string, std::unique_ptr<KernelState>> kernels_;

    std::vector<std::thread> workers_;
    std::atomic<bool> stopped_{false};
    /// Serializes stop(): a second caller waits out the first's joins
    /// instead of racing them.
    std::mutex stop_mutex_;

    /// Degradation-ladder controller state.
    std::mutex pressure_mutex_;
    int high_streak_ = 0;
    int low_streak_ = 0;
    int degradation_level_ = 0;

    /// In-flight accounting for drain()/stop().
    mutable std::mutex flight_mutex_;
    std::condition_variable flight_cv_;
    std::uint64_t flight_accepted_ = 0;
    std::uint64_t flight_completed_ = 0;
    int pending_recalibrations_ = 0;
};

}  // namespace paraprox::serve
