/// @file
/// Observability for the serving subsystem: monotonic counters, a
/// queue-depth gauge, and a lock-free log2-bucketed latency histogram
/// with percentile snapshot export.
///
/// Everything here is bumped from worker threads on the request path, so
/// the primitives are plain atomics — no locks, no allocation.  Snapshots
/// are consistent per counter, not across counters; that is the usual
/// contract for serving metrics.

#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace paraprox::serve {

/// Point-in-time view of the latency distribution, in seconds.
/// Percentiles are bucket upper bounds (conservative: the true quantile
/// is at most the reported value, within one power-of-two bucket).
struct LatencySnapshot {
    std::uint64_t count = 0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
};

/// Log2-bucketed histogram over [1 ns, ~2^63 ns); record() is wait-free.
class LatencyHistogram {
  public:
    void record(double seconds);
    LatencySnapshot snapshot() const;

  private:
    static constexpr int kBuckets = 64;
    /// buckets_[i] counts samples with bit_width(nanoseconds) == i + 1,
    /// i.e. latencies in [2^i, 2^(i+1)) ns.
    std::atomic<std::uint64_t> buckets_[kBuckets] = {};
};

/// Point-in-time view of the batch-size distribution.
struct BatchSnapshot {
    std::uint64_t batches = 0;    ///< Every pop, singletons included.
    std::uint64_t coalesced = 0;  ///< Batches of size >= 2.
    /// Requests that rode a coalesced (size >= 2) batch.
    std::uint64_t coalesced_requests = 0;
    std::uint64_t max_size = 0;
    double mean_size = 0.0;       ///< Across all batches.
};

/// Exact-count batch-size distribution; record() is wait-free.  Sizes
/// beyond kMaxSize saturate into the top bucket (max_size still reports
/// the true maximum seen).
class BatchHistogram {
  public:
    void record(std::size_t size);
    BatchSnapshot snapshot() const;

  private:
    static constexpr std::size_t kMaxSize = 64;
    /// by_size_[i] counts batches of exactly i+1 members.
    std::atomic<std::uint64_t> by_size_[kMaxSize] = {};
    std::atomic<std::uint64_t> total_requests_{0};
    std::atomic<std::uint64_t> max_size_{0};
};

/// Plain-struct copy of every counter, for printing and assertions.
struct MetricsSnapshot {
    std::uint64_t accepted = 0;
    std::uint64_t rejected_full = 0;
    std::uint64_t rejected_unknown = 0;
    std::uint64_t rejected_stopped = 0;
    /// Submits that lost the race with stop(): the stopped pre-check
    /// passed but the queue was already closed.  Surfaced to the client
    /// with the same "service stopped" reason as the pre-check path.
    std::uint64_t rejected_closed_race = 0;
    /// Admissions refused because the request's deadline had already
    /// passed or could not be met behind the current backlog.
    std::uint64_t rejected_deadline = 0;
    std::uint64_t served = 0;
    /// Accepted requests resolved with ServeStatus::DeadlineExceeded at
    /// the worker (expired while queued; not counted in `served`).
    std::uint64_t deadline_expired = 0;
    /// Requests whose approximate run trapped and were re-served exact.
    std::uint64_t trap_fallbacks = 0;
    /// Requests served below the calibrated selection by the
    /// load-shedding degradation ladder.
    std::uint64_t degraded_serves = 0;
    /// Ladder movements: steps toward cheaper variants / back up.
    std::uint64_t degrade_steps = 0;
    std::uint64_t restore_steps = 0;
    /// Current service-wide degradation level (gauge; 0 = full quality).
    std::int64_t degradation_level = 0;
    std::uint64_t shadow_runs = 0;
    std::uint64_t shadow_violations = 0;
    std::uint64_t recalibrations = 0;
    std::uint64_t exact_while_recalibrating = 0;
    /// Drift events this replica ceded to the fleet's calibration plane
    /// (a peer held the drift lease or had already published); the
    /// kernel served exact until adoption instead of recalibrating.
    std::uint64_t suppressed_recalibrations = 0;
    /// Calibrations installed from a peer's publish via
    /// adopt_calibration() (scale-out: recalibrate once, adopt
    /// everywhere).
    std::uint64_t adopted_calibrations = 0;
    /// adopt_calibration() calls whose payload failed restore
    /// validation (arity/label drift across module versions).
    std::uint64_t adoption_rejects = 0;
    /// Kernels registered with a calibration restored from the artifact
    /// store (no profiling sweep at registration).
    std::uint64_t warm_registrations = 0;
    /// Pipelines registered with a joint calibration restored from the
    /// artifact store: zero joint-search probe runs, zero sweeps.
    std::uint64_t warm_pipelines = 0;
    /// Data-tier kernels registered with a precision calibration restored
    /// from the artifact store: zero profiling runs, zero plan search.
    std::uint64_t warm_data_tiers = 0;
    /// Launches stopped mid-flight by a fired deadline token: the
    /// request resolved DeadlineExceeded without finishing its kernel.
    std::uint64_t cancelled_launches = 0;
    /// Launches the hung-launch watchdog cancelled (wall ceiling
    /// exceeded); each charges the variant's breaker like a trap.
    std::uint64_t watchdog_cancels = 0;
    /// Requests re-served by the exact kernel after a watchdog cancel.
    std::uint64_t watchdog_fallbacks = 0;
    /// Work-groups completed across every serve launch (cancelled ones
    /// included: groups that finished before the token fired still
    /// burned CPU).  The cancellation bench reads the delta between a
    /// cancelling and a non-cancelling run as "wasted work saved".
    std::uint64_t launch_groups_completed = 0;
    /// Variant downgrades across all kernels.  Tuners own this count;
    /// ApproxService::snapshot() aggregates it in — it stays 0 in a bare
    /// Metrics::snapshot().  Same for the three breaker counters below.
    std::uint64_t backoffs = 0;
    std::uint64_t quarantines = 0;     ///< Breaker openings (aggregated).
    std::uint64_t reinstatements = 0;  ///< Breakers closed (aggregated).
    std::uint64_t probes = 0;          ///< Half-open probes (aggregated).
    std::int64_t queue_depth = 0;
    /// Sojourn time (admission to resolution) per request.
    LatencySnapshot latency;
    /// Batch-size distribution of worker pops (gather-window coalescing).
    BatchSnapshot batch;
    /// Amortized per-request latency inside coalesced batches: the batch
    /// serve wall clock divided by its member count, recorded once per
    /// member.  Compare against `latency` to see what coalescing buys.
    LatencySnapshot batch_latency;
};

/// Human-readable multi-line report, used by tools and bench smoke runs.
std::string format_metrics(const MetricsSnapshot& snapshot);

/// The registry the service, monitor, and tuner report through.  Fields
/// are public atomics: the request path bumps them directly.
class Metrics {
  public:
    std::atomic<std::uint64_t> accepted{0};
    std::atomic<std::uint64_t> rejected_full{0};
    std::atomic<std::uint64_t> rejected_unknown{0};
    std::atomic<std::uint64_t> rejected_stopped{0};
    std::atomic<std::uint64_t> rejected_closed_race{0};
    std::atomic<std::uint64_t> rejected_deadline{0};
    std::atomic<std::uint64_t> served{0};
    std::atomic<std::uint64_t> deadline_expired{0};
    std::atomic<std::uint64_t> trap_fallbacks{0};
    std::atomic<std::uint64_t> degraded_serves{0};
    std::atomic<std::uint64_t> degrade_steps{0};
    std::atomic<std::uint64_t> restore_steps{0};
    std::atomic<std::int64_t> degradation_level{0};
    std::atomic<std::uint64_t> shadow_runs{0};
    std::atomic<std::uint64_t> shadow_violations{0};
    std::atomic<std::uint64_t> recalibrations{0};
    std::atomic<std::uint64_t> exact_while_recalibrating{0};
    std::atomic<std::uint64_t> suppressed_recalibrations{0};
    std::atomic<std::uint64_t> adopted_calibrations{0};
    std::atomic<std::uint64_t> adoption_rejects{0};
    std::atomic<std::uint64_t> warm_registrations{0};
    std::atomic<std::uint64_t> warm_pipelines{0};
    std::atomic<std::uint64_t> warm_data_tiers{0};
    std::atomic<std::uint64_t> cancelled_launches{0};
    std::atomic<std::uint64_t> watchdog_cancels{0};
    std::atomic<std::uint64_t> watchdog_fallbacks{0};
    std::atomic<std::uint64_t> launch_groups_completed{0};
    std::atomic<std::int64_t> queue_depth{0};
    LatencyHistogram latency;
    BatchHistogram batch;
    LatencyHistogram batch_latency;

    MetricsSnapshot snapshot() const;
};

}  // namespace paraprox::serve
