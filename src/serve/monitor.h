/// @file
/// Per-kernel online TOQ monitoring with hysteresis.
///
/// The tuner's own invoke()-time audit is a single-caller affair; under
/// concurrent serving the QualityMonitor owns quality accounting instead.
/// It shadows a configurable sample of requests with the exact kernel,
/// keeps a sliding window of the observed qualities, and asks for a full
/// recalibration only on *sustained* violation — a streak of violating
/// shadows over a window whose mean is below the TOQ — so one unlucky
/// input never thrashes the variant selection (paper §5's drift
/// behaviour, with hysteresis).  After a recalibration the window is
/// cleared and evidence must re-accumulate before the next trigger.

#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

namespace paraprox::serve {

class QualityMonitor {
  public:
    struct Config {
        /// Shadow every Nth request with the exact kernel.
        int shadow_interval = 8;
        /// Sliding window of shadow qualities the drift decision reads.
        std::size_t window = 32;
        /// Minimum shadows in the window before a trigger is possible.
        std::size_t min_samples = 4;
        /// Consecutive violating shadows required to trigger.
        int trigger_streak = 3;
        /// How many recently served input seeds to remember; these become
        /// the recalibration training set, so the tuner re-profiles on the
        /// inputs that actually drifted.
        std::size_t seed_memory = 64;
    };

    /// Cumulative and windowed monitor state, copied under the lock.
    struct Snapshot {
        std::uint64_t requests = 0;
        std::uint64_t shadows = 0;
        std::uint64_t violations = 0;
        std::uint64_t triggers = 0;
        double window_mean = 100.0;  ///< 100 when the window is empty.
        int streak = 0;
        bool trigger_pending = false;
    };

    QualityMonitor(double toq_percent, Config config);

    /// Account one admitted request (remembering its seed) and decide
    /// whether this request should also be shadowed by the exact kernel.
    bool admit(std::uint64_t seed);

    /// Pace half-open quarantine probes with the shadow cadence: returns
    /// true every Config::shadow_interval calls.  Kept separate from
    /// admit() — probes ride requests the client sees served by exact,
    /// so they must not consume shadow slots or window samples.
    bool admit_probe();

    /// Record the quality of one shadowed request.  Returns true exactly
    /// once per drift episode: when the violation streak and the window
    /// mean both say the TOQ loss is sustained.  Further shadows return
    /// false until on_recalibrated() re-arms the trigger.
    bool record(double quality_percent);

    /// A triggered recalibration finished: clear the window and streak so
    /// evidence re-accumulates before the monitor can fire again.
    void on_recalibrated();

    /// The most recently served seeds, oldest first (at most
    /// Config::seed_memory of them).
    std::vector<std::uint64_t> recent_seeds() const;

    Snapshot snapshot() const;
    double toq() const { return toq_; }

  private:
    const double toq_;
    const Config config_;

    mutable std::mutex mutex_;
    std::deque<double> window_;
    std::deque<std::uint64_t> seeds_;
    int streak_ = 0;
    bool trigger_pending_ = false;
    std::uint64_t probe_requests_ = 0;
    std::uint64_t requests_ = 0;
    std::uint64_t shadows_ = 0;
    std::uint64_t violations_ = 0;
    std::uint64_t triggers_ = 0;
};

}  // namespace paraprox::serve
