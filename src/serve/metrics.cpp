#include "serve/metrics.h"

#include <bit>
#include <cmath>
#include <cstdio>

namespace paraprox::serve {

void
LatencyHistogram::record(double seconds)
{
    if (!(seconds > 0.0))
        seconds = 0.0;
    const double ns = seconds * 1e9;
    std::uint64_t ticks = 1;
    if (ns >= 1.0) {
        // Anything beyond the top bucket saturates there.
        ticks = ns >= 9.2e18 ? ~std::uint64_t{0}
                             : static_cast<std::uint64_t>(ns);
    }
    const int bucket = std::bit_width(ticks) - 1;
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
}

LatencySnapshot
LatencyHistogram::snapshot() const
{
    std::uint64_t counts[kBuckets];
    std::uint64_t total = 0;
    for (int i = 0; i < kBuckets; ++i) {
        counts[i] = buckets_[i].load(std::memory_order_relaxed);
        total += counts[i];
    }

    LatencySnapshot out;
    out.count = total;
    if (total == 0)
        return out;

    const auto quantile = [&](double q) {
        const std::uint64_t target = static_cast<std::uint64_t>(
            std::ceil(q * static_cast<double>(total)));
        std::uint64_t cumulative = 0;
        for (int i = 0; i < kBuckets; ++i) {
            cumulative += counts[i];
            // First bucket where the cumulative count reaches the target;
            // no emptiness guard — the crossing bucket is the answer even
            // when later buckets are empty.
            if (cumulative >= target)
                return std::ldexp(1.0, i + 1) * 1e-9;  // bucket upper bound
        }
        return std::ldexp(1.0, kBuckets) * 1e-9;
    };
    out.p50 = quantile(0.50);
    out.p95 = quantile(0.95);
    out.p99 = quantile(0.99);
    return out;
}

void
BatchHistogram::record(std::size_t size)
{
    if (size == 0)
        return;
    const std::size_t bucket = size > kMaxSize ? kMaxSize - 1 : size - 1;
    by_size_[bucket].fetch_add(1, std::memory_order_relaxed);
    total_requests_.fetch_add(size, std::memory_order_relaxed);
    std::uint64_t seen = max_size_.load(std::memory_order_relaxed);
    while (seen < size &&
           !max_size_.compare_exchange_weak(seen, size,
                                            std::memory_order_relaxed)) {
    }
}

BatchSnapshot
BatchHistogram::snapshot() const
{
    BatchSnapshot out;
    for (std::size_t i = 0; i < kMaxSize; ++i) {
        const std::uint64_t count =
            by_size_[i].load(std::memory_order_relaxed);
        out.batches += count;
        if (i >= 1) {
            out.coalesced += count;
            out.coalesced_requests += count * (i + 1);
        }
    }
    out.max_size = max_size_.load(std::memory_order_relaxed);
    const std::uint64_t requests =
        total_requests_.load(std::memory_order_relaxed);
    out.mean_size = out.batches > 0
                        ? static_cast<double>(requests) /
                              static_cast<double>(out.batches)
                        : 0.0;
    return out;
}

MetricsSnapshot
Metrics::snapshot() const
{
    MetricsSnapshot out;
    out.accepted = accepted.load(std::memory_order_relaxed);
    out.rejected_full = rejected_full.load(std::memory_order_relaxed);
    out.rejected_unknown = rejected_unknown.load(std::memory_order_relaxed);
    out.rejected_stopped = rejected_stopped.load(std::memory_order_relaxed);
    out.rejected_closed_race =
        rejected_closed_race.load(std::memory_order_relaxed);
    out.rejected_deadline =
        rejected_deadline.load(std::memory_order_relaxed);
    out.served = served.load(std::memory_order_relaxed);
    out.deadline_expired = deadline_expired.load(std::memory_order_relaxed);
    out.trap_fallbacks = trap_fallbacks.load(std::memory_order_relaxed);
    out.degraded_serves = degraded_serves.load(std::memory_order_relaxed);
    out.degrade_steps = degrade_steps.load(std::memory_order_relaxed);
    out.restore_steps = restore_steps.load(std::memory_order_relaxed);
    out.degradation_level =
        degradation_level.load(std::memory_order_relaxed);
    out.shadow_runs = shadow_runs.load(std::memory_order_relaxed);
    out.shadow_violations =
        shadow_violations.load(std::memory_order_relaxed);
    out.recalibrations = recalibrations.load(std::memory_order_relaxed);
    out.exact_while_recalibrating =
        exact_while_recalibrating.load(std::memory_order_relaxed);
    out.suppressed_recalibrations =
        suppressed_recalibrations.load(std::memory_order_relaxed);
    out.adopted_calibrations =
        adopted_calibrations.load(std::memory_order_relaxed);
    out.adoption_rejects =
        adoption_rejects.load(std::memory_order_relaxed);
    out.warm_registrations =
        warm_registrations.load(std::memory_order_relaxed);
    out.warm_pipelines = warm_pipelines.load(std::memory_order_relaxed);
    out.warm_data_tiers = warm_data_tiers.load(std::memory_order_relaxed);
    out.cancelled_launches =
        cancelled_launches.load(std::memory_order_relaxed);
    out.watchdog_cancels =
        watchdog_cancels.load(std::memory_order_relaxed);
    out.watchdog_fallbacks =
        watchdog_fallbacks.load(std::memory_order_relaxed);
    out.launch_groups_completed =
        launch_groups_completed.load(std::memory_order_relaxed);
    out.queue_depth = queue_depth.load(std::memory_order_relaxed);
    out.latency = latency.snapshot();
    out.batch = batch.snapshot();
    out.batch_latency = batch_latency.snapshot();
    return out;
}

std::string
format_metrics(const MetricsSnapshot& snapshot)
{
    char line[160];
    std::string out;
    const auto row = [&](const char* name, std::uint64_t value) {
        std::snprintf(line, sizeof line, "  %-26s %llu\n", name,
                      static_cast<unsigned long long>(value));
        out += line;
    };
    row("accepted", snapshot.accepted);
    row("served", snapshot.served);
    row("rejected (full)", snapshot.rejected_full);
    row("rejected (unknown)", snapshot.rejected_unknown);
    row("rejected (stopped)", snapshot.rejected_stopped);
    row("rejected (stop race)", snapshot.rejected_closed_race);
    row("rejected (deadline)", snapshot.rejected_deadline);
    row("deadline expired", snapshot.deadline_expired);
    row("trap fallbacks", snapshot.trap_fallbacks);
    row("degraded serves", snapshot.degraded_serves);
    row("degrade steps", snapshot.degrade_steps);
    row("restore steps", snapshot.restore_steps);
    std::snprintf(line, sizeof line, "  %-26s %lld\n", "degradation level",
                  static_cast<long long>(snapshot.degradation_level));
    out += line;
    row("shadow runs", snapshot.shadow_runs);
    row("shadow violations", snapshot.shadow_violations);
    row("recalibrations", snapshot.recalibrations);
    row("exact while recalibrating", snapshot.exact_while_recalibrating);
    row("suppressed recalibrations", snapshot.suppressed_recalibrations);
    row("adopted calibrations", snapshot.adopted_calibrations);
    row("adoption rejects", snapshot.adoption_rejects);
    row("warm registrations", snapshot.warm_registrations);
    row("warm pipelines", snapshot.warm_pipelines);
    row("warm data tiers", snapshot.warm_data_tiers);
    row("cancelled launches", snapshot.cancelled_launches);
    row("watchdog cancels", snapshot.watchdog_cancels);
    row("watchdog fallbacks", snapshot.watchdog_fallbacks);
    row("launch groups completed", snapshot.launch_groups_completed);
    row("backoffs", snapshot.backoffs);
    row("quarantines", snapshot.quarantines);
    row("reinstatements", snapshot.reinstatements);
    row("probes", snapshot.probes);
    std::snprintf(line, sizeof line, "  %-26s %lld\n", "queue depth",
                  static_cast<long long>(snapshot.queue_depth));
    out += line;
    std::snprintf(line, sizeof line,
                  "  %-26s p50 %.3gms  p95 %.3gms  p99 %.3gms  (n=%llu)\n",
                  "latency", snapshot.latency.p50 * 1e3,
                  snapshot.latency.p95 * 1e3, snapshot.latency.p99 * 1e3,
                  static_cast<unsigned long long>(snapshot.latency.count));
    out += line;
    std::snprintf(line, sizeof line,
                  "  %-26s total %llu  coalesced %llu  mean %.2f  max %llu\n",
                  "batches",
                  static_cast<unsigned long long>(snapshot.batch.batches),
                  static_cast<unsigned long long>(snapshot.batch.coalesced),
                  snapshot.batch.mean_size,
                  static_cast<unsigned long long>(snapshot.batch.max_size));
    out += line;
    std::snprintf(line, sizeof line,
                  "  %-26s p50 %.3gms  p95 %.3gms  p99 %.3gms  (n=%llu)\n",
                  "batch amortized latency", snapshot.batch_latency.p50 * 1e3,
                  snapshot.batch_latency.p95 * 1e3,
                  snapshot.batch_latency.p99 * 1e3,
                  static_cast<unsigned long long>(
                      snapshot.batch_latency.count));
    out += line;
    return out;
}

}  // namespace paraprox::serve
