#include "serve/metrics.h"

#include <bit>
#include <cmath>

namespace paraprox::serve {

void
LatencyHistogram::record(double seconds)
{
    if (!(seconds > 0.0))
        seconds = 0.0;
    const double ns = seconds * 1e9;
    std::uint64_t ticks = 1;
    if (ns >= 1.0) {
        // Anything beyond the top bucket saturates there.
        ticks = ns >= 9.2e18 ? ~std::uint64_t{0}
                             : static_cast<std::uint64_t>(ns);
    }
    const int bucket = std::bit_width(ticks) - 1;
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
}

LatencySnapshot
LatencyHistogram::snapshot() const
{
    std::uint64_t counts[kBuckets];
    std::uint64_t total = 0;
    for (int i = 0; i < kBuckets; ++i) {
        counts[i] = buckets_[i].load(std::memory_order_relaxed);
        total += counts[i];
    }

    LatencySnapshot out;
    out.count = total;
    if (total == 0)
        return out;

    const auto quantile = [&](double q) {
        const std::uint64_t target = static_cast<std::uint64_t>(
            std::ceil(q * static_cast<double>(total)));
        std::uint64_t cumulative = 0;
        for (int i = 0; i < kBuckets; ++i) {
            cumulative += counts[i];
            // First bucket where the cumulative count reaches the target;
            // no emptiness guard — the crossing bucket is the answer even
            // when later buckets are empty.
            if (cumulative >= target)
                return std::ldexp(1.0, i + 1) * 1e-9;  // bucket upper bound
        }
        return std::ldexp(1.0, kBuckets) * 1e-9;
    };
    out.p50 = quantile(0.50);
    out.p95 = quantile(0.95);
    out.p99 = quantile(0.99);
    return out;
}

MetricsSnapshot
Metrics::snapshot() const
{
    MetricsSnapshot out;
    out.accepted = accepted.load(std::memory_order_relaxed);
    out.rejected_full = rejected_full.load(std::memory_order_relaxed);
    out.rejected_unknown = rejected_unknown.load(std::memory_order_relaxed);
    out.rejected_stopped = rejected_stopped.load(std::memory_order_relaxed);
    out.served = served.load(std::memory_order_relaxed);
    out.shadow_runs = shadow_runs.load(std::memory_order_relaxed);
    out.shadow_violations =
        shadow_violations.load(std::memory_order_relaxed);
    out.recalibrations = recalibrations.load(std::memory_order_relaxed);
    out.exact_while_recalibrating =
        exact_while_recalibrating.load(std::memory_order_relaxed);
    out.warm_registrations =
        warm_registrations.load(std::memory_order_relaxed);
    out.queue_depth = queue_depth.load(std::memory_order_relaxed);
    out.latency = latency.snapshot();
    return out;
}

}  // namespace paraprox::serve
