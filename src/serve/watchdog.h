/// @file
/// Watchdog: the serving layer's launch-termination authority.
///
/// Every worker registers its in-flight launch (one cancel token per
/// batch member, plus each member's deadline and the launch's hang
/// ceiling) before calling into the tuner, and clears it when the launch
/// returns — the registration doubles as the worker's heartbeat.  One
/// watchdog thread sweeps the registry on a short tick and fires tokens
/// for two distinct events:
///
///   Deadline — a member's deadline passed mid-launch.  Its token is
///     cancelled with CancelReason::Deadline; the member stops within one
///     group round and resolves DeadlineExceeded (scatter-cancel: the
///     other batch members keep running).
///
///   Hang — the whole launch exceeded its wall ceiling (a multiple of
///     the kernel's expected launch time; see ServiceConfig::watchdog).
///     Every member token fires with CancelReason::Watchdog, and the
///     service charges the hang to the variant's quarantine breaker like
///     a trap — a pathological variant that spins gets quarantined, not
///     re-served.
///
/// The watchdog never touches worker state directly: it only flips
/// relaxed atomics that the VM polls at control transfers, so a hung
/// interpreter loop is the *only* thing it needs to assume still runs.

#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "vm/vm.h"

namespace paraprox::serve {

struct WatchdogConfig {
    bool enabled = true;
    /// Registry sweep cadence; cancellation latency is at most one tick
    /// plus one VM group round.
    std::chrono::steady_clock::duration tick =
        std::chrono::milliseconds(1);
    /// A launch is declared hung once its wall clock exceeds
    /// `hang_multiplier` x the kernel's expected launch time (an EWMA of
    /// recent serve wall clocks the service maintains), but never sooner
    /// than `hang_floor` — a cold kernel with no history yet must not be
    /// shot for warming up.
    double hang_multiplier = 32.0;
    std::chrono::steady_clock::duration hang_floor =
        std::chrono::milliseconds(250);
};

/// One registered launch: the tokens of every batch member plus the
/// wall-clock facts the sweeps compare against.
struct WatchdogFlight {
    struct Member {
        std::shared_ptr<vm::CancelToken> token;
        std::optional<std::chrono::steady_clock::time_point> deadline;
    };
    std::vector<Member> members;
    std::chrono::steady_clock::time_point started;
    /// Hang ceiling for the whole launch; zero = hang detection off for
    /// this flight (deadline cancellation still applies).
    std::chrono::steady_clock::duration ceiling{};
};

class Watchdog {
  public:
    explicit Watchdog(WatchdogConfig config = {});
    ~Watchdog();  ///< stop()s if the owner has not.

    Watchdog(const Watchdog&) = delete;
    Watchdog& operator=(const Watchdog&) = delete;

    /// Size the per-worker registry and start the sweep thread.  No-op
    /// when the config disables the watchdog.
    void start(std::size_t num_workers);
    void stop();

    /// Register worker @p worker's in-flight launch.  Overwrites any
    /// stale registration (there can be none in correct use: every
    /// begin pairs with an end on the same thread).
    void begin_flight(std::size_t worker, WatchdogFlight flight);
    /// The launch returned (completed, trapped, or cancelled); stop
    /// watching it.
    void end_flight(std::size_t worker);

    /// One sweep immediately, synchronously (tests; the thread does this
    /// on a timer).  Safe whether or not the thread is running.
    void sweep_now();

    std::uint64_t deadline_cancels() const
    {
        return deadline_cancels_.load(std::memory_order_relaxed);
    }
    std::uint64_t hang_cancels() const
    {
        return hang_cancels_.load(std::memory_order_relaxed);
    }

    const WatchdogConfig& config() const { return config_; }

  private:
    struct Slot {
        bool active = false;
        bool hang_fired = false;
        WatchdogFlight flight;
    };

    void sweep(std::chrono::steady_clock::time_point now);
    void loop();

    const WatchdogConfig config_;

    std::mutex mutex_;
    std::vector<Slot> slots_;

    std::thread sweeper_;
    std::mutex stop_mutex_;
    std::condition_variable stop_cv_;
    bool stopping_ = false;
    bool started_ = false;

    std::atomic<std::uint64_t> deadline_cancels_{0};
    std::atomic<std::uint64_t> hang_cancels_{0};
};

}  // namespace paraprox::serve
