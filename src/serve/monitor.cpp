#include "serve/monitor.h"

#include "support/error.h"

namespace paraprox::serve {

QualityMonitor::QualityMonitor(double toq_percent, Config config)
    : toq_(toq_percent), config_(config)
{
    PARAPROX_CHECK(config_.shadow_interval > 0,
                   "shadow interval must be positive");
    PARAPROX_CHECK(config_.window > 0, "window must be non-empty");
    PARAPROX_CHECK(config_.trigger_streak > 0,
                   "trigger streak must be positive");
    PARAPROX_CHECK(config_.min_samples > 0,
                   "min samples must be positive");
    PARAPROX_CHECK(config_.seed_memory > 0,
                   "seed memory must be non-empty");
}

bool
QualityMonitor::admit(std::uint64_t seed)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++requests_;
    seeds_.push_back(seed);
    if (seeds_.size() > config_.seed_memory)
        seeds_.pop_front();
    return requests_ % static_cast<std::uint64_t>(
                           config_.shadow_interval) == 0;
}

bool
QualityMonitor::admit_probe()
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++probe_requests_;
    return probe_requests_ % static_cast<std::uint64_t>(
                                 config_.shadow_interval) == 0;
}

bool
QualityMonitor::record(double quality_percent)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++shadows_;
    window_.push_back(quality_percent);
    if (window_.size() > config_.window)
        window_.pop_front();

    if (quality_percent < toq_) {
        ++violations_;
        ++streak_;
    } else {
        streak_ = 0;
    }

    if (trigger_pending_ || streak_ < config_.trigger_streak ||
        window_.size() < config_.min_samples)
        return false;

    double sum = 0.0;
    for (const double q : window_)
        sum += q;
    if (sum / static_cast<double>(window_.size()) >= toq_)
        return false;

    trigger_pending_ = true;
    ++triggers_;
    return true;
}

void
QualityMonitor::on_recalibrated()
{
    std::lock_guard<std::mutex> lock(mutex_);
    window_.clear();
    streak_ = 0;
    trigger_pending_ = false;
}

std::vector<std::uint64_t>
QualityMonitor::recent_seeds() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return {seeds_.begin(), seeds_.end()};
}

QualityMonitor::Snapshot
QualityMonitor::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    Snapshot out;
    out.requests = requests_;
    out.shadows = shadows_;
    out.violations = violations_;
    out.triggers = triggers_;
    if (!window_.empty()) {
        double sum = 0.0;
        for (const double q : window_)
            sum += q;
        out.window_mean = sum / static_cast<double>(window_.size());
    }
    out.streak = streak_;
    out.trigger_pending = trigger_pending_;
    return out;
}

}  // namespace paraprox::serve
