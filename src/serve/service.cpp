#include "serve/service.h"

#include <chrono>

#include "exec/launch.h"
#include "runtime/quality.h"
#include "support/error.h"
#include "support/faultinject.h"
#include "support/parallel.h"

namespace paraprox::serve {

namespace {

std::size_t
resolve_workers(std::size_t requested)
{
    if (requested != 0)
        return requested;
    if (const std::size_t env = thread_override_from_env())
        return env;
    const std::size_t hw = std::thread::hardware_concurrency();
    return hw != 0 ? hw : 4;
}

}  // namespace

const char*
to_string(ServeStatus status)
{
    switch (status) {
      case ServeStatus::Ok: return "ok";
      case ServeStatus::DeadlineExceeded: return "deadline exceeded";
    }
    return "<bad-serve-status>";
}

ApproxService::ApproxService(ServiceConfig config)
    : config_(config),
      queue_(config.queue_capacity, [](const Job& job) {
          return job.deadline;
      }),
      watchdog_(config.watchdog)
{
    PARAPROX_CHECK(config_.queue_capacity > 0,
                   "queue capacity must be positive");
    PARAPROX_CHECK(config_.batching.max_batch > 0,
                   "batch size must be positive");
    const std::size_t count = resolve_workers(config_.num_workers);
    // The watchdog must be sweeping before the first worker can register
    // a flight.
    watchdog_.start(count);
    workers_.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        workers_.emplace_back([this, i] { worker_loop(i); });
}

ApproxService::~ApproxService()
{
    stop();
}

void
ApproxService::install_kernel(std::unique_ptr<KernelState> state)
{
    // Calibration (already done by the callers) runs the instrumented
    // closures regardless; the mode only governs how workers serve.
    state->tuner.set_serving_mode(config_.exec_mode);
    state->tuner.set_quarantine(config_.quarantine);
    // A service created while load shedding is already in effect brings
    // newly registered kernels onto the current ladder level.
    {
        std::lock_guard<std::mutex> lock(pressure_mutex_);
        state->tuner.set_degradation_level(degradation_level_);
    }
    const std::string name = state->name;
    std::lock_guard<std::mutex> lock(kernels_mutex_);
    PARAPROX_CHECK(kernels_.find(name) == kernels_.end(),
                   "kernel `" + name + "` is already registered");
    // Each kernel owns a queue shard: admission, deadline math, and
    // worker batching are all per kernel from here on.
    state->shard = queue_.add_shard();
    kernels_.emplace(name, std::move(state));
}

void
ApproxService::register_kernel(
    const std::string& name, std::vector<runtime::Variant> variants,
    runtime::Metric metric, double toq_percent,
    const std::vector<std::uint64_t>& training_seeds,
    std::optional<store::StoreKey> warm_key)
{
    auto state = std::make_unique<KernelState>(
        name, std::move(variants), metric, toq_percent, config_.monitor,
        training_seeds);

    const auto store =
        warm_key ? store::ArtifactStore::global() : nullptr;
    bool warm = false;
    if (store) {
        if (const auto stored = store->load_calibration(*warm_key))
            warm = state->tuner.restore_calibration(*stored);
    }
    if (warm) {
        metrics_.warm_registrations.fetch_add(1,
                                              std::memory_order_relaxed);
    } else {
        state->tuner.calibrate(training_seeds);
        if (store)
            store->save_calibration(*warm_key,
                                    state->tuner.calibration_state());
    }
    install_kernel(std::move(state));
}

void
ApproxService::register_pipeline(
    const std::string& name, runtime::PipelineSession& session,
    runtime::Metric metric, double toq_percent,
    const std::vector<std::uint64_t>& training_seeds,
    const runtime::JointSearchOptions& search)
{
    const auto store = store::ArtifactStore::global();
    const store::StoreKey key =
        session.calibration_key(metric, toq_percent);

    // Warm path: rebuild the stored plan's joint variants directly —
    // variant construction itself must skip the search (zero probe
    // runs), not just the calibration sweep.
    std::unique_ptr<KernelState> state;
    if (store) {
        if (const auto stored = store->load_pipeline_calibration(key);
            stored && stored->stage_names == session.stage_names()) {
            if (auto configs = session.configs_for(stored->configs)) {
                auto candidate = std::make_unique<KernelState>(
                    name, session.variants_from(*configs), metric,
                    toq_percent, config_.monitor, training_seeds);
                if (candidate->tuner.restore_calibration(
                        stored->calibration)) {
                    state = std::move(candidate);
                    metrics_.warm_pipelines.fetch_add(
                        1, std::memory_order_relaxed);
                }
            }
        }
    }
    if (!state) {
        state = std::make_unique<KernelState>(
            name, session.joint_variants(search), metric, toq_percent,
            config_.monitor, training_seeds);
        state->tuner.calibrate(training_seeds);
        if (store) {
            store::PipelineCalibrationArtifact artifact;
            artifact.stage_names = session.stage_names();
            for (const runtime::JointConfig& config : session.configs())
                artifact.configs.push_back(config.labels);
            artifact.calibration = state->tuner.calibration_state();
            artifact.toq = toq_percent;
            artifact.metric = to_string(metric);
            store->save_pipeline_calibration(key, artifact);
        }
    }
    state->pipeline_stats = session.stats();
    install_kernel(std::move(state));
}

void
ApproxService::register_data_kernel(
    const std::string& name, const runtime::KernelSession& session,
    const core::LaunchPlan& plan, runtime::Metric metric,
    double toq_percent, const std::vector<std::uint64_t>& training_seeds,
    const runtime::DataTierOptions& options)
{
    const auto store = store::ArtifactStore::global();
    const store::StoreKey key =
        runtime::data_calibration_key(session, metric, toq_percent);

    // Warm path: rebuild variants from the stored plans — the rebuild
    // re-runs the safety analysis, so a stale or tampered record that
    // packs a pinned buffer falls through to a cold build instead.
    std::unique_ptr<KernelState> state;
    if (store) {
        if (const auto stored = store->load_precision_calibration(key)) {
            runtime::DataTier tier =
                runtime::rebuild_data_tier(session, plan, stored->plans);
            if (!tier.variants.empty()) {
                auto candidate = std::make_unique<KernelState>(
                    name, std::move(tier.variants), metric, toq_percent,
                    config_.monitor, training_seeds);
                if (candidate->tuner.restore_calibration(
                        stored->calibration)) {
                    state = std::move(candidate);
                    metrics_.warm_data_tiers.fetch_add(
                        1, std::memory_order_relaxed);
                }
            }
        }
    }
    if (!state) {
        runtime::DataTier tier =
            runtime::build_data_tier(session, plan, options);
        state = std::make_unique<KernelState>(
            name, std::move(tier.variants), metric, toq_percent,
            config_.monitor, training_seeds);
        state->tuner.calibrate(training_seeds);
        if (store) {
            store::PrecisionCalibrationArtifact artifact;
            artifact.plans = std::move(tier.plans);
            artifact.calibration = state->tuner.calibration_state();
            artifact.toq = toq_percent;
            artifact.metric = to_string(metric);
            store->save_precision_calibration(key, artifact);
        }
    }
    install_kernel(std::move(state));
}

ApproxService::KernelState*
ApproxService::find_kernel(const std::string& name) const
{
    std::lock_guard<std::mutex> lock(kernels_mutex_);
    const auto it = kernels_.find(name);
    return it == kernels_.end() ? nullptr : it->second.get();
}

Ticket
ApproxService::submit(const std::string& kernel, std::uint64_t seed,
                      const SubmitOptions& options)
{
    Ticket ticket;
    if (stopped_.load(std::memory_order_acquire)) {
        metrics_.rejected_stopped.fetch_add(1, std::memory_order_relaxed);
        ticket.reject_reason = "service stopped";
        return ticket;
    }
    KernelState* state = find_kernel(kernel);
    if (state == nullptr) {
        metrics_.rejected_unknown.fetch_add(1, std::memory_order_relaxed);
        ticket.reject_reason = "unknown kernel `" + kernel + "`";
        return ticket;
    }
    if (options.deadline) {
        // Reject what cannot possibly be served in time: the budget is
        // gone, or the head-of-line request *in this kernel's shard* has
        // already waited longer than the budget this one has left (FIFO
        // within a shard: it waits at least as long).  Another kernel's
        // backlog is irrelevant — that is the point of sharding.
        // Shedding at admission is cheaper for the client than a
        // deadline_exceeded future seconds later.
        const auto now = std::chrono::steady_clock::now();
        if (now >= *options.deadline) {
            metrics_.rejected_deadline.fetch_add(1,
                                                 std::memory_order_relaxed);
            ticket.reject_reason = "deadline expired";
            return ticket;
        }
        if (const auto age = queue_.oldest_age(state->shard);
            age && *age > *options.deadline - now) {
            metrics_.rejected_deadline.fetch_add(1,
                                                 std::memory_order_relaxed);
            ticket.reject_reason = "deadline unmeetable behind backlog";
            return ticket;
        }
    }

    Job job;
    job.kernel = state;
    job.seed = seed;
    job.deadline = options.deadline;
    job.submitted_at = std::chrono::steady_clock::now();
    ticket.response = job.promise.get_future();

    // Count the admission before the push so a racing drain() cannot
    // observe completed > accepted, and raise the depth gauge before the
    // push so a worker's post-pop decrement cannot race it below zero;
    // undo both on rejection.
    {
        std::lock_guard<std::mutex> lock(flight_mutex_);
        ++flight_accepted_;
    }
    metrics_.queue_depth.fetch_add(1, std::memory_order_relaxed);
    const PushResult pushed = queue_.try_push(state->shard, std::move(job));
    if (pushed != PushResult::Ok) {
        metrics_.queue_depth.fetch_sub(1, std::memory_order_relaxed);
        {
            std::lock_guard<std::mutex> lock(flight_mutex_);
            --flight_accepted_;
        }
        flight_cv_.notify_all();
        if (pushed == PushResult::Full) {
            metrics_.rejected_full.fetch_add(1, std::memory_order_relaxed);
            ticket.reject_reason = to_string(pushed);
        } else {
            // Lost the race with stop(): the stopped_ pre-check passed
            // but the queue closed underneath us.  The client sees the
            // same reason as the pre-check path — "queue closed" leaked
            // an internal detail and made the two paths look like
            // different failures — while the dedicated counter keeps the
            // race observable.
            metrics_.rejected_closed_race.fetch_add(
                1, std::memory_order_relaxed);
            ticket.reject_reason = "service stopped";
        }
        ticket.response = {};
        return ticket;
    }

    metrics_.accepted.fetch_add(1, std::memory_order_relaxed);
    ticket.accepted = true;
    return ticket;
}

void
ApproxService::worker_loop(std::size_t worker_index)
{
    // Start each worker's shard scan at its own index so the pool fans
    // out across kernels instead of convoying on shard 0.
    std::size_t cursor = worker_index;
    ShardedQueue<Job>::PopOptions options;
    options.max_batch = config_.batching.max_batch;
    options.gather_window = config_.batching.gather_window;
    options.deadline_headroom = config_.batching.deadline_headroom;
    options.idle_timeout = config_.degradation.idle_tick;

    for (;;) {
        ShardedQueue<Job>::BatchPop batch =
            queue_.pop_batch(cursor, options);
        if (batch.outcome == ShardedQueue<Job>::PopOutcome::Closed)
            return;
        if (batch.outcome == ShardedQueue<Job>::PopOutcome::Idle) {
            // No traffic for a whole tick is the strongest relief signal
            // there is.  Feeding it into the ladder here is what lets a
            // service that degraded under a burst restore while idle —
            // pressure used to be evaluated only on dequeues, so a quiet
            // service stayed degraded until the next request arrived.
            update_pressure(0, 1);
            continue;
        }

        metrics_.queue_depth.fetch_sub(
            static_cast<std::int64_t>(batch.items.size()),
            std::memory_order_relaxed);
        // The shard's fill at the moment of the pop, weighted by how many
        // requests the pop drained: a batch of N is N requests' worth of
        // evidence, exactly as N singleton pops would have been.
        update_pressure(batch.items.size() + batch.remaining,
                        static_cast<int>(batch.items.size()));
        metrics_.batch.record(batch.items.size());

        // Chaos-testing site: stall this worker, as a slow variant or a
        // noisy neighbour would, to pressure deadlines and the ladder.
        // Consulted once per member — fault pacing and occurrence limits
        // must see every request whether or not it rode a batch.
        for (const Job& job : batch.items) {
            if (const double stall =
                    fault::latency_ms("serve.latency", job.kernel->name);
                stall > 0.0) {
                std::this_thread::sleep_for(
                    std::chrono::duration<double, std::milli>(stall));
            }
        }

        serve_batch(worker_index, *batch.items.front().kernel,
                    batch.items);
    }
}

void
ApproxService::update_pressure(std::size_t depth, int weight)
{
    if (!config_.degradation.enabled || weight <= 0)
        return;
    const double fill = static_cast<double>(depth) /
                        static_cast<double>(config_.queue_capacity);
    int new_level = -1;
    {
        std::lock_guard<std::mutex> lock(pressure_mutex_);
        if (fill >= config_.degradation.high_watermark) {
            high_streak_ += weight;
            low_streak_ = 0;
        } else if (fill <= config_.degradation.low_watermark) {
            low_streak_ += weight;
            high_streak_ = 0;
        } else {
            high_streak_ = 0;
            low_streak_ = 0;
        }
        if (high_streak_ >= config_.degradation.sustain &&
            degradation_level_ < config_.degradation.max_level) {
            ++degradation_level_;
            high_streak_ = 0;
            new_level = degradation_level_;
            metrics_.degrade_steps.fetch_add(1, std::memory_order_relaxed);
        } else if (low_streak_ >= config_.degradation.sustain &&
                   degradation_level_ > 0) {
            --degradation_level_;
            low_streak_ = 0;
            new_level = degradation_level_;
            metrics_.restore_steps.fetch_add(1, std::memory_order_relaxed);
        }
        if (new_level >= 0) {
            metrics_.degradation_level.store(new_level,
                                             std::memory_order_relaxed);
        }
    }
    if (new_level >= 0) {
        std::lock_guard<std::mutex> lock(kernels_mutex_);
        for (const auto& [name, state] : kernels_)
            state->tuner.set_degradation_level(new_level);
    }
}

Response
ApproxService::serve_one(KernelState& state, std::uint64_t seed,
                         const vm::CancelToken* cancel)
{
    Response response;
    if (state.recalibrating.load(std::memory_order_acquire) ||
        state.awaiting_adoption.load(std::memory_order_acquire)) {
        // The tuner is re-profiling (or a scale-out peer is, and this
        // replica is waiting to adopt its publish): keep serving with
        // the always-safe exact kernel rather than blocking (or
        // dropping) the request.
        response.run = state.tuner.run_exact(seed);
        response.served_by = "exact";
        metrics_.exact_while_recalibrating.fetch_add(
            1, std::memory_order_relaxed);
        return response;
    }

    // Half-open probing: when a quarantined variant's cooldown has
    // elapsed, ride a paced sample of requests to re-test it off the
    // client path.  The client always gets the exact output — a probe
    // never exposes a suspect variant to a caller — while the probe run
    // decides reinstatement.
    if (const int probe_index = state.tuner.probe_candidate();
        probe_index > 0 && state.monitor.admit_probe()) {
        response.run = state.tuner.run_exact(seed);
        response.served_by = "exact";
        const runtime::VariantRun probe =
            state.tuner.run_probe(probe_index, seed);
        const bool healthy =
            !probe.trapped &&
            runtime::quality_percent(state.metric, response.run.output,
                                     probe.output) >= state.toq;
        state.tuner.record_probe(probe_index, healthy);
        return response;
    }

    const auto start = std::chrono::steady_clock::now();
    runtime::ServedRun served;
    {
        // The token is armed around the primary serve only: the detours
        // above and the fallbacks below run exact, and exact is the
        // trusted tier — it always finishes on the VM's own instruction
        // budget.
        exec::CancelScope scope(cancel);
        served = state.tuner.serve(seed);
    }
    metrics_.launch_groups_completed.fetch_add(
        static_cast<std::uint64_t>(served.run.groups_completed),
        std::memory_order_relaxed);
    if (served.run.cancelled && cancel != nullptr) {
        bool hang_charged = false;
        return finish_cancelled(state, seed, served, *cancel, hang_charged);
    }
    observe_launch_wall(
        state, std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
                   .count());

    response.run = std::move(served.run);
    response.served_by = std::move(served.label);
    response.degraded = served.degraded;
    response.trap_fallback = served.trap_fallback;
    if (served.trap_fallback)
        metrics_.trap_fallbacks.fetch_add(1, std::memory_order_relaxed);
    if (served.degraded)
        metrics_.degraded_serves.fetch_add(1, std::memory_order_relaxed);

    // Shadow only clean approximate runs: auditing exact against itself
    // tells the monitor nothing, a trap fallback already reported its
    // failure, and a degraded serve is *expected* to miss the TOQ — a
    // deliberate load-shedding choice must not read as drift or count
    // against the variant's breaker.  The short-circuit also keeps
    // admit() from burning shadow slots on runs that cannot be audited.
    const bool shadow = served.index != 0 && !served.trap_fallback &&
                        !served.degraded && state.monitor.admit(seed);
    if (shadow) {
        const runtime::VariantRun exact = state.tuner.run_exact(seed);
        response.shadowed = true;
        response.shadow_quality = runtime::quality_percent(
            state.metric, exact.output, response.run.output);
        metrics_.shadow_runs.fetch_add(1, std::memory_order_relaxed);
        if (response.shadow_quality < state.toq) {
            metrics_.shadow_violations.fetch_add(1,
                                                 std::memory_order_relaxed);
            // A quality failure counts against the variant's breaker just
            // like a trap: K sustained misses quarantine it even before
            // the monitor's slower drift trigger fires.
            state.tuner.record_failure(served.index);
        }
        if (state.monitor.record(response.shadow_quality))
            trigger_recalibration(state, {});
    }
    return response;
}

void
ApproxService::serve_batch(std::size_t worker, KernelState& state,
                           std::vector<Job>& jobs)
{
    // Scatter members that expired while queued: resolve their futures
    // with a reason instead of wasting launch capacity on answers nobody
    // reads.  The rest of the batch is unaffected.
    const auto now = std::chrono::steady_clock::now();
    std::vector<Job*> live;
    live.reserve(jobs.size());
    for (Job& job : jobs) {
        if (job.deadline && now >= *job.deadline) {
            metrics_.deadline_expired.fetch_add(1,
                                                std::memory_order_relaxed);
            Response response;
            response.status = ServeStatus::DeadlineExceeded;
            job.promise.set_value(std::move(response));
            finish_one();
            continue;
        }
        live.push_back(&job);
    }
    if (live.empty())
        return;

    // Singleton, recalibration, and probe traffic takes the per-request
    // path: exact-while-recalibrating and half-open probing are
    // inherently per request (a probe rides one client request off the
    // hot path), and a batch of one has nothing to amortize.
    const bool watched = config_.watchdog.enabled;
    if (live.size() == 1 ||
        state.recalibrating.load(std::memory_order_acquire) ||
        state.awaiting_adoption.load(std::memory_order_acquire) ||
        state.tuner.probe_candidate() > 0) {
        for (Job* job : live) {
            // One flight per request on this path: requests run
            // sequentially, so a shared registration would let earlier
            // members' wall time count against later ones' hang ceiling.
            std::shared_ptr<vm::CancelToken> token;
            if (watched) {
                token = std::make_shared<vm::CancelToken>();
                WatchdogFlight flight;
                flight.started = std::chrono::steady_clock::now();
                flight.ceiling = hang_ceiling(state);
                flight.members.push_back({token, job->deadline});
                watchdog_.begin_flight(worker, std::move(flight));
            }
            try {
                Response response =
                    serve_one(state, job->seed, token.get());
                if (watched)
                    watchdog_.end_flight(worker);
                resolve_job(*job, std::move(response));
            } catch (...) {
                if (watched)
                    watchdog_.end_flight(worker);
                job->promise.set_exception(std::current_exception());
                finish_one();
            }
        }
        return;
    }

    std::vector<std::uint64_t> seeds;
    seeds.reserve(live.size());
    for (const Job* job : live)
        seeds.push_back(job->seed);

    // One watchdog flight for the whole coalesced launch, one token per
    // member in seeds order — the order launch_batch sees, which is what
    // lets the sweep scatter-cancel exactly the expired members.
    std::vector<std::shared_ptr<vm::CancelToken>> tokens;
    std::vector<const vm::CancelToken*> member_tokens;
    if (watched) {
        WatchdogFlight flight;
        flight.started = std::chrono::steady_clock::now();
        flight.ceiling = hang_ceiling(state);
        tokens.reserve(live.size());
        member_tokens.reserve(live.size());
        for (const Job* job : live) {
            auto token = std::make_shared<vm::CancelToken>();
            flight.members.push_back({token, job->deadline});
            member_tokens.push_back(token.get());
            tokens.push_back(std::move(token));
        }
        watchdog_.begin_flight(worker, std::move(flight));
    }

    const auto start = std::chrono::steady_clock::now();
    runtime::BatchServed batch;
    try {
        exec::BatchCancelScope scope(watched ? &member_tokens : nullptr);
        batch = state.tuner.serve_batch(seeds);
    } catch (...) {
        if (watched)
            watchdog_.end_flight(worker);
        const std::exception_ptr error = std::current_exception();
        for (Job* job : live) {
            job->promise.set_exception(error);
            finish_one();
        }
        return;
    }
    if (watched)
        watchdog_.end_flight(worker);
    const double batch_wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    const double amortized =
        batch_wall / static_cast<double>(live.size());

    bool any_cancelled = false;
    bool hang_charged = false;
    for (std::size_t i = 0; i < live.size(); ++i) {
        runtime::ServedRun& served = batch.runs[i];
        metrics_.batch_latency.record(amortized);
        metrics_.launch_groups_completed.fetch_add(
            static_cast<std::uint64_t>(served.run.groups_completed),
            std::memory_order_relaxed);
        if (served.run.cancelled && watched) {
            any_cancelled = true;
            resolve_job(*live[i],
                        finish_cancelled(state, live[i]->seed, served,
                                         *tokens[i], hang_charged));
            continue;
        }

        Response response;
        response.run = std::move(served.run);
        response.served_by = std::move(served.label);
        response.degraded = served.degraded;
        response.trap_fallback = served.trap_fallback;
        if (served.trap_fallback)
            metrics_.trap_fallbacks.fetch_add(1, std::memory_order_relaxed);
        if (served.degraded)
            metrics_.degraded_serves.fetch_add(1,
                                               std::memory_order_relaxed);

        // Per-member shadow sampling, same policy as serve_one: audit
        // only clean approximate runs, one admit() decision per request.
        const bool shadow = served.index != 0 && !served.trap_fallback &&
                            !served.degraded &&
                            state.monitor.admit(live[i]->seed);
        if (shadow) {
            const runtime::VariantRun exact =
                state.tuner.run_exact(live[i]->seed);
            response.shadowed = true;
            response.shadow_quality = runtime::quality_percent(
                state.metric, exact.output, response.run.output);
            metrics_.shadow_runs.fetch_add(1, std::memory_order_relaxed);
            if (response.shadow_quality < state.toq) {
                metrics_.shadow_violations.fetch_add(
                    1, std::memory_order_relaxed);
                state.tuner.record_failure(served.index);
            }
            if (state.monitor.record(response.shadow_quality))
                trigger_recalibration(state, {});
        }
        resolve_job(*live[i], std::move(response));
    }
    // A cancelled launch's wall clock says nothing about a healthy one —
    // the deadline/ceiling capped it — so only clean launches feed the
    // hang-ceiling EWMA.
    if (!any_cancelled)
        observe_launch_wall(state, batch_wall);
}

Response
ApproxService::finish_cancelled(KernelState& state, std::uint64_t seed,
                                const runtime::ServedRun& served,
                                const vm::CancelToken& cancel,
                                bool& hang_charged)
{
    Response response;
    if (cancel.reason() == vm::CancelReason::Watchdog) {
        // Hung launch: charge the variant's quarantine breaker like a
        // trap — once per launch, not once per batch member — and
        // re-serve exact outside any cancel scope, so the client still
        // gets an answer.  A variant that keeps spinning accumulates
        // breaker failures and gets quarantined, not re-served.
        metrics_.watchdog_cancels.fetch_add(1, std::memory_order_relaxed);
        if (!hang_charged && served.index > 0) {
            state.tuner.record_failure(served.index);
            hang_charged = true;
        }
        response.run = state.tuner.run_exact(seed);
        response.served_by = "exact";
        response.watchdog_fallback = true;
        metrics_.watchdog_fallbacks.fetch_add(1,
                                              std::memory_order_relaxed);
        return response;
    }
    // Deadline fired mid-launch: the launch stopped within one group
    // round and merged nothing; resolve DeadlineExceeded — the same
    // client view as expiring while queued, one group round later.
    metrics_.cancelled_launches.fetch_add(1, std::memory_order_relaxed);
    metrics_.deadline_expired.fetch_add(1, std::memory_order_relaxed);
    response.status = ServeStatus::DeadlineExceeded;
    return response;
}

std::chrono::steady_clock::duration
ApproxService::hang_ceiling(const KernelState& state) const
{
    const double expected =
        state.expected_launch_seconds.load(std::memory_order_relaxed);
    const auto floor = config_.watchdog.hang_floor;
    if (expected <= 0.0)
        return floor;
    const auto scaled =
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(
                expected * config_.watchdog.hang_multiplier));
    return scaled > floor ? scaled : floor;
}

void
ApproxService::observe_launch_wall(KernelState& state, double seconds)
{
    if (!(seconds > 0.0))
        return;
    // Racy read-modify-write on purpose: the EWMA is a heuristic input
    // to the hang ceiling, not an exact statistic.
    const double prev =
        state.expected_launch_seconds.load(std::memory_order_relaxed);
    const double next =
        prev <= 0.0 ? seconds : 0.8 * prev + 0.2 * seconds;
    state.expected_launch_seconds.store(next, std::memory_order_relaxed);
}

void
ApproxService::resolve_job(Job& job, Response response)
{
    if (response.status != ServeStatus::Ok) {
        // Deadline cancellation: the future resolves (exactly once, like
        // every job), but nothing was served — keep `served` honest,
        // mirroring the queued-expiry scatter path.
        job.promise.set_value(std::move(response));
        finish_one();
        return;
    }
    metrics_.latency.record(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      job.submitted_at)
            .count());
    metrics_.served.fetch_add(1, std::memory_order_relaxed);
    job.promise.set_value(std::move(response));
    finish_one();
}

void
ApproxService::recalibrate_kernel(const std::string& kernel,
                                  std::vector<std::uint64_t> seeds)
{
    KernelState* state = find_kernel(kernel);
    PARAPROX_CHECK(state != nullptr, "unknown kernel `" + kernel + "`");
    if (seeds.empty())
        seeds = state->training_seeds;
    trigger_recalibration(*state, std::move(seeds));
}

void
ApproxService::set_recalibration_gate(RecalibrationGate gate)
{
    std::lock_guard<std::mutex> lock(hooks_mutex_);
    recalibration_gate_ = std::move(gate);
}

void
ApproxService::set_calibration_publisher(CalibrationPublisher publisher)
{
    std::lock_guard<std::mutex> lock(hooks_mutex_);
    calibration_publisher_ = std::move(publisher);
}

bool
ApproxService::adopt_calibration(const std::string& kernel,
                                 const runtime::CalibrationState& calibration,
                                 const std::vector<std::string>& quarantined)
{
    KernelState* state = find_kernel(kernel);
    if (state == nullptr ||
        !state->tuner.restore_calibration(calibration)) {
        metrics_.adoption_rejects.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    // Verdict labels that no longer exist locally (module drift) are
    // skipped by adopt_quarantine; the calibration itself was already
    // validated against the live variant list.
    for (const auto& label : quarantined)
        state->tuner.adopt_quarantine(label);
    state->monitor.on_recalibrated();
    state->awaiting_adoption.store(false, std::memory_order_release);
    metrics_.adopted_calibrations.fetch_add(1, std::memory_order_relaxed);
    return true;
}

bool
ApproxService::awaiting_adoption(const std::string& kernel) const
{
    const KernelState* state = find_kernel(kernel);
    return state != nullptr &&
           state->awaiting_adoption.load(std::memory_order_acquire);
}

void
ApproxService::trigger_recalibration(KernelState& state,
                                     std::vector<std::uint64_t> seeds)
{
    if (state.recalibrating.exchange(true, std::memory_order_acq_rel))
        return;  // One re-profiling pass at a time per kernel.

    // Fleet arbitration: with a gate installed (scale-out), only the
    // drift-lease winner burns CPU on the re-profiling sweep; everyone
    // else either waits for its publish (serving exact meanwhile) or —
    // when the publish already landed — adopted it inside the gate and
    // just clears the drift evidence.
    RecalibrationGate gate;
    {
        std::lock_guard<std::mutex> lock(hooks_mutex_);
        gate = recalibration_gate_;
    }
    if (gate) {
        RecalibrationDecision decision = RecalibrationDecision::Proceed;
        try {
            decision = gate(state.name);
        } catch (...) {
            // A broken plane must not stop local recovery.
        }
        if (decision != RecalibrationDecision::Proceed) {
            if (decision == RecalibrationDecision::AwaitAdoption)
                state.awaiting_adoption.store(true,
                                              std::memory_order_release);
            metrics_.suppressed_recalibrations.fetch_add(
                1, std::memory_order_relaxed);
            state.monitor.on_recalibrated();
            state.recalibrating.store(false, std::memory_order_release);
            return;
        }
    }

    // A takeover re-drive reaches here with the awaiting flag still set
    // from the lost lease race; this replica now owns the event, so the
    // flag lifts when its own recalibration completes, not on adoption.
    state.awaiting_adoption.store(false, std::memory_order_release);
    metrics_.recalibrations.fetch_add(1, std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(flight_mutex_);
        ++pending_recalibrations_;
    }
    ThreadPool::global().submit([this, &state,
                                 seeds = std::move(seeds)]() mutable {
        // Re-profile on the inputs that actually drifted; fall back to
        // the registration seeds if the monitor saw too few.
        if (seeds.empty())
            seeds = state.monitor.recent_seeds();
        if (seeds.empty())
            seeds = state.training_seeds;
        bool recalibrated = true;
        try {
            state.tuner.recalibrate(seeds);
        } catch (...) {
            // An exact-kernel trap during re-profiling leaves the
            // previous selection standing; serving continues either way.
            recalibrated = false;
        }
        if (recalibrated) {
            // Share a won recalibration with the fleet before lifting
            // the exact detour, so peers can adopt the same state the
            // moment this replica resumes approximate serving.
            CalibrationPublisher publisher;
            {
                std::lock_guard<std::mutex> lock(hooks_mutex_);
                publisher = calibration_publisher_;
            }
            if (publisher) {
                try {
                    publisher(state.name, state.tuner.calibration_state(),
                              state.tuner.quarantined_labels());
                } catch (...) {
                    // Publishing is best-effort; peers fall back to
                    // their own lease-stealing recalibration.
                }
            }
        }
        state.monitor.on_recalibrated();
        state.recalibrating.store(false, std::memory_order_release);
        // Notify under the lock: this task runs on the global pool, which
        // outlives the service, so a drain()ing destructor must not be
        // able to finish (and destroy the cv) mid-notify.
        std::lock_guard<std::mutex> lock(flight_mutex_);
        --pending_recalibrations_;
        flight_cv_.notify_all();
    });
}

void
ApproxService::finish_one()
{
    {
        std::lock_guard<std::mutex> lock(flight_mutex_);
        ++flight_completed_;
    }
    flight_cv_.notify_all();
}

void
ApproxService::drain()
{
    std::unique_lock<std::mutex> lock(flight_mutex_);
    flight_cv_.wait(lock, [this] {
        return flight_completed_ == flight_accepted_ &&
               pending_recalibrations_ == 0;
    });
}

void
ApproxService::stop()
{
    // stopped_ turns submit() away before the queue close makes it
    // definitive; the mutex serializes concurrent stop() calls so a
    // second caller waits out the first's joins instead of racing
    // joinable()/join() on the same threads.
    stopped_.store(true, std::memory_order_release);
    queue_.close();
    std::lock_guard<std::mutex> lock(stop_mutex_);
    for (auto& worker : workers_) {
        if (worker.joinable())
            worker.join();
    }
    // After the joins no flight can be registered; idempotent like the
    // rest of stop().
    watchdog_.stop();
    drain();
}

KernelSnapshot
ApproxService::snapshot_kernel(const KernelState& state) const
{
    KernelSnapshot out;
    out.kernel = state.name;
    out.queue_depth = queue_.shard_size(state.shard);
    out.selected = state.tuner.selected_label_snapshot();
    out.recalibrating = state.recalibrating.load(std::memory_order_acquire);
    out.awaiting_adoption =
        state.awaiting_adoption.load(std::memory_order_acquire);
    out.degradation_level = state.tuner.degradation_level();
    out.tuner = state.tuner.stats_snapshot();
    out.monitor = state.monitor.snapshot();
    out.breakers = state.tuner.breaker_snapshot();
    if (state.pipeline_stats) {
        const auto& stats = *state.pipeline_stats;
        out.stages.reserve(stats.num_stages());
        for (std::size_t s = 0; s < stats.num_stages(); ++s)
            out.stages.push_back({stats.stage_names()[s], stats.traps(s)});
    }
    return out;
}

ServiceSnapshot
ApproxService::snapshot() const
{
    ServiceSnapshot out;
    out.metrics = metrics_.snapshot();
    std::lock_guard<std::mutex> lock(kernels_mutex_);
    out.kernels.reserve(kernels_.size());
    for (const auto& [name, state] : kernels_) {
        out.kernels.push_back(snapshot_kernel(*state));
        const runtime::TunerStats& tuner = out.kernels.back().tuner;
        out.metrics.backoffs += tuner.backoffs;
        out.metrics.quarantines += tuner.quarantines;
        out.metrics.reinstatements += tuner.reinstatements;
        out.metrics.probes += tuner.probes;
    }
    return out;
}

KernelSnapshot
ApproxService::kernel_snapshot(const std::string& kernel) const
{
    const KernelState* state = find_kernel(kernel);
    PARAPROX_CHECK(state != nullptr,
                   "unknown kernel `" + kernel + "`");
    return snapshot_kernel(*state);
}

}  // namespace paraprox::serve
