#include "serve/service.h"

#include <chrono>

#include "runtime/quality.h"
#include "support/error.h"
#include "support/parallel.h"

namespace paraprox::serve {

namespace {

std::size_t
resolve_workers(std::size_t requested)
{
    if (requested != 0)
        return requested;
    if (const std::size_t env = thread_override_from_env())
        return env;
    const std::size_t hw = std::thread::hardware_concurrency();
    return hw != 0 ? hw : 4;
}

}  // namespace

ApproxService::ApproxService(ServiceConfig config)
    : config_(config), queue_(config.queue_capacity)
{
    PARAPROX_CHECK(config_.queue_capacity > 0,
                   "queue capacity must be positive");
    const std::size_t count = resolve_workers(config_.num_workers);
    workers_.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        workers_.emplace_back([this] { worker_loop(); });
}

ApproxService::~ApproxService()
{
    stop();
}

void
ApproxService::register_kernel(
    const std::string& name, std::vector<runtime::Variant> variants,
    runtime::Metric metric, double toq_percent,
    const std::vector<std::uint64_t>& training_seeds,
    std::optional<store::StoreKey> warm_key)
{
    auto state = std::make_unique<KernelState>(
        name, std::move(variants), metric, toq_percent, config_.monitor,
        training_seeds);
    // Calibration below still runs the instrumented closures (it needs
    // modeled cycles); the mode only governs how workers serve requests.
    state->tuner.set_serving_mode(config_.exec_mode);

    const auto store =
        warm_key ? store::ArtifactStore::global() : nullptr;
    bool warm = false;
    if (store) {
        if (const auto stored = store->load_calibration(*warm_key))
            warm = state->tuner.restore_calibration(*stored);
    }
    if (warm) {
        metrics_.warm_registrations.fetch_add(1,
                                              std::memory_order_relaxed);
    } else {
        state->tuner.calibrate(training_seeds);
        if (store)
            store->save_calibration(*warm_key,
                                    state->tuner.calibration_state());
    }

    std::lock_guard<std::mutex> lock(kernels_mutex_);
    const bool inserted =
        kernels_.emplace(name, std::move(state)).second;
    PARAPROX_CHECK(inserted,
                   "kernel `" + name + "` is already registered");
}

ApproxService::KernelState*
ApproxService::find_kernel(const std::string& name) const
{
    std::lock_guard<std::mutex> lock(kernels_mutex_);
    const auto it = kernels_.find(name);
    return it == kernels_.end() ? nullptr : it->second.get();
}

Ticket
ApproxService::submit(const std::string& kernel, std::uint64_t seed)
{
    Ticket ticket;
    if (stopped_.load(std::memory_order_acquire)) {
        metrics_.rejected_stopped.fetch_add(1, std::memory_order_relaxed);
        ticket.reject_reason = "service stopped";
        return ticket;
    }
    KernelState* state = find_kernel(kernel);
    if (state == nullptr) {
        metrics_.rejected_unknown.fetch_add(1, std::memory_order_relaxed);
        ticket.reject_reason = "unknown kernel `" + kernel + "`";
        return ticket;
    }

    Job job;
    job.kernel = state;
    job.seed = seed;
    ticket.response = job.promise.get_future();

    // Count the admission before the push so a racing drain() cannot
    // observe completed > accepted; undo on rejection.
    {
        std::lock_guard<std::mutex> lock(flight_mutex_);
        ++flight_accepted_;
    }
    const PushResult pushed = queue_.try_push(std::move(job));
    if (pushed != PushResult::Ok) {
        {
            std::lock_guard<std::mutex> lock(flight_mutex_);
            --flight_accepted_;
        }
        flight_cv_.notify_all();
        if (pushed == PushResult::Full)
            metrics_.rejected_full.fetch_add(1, std::memory_order_relaxed);
        else
            metrics_.rejected_stopped.fetch_add(1,
                                                std::memory_order_relaxed);
        ticket.reject_reason = to_string(pushed);
        ticket.response = {};
        return ticket;
    }

    metrics_.accepted.fetch_add(1, std::memory_order_relaxed);
    metrics_.queue_depth.fetch_add(1, std::memory_order_relaxed);
    ticket.accepted = true;
    return ticket;
}

void
ApproxService::worker_loop()
{
    Job job;
    while (queue_.pop(job)) {
        metrics_.queue_depth.fetch_sub(1, std::memory_order_relaxed);
        const auto start = std::chrono::steady_clock::now();
        try {
            Response response = serve_one(*job.kernel, job.seed);
            metrics_.latency.record(
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count());
            metrics_.served.fetch_add(1, std::memory_order_relaxed);
            job.promise.set_value(std::move(response));
        } catch (...) {
            job.promise.set_exception(std::current_exception());
        }
        finish_one();
    }
}

Response
ApproxService::serve_one(KernelState& state, std::uint64_t seed)
{
    Response response;
    if (state.recalibrating.load(std::memory_order_acquire)) {
        // The tuner is re-profiling: keep serving with the always-safe
        // exact kernel rather than blocking (or dropping) the request.
        response.run = state.tuner.run_exact(seed);
        response.served_by = "exact";
        metrics_.exact_while_recalibrating.fetch_add(
            1, std::memory_order_relaxed);
        return response;
    }

    // Ask the monitor for a shadow slot only when the selection is
    // approximate: admitting on an exact selection would burn a slot of
    // the monitor's sampling window on a run that can never be audited,
    // starving it during long exact stretches.  (The selection can still
    // change between this check and the run — that race only costs or
    // spares a single slot, never audits exact against itself, because
    // the audit below re-checks what actually ran.)
    const bool shadow = state.tuner.selected_index_snapshot() != 0 &&
                        state.monitor.admit(seed);

    // Take the served label from the same snapshot as the run itself: a
    // concurrent backoff between the run and a later label read could
    // name a variant this request never executed.
    std::string served_label;
    int served_index = 0;
    response.run =
        state.tuner.run_selected(seed, &served_label, &served_index);
    response.served_by = std::move(served_label);

    // Shadow only approximate runs: auditing exact against itself would
    // tell the monitor nothing (the run may have fallen back to exact on
    // a trap even when the selection was approximate).
    if (shadow && served_index != 0) {
        const runtime::VariantRun exact = state.tuner.run_exact(seed);
        response.shadowed = true;
        response.shadow_quality = runtime::quality_percent(
            state.metric, exact.output, response.run.output);
        metrics_.shadow_runs.fetch_add(1, std::memory_order_relaxed);
        if (response.shadow_quality < state.toq)
            metrics_.shadow_violations.fetch_add(1,
                                                 std::memory_order_relaxed);
        if (state.monitor.record(response.shadow_quality))
            trigger_recalibration(state, {});
    }
    return response;
}

void
ApproxService::recalibrate_kernel(const std::string& kernel,
                                  std::vector<std::uint64_t> seeds)
{
    KernelState* state = find_kernel(kernel);
    PARAPROX_CHECK(state != nullptr, "unknown kernel `" + kernel + "`");
    if (seeds.empty())
        seeds = state->training_seeds;
    trigger_recalibration(*state, std::move(seeds));
}

void
ApproxService::trigger_recalibration(KernelState& state,
                                     std::vector<std::uint64_t> seeds)
{
    if (state.recalibrating.exchange(true, std::memory_order_acq_rel))
        return;  // One re-profiling pass at a time per kernel.
    metrics_.recalibrations.fetch_add(1, std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(flight_mutex_);
        ++pending_recalibrations_;
    }
    ThreadPool::global().submit([this, &state,
                                 seeds = std::move(seeds)]() mutable {
        // Re-profile on the inputs that actually drifted; fall back to
        // the registration seeds if the monitor saw too few.
        if (seeds.empty())
            seeds = state.monitor.recent_seeds();
        if (seeds.empty())
            seeds = state.training_seeds;
        try {
            state.tuner.recalibrate(seeds);
        } catch (...) {
            // An exact-kernel trap during re-profiling leaves the
            // previous selection standing; serving continues either way.
        }
        state.monitor.on_recalibrated();
        state.recalibrating.store(false, std::memory_order_release);
        // Notify under the lock: this task runs on the global pool, which
        // outlives the service, so a drain()ing destructor must not be
        // able to finish (and destroy the cv) mid-notify.
        std::lock_guard<std::mutex> lock(flight_mutex_);
        --pending_recalibrations_;
        flight_cv_.notify_all();
    });
}

void
ApproxService::finish_one()
{
    {
        std::lock_guard<std::mutex> lock(flight_mutex_);
        ++flight_completed_;
    }
    flight_cv_.notify_all();
}

void
ApproxService::drain()
{
    std::unique_lock<std::mutex> lock(flight_mutex_);
    flight_cv_.wait(lock, [this] {
        return flight_completed_ == flight_accepted_ &&
               pending_recalibrations_ == 0;
    });
}

void
ApproxService::stop()
{
    stopped_.store(true, std::memory_order_release);
    queue_.close();
    for (auto& worker : workers_) {
        if (worker.joinable())
            worker.join();
    }
    drain();
}

KernelSnapshot
ApproxService::snapshot_kernel(const KernelState& state)
{
    KernelSnapshot out;
    out.kernel = state.name;
    out.selected = state.tuner.selected_label_snapshot();
    out.recalibrating = state.recalibrating.load(std::memory_order_acquire);
    out.tuner = state.tuner.stats_snapshot();
    out.monitor = state.monitor.snapshot();
    return out;
}

ServiceSnapshot
ApproxService::snapshot() const
{
    ServiceSnapshot out;
    out.metrics = metrics_.snapshot();
    std::lock_guard<std::mutex> lock(kernels_mutex_);
    out.kernels.reserve(kernels_.size());
    for (const auto& [name, state] : kernels_) {
        out.kernels.push_back(snapshot_kernel(*state));
        out.metrics.backoffs += out.kernels.back().tuner.backoffs;
    }
    return out;
}

KernelSnapshot
ApproxService::kernel_snapshot(const std::string& kernel) const
{
    const KernelState* state = find_kernel(kernel);
    PARAPROX_CHECK(state != nullptr,
                   "unknown kernel `" + kernel + "`");
    return snapshot_kernel(*state);
}

}  // namespace paraprox::serve
