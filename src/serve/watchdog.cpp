#include "serve/watchdog.h"

namespace paraprox::serve {

Watchdog::Watchdog(WatchdogConfig config) : config_(config) {}

Watchdog::~Watchdog()
{
    stop();
}

void
Watchdog::start(std::size_t num_workers)
{
    if (!config_.enabled)
        return;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        slots_.resize(num_workers);
    }
    {
        std::lock_guard<std::mutex> lock(stop_mutex_);
        if (started_)
            return;
        started_ = true;
        stopping_ = false;
    }
    sweeper_ = std::thread([this] { loop(); });
}

void
Watchdog::stop()
{
    {
        std::lock_guard<std::mutex> lock(stop_mutex_);
        if (!started_)
            return;
        stopping_ = true;
    }
    stop_cv_.notify_all();
    if (sweeper_.joinable())
        sweeper_.join();
    std::lock_guard<std::mutex> lock(stop_mutex_);
    started_ = false;
}

void
Watchdog::begin_flight(std::size_t worker, WatchdogFlight flight)
{
    if (!config_.enabled)
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    if (worker >= slots_.size())
        slots_.resize(worker + 1);
    Slot& slot = slots_[worker];
    slot.active = true;
    slot.hang_fired = false;
    slot.flight = std::move(flight);
}

void
Watchdog::end_flight(std::size_t worker)
{
    if (!config_.enabled)
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    if (worker >= slots_.size())
        return;
    slots_[worker].active = false;
    slots_[worker].flight = {};
}

void
Watchdog::sweep_now()
{
    sweep(std::chrono::steady_clock::now());
}

void
Watchdog::sweep(std::chrono::steady_clock::time_point now)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (Slot& slot : slots_) {
        if (!slot.active)
            continue;

        // Expired members first: a deadline cancel is per-member
        // (scatter-cancel), and first-reason-wins in the token keeps a
        // later hang sweep from relabeling it.
        for (WatchdogFlight::Member& member : slot.flight.members) {
            if (!member.token || !member.deadline)
                continue;
            if (*member.deadline <= now &&
                member.token->cancel(vm::CancelReason::Deadline)) {
                deadline_cancels_.fetch_add(1, std::memory_order_relaxed);
            }
        }

        // Whole-launch hang: past the ceiling, every member goes —
        // the worker thread is parked inside this one launch, so no
        // member can be served out of it anyway.
        if (!slot.hang_fired && slot.flight.ceiling.count() > 0 &&
            now - slot.flight.started > slot.flight.ceiling) {
            slot.hang_fired = true;
            bool fired = false;
            for (WatchdogFlight::Member& member : slot.flight.members) {
                if (member.token &&
                    member.token->cancel(vm::CancelReason::Watchdog))
                    fired = true;
            }
            // One hang event per launch, however many members ride it
            // (members already cancelled for their own deadline keep
            // that verdict and do not re-count).
            if (fired)
                hang_cancels_.fetch_add(1, std::memory_order_relaxed);
        }
    }
}

void
Watchdog::loop()
{
    std::unique_lock<std::mutex> lock(stop_mutex_);
    while (!stopping_) {
        stop_cv_.wait_for(lock, config_.tick,
                          [this] { return stopping_; });
        if (stopping_)
            break;
        lock.unlock();
        sweep(std::chrono::steady_clock::now());
        lock.lock();
    }
}

}  // namespace paraprox::serve
