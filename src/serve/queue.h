/// @file
/// Bounded MPMC queues with reject-on-full backpressure.
///
/// The serving subsystem never blocks a producer: when the queue is at
/// capacity, try_push fails immediately with a reason the caller can
/// surface to its client (shed load at the edge instead of letting an
/// unbounded backlog grow — the paper's runtime budget only holds if
/// admission is bounded).  Consumers block; close() lets them drain what
/// was admitted and then exit, which is what "stop without dropping
/// queued requests" means.
///
/// Two shapes live here: the original single-deque BoundedQueue, and the
/// per-kernel ShardedQueue whose consumers pop whole same-shard batches
/// (with a deadline-bounded gather window) so one launch can serve many
/// coalesced requests.

#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

namespace paraprox::serve {

/// Why a push was (or was not) admitted.
enum class PushResult {
    Ok,      ///< Enqueued.
    Full,    ///< At capacity; retry later or shed the request.
    Closed,  ///< close() was called; no further admissions.
};

inline const char*
to_string(PushResult result)
{
    switch (result) {
      case PushResult::Ok: return "ok";
      case PushResult::Full: return "queue full";
      case PushResult::Closed: return "queue closed";
    }
    return "<bad-push-result>";
}

/// Mutex-based bounded multi-producer multi-consumer queue.
template <typename T>
class BoundedQueue {
  public:
    explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

    BoundedQueue(const BoundedQueue&) = delete;
    BoundedQueue& operator=(const BoundedQueue&) = delete;

    /// Non-blocking admission: enqueue @p item or say why not.  This is
    /// the backpressure point — it never waits.
    PushResult try_push(T item)
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (closed_)
                return PushResult::Closed;
            if (items_.size() >= capacity_)
                return PushResult::Full;
            items_.push_back(
                {std::move(item), std::chrono::steady_clock::now()});
        }
        ready_.notify_one();
        return PushResult::Ok;
    }

    /// Blocking consumer side: waits until an item is available or the
    /// queue is closed and drained.  Returns false only in the latter
    /// case (the consumer should exit).
    bool pop(T& out)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        ready_.wait(lock, [this] { return closed_ || !items_.empty(); });
        if (items_.empty())
            return false;
        out = std::move(items_.front().item);
        items_.pop_front();
        return true;
    }

    /// How long the head-of-line item has been waiting, or nullopt when
    /// the queue is empty.  A new admission waits at least this long
    /// (FIFO), which is what deadline-aware admission needs to reject
    /// requests that cannot possibly be served in time.
    std::optional<std::chrono::steady_clock::duration> oldest_age() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (items_.empty())
            return std::nullopt;
        return std::chrono::steady_clock::now() - items_.front().at;
    }

    /// Refuse new admissions; already-queued items remain poppable.
    void close()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            closed_ = true;
        }
        ready_.notify_all();
    }

    std::size_t size() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return items_.size();
    }

    std::size_t capacity() const { return capacity_; }

  private:
    /// Queued item plus its admission time, for oldest_age().
    struct Entry {
        T item;
        std::chrono::steady_clock::time_point at;
    };

    const std::size_t capacity_;
    mutable std::mutex mutex_;
    std::condition_variable ready_;
    std::deque<Entry> items_;
    bool closed_ = false;
};

/// Per-kernel sharded MPMC queue with batch pop.
///
/// Every kernel owns a shard (its own mutex, deque, and arrival CV), so
/// producers targeting different kernels never contend on one lock and a
/// hot kernel's backlog cannot convoy everyone else's.  Consumers scan
/// shards round-robin and pop a whole same-shard batch at once; when the
/// first pop undershoots max_batch, they hold the shard open for a gather
/// window — bounded by the tightest deadline among the batch members —
/// so closely spaced same-kernel requests coalesce into one launch.
///
/// Capacity is per shard: each kernel gets its own admission budget, and
/// oldest_age(shard) answers deadline-aware admission against the shard
/// the request would actually wait in, not a global backlog.
template <typename T>
class ShardedQueue {
  public:
    /// Extracts a batch member's absolute deadline (nullopt = none); used
    /// to bound the gather window.  May be empty when no caller attaches
    /// deadlines.
    using DeadlineOf = std::function<
        std::optional<std::chrono::steady_clock::time_point>(const T&)>;

    explicit ShardedQueue(std::size_t capacity_per_shard,
                          DeadlineOf deadline_of = {})
        : capacity_(capacity_per_shard),
          deadline_of_(std::move(deadline_of))
    {
    }

    ShardedQueue(const ShardedQueue&) = delete;
    ShardedQueue& operator=(const ShardedQueue&) = delete;

    /// How one pop_batch() resolved.
    enum class PopOutcome {
        Batch,   ///< items holds >= 1 same-shard entries.
        Idle,    ///< idle_timeout elapsed with nothing admitted.
        Closed,  ///< Closed and fully drained; the consumer should exit.
    };

    struct PopOptions {
        /// Most entries one pop may coalesce.  1 = no batching.
        std::size_t max_batch = 1;
        /// How long an undersized batch holds its shard open for late
        /// same-kernel arrivals.  Zero = take what is there and go.
        std::chrono::steady_clock::duration gather_window{};
        /// Safety margin subtracted from member deadlines when they bound
        /// the gather window.
        std::chrono::steady_clock::duration deadline_headroom{};
        /// How long an idle consumer waits before PopOutcome::Idle gives
        /// it a turn (services use the tick for pressure relief).
        std::chrono::steady_clock::duration idle_timeout =
            std::chrono::milliseconds(10);
    };

    struct BatchPop {
        PopOutcome outcome = PopOutcome::Idle;
        std::size_t shard = 0;         ///< Valid when outcome == Batch.
        std::vector<T> items;
        std::size_t remaining = 0;     ///< Shard depth right after the pop.
    };

    /// Create a new shard and return its index.  Thread-safe; existing
    /// shard indices stay valid forever.
    std::size_t add_shard()
    {
        std::lock_guard<std::mutex> lock(sync_mutex_);
        shards_.push_back(std::make_unique<Shard>());
        return shards_.size() - 1;
    }

    std::size_t num_shards() const
    {
        std::lock_guard<std::mutex> lock(sync_mutex_);
        return shards_.size();
    }

    /// Non-blocking admission into @p shard.  The pending count is raised
    /// before the shard sees the item (and lowered again on a full
    /// shard), so an observer can never catch the total below the number
    /// of items actually admitted — the same discipline the service uses
    /// for its queue-depth gauge.
    PushResult try_push(std::size_t shard, T item)
    {
        Shard* target = nullptr;
        {
            std::lock_guard<std::mutex> lock(sync_mutex_);
            if (closed_.load(std::memory_order_relaxed))
                return PushResult::Closed;
            target = shards_[shard].get();
            ++pending_;
        }
        {
            std::lock_guard<std::mutex> lock(target->mutex);
            if (target->items.size() >= capacity_) {
                std::lock_guard<std::mutex> undo(sync_mutex_);
                --pending_;
                return PushResult::Full;
            }
            target->items.push_back(
                {std::move(item), std::chrono::steady_clock::now()});
        }
        ready_.notify_one();
        target->arrival.notify_all();
        return PushResult::Ok;
    }

    /// Blocking consumer side: wait until something is admitted (or the
    /// queue closes, or idle_timeout passes), claim the first non-empty
    /// shard at/after @p cursor, and gather up to max_batch entries from
    /// it.  @p cursor advances past the claimed shard so a consumer
    /// rotates fairly instead of camping on shard 0.
    BatchPop pop_batch(std::size_t& cursor, const PopOptions& options)
    {
        BatchPop out;
        std::unique_lock<std::mutex> sync(sync_mutex_);
        for (;;) {
            if (pending_ == 0) {
                if (closed_.load(std::memory_order_relaxed)) {
                    out.outcome = PopOutcome::Closed;
                    return out;
                }
                const bool admitted = ready_.wait_for(
                    sync, options.idle_timeout, [this] {
                        return pending_ > 0 ||
                               closed_.load(std::memory_order_relaxed);
                    });
                if (!admitted) {
                    out.outcome = PopOutcome::Idle;
                    return out;
                }
                continue;
            }

            // Snapshot stable shard pointers, then scan without the sync
            // lock — shard mutexes are never nested inside it.
            std::vector<Shard*> shards;
            shards.reserve(shards_.size());
            for (const auto& shard : shards_)
                shards.push_back(shard.get());
            sync.unlock();

            for (std::size_t step = 0; step < shards.size(); ++step) {
                const std::size_t index =
                    (cursor + step) % shards.size();
                Shard& shard = *shards[index];
                std::unique_lock<std::mutex> lock(shard.mutex);
                if (shard.items.empty())
                    continue;
                gather_locked(shard, lock, options, out.items);
                out.remaining = shard.items.size();
                lock.unlock();

                out.outcome = PopOutcome::Batch;
                out.shard = index;
                cursor = index + 1;
                std::lock_guard<std::mutex> done(sync_mutex_);
                pending_ -= out.items.size();
                return out;
            }

            // pending_ was raised by a producer that has not landed its
            // item in a shard yet (or a full-shard undo is in flight);
            // the window is a few instructions, so wait it out briefly.
            sync.lock();
            if (pending_ > 0 &&
                !closed_.load(std::memory_order_relaxed)) {
                ready_.wait_for(sync, std::chrono::microseconds(100));
            }
        }
    }

    /// How long @p shard's head-of-line entry has been waiting, or
    /// nullopt when the shard is empty.  FIFO within a shard: a new
    /// admission waits at least this long.
    std::optional<std::chrono::steady_clock::duration>
    oldest_age(std::size_t shard) const
    {
        Shard* target = nullptr;
        {
            std::lock_guard<std::mutex> lock(sync_mutex_);
            target = shards_[shard].get();
        }
        std::lock_guard<std::mutex> lock(target->mutex);
        if (target->items.empty())
            return std::nullopt;
        return std::chrono::steady_clock::now() -
               target->items.front().at;
    }

    std::size_t shard_size(std::size_t shard) const
    {
        Shard* target = nullptr;
        {
            std::lock_guard<std::mutex> lock(sync_mutex_);
            target = shards_[shard].get();
        }
        std::lock_guard<std::mutex> lock(target->mutex);
        return target->items.size();
    }

    /// Entries admitted and not yet claimed by a pop, across all shards
    /// (a batch mid-gather still counts until its pop completes).
    std::size_t size() const
    {
        std::lock_guard<std::mutex> lock(sync_mutex_);
        return pending_;
    }

    std::size_t capacity() const { return capacity_; }

    /// Refuse new admissions; queued entries remain poppable and
    /// consumers mid-gather cut their window short.
    void close()
    {
        std::vector<Shard*> shards;
        {
            std::lock_guard<std::mutex> lock(sync_mutex_);
            closed_.store(true, std::memory_order_relaxed);
            shards.reserve(shards_.size());
            for (const auto& shard : shards_)
                shards.push_back(shard.get());
        }
        ready_.notify_all();
        for (Shard* shard : shards) {
            // Take the lock empty so a gather waiter cannot sleep
            // through the flag flip, then wake it.
            { std::lock_guard<std::mutex> lock(shard->mutex); }
            shard->arrival.notify_all();
        }
    }

  private:
    struct Entry {
        T item;
        std::chrono::steady_clock::time_point at;
    };

    struct Shard {
        std::mutex mutex;
        std::condition_variable arrival;
        std::deque<Entry> items;
    };

    /// Claim up to max_batch entries from @p shard (mutex held via
    /// @p lock), holding it open for the gather window when the first
    /// sweep undershoots.  The window never extends past the tightest
    /// member deadline minus the headroom: a batch must launch while its
    /// most urgent member can still make it.
    void gather_locked(Shard& shard, std::unique_lock<std::mutex>& lock,
                       const PopOptions& options, std::vector<T>& items)
    {
        using clock = std::chrono::steady_clock;
        const std::size_t max_batch =
            options.max_batch == 0 ? 1 : options.max_batch;
        auto window_end = clock::time_point::max();
        bool window_open = options.gather_window.count() > 0;
        if (window_open)
            window_end = clock::now() + options.gather_window;

        const auto take = [&] {
            while (!shard.items.empty() && items.size() < max_batch) {
                if (deadline_of_) {
                    if (const auto deadline =
                            deadline_of_(shard.items.front().item)) {
                        const auto cutoff =
                            *deadline - options.deadline_headroom;
                        // A member whose cutoff has already passed
                        // closes the window outright: the batch must
                        // launch now.  Merely lowering window_end would
                        // hand wait_until a stamp in the past — a
                        // degenerate wait the loop then has to notice
                        // against a fresh clock read.
                        if (cutoff <= clock::now())
                            window_open = false;
                        else if (cutoff < window_end)
                            window_end = cutoff;
                    }
                }
                items.push_back(std::move(shard.items.front().item));
                shard.items.pop_front();
            }
        };

        take();
        while (window_open && items.size() < max_batch &&
               !closed_.load(std::memory_order_relaxed)) {
            const auto now = clock::now();
            if (now >= window_end)
                break;
            shard.arrival.wait_until(lock, window_end);
            take();
        }
    }

    const std::size_t capacity_;
    const DeadlineOf deadline_of_;

    /// Guards shards_ growth, pending_, and the closed flip.  Lock
    /// order: sync_mutex_ may be taken while holding a shard mutex (the
    /// full-shard undo), never the reverse — pop/close release it before
    /// touching shard mutexes.
    mutable std::mutex sync_mutex_;
    std::condition_variable ready_;
    std::vector<std::unique_ptr<Shard>> shards_;
    std::size_t pending_ = 0;
    /// Written under sync_mutex_; atomic so gather waiters (holding only
    /// a shard mutex) can read it without inverting the lock order.
    std::atomic<bool> closed_{false};
};

}  // namespace paraprox::serve
