/// @file
/// A bounded MPMC queue with reject-on-full backpressure.
///
/// The serving subsystem never blocks a producer: when the queue is at
/// capacity, try_push fails immediately with a reason the caller can
/// surface to its client (shed load at the edge instead of letting an
/// unbounded backlog grow — the paper's runtime budget only holds if
/// admission is bounded).  Consumers block; close() lets them drain what
/// was admitted and then exit, which is what "stop without dropping
/// queued requests" means.

#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>

namespace paraprox::serve {

/// Why a push was (or was not) admitted.
enum class PushResult {
    Ok,      ///< Enqueued.
    Full,    ///< At capacity; retry later or shed the request.
    Closed,  ///< close() was called; no further admissions.
};

inline const char*
to_string(PushResult result)
{
    switch (result) {
      case PushResult::Ok: return "ok";
      case PushResult::Full: return "queue full";
      case PushResult::Closed: return "queue closed";
    }
    return "<bad-push-result>";
}

/// Mutex-based bounded multi-producer multi-consumer queue.
template <typename T>
class BoundedQueue {
  public:
    explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

    BoundedQueue(const BoundedQueue&) = delete;
    BoundedQueue& operator=(const BoundedQueue&) = delete;

    /// Non-blocking admission: enqueue @p item or say why not.  This is
    /// the backpressure point — it never waits.
    PushResult try_push(T item)
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (closed_)
                return PushResult::Closed;
            if (items_.size() >= capacity_)
                return PushResult::Full;
            items_.push_back(
                {std::move(item), std::chrono::steady_clock::now()});
        }
        ready_.notify_one();
        return PushResult::Ok;
    }

    /// Blocking consumer side: waits until an item is available or the
    /// queue is closed and drained.  Returns false only in the latter
    /// case (the consumer should exit).
    bool pop(T& out)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        ready_.wait(lock, [this] { return closed_ || !items_.empty(); });
        if (items_.empty())
            return false;
        out = std::move(items_.front().item);
        items_.pop_front();
        return true;
    }

    /// How long the head-of-line item has been waiting, or nullopt when
    /// the queue is empty.  A new admission waits at least this long
    /// (FIFO), which is what deadline-aware admission needs to reject
    /// requests that cannot possibly be served in time.
    std::optional<std::chrono::steady_clock::duration> oldest_age() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (items_.empty())
            return std::nullopt;
        return std::chrono::steady_clock::now() - items_.front().at;
    }

    /// Refuse new admissions; already-queued items remain poppable.
    void close()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            closed_ = true;
        }
        ready_.notify_all();
    }

    std::size_t size() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return items_.size();
    }

    std::size_t capacity() const { return capacity_; }

  private:
    /// Queued item plus its admission time, for oldest_age().
    struct Entry {
        T item;
        std::chrono::steady_clock::time_point at;
    };

    const std::size_t capacity_;
    mutable std::mutex mutex_;
    std::condition_variable ready_;
    std::deque<Entry> items_;
    bool closed_ = false;
};

}  // namespace paraprox::serve
