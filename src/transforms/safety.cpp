#include <functional>

#include "transforms/safety.h"

#include "ir/builder.h"
#include "ir/visitor.h"
#include "support/error.h"

namespace paraprox::transforms {

using namespace ir;
namespace b = ir::build;

namespace {

/// Literal divisors that are provably non-zero need no guard.
bool
provably_nonzero(const Expr& expr)
{
    int value = 0;
    if (const_int_value(expr, value))
        return value != 0;
    if (const auto* lit = expr_as<FloatLit>(expr))
        return lit->value != 0.0f;
    return false;
}

/// Atomics inside the divisor would be re-evaluated by the guard; leave
/// such (pathological) divisions alone.
bool
contains_atomic(const Expr& expr)
{
    bool found = false;
    Block probe;
    (void)probe;
    std::function<void(const Expr&)> visit = [&](const Expr& e) {
        if (found)
            return;
        if (const auto* call = expr_as<Call>(e)) {
            if (is_atomic_builtin(call->builtin)) {
                found = true;
                return;
            }
            for (const auto& arg : call->args)
                visit(*arg);
            return;
        }
        switch (e.kind()) {
          case ExprKind::Unary:
            visit(*static_cast<const Unary&>(e).operand);
            break;
          case ExprKind::Binary:
            visit(*static_cast<const Binary&>(e).lhs);
            visit(*static_cast<const Binary&>(e).rhs);
            break;
          case ExprKind::Load:
            visit(*static_cast<const Load&>(e).index);
            break;
          case ExprKind::Cast:
            visit(*static_cast<const Cast&>(e).operand);
            break;
          case ExprKind::Select: {
            const auto& sel = static_cast<const Select&>(e);
            visit(*sel.cond);
            visit(*sel.if_true);
            visit(*sel.if_false);
            break;
          }
          default:
            break;
        }
    };
    visit(expr);
    return found;
}

}  // namespace

ir::Module
guard_divisions(const ir::Module& module, const std::string& kernel,
                int* guarded)
{
    const Function* source = module.find_function(kernel);
    PARAPROX_CHECK(source, "guard_divisions: no function `" + kernel + "`");

    ir::Module clone = module.clone();
    Function* target = clone.find_function(kernel);
    int count = 0;

    rewrite_exprs(*target, [&](const Expr& expr) -> ExprPtr {
        const auto* binary = expr_as<Binary>(expr);
        if (!binary ||
            (binary->op != BinaryOp::Div && binary->op != BinaryOp::Mod)) {
            return nullptr;
        }
        if (provably_nonzero(*binary->rhs) ||
            contains_atomic(*binary->rhs)) {
            return nullptr;
        }
        ++count;

        const bool is_float = binary->rhs->type().is_float();
        auto zero = [&]() -> ExprPtr {
            return is_float ? b::float_lit(0.0f)
                            : static_cast<ExprPtr>(b::int_lit(0));
        };
        auto one = [&]() -> ExprPtr {
            return is_float ? b::float_lit(1.0f)
                            : static_cast<ExprPtr>(b::int_lit(1));
        };

        // (b == 0) ? 0 : a / ((b == 0) ? 1 : b)
        ExprPtr is_zero_outer = b::eq(binary->rhs->clone(), zero());
        ExprPtr is_zero_inner = b::eq(binary->rhs->clone(), zero());
        ExprPtr safe_divisor = b::select(std::move(is_zero_inner), one(),
                                         binary->rhs->clone());
        ExprPtr division = std::make_unique<Binary>(
            binary->op, binary->lhs->clone(), std::move(safe_divisor),
            binary->type());
        return b::select(std::move(is_zero_outer), zero(),
                         std::move(division));
    });

    if (guarded)
        *guarded = count;
    return clone;
}

}  // namespace paraprox::transforms
