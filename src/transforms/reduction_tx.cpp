#include "transforms/reduction_tx.h"

#include "ir/builder.h"
#include "ir/visitor.h"
#include "support/error.h"
#include "transforms/surgery.h"

namespace paraprox::transforms {

using namespace ir;
namespace b = ir::build;
using analysis::ReductionLoop;
using analysis::ReductionOp;

namespace {

/// Multiply the loop's step increment by @p factor:
/// `i = i + s`  ->  `i = i + s * factor`.
void
scale_loop_step(For& loop, int factor)
{
    auto* step = loop.step ? stmt_as<Assign>(*loop.step) : nullptr;
    PARAPROX_CHECK(step, "reduction loop lacks a step assignment");
    auto* add = expr_as<Binary>(*step->value);
    PARAPROX_CHECK(add && (add->op == BinaryOp::Add ||
                           add->op == BinaryOp::Sub),
                   "reduction loop step must be additive");
    const bool step_is_float = add->rhs->type().is_float();
    ExprPtr factor_lit = step_is_float
                             ? b::float_lit(static_cast<float>(factor))
                             : b::int_lit(factor);
    add->rhs = b::mul(std::move(add->rhs), std::move(factor_lit));
}

/// Rename reads/writes of @p var to @p replacement inside a block.
void
rename_var(Block& block, const std::string& var,
           const std::string& replacement)
{
    // Reads.
    rewrite_exprs(block, [&](const Expr& expr) -> ExprPtr {
        if (const auto* ref = expr_as<VarRef>(expr)) {
            if (ref->name == var)
                return b::var(replacement, ref->type());
        }
        return nullptr;
    });
    // Writes.
    std::function<void(Block&)> rename_writes = [&](Block& inner) {
        for (auto& stmt : inner.stmts) {
            if (auto* assign = stmt_as<Assign>(*stmt)) {
                if (assign->name == var)
                    assign->name = replacement;
            } else if (auto* branch = stmt_as<If>(*stmt)) {
                rename_writes(*branch->then_body);
                if (branch->else_body)
                    rename_writes(*branch->else_body);
            } else if (auto* loop = stmt_as<For>(*stmt)) {
                if (loop->init) {
                    if (auto* init = stmt_as<Assign>(*loop->init)) {
                        if (init->name == var)
                            init->name = replacement;
                    }
                }
                if (loop->step) {
                    if (auto* step = stmt_as<Assign>(*loop->step)) {
                        if (step->name == var)
                            step->name = replacement;
                    }
                }
                rename_writes(*loop->body);
            } else if (auto* nested = stmt_as<Block>(*stmt)) {
                rename_writes(*nested);
            }
        }
    };
    rename_writes(block);
}

/// Scale atomic operands inside the loop body by the skip rate.
void
scale_atomics(Block& body, int skip_rate)
{
    rewrite_exprs(body, [&](const Expr& expr) -> ExprPtr {
        const auto* call = expr_as<Call>(expr);
        if (!call || !is_atomic_builtin(call->builtin))
            return nullptr;
        if (call->builtin == Builtin::AtomicAdd) {
            auto copy = call->clone();
            auto* copied = static_cast<Call*>(copy.get());
            ExprPtr& operand = copied->args[2];
            ExprPtr factor =
                operand->type().is_float()
                    ? b::float_lit(static_cast<float>(skip_rate))
                    : static_cast<ExprPtr>(b::int_lit(skip_rate));
            operand = b::mul(std::move(operand), std::move(factor));
            return copy;
        }
        if (call->builtin == Builtin::AtomicInc) {
            // atomic_inc(buf, idx) -> atomic_add(buf, idx, skip_rate).
            std::vector<ExprPtr> args;
            args.push_back(call->args[0]->clone());
            args.push_back(call->args[1]->clone());
            args.push_back(b::int_lit(skip_rate));
            return b::call(Builtin::AtomicAdd, std::move(args));
        }
        // min/max/and/or/xor atomics sample without adjustment.
        return nullptr;
    });
}

}  // namespace

ReductionApproxKernel
reduction_approx(const ir::Module& module, const std::string& kernel,
                 int reduction_index, int skip_rate, bool adjust)
{
    PARAPROX_CHECK(skip_rate >= 2, "skip rate must be >= 2");
    const Function* source = module.find_function(kernel);
    PARAPROX_CHECK(source && source->is_kernel,
                   "reduction_approx: no kernel `" + kernel + "`");

    ReductionApproxKernel result;
    result.module = module.clone();
    result.skip_rate = skip_rate;
    result.kernel_name = fresh_name(kernel + "__red_x" +
                                    std::to_string(skip_rate) + "_");
    Function* approx = result.module.find_function(kernel);
    approx->name = result.kernel_name;

    auto reductions = analysis::detect_reductions(*approx);
    PARAPROX_CHECK(reduction_index >= 0 &&
                       reduction_index <
                           static_cast<int>(reductions.size()),
                   "reduction_approx: no such reduction loop");
    const ReductionLoop& target = reductions[reduction_index];

    // The detected loop pointer aims into the clone; find its owning
    // statement list so adjustment code can be inserted after it.
    bool rewritten = false;
    rewrite_stmt_lists(
        *approx->body,
        [&](StmtPtr& stmt) -> std::optional<std::vector<StmtPtr>> {
            if (stmt.get() != static_cast<const Stmt*>(target.loop))
                return std::nullopt;
            auto* loop = stmt_as<For>(*stmt);
            PARAPROX_ASSERT(loop, "reduction target is not a loop");

            scale_loop_step(*loop, skip_rate);

            std::vector<StmtPtr> out;
            if (target.op == ReductionOp::Atomic) {
                if (adjust)
                    scale_atomics(*loop->body, skip_rate);
                out.push_back(std::move(stmt));
            } else if (target.op == ReductionOp::Add && adjust) {
                // Replace the reduction variable with a zero-initialized
                // temporary, then add the scaled temporary back
                // (§3.3.3's initial-value fix).
                const std::string& var = target.variable;
                const std::string tmp = fresh_name("__red_tmp");
                // The variable's type: probe the loop body's accumulative
                // assignment.
                Type var_type = Type::f32();
                for (const auto& body_stmt : loop->body->stmts) {
                    if (const auto* assign = stmt_as<Assign>(*body_stmt)) {
                        if (assign->name == var)
                            var_type = assign->value->type();
                    }
                }
                rename_var(*loop->body, var, tmp);
                ExprPtr zero = var_type.is_float()
                                   ? b::float_lit(0.0f)
                                   : static_cast<ExprPtr>(b::int_lit(0));
                out.push_back(b::decl(tmp, var_type, std::move(zero)));
                out.push_back(std::move(stmt));
                ExprPtr rate =
                    var_type.is_float()
                        ? b::float_lit(static_cast<float>(skip_rate))
                        : static_cast<ExprPtr>(b::int_lit(skip_rate));
                out.push_back(b::assign(
                    var, b::add(b::var(var, var_type),
                                b::mul(b::var(tmp, var_type),
                                       std::move(rate)))));
                result.adjusted = true;
            } else {
                // Min/max/mul or adjustment disabled: sampling only.
                out.push_back(std::move(stmt));
            }
            rewritten = true;
            return out;
        });
    PARAPROX_ASSERT(rewritten, "reduction loop not found during rewrite");
    if (target.op == ReductionOp::Atomic && adjust)
        result.adjusted = true;
    return result;
}

}  // namespace paraprox::transforms
