/// @file
/// Statement-level rewriting utilities shared by the approximation
/// transforms — the "action generator / rewriter" stages of the paper's
/// compilation flow (Fig. 10): transforms clone the input kernel, then
/// apply add/delete/substitute actions to its statement lists.

#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "ir/function.h"

namespace paraprox::transforms {

/// Callback deciding the fate of one statement.  Return nullopt to keep
/// the statement untouched (children are still visited); return a vector
/// to replace it with those statements (children are NOT revisited).
/// The callback owns the statement through @p stmt and may move it into
/// the replacement list.
using StmtRewriteFn =
    std::function<std::optional<std::vector<ir::StmtPtr>>(ir::StmtPtr& stmt)>;

/// Apply @p rewrite to every statement in @p block, recursing into If/For
/// bodies (and loop init/step indirectly via their owning statements).
void rewrite_stmt_lists(ir::Block& block, const StmtRewriteFn& rewrite);

/// Start a fresh-name epoch for a transform over @p module: subsequent
/// fresh_name calls become a pure function of the module's contents, so
/// re-running the same transform on the same input yields byte-identical
/// output — which is what lets the process-wide bytecode cache hit when a
/// kernel family is compiled again.  Transforms chained on an evolved
/// module re-seed with different contents, so names from earlier epochs
/// cannot collide with new ones (the epoch tag is bumped until it appears
/// nowhere in the module).
void begin_name_epoch(const ir::Module& module);

/// Generate a fresh identifier with the given prefix: unique within the
/// current epoch and deterministic given the epoch's module.
std::string fresh_name(const std::string& prefix);

}  // namespace paraprox::transforms
