/// @file
/// Stencil & partition approximation (paper §3.2): under the
/// adjacent-values-are-similar assumption, read only a subset of each tile
/// and reuse those values for the neighbours within a reaching distance.
/// Three schemes (Fig. 6): center, row, and column based.

#pragma once

#include <string>

#include "analysis/stencil.h"
#include "ir/function.h"

namespace paraprox::transforms {

/// Which subset of the tile is actually read (Fig. 6 a/b/c).
enum class StencilScheme { Center, Row, Column };

std::string to_string(StencilScheme scheme);

/// A stencil-approximated kernel variant.
struct StencilApproxKernel {
    ir::Module module;
    std::string kernel_name;
    StencilScheme scheme = StencilScheme::Center;
    int reaching_distance = 1;
    int loads_before = 0;  ///< Tile loads in the exact kernel.
    int loads_after = 0;   ///< Distinct loads remaining after merging.
};

/// Rewrite @p kernel so that tile accesses within @p reaching_distance of
/// a representative element reuse the representative's value instead of
/// being loaded.  The representative set depends on the scheme:
///   - Center: the tile's central element covers neighbours with Chebyshev
///     distance <= rd;
///   - Row: the central row covers rows within rd (columns untouched);
///   - Column: the central column covers columns within rd.
/// Loads collapsing to the same representative are hoisted into one temp
/// per statement, so the dynamic load count genuinely drops.
///
/// Only constant-offset (manually unrolled) accesses are merged;
/// loop-enumerated accesses are left exact, matching the paper's Mean
/// Filter discussion.
StencilApproxKernel stencil_approx(const ir::Module& module,
                                   const std::string& kernel,
                                   const analysis::StencilGroup& group,
                                   StencilScheme scheme,
                                   int reaching_distance);

}  // namespace paraprox::transforms
