/// @file
/// Approximate memoization (paper §3.1): replace calls to a pure,
/// compute-heavy function with a quantize/concatenate/lookup sequence
/// (Fig. 3b).  Variants differ in where the table lives (global /
/// constant / shared memory — Fig. 16) and how unrepresented inputs are
/// handled (nearest vs. linear interpolation — Fig. 15).

#pragma once

#include <string>

#include "ir/function.h"
#include "memo/table.h"

namespace paraprox::transforms {

/// Which memory the lookup table is placed in (§4.4.2).
enum class TableLocation { Global, Constant, Shared };

/// How inputs that fall between quantization levels are resolved (§4.4.2).
enum class LookupMode { Nearest, Linear };

std::string to_string(TableLocation location);
std::string to_string(LookupMode mode);

/// A memoized kernel variant, ready to compile and launch.
struct MemoizedKernel {
    ir::Module module;          ///< Clone holding the rewritten kernel.
    std::string kernel_name;    ///< Name of the approximate kernel.
    /// Bind the populated table Buffer to this parameter (it is the
    /// __global source parameter for Shared placement).
    std::string table_buffer_param;
    /// Non-empty for Shared placement: the __shared parameter; bind its
    /// element count (= table size) at launch.
    std::string shared_table_param;
    memo::LookupTable table;    ///< Values to upload before launching.
    TableLocation location = TableLocation::Global;
    LookupMode mode = LookupMode::Nearest;
};

/// Rewrite every call to @p callee inside @p kernel of @p module.
///
/// The generated kernel takes one extra buffer parameter (two for Shared
/// placement: the __shared table plus its __global source, staged by a
/// copy loop + barrier at kernel entry, which is exactly the cost the
/// shared variant pays on real hardware).
///
/// Linear mode interpolates along the least-significant (last variable)
/// input, reading two adjacent table entries — more accurate, one more
/// memory access (Fig. 15).
MemoizedKernel memoize_kernel(const ir::Module& module,
                              const std::string& kernel,
                              const std::string& callee,
                              const memo::LookupTable& table,
                              TableLocation location, LookupMode mode);

}  // namespace paraprox::transforms
