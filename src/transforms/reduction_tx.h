/// @file
/// Reduction sampling + adjustment (paper §3.3): multiply the reduction
/// loop's step by a skipping rate N, then — for additive reductions —
/// scale the sampled partial sum by N through a zero-initialized temporary
/// so the adjustment does not multiply the variable's initial value.
/// Atomic reduction loops are sampled the same way, with atomic_add
/// operands scaled by N (atomic_inc becomes atomic_add of N).

#pragma once

#include <string>

#include "analysis/reduction.h"
#include "ir/function.h"

namespace paraprox::transforms {

/// A reduction-approximated kernel variant.
struct ReductionApproxKernel {
    ir::Module module;
    std::string kernel_name;
    int skip_rate = 2;
    bool adjusted = false;  ///< Whether adjustment code was inserted.
};

/// Approximate the @p reduction_index'th detected reduction loop of
/// @p kernel with the given skipping rate.
///
/// @param adjust  insert the §3.3.3 adjustment for additive reductions
///        (exposed so the ablation bench can measure its contribution).
ReductionApproxKernel reduction_approx(const ir::Module& module,
                                       const std::string& kernel,
                                       int reduction_index, int skip_rate,
                                       bool adjust = true);

}  // namespace paraprox::transforms
