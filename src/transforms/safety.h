/// @file
/// Division-safety guarding (paper §5, "Safety of Optimizations").
///
/// Approximated values can reach divisors; the paper sketches
/// instrumenting such divisions to skip the calculation when the divisor
/// is zero.  guard_divisions() rewrites every division whose divisor is
/// not a non-zero literal into
///
///     (b == 0) ? 0 : a / ((b == 0) ? 1 : b)
///
/// so neither arm can trap (integer division by zero is a VM trap;
/// float division by zero would propagate inf/NaN into the output).

#pragma once

#include "ir/function.h"

namespace paraprox::transforms {

/// Guard every division/modulo in @p kernel of a cloned @p module.
/// Returns the number of divisions guarded via @p guarded (optional).
ir::Module guard_divisions(const ir::Module& module,
                           const std::string& kernel,
                           int* guarded = nullptr);

}  // namespace paraprox::transforms
