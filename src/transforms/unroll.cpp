#include "transforms/unroll.h"

#include <functional>
#include <map>
#include <set>

#include "analysis/stencil.h"
#include "ir/builder.h"
#include "ir/visitor.h"
#include "support/error.h"
#include "transforms/surgery.h"

namespace paraprox::transforms {

using namespace ir;
namespace b = ir::build;

namespace {

/// Does the loop body write the induction variable (making unrolling by
/// substitution unsound)?
bool
body_writes(const Block& body, const std::string& var)
{
    bool found = false;
    std::function<void(const Stmt&)> visit = [&](const Stmt& stmt) {
        if (found)
            return;
        if (const auto* assign = stmt_as<Assign>(stmt)) {
            found = assign->name == var;
            return;
        }
        if (const auto* decl = stmt_as<Decl>(stmt)) {
            found = decl->name == var;  // shadowing: keep it simple, bail
            return;
        }
        if (const auto* branch = stmt_as<If>(stmt)) {
            visit(*branch->then_body);
            if (branch->else_body)
                visit(*branch->else_body);
            for (const auto& child : branch->then_body->stmts)
                (void)child;
            return;
        }
        if (const auto* loop = stmt_as<For>(stmt)) {
            if (loop->init)
                visit(*loop->init);
            if (loop->step)
                visit(*loop->step);
            visit(*loop->body);
            return;
        }
        if (const auto* block = stmt_as<Block>(stmt)) {
            for (const auto& child : block->stmts)
                visit(*child);
            return;
        }
    };
    for (const auto& stmt : body.stmts)
        visit(*stmt);
    return found;
}

/// Names declared directly or transitively inside a block.
void
collect_decl_names(const Block& block, std::set<std::string>& names)
{
    for (const auto& stmt : block.stmts) {
        if (const auto* decl = stmt_as<Decl>(*stmt)) {
            names.insert(decl->name);
        } else if (const auto* branch = stmt_as<If>(*stmt)) {
            collect_decl_names(*branch->then_body, names);
            if (branch->else_body)
                collect_decl_names(*branch->else_body, names);
        } else if (const auto* loop = stmt_as<For>(*stmt)) {
            if (loop->init) {
                if (const auto* init_decl = stmt_as<Decl>(*loop->init))
                    names.insert(init_decl->name);
            }
            collect_decl_names(*loop->body, names);
        } else if (const auto* nested = stmt_as<Block>(*stmt)) {
            collect_decl_names(*nested, names);
        }
    }
}

/// Rename declarations (and their uses/writes) per the given mapping.
void
rename_decls(Block& block, const std::map<std::string, std::string>& names)
{
    rewrite_exprs(block, [&](const Expr& expr) -> ExprPtr {
        if (const auto* ref = expr_as<VarRef>(expr)) {
            auto it = names.find(ref->name);
            if (it != names.end())
                return b::var(it->second, ref->type());
        }
        return nullptr;
    });
    std::function<void(Block&)> rename_writes = [&](Block& inner) {
        for (auto& stmt : inner.stmts) {
            if (auto* decl = stmt_as<Decl>(*stmt)) {
                auto it = names.find(decl->name);
                if (it != names.end())
                    decl->name = it->second;
            } else if (auto* assign = stmt_as<Assign>(*stmt)) {
                auto it = names.find(assign->name);
                if (it != names.end())
                    assign->name = it->second;
            } else if (auto* branch = stmt_as<If>(*stmt)) {
                rename_writes(*branch->then_body);
                if (branch->else_body)
                    rename_writes(*branch->else_body);
            } else if (auto* loop = stmt_as<For>(*stmt)) {
                if (loop->init)
                    if (auto* init_decl = stmt_as<Decl>(*loop->init)) {
                        auto it = names.find(init_decl->name);
                        if (it != names.end())
                            init_decl->name = it->second;
                    }
                if (loop->step)
                    if (auto* step = stmt_as<Assign>(*loop->step)) {
                        auto it = names.find(step->name);
                        if (it != names.end())
                            step->name = it->second;
                    }
                rename_writes(*loop->body);
            } else if (auto* nested = stmt_as<Block>(*stmt)) {
                rename_writes(*nested);
            }
        }
    };
    rename_writes(block);
}

/// Substitute the induction variable with a literal value.
void
substitute_var(Block& block, const std::string& var, int value)
{
    rewrite_exprs(block, [&](const Expr& expr) -> ExprPtr {
        if (const auto* ref = expr_as<VarRef>(expr)) {
            if (ref->name == var)
                return b::int_lit(value);
        }
        return nullptr;
    });
}

/// One unrolling pass over a block; returns loops expanded.
int
unroll_pass(Block& block, int max_trips)
{
    int expanded = 0;
    rewrite_stmt_lists(
        block,
        [&](StmtPtr& stmt) -> std::optional<std::vector<StmtPtr>> {
            auto* loop = stmt_as<For>(*stmt);
            if (!loop)
                return std::nullopt;
            auto range = analysis::constant_loop_range(*loop);
            if (!range || range->trips() > max_trips ||
                body_writes(*loop->body, range->var)) {
                return std::nullopt;
            }

            std::set<std::string> decls;
            collect_decl_names(*loop->body, decls);

            std::vector<StmtPtr> out;
            for (int value : range->values()) {
                auto body = BlockPtr(static_cast<Block*>(
                    loop->body->clone().release()));
                substitute_var(*body, range->var, value);
                if (!decls.empty()) {
                    // Globally fresh suffix: iterations of *different*
                    // loops must not collide either.
                    std::map<std::string, std::string> renames;
                    const std::string suffix = fresh_name("__u");
                    for (const auto& name : decls)
                        renames[name] = name + suffix;
                    rename_decls(*body, renames);
                }
                for (auto& body_stmt : body->stmts)
                    out.push_back(std::move(body_stmt));
            }
            ++expanded;
            return out;
        });
    return expanded;
}

}  // namespace

ir::Module
unroll_constant_loops(const ir::Module& module, const std::string& kernel,
                      int max_trips, int* unrolled)
{
    PARAPROX_CHECK(max_trips >= 1, "max_trips must be positive");
    const Function* source = module.find_function(kernel);
    PARAPROX_CHECK(source, "unroll: no function `" + kernel + "`");
    begin_name_epoch(module);

    ir::Module clone = module.clone();
    Function* target = clone.find_function(kernel);

    // The replacement bodies may contain nested constant loops; iterate
    // until a pass finds nothing (bounded to avoid surprises).
    int total = 0;
    for (int pass = 0; pass < 8; ++pass) {
        const int expanded = unroll_pass(*target->body, max_trips);
        total += expanded;
        if (expanded == 0)
            break;
    }
    if (unrolled)
        *unrolled = total;
    return clone;
}

}  // namespace paraprox::transforms
