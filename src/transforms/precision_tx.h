/// @file
/// Precision-plan enumeration: the transform that turns the storage
/// safety analysis into a tuner-ready set of per-buffer codec
/// assignments.  Unlike the IR-rewriting transforms in this directory it
/// emits no new kernels — a precision plan reinterprets how existing
/// buffers are *stored* (data/codec.h), so the "transform output" is plan
/// metadata that runtime/data_tier binds at launch.
///
/// Enumeration strategy (bounded, aggressiveness-ordered):
///   1. every buffer the safety analysis pins stays exact in every plan;
///   2. uniform plans pack all packable buffers at one codec, one plan
///      per codec — the biggest bytes win and the cheapest to search;
///   3. single-buffer plans pack one packable buffer at a time, so the
///      tuner can retreat to partial packing when a uniform plan misses
///      the TOQ (skipped for buffers with a negligible access share when
///      a traffic profile is supplied);
///   4. the list is capped at max_plans, keeping the cheapest-storage
///      plans (calibration cost is linear in the plan count).
///
/// The all-exact plan is deliberately NOT emitted here: the caller's
/// variant list already leads with the exact kernel, which is the
/// mandatory fallback.

#pragma once

#include <cstdint>
#include <vector>

#include "data/precision_plan.h"
#include "data/safety.h"
#include "vm/bytecode.h"

namespace paraprox::transforms {

struct PrecisionTxOptions {
    /// Codecs to consider, most conservative first.  Defaults to all four
    /// lossy codecs.
    std::vector<data::Codec> codecs = {data::Codec::Fp24, data::Codec::Bf16,
                                       data::Codec::Fp16, data::Codec::Int8};
    /// Emit per-buffer plans in addition to uniform ones.
    bool single_buffer_plans = true;
    /// With a traffic profile, skip single-buffer plans for buffers whose
    /// access share is below this fraction — packing a buffer the kernel
    /// barely touches cannot pay for its calibration runs.
    double min_traffic_share = 0.02;
    /// Hard cap on emitted plans.
    int max_plans = 24;
};

/// Enumerate precision plans for @p program given its safety verdicts.
/// @p slot_access_counts (optional, indexed like program.buffers) is the
/// per-slot dynamic access count from one instrumented exact run; empty
/// disables traffic pruning.  Plans are ordered by descending storage
/// savings (uniform plans first), so truncation keeps the biggest wins.
std::vector<data::PrecisionPlan>
enumerate_precision_plans(const vm::Program& program,
                          const data::StorageSafety& safety,
                          const std::vector<std::uint64_t>&
                              slot_access_counts = {},
                          const PrecisionTxOptions& options = {});

}  // namespace paraprox::transforms
