/// @file
/// Full unrolling of constant-trip loops.
///
/// The paper's stencil detector accepts both manually unrolled tiles and
/// loops with constant trips (§3.2.2), but the *tile transform* merges
/// only constant-offset accesses.  Unrolling first turns loop-shaped
/// stencils (Gaussian written with `for dy/dx` loops) into the unrolled
/// form the transform can merge — the standard enabling pass.

#pragma once

#include "ir/function.h"

namespace paraprox::transforms {

/// Fully unroll every constant-trip loop in @p kernel whose trip count is
/// at most @p max_trips (and whose body does not redefine the induction
/// variable).  Nested qualifying loops unroll recursively.  Returns the
/// rewritten module clone; @p unrolled (optional) reports how many loops
/// were expanded.
ir::Module unroll_constant_loops(const ir::Module& module,
                                 const std::string& kernel,
                                 int max_trips = 64,
                                 int* unrolled = nullptr);

}  // namespace paraprox::transforms
