#include "transforms/stencil_tx.h"

#include <functional>
#include <map>
#include <set>

#include "ir/builder.h"
#include "ir/visitor.h"
#include "support/error.h"
#include "transforms/surgery.h"

namespace paraprox::transforms {

using namespace ir;
namespace b = ir::build;

std::string
to_string(StencilScheme scheme)
{
    switch (scheme) {
      case StencilScheme::Center: return "center";
      case StencilScheme::Row: return "row";
      case StencilScheme::Column: return "column";
    }
    return "<bad-scheme>";
}

namespace {

struct Offset {
    int dy;
    int dx;
    bool operator<(const Offset& other) const
    {
        return dy != other.dy ? dy < other.dy : dx < other.dx;
    }
    bool operator==(const Offset& other) const = default;
};

/// Snap an offset onto the representative lattice of its axis: accessed
/// elements are grouped into bands of width 2*rd+1 and each band is
/// served by its central element (Fig. 6's "reaching distance").
int
snap(int value, int lo, int hi, int rd)
{
    if (rd <= 0)
        return value;
    const int band = (value - lo) / (2 * rd + 1);
    return std::min(hi, lo + band * (2 * rd + 1) + rd);
}

/// Representative element an access is merged into.
Offset
representative(const Offset& offset, const analysis::StencilGroup& group,
               StencilScheme scheme, int rd)
{
    Offset rep = offset;
    if (!group.two_dimensional) {
        // 1D tiles merge along their single axis for every scheme.
        rep.dx = snap(offset.dx, group.min_dx, group.max_dx, rd);
        return rep;
    }
    switch (scheme) {
      case StencilScheme::Center:
        rep.dy = snap(offset.dy, group.min_dy, group.max_dy, rd);
        rep.dx = snap(offset.dx, group.min_dx, group.max_dx, rd);
        break;
      case StencilScheme::Row:
        rep.dy = snap(offset.dy, group.min_dy, group.max_dy, rd);
        break;
      case StencilScheme::Column:
        rep.dx = snap(offset.dx, group.min_dx, group.max_dx, rd);
        break;
    }
    return rep;
}

/// Variable names read by an expression.
void
collect_vars(const Expr& expr, std::set<std::string>& vars)
{
    if (const auto* ref = expr_as<VarRef>(expr)) {
        vars.insert(ref->name);
        return;
    }
    switch (expr.kind()) {
      case ExprKind::Unary:
        collect_vars(*static_cast<const Unary&>(expr).operand, vars);
        break;
      case ExprKind::Binary: {
        const auto& binary = static_cast<const Binary&>(expr);
        collect_vars(*binary.lhs, vars);
        collect_vars(*binary.rhs, vars);
        break;
      }
      case ExprKind::Call:
        for (const auto& arg : static_cast<const Call&>(expr).args)
            collect_vars(*arg, vars);
        break;
      case ExprKind::Load:
        collect_vars(*static_cast<const Load&>(expr).index, vars);
        break;
      case ExprKind::Cast:
        collect_vars(*static_cast<const Cast&>(expr).operand, vars);
        break;
      case ExprKind::Select: {
        const auto& select = static_cast<const Select&>(expr);
        collect_vars(*select.cond, vars);
        collect_vars(*select.if_true, vars);
        collect_vars(*select.if_false, vars);
        break;
      }
      default:
        break;
    }
}

/// Does this statement subtree write (assign/declare) any of @p vars?
bool
writes_any(const Stmt& stmt, const std::set<std::string>& vars)
{
    bool found = false;
    std::function<void(const Stmt&)> visit = [&](const Stmt& inner) {
        if (found)
            return;
        if (const auto* assign = stmt_as<Assign>(inner)) {
            found = vars.count(assign->name) > 0;
            return;
        }
        if (const auto* decl = stmt_as<Decl>(inner)) {
            found = vars.count(decl->name) > 0;
            return;
        }
        if (const auto* branch = stmt_as<If>(inner)) {
            for (const auto& child : branch->then_body->stmts)
                visit(*child);
            if (branch->else_body)
                for (const auto& child : branch->else_body->stmts)
                    visit(*child);
            return;
        }
        if (const auto* loop = stmt_as<For>(inner)) {
            if (loop->init)
                visit(*loop->init);
            if (loop->step)
                visit(*loop->step);
            for (const auto& child : loop->body->stmts)
                visit(*child);
            return;
        }
        if (const auto* block = stmt_as<Block>(inner)) {
            for (const auto& child : block->stmts)
                visit(*child);
            return;
        }
    };
    visit(stmt);
    return found;
}

/// Rewriting context shared across a kernel.
struct MergeContext {
    const analysis::StencilGroup* group;
    StencilScheme scheme;
    int rd;
    Type array_type;
    std::map<const Load*, Offset> offsets;  ///< Constant-offset loads.
    std::set<std::string> index_vars;       ///< Vars read by tile indices.
    int temps_created = 0;
};

/// Process one block: statements sharing representative temps until a
/// write to an index variable invalidates them.
void
process_block(Block& block, MergeContext& context)
{
    std::vector<StmtPtr> rebuilt;
    rebuilt.reserve(block.stmts.size());
    std::map<Offset, std::string> live;  ///< Valid representative temps.

    for (auto& stmt : block.stmts) {
        // Recurse into nested bodies first (fresh temp scope inside).
        if (auto* branch = stmt_as<If>(*stmt)) {
            process_block(*branch->then_body, context);
            if (branch->else_body)
                process_block(*branch->else_body, context);
        } else if (auto* loop = stmt_as<For>(*stmt)) {
            process_block(*loop->body, context);
        } else if (auto* nested = stmt_as<Block>(*stmt)) {
            process_block(*nested, context);
        }

        // Merged loads directly inside this statement (not inside nested
        // blocks — those were just handled).  Kept in expression-visit
        // order: which load materializes a representative's temp decides
        // the temp's index expression, so iterating a pointer-keyed map
        // here would make the generated kernel depend on heap layout.
        std::map<const Load*, Offset> merged;
        std::vector<std::pair<const Load*, Offset>> merge_order;
        const bool is_compound = stmt->kind() == StmtKind::If ||
                                 stmt->kind() == StmtKind::For ||
                                 stmt->kind() == StmtKind::Block;
        if (!is_compound) {
            for_each_expr(*stmt, [&](const Expr& expr) {
                const auto* load = expr_as<Load>(expr);
                if (!load)
                    return;
                auto it = context.offsets.find(load);
                if (it == context.offsets.end())
                    return;
                const Offset rep = representative(
                    it->second, *context.group, context.scheme, context.rd);
                if (merged.emplace(load, rep).second)
                    merge_order.emplace_back(load, rep);
            });
        }

        if (!merged.empty()) {
            // Create temps for representatives not yet live.
            for (const auto& [load, rep] : merge_order) {
                if (live.count(rep))
                    continue;
                const Offset own = context.offsets.at(load);
                ExprPtr index = load->index->clone();
                const int ddx = rep.dx - own.dx;
                const int ddy = rep.dy - own.dy;
                if (ddx != 0)
                    index = b::add(std::move(index), b::int_lit(ddx));
                if (ddy != 0) {
                    PARAPROX_ASSERT(context.group->width,
                                    "2D merge requires a width expression");
                    index = b::add(std::move(index),
                                   b::mul(b::int_lit(ddy),
                                          context.group->width->clone()));
                }
                const std::string name = fresh_name("__tile");
                rebuilt.push_back(b::decl(
                    name, context.array_type.pointee(),
                    b::load(context.group->array, context.array_type,
                            std::move(index))));
                live[rep] = name;
                ++context.temps_created;
            }

            // Substitute the loads.
            Block holder;
            holder.stmts.push_back(std::move(stmt));
            rewrite_exprs(holder, [&](const Expr& expr) -> ExprPtr {
                const auto* load = expr_as<Load>(expr);
                if (!load)
                    return nullptr;
                auto it = merged.find(load);
                if (it == merged.end())
                    return nullptr;
                return b::var(live.at(it->second),
                              context.array_type.pointee());
            });
            stmt = std::move(holder.stmts[0]);
        }

        // Writes to index variables invalidate the live temps for later
        // statements (the values they captured are stale).
        if (writes_any(*stmt, context.index_vars))
            live.clear();

        rebuilt.push_back(std::move(stmt));
    }
    block.stmts = std::move(rebuilt);
}

}  // namespace

StencilApproxKernel
stencil_approx(const ir::Module& module, const std::string& kernel,
               const analysis::StencilGroup& group, StencilScheme scheme,
               int reaching_distance)
{
    PARAPROX_CHECK(reaching_distance >= 0, "reaching distance must be >= 0");
    const Function* source = module.find_function(kernel);
    PARAPROX_CHECK(source && source->is_kernel,
                   "stencil_approx: no kernel `" + kernel + "`");
    begin_name_epoch(module);

    StencilApproxKernel result;
    result.module = module.clone();
    result.scheme = scheme;
    result.reaching_distance = reaching_distance;
    result.kernel_name = fresh_name(kernel + "__stencil_" +
                                    to_string(scheme) + "_rd" +
                                    std::to_string(reaching_distance) + "_");
    Function* approx = result.module.find_function(kernel);
    approx->name = result.kernel_name;

    // Re-detect on the clone and find the matching group.
    const analysis::StencilGroup* clone_group = nullptr;
    auto clone_groups = analysis::detect_stencils(*approx);
    for (const auto& candidate : clone_groups) {
        if (candidate.array == group.array &&
            candidate.base_key == group.base_key) {
            clone_group = &candidate;
            break;
        }
    }
    PARAPROX_CHECK(clone_group,
                   "stencil_approx: group not found in cloned kernel");

    MergeContext context;
    context.group = clone_group;
    context.scheme = scheme;
    context.rd = reaching_distance;

    // Constant-offset accesses only: loop-enumerated loads appear several
    // times in the group; leave those exact (unroll first to merge them,
    // see transforms/unroll.h).
    std::map<const Load*, int> occurrences;
    for (const auto& access : clone_group->accesses)
        ++occurrences[access.load];
    for (const auto& access : clone_group->accesses) {
        if (occurrences[access.load] == 1) {
            context.offsets[access.load] = {access.dy, access.dx};
            collect_vars(*access.load->index, context.index_vars);
        }
    }
    result.loads_before = static_cast<int>(context.offsets.size());

    context.array_type = [&] {
        for (const auto& param : approx->params) {
            if (param.name == clone_group->array)
                return param.type;
        }
        throw UserError("stencil_approx: tile array `" +
                        clone_group->array + "` is not a kernel parameter");
    }();

    process_block(*approx->body, context);
    result.loads_after = context.temps_created;
    return result;
}

}  // namespace paraprox::transforms
