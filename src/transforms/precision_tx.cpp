#include "transforms/precision_tx.h"

#include <algorithm>

namespace paraprox::transforms {

namespace {

/// Bytes saved per logical element by storing @p codec instead of fp32.
int
bytes_saved(data::Codec codec)
{
    return 4 - data::storage_bytes(codec);
}

}  // namespace

std::vector<data::PrecisionPlan>
enumerate_precision_plans(const vm::Program& program,
                          const data::StorageSafety& safety,
                          const std::vector<std::uint64_t>&
                              slot_access_counts,
                          const PrecisionTxOptions& options)
{
    const std::vector<int> packable = safety.packable_slots();
    std::vector<data::PrecisionPlan> plans;
    if (packable.empty())
        return plans;

    std::uint64_t total_accesses = 0;
    for (const std::uint64_t count : slot_access_counts)
        total_accesses += count;

    // Uniform plans: all packable buffers at one codec.
    for (const data::Codec codec : options.codecs) {
        data::PrecisionPlan plan;
        plan.label = data::plan_label("all", codec);
        for (const int slot : packable) {
            data::PrecisionAssignment assignment;
            assignment.buffer =
                program.buffers[static_cast<std::size_t>(slot)].name;
            assignment.codec = codec;
            plan.assignments.push_back(std::move(assignment));
        }
        plans.push_back(std::move(plan));
    }

    // Single-buffer retreats, traffic-pruned: when a uniform plan misses
    // the TOQ, packing only the hottest tolerant buffer often passes.
    if (options.single_buffer_plans && packable.size() > 1) {
        for (const int slot : packable) {
            if (total_accesses > 0 &&
                static_cast<std::size_t>(slot) < slot_access_counts.size()) {
                const double share =
                    static_cast<double>(
                        slot_access_counts[static_cast<std::size_t>(slot)]) /
                    static_cast<double>(total_accesses);
                if (share < options.min_traffic_share)
                    continue;
            }
            const std::string& name =
                program.buffers[static_cast<std::size_t>(slot)].name;
            for (const data::Codec codec : options.codecs) {
                data::PrecisionPlan plan;
                plan.label = data::plan_label(name, codec);
                data::PrecisionAssignment assignment;
                assignment.buffer = name;
                assignment.codec = codec;
                plan.assignments.push_back(std::move(assignment));
                plans.push_back(std::move(plan));
            }
        }
    }

    // Biggest storage savings first; uniform plans win ties so truncation
    // drops narrow retreats before broad wins.  stable_sort keeps the
    // codec order (conservative first) within equal savings.
    const auto plan_savings = [](const data::PrecisionPlan& plan) {
        int saved = 0;
        for (const auto& assignment : plan.assignments)
            saved += bytes_saved(assignment.codec);
        return saved;
    };
    std::stable_sort(plans.begin(), plans.end(),
                     [&](const data::PrecisionPlan& a,
                         const data::PrecisionPlan& b) {
                         return plan_savings(a) > plan_savings(b);
                     });
    if (options.max_plans > 0 &&
        plans.size() > static_cast<std::size_t>(options.max_plans))
        plans.resize(static_cast<std::size_t>(options.max_plans));
    return plans;
}

}  // namespace paraprox::transforms
