#include "transforms/memoize.h"

#include <functional>

#include "ir/builder.h"
#include "ir/visitor.h"
#include "support/error.h"
#include "transforms/surgery.h"

namespace paraprox::transforms {

using namespace ir;
namespace b = ir::build;

std::string
to_string(TableLocation location)
{
    switch (location) {
      case TableLocation::Global: return "global";
      case TableLocation::Constant: return "constant";
      case TableLocation::Shared: return "shared";
    }
    return "<bad-location>";
}

std::string
to_string(LookupMode mode)
{
    return mode == LookupMode::Nearest ? "nearest" : "linear";
}

namespace {

/// Builds the quantize/concat/lookup replacement for one call site.
class LookupBuilder {
  public:
    LookupBuilder(const memo::TableConfig& config,
                  const std::string& table_param, Type table_type,
                  LookupMode mode)
        : config_(config), table_param_(table_param),
          table_type_(table_type), mode_(mode) {}

    /// Generate temps (appended to @p decls) and return the value
    /// expression replacing the call.
    ExprPtr
    build(const Call& call, std::vector<StmtPtr>& decls)
    {
        const std::string prefix = fresh_name("__memo");
        const auto& inputs = config_.inputs;
        PARAPROX_CHECK(call.args.size() == inputs.size(),
                       "memoize: call arity mismatch");

        const std::vector<int> variable = config_.variable_inputs();
        PARAPROX_CHECK(!variable.empty(), "memoize: no variable inputs");
        const int last = variable.back();

        // One temp per variable input: the raw argument value, then its
        // quantization level.
        std::vector<std::string> level_vars(inputs.size());
        std::vector<std::string> value_vars(inputs.size());
        for (int index : variable) {
            const memo::InputQuant& input = inputs[index];
            PARAPROX_CHECK(call.args[index]->type().is_float(),
                           "memoize: variable input `" + input.name +
                               "` must be float");
            const std::string xname =
                prefix + "_x" + std::to_string(index);
            decls.push_back(b::decl(xname, Type::f32(),
                                    call.args[index]->clone()));
            value_vars[index] = xname;

            if (mode_ == LookupMode::Linear && index == last)
                continue;  // the last input is quantized differently

            const float scale =
                static_cast<float>(input.levels()) / (input.hi - input.lo);
            // q = min(max((int)((x - lo) * scale), 0), levels - 1)
            ExprPtr raw = b::to_int(
                b::mul(b::sub(b::var(xname), b::float_lit(input.lo)),
                       b::float_lit(scale)));
            ExprPtr clamped = b::call(
                Builtin::IMin,
                make_args(b::call(Builtin::IMax,
                                  make_args(std::move(raw), b::int_lit(0))),
                          b::int_lit(input.levels() - 1)));
            const std::string qname =
                prefix + "_q" + std::to_string(index);
            decls.push_back(b::decl(qname, Type::i32(),
                                    std::move(clamped)));
            level_vars[index] = qname;
        }

        if (mode_ == LookupMode::Nearest) {
            ExprPtr addr = concat_address(variable, level_vars, -1, "");
            const std::string addr_name = prefix + "_addr";
            decls.push_back(b::decl(addr_name, Type::i32(),
                                    std::move(addr)));
            return b::load(table_param_, table_type_, b::ivar(addr_name));
        }

        // Linear interpolation along the last variable input (Fig. 15):
        // pos is the fractional level position relative to level centers.
        const memo::InputQuant& input = inputs[last];
        PARAPROX_CHECK(input.levels() >= 2,
                       "linear mode needs >= 1 bit on the last input");
        const float inv_step = 1.0f / input.step();
        const std::string pos = prefix + "_pos";
        decls.push_back(b::decl(
            pos, Type::f32(),
            b::sub(b::mul(b::sub(b::var(value_vars[last]),
                                 b::float_lit(input.lo)),
                          b::float_lit(inv_step)),
                   b::float_lit(0.5f))));
        const std::string i0 = prefix + "_i0";
        decls.push_back(b::decl(
            i0, Type::i32(),
            b::call(Builtin::IMin,
                    make_args(
                        b::call(Builtin::IMax,
                                make_args(b::to_int(b::call(
                                              Builtin::Floor,
                                              make_args(b::var(pos)))),
                                          b::int_lit(0))),
                        b::int_lit(input.levels() - 2)))));
        const std::string t = prefix + "_t";
        decls.push_back(b::decl(
            t, Type::f32(),
            b::call(Builtin::Fmin,
                    make_args(b::call(Builtin::Fmax,
                                      make_args(b::sub(b::var(pos),
                                                       b::to_float(
                                                           b::ivar(i0))),
                                                b::float_lit(0.0f))),
                              b::float_lit(1.0f)))));

        ExprPtr addr = concat_address(variable, level_vars, last, i0);
        const std::string addr_name = prefix + "_addr";
        decls.push_back(b::decl(addr_name, Type::i32(), std::move(addr)));

        // table[addr] * (1 - t) + table[addr + 1] * t
        ExprPtr lo_load =
            b::load(table_param_, table_type_, b::ivar(addr_name));
        ExprPtr hi_load =
            b::load(table_param_, table_type_,
                    b::add(b::ivar(addr_name), b::int_lit(1)));
        return b::add(b::mul(std::move(lo_load),
                             b::sub(b::float_lit(1.0f), b::var(t))),
                      b::mul(std::move(hi_load), b::var(t)));
    }

  private:
    static std::vector<ExprPtr>
    make_args(ExprPtr a, ExprPtr c)
    {
        std::vector<ExprPtr> args;
        args.push_back(std::move(a));
        args.push_back(std::move(c));
        return args;
    }
    static std::vector<ExprPtr>
    make_args(ExprPtr a)
    {
        std::vector<ExprPtr> args;
        args.push_back(std::move(a));
        return args;
    }

    /// addr = (((q_v0 << b_v1) | q_v1) << b_v2) | ...  Input
    /// @p override_index uses @p override_var instead of its q variable.
    ExprPtr
    concat_address(const std::vector<int>& variable,
                   const std::vector<std::string>& level_vars,
                   int override_index, const std::string& override_var)
    {
        ExprPtr addr;
        for (int index : variable) {
            const std::string& q = index == override_index
                                       ? override_var
                                       : level_vars[index];
            ExprPtr field = b::ivar(q);
            if (!addr) {
                addr = std::move(field);
            } else {
                addr = b::bit_or(
                    b::shl(std::move(addr),
                           b::int_lit(config_.inputs[index].bits)),
                    std::move(field));
            }
        }
        return addr;
    }

    const memo::TableConfig& config_;
    std::string table_param_;
    Type table_type_;
    LookupMode mode_;
};

}  // namespace

MemoizedKernel
memoize_kernel(const ir::Module& module, const std::string& kernel,
               const std::string& callee, const memo::LookupTable& table,
               TableLocation location, LookupMode mode)
{
    const Function* source_kernel = module.find_function(kernel);
    PARAPROX_CHECK(source_kernel && source_kernel->is_kernel,
                   "memoize: no kernel `" + kernel + "`");
    PARAPROX_CHECK(module.find_function(callee),
                   "memoize: no function `" + callee + "`");
    begin_name_epoch(module);

    MemoizedKernel result;
    result.module = module.clone();
    result.table = table;
    result.location = location;
    result.mode = mode;
    result.kernel_name = fresh_name(kernel + "__memo_" +
                                    to_string(location) + "_" +
                                    to_string(mode) + "_");

    Function* approx = result.module.find_function(kernel);
    // Rename in place (the module also keeps the exact kernel's helpers).
    approx->name = result.kernel_name;

    // Table parameters (fresh names so memoization can be applied to the
    // same kernel more than once, e.g. BoxMuller's two outputs).
    const std::string base = fresh_name("__memo_table");
    Type table_type;
    if (location == TableLocation::Shared) {
        result.shared_table_param = base;
        result.table_buffer_param = base + "_src";
        table_type = Type::pointer(Scalar::F32, AddrSpace::Shared);
        approx->params.push_back({result.shared_table_param, table_type});
        approx->params.push_back(
            {result.table_buffer_param,
             Type::pointer(Scalar::F32, AddrSpace::Global)});
    } else {
        result.table_buffer_param = base;
        table_type = Type::pointer(
            Scalar::F32, location == TableLocation::Constant
                             ? AddrSpace::Constant
                             : AddrSpace::Global);
        approx->params.push_back({result.table_buffer_param, table_type});
    }

    LookupBuilder builder(result.table.config,
                          location == TableLocation::Shared
                              ? result.shared_table_param
                              : result.table_buffer_param,
                          table_type, mode);

    // Rewrite statements containing calls to the callee: hoist temps, then
    // substitute the lookup expression.
    rewrite_stmt_lists(
        *approx->body,
        [&](StmtPtr& stmt) -> std::optional<std::vector<StmtPtr>> {
            // Count calls to the callee in this statement.
            bool contains = false;
            for_each_expr(*stmt, [&](const Expr& expr) {
                const auto* call = expr_as<Call>(expr);
                if (call && call->builtin == Builtin::None &&
                    call->callee == callee) {
                    contains = true;
                }
            });
            if (!contains)
                return std::nullopt;

            std::vector<StmtPtr> decls;
            // Repeatedly replace the first remaining call (bottom-up), so
            // nested calls resolve innermost-first.
            for (;;) {
                bool replaced = false;
                Block holder;
                holder.stmts.push_back(std::move(stmt));
                rewrite_exprs(holder,
                              [&](const Expr& expr) -> ExprPtr {
                                  if (replaced)
                                      return nullptr;
                                  const auto* call = expr_as<Call>(expr);
                                  if (!call ||
                                      call->builtin != Builtin::None ||
                                      call->callee != callee) {
                                      return nullptr;
                                  }
                                  replaced = true;
                                  return builder.build(*call, decls);
                              });
                stmt = std::move(holder.stmts[0]);
                if (!replaced)
                    break;
            }
            std::vector<StmtPtr> out;
            for (auto& decl : decls)
                out.push_back(std::move(decl));
            out.push_back(std::move(stmt));
            return out;
        });

    // Shared placement: stage the table from global memory at kernel entry
    // (this copy + barrier is the real cost shared placement pays).
    if (location == TableLocation::Shared) {
        const std::string it = fresh_name("__memo_stage");
        auto copy = b::store(
            result.shared_table_param, table_type, b::ivar(it),
            b::load(result.table_buffer_param,
                    Type::pointer(Scalar::F32, AddrSpace::Global),
                    b::ivar(it)));
        std::vector<StmtPtr> body;
        body.push_back(std::move(copy));
        auto loop = b::for_stmt(
            b::decl(it, Type::i32(), b::local_id(0)),
            b::lt(b::ivar(it),
                  b::int_lit(static_cast<int>(table.values.size()))),
            b::assign(it, b::add(b::ivar(it), b::local_size(0))),
            b::block(std::move(body)));
        std::vector<StmtPtr> preamble;
        preamble.push_back(std::move(loop));
        preamble.push_back(b::barrier());
        for (auto& old_stmt : approx->body->stmts)
            preamble.push_back(std::move(old_stmt));
        approx->body->stmts = std::move(preamble);
    }

    return result;
}

}  // namespace paraprox::transforms
