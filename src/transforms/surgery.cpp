#include "transforms/surgery.h"

#include <cinttypes>
#include <cstdio>
#include <string>

#include "ir/printer.h"

namespace paraprox::transforms {

using namespace ir;

void
rewrite_stmt_lists(Block& block, const StmtRewriteFn& rewrite)
{
    std::vector<StmtPtr> rebuilt;
    rebuilt.reserve(block.stmts.size());
    for (auto& stmt : block.stmts) {
        auto replacement = rewrite(stmt);
        if (replacement) {
            for (auto& new_stmt : *replacement)
                rebuilt.push_back(std::move(new_stmt));
            continue;
        }
        // Keep and recurse into nested blocks.
        if (auto* branch = stmt_as<If>(*stmt)) {
            rewrite_stmt_lists(*branch->then_body, rewrite);
            if (branch->else_body)
                rewrite_stmt_lists(*branch->else_body, rewrite);
        } else if (auto* loop = stmt_as<For>(*stmt)) {
            rewrite_stmt_lists(*loop->body, rewrite);
        } else if (auto* nested = stmt_as<Block>(*stmt)) {
            rewrite_stmt_lists(*nested, rewrite);
        }
        rebuilt.push_back(std::move(stmt));
    }
    block.stmts = std::move(rebuilt);
}

namespace {

std::string
epoch_tag_string(std::uint64_t tag)
{
    char buf[8];
    std::snprintf(buf, sizeof buf, "%06" PRIx64,
                  tag & std::uint64_t{0xffffff});
    return buf;
}

// Per-thread: transforms run to completion on the thread that entered them.
thread_local std::string name_tag = epoch_tag_string(0);
thread_local std::uint64_t name_serial = 0;

}  // namespace

void
begin_name_epoch(const Module& module)
{
    const std::string source = to_source(module);
    std::uint64_t tag = fingerprint(module);
    // The tag must not occur anywhere in the module, or a name coined now
    // could collide with one coined in an earlier epoch (e.g. memoization
    // chained onto an already-memoized kernel).
    while (source.find(epoch_tag_string(tag)) != std::string::npos)
        ++tag;
    name_tag = epoch_tag_string(tag);
    name_serial = 0;
}

std::string
fresh_name(const std::string& prefix)
{
    return prefix + name_tag + "_" + std::to_string(name_serial++);
}

}  // namespace paraprox::transforms
