#include "transforms/surgery.h"

#include <atomic>

namespace paraprox::transforms {

using namespace ir;

void
rewrite_stmt_lists(Block& block, const StmtRewriteFn& rewrite)
{
    std::vector<StmtPtr> rebuilt;
    rebuilt.reserve(block.stmts.size());
    for (auto& stmt : block.stmts) {
        auto replacement = rewrite(stmt);
        if (replacement) {
            for (auto& new_stmt : *replacement)
                rebuilt.push_back(std::move(new_stmt));
            continue;
        }
        // Keep and recurse into nested blocks.
        if (auto* branch = stmt_as<If>(*stmt)) {
            rewrite_stmt_lists(*branch->then_body, rewrite);
            if (branch->else_body)
                rewrite_stmt_lists(*branch->else_body, rewrite);
        } else if (auto* loop = stmt_as<For>(*stmt)) {
            rewrite_stmt_lists(*loop->body, rewrite);
        } else if (auto* nested = stmt_as<Block>(*stmt)) {
            rewrite_stmt_lists(*nested, rewrite);
        }
        rebuilt.push_back(std::move(stmt));
    }
    block.stmts = std::move(rebuilt);
}

std::string
fresh_name(const std::string& prefix)
{
    static std::atomic<std::uint64_t> counter{0};
    return prefix + std::to_string(counter.fetch_add(1));
}

}  // namespace paraprox::transforms
