#include "transforms/scan_tx.h"

#include "parser/parser.h"
#include "support/error.h"
#include "transforms/surgery.h"

namespace paraprox::transforms {

ScanApproxPlan
scan_approx(int total_subarrays, int skipped, int subarray_size)
{
    PARAPROX_CHECK(total_subarrays > 0 && subarray_size > 0,
                   "scan_approx: bad geometry");
    PARAPROX_CHECK(skipped >= 0 && skipped < total_subarrays,
                   "scan_approx: must compute at least one subarray");
    const int computed = total_subarrays - skipped;

    ScanApproxPlan plan;
    plan.total_subarrays = total_subarrays;
    plan.computed_subarrays = computed;
    plan.skipped_subarrays = skipped;
    plan.subarray_size = subarray_size;
    // Fixed name: every tail module is built from scratch around this one
    // kernel (the geometry travels as launch arguments), so all tails are
    // byte-identical and share a single bytecode cache entry.
    plan.tail_kernel = "scan_tail";

    // Tail synthesis: replay the head, shifted by the computed total per
    // wrap (Fig. 8).  `sums_scan[last]` is the computed region's total.
    const std::string source =
        "__kernel void " + plan.tail_kernel +
        "(__global float* out, __global float* sums_scan, int computed,\n"
        " int last_sum) {\n"
        "    int i = get_global_id(0);\n"
        "    int wraps = i / computed + 1;\n"
        "    int src = i % computed;\n"
        "    out[computed + i] = out[src] +\n"
        "        sums_scan[last_sum] * (float)(wraps);\n"
        "}\n";
    plan.module = parser::parse_module(source);
    return plan;
}

}  // namespace paraprox::transforms
