/// @file
/// Scan approximation (paper §3.4): compute the prefix scan of only the
/// first subarrays and synthesize the tail by replaying the head's results
/// shifted by the computed region's total — avoiding the cascading error
/// of §4.4.3 (Fig. 18).
///
/// The transform operates on the canonical three-phase scan pipeline
/// (Fig. 9): Phase I launches fewer work-groups, Phase II scans fewer
/// subarray sums, Phase III is unchanged over the computed region, and a
/// generated tail kernel fills the skipped region:
///
///     out[C*S + i] = out[i mod C*S] + total * (1 + i div C*S)
///
/// where C = computed subarrays, S = subarray size, and total is the
/// computed region's sum (the last element of Phase II's result).

#pragma once

#include <string>

#include "ir/function.h"

namespace paraprox::transforms {

/// Plan for an approximated scan.
struct ScanApproxPlan {
    ir::Module module;        ///< Holds the generated tail kernel.
    std::string tail_kernel;  ///< Name of the tail-synthesis kernel.
    int total_subarrays = 0;
    int computed_subarrays = 0;
    int skipped_subarrays = 0;
    int subarray_size = 0;

    int computed_elements() const { return computed_subarrays * subarray_size; }
    int skipped_elements() const { return skipped_subarrays * subarray_size; }
};

/// Build the approximation plan: skip the last @p skipped of
/// @p total_subarrays (each @p subarray_size elements).
///
/// The caller's pipeline should then:
///   1. run Phase I over computed_subarrays groups,
///   2. run Phase II over computed_subarrays sums,
///   3. run Phase III over computed_elements(),
///   4. launch @p tail_kernel over skipped_elements() work-items with
///      buffers `out` (the scan output) and `sums_scan` (Phase II result)
///      and scalar `computed` = computed_elements().
ScanApproxPlan scan_approx(int total_subarrays, int skipped,
                           int subarray_size);

}  // namespace paraprox::transforms
