/// @file
/// Length-prefixed binary wire protocol for scale-out serving.
///
/// Every message is one frame: a fixed 16-byte header (magic "PPXN",
/// message type, payload length) followed by the payload, which is
/// encoded with the artifact store's bounds-checked ByteWriter/ByteReader
/// — the same codec discipline as the on-disk records, so garbage on the
/// wire decodes to a rejected frame, never a crash or a huge allocation.
///
/// Message inventory (request/reply pairs share a payload shape level):
///   SubmitRequest / SubmitReply    one serving request through the fleet
///   StatsRequest  / StatsReply     replica + calibration-plane counters
///   DriftRequest  / DriftReply     operator-driven drift event (the
///                                  gated recalibration path)
///   ShutdownRequest / ShutdownReply  graceful replica stop
///   Ping          / Pong           supervisor liveness probe (versioned:
///                                  a replica answers only probes whose
///                                  health-protocol version it speaks)
///
/// Fault sites: `net.drop` (an armed drop makes send_frame shut the
/// socket down instead of writing — the peer observes a dead connection,
/// exactly like a killed process) and `net.latency` (a stall before the
/// frame goes out).  Both receive the caller's @p context label, so chaos
/// specs can target one direction of one link.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "support/socket.h"

namespace paraprox::net {

/// "PPXN" little-endian (the store records use "PPXS").
constexpr std::uint32_t kWireMagic = 0x4e585050u;

/// Largest payload recv_frame will allocate for.  Serving payloads are
/// kilobytes; anything bigger is a corrupt or hostile header.
constexpr std::uint64_t kMaxFrameBytes = 64ull << 20;

enum class MsgType : std::uint32_t {
    SubmitRequest = 1,
    SubmitReply = 2,
    StatsRequest = 3,
    StatsReply = 4,
    DriftRequest = 5,
    DriftReply = 6,
    ShutdownRequest = 7,
    ShutdownReply = 8,
    Ping = 9,
    Pong = 10,
};

/// Health-protocol version spoken by this build.  A replica rejects a
/// Ping carrying any other version (no reply; the supervisor treats that
/// link as unhealthy rather than guessing at a foreign protocol).
constexpr std::uint32_t kHealthVersion = 1;

/// How a fleet-routed request resolved, as seen by the client.
enum class WireStatus : std::uint32_t {
    Ok = 0,
    DeadlineExceeded = 1,
    Rejected = 2,
};

/// One decoded frame.
struct Frame {
    MsgType type{};
    std::vector<std::uint8_t> payload;
};

/// Write one frame.  False on IO failure or when an armed `net.drop`
/// fault fires (the socket is shut down so the peer sees the loss).
bool send_frame(Socket& socket, MsgType type,
                const std::vector<std::uint8_t>& payload,
                std::string_view context = {});

/// Read one frame.  nullopt on EOF, IO failure, bad magic, unknown
/// type, or an absurd length.
std::optional<Frame> recv_frame(Socket& socket);

/// One serving request.  The input blob's first 8 bytes are the input
/// seed (little-endian) — the fleet's kernels generate their inputs
/// deterministically from it, and the blob leaves room for future raw
/// tensor payloads without a format change.
struct SubmitRequest {
    std::string kernel;
    double toq = 0.0;  ///< Advisory: the TOQ the client expects.
    /// Remaining deadline budget in microseconds; 0 = no deadline.
    /// Relative, not absolute: replica and front door clocks need not
    /// agree.
    std::uint64_t deadline_us = 0;
    std::vector<std::uint8_t> input;

    std::uint64_t seed() const;
    static std::vector<std::uint8_t> seed_input(std::uint64_t seed);

    std::vector<std::uint8_t> encode() const;
    static std::optional<SubmitRequest>
    decode(const std::vector<std::uint8_t>& payload);
};

struct SubmitReply {
    WireStatus status = WireStatus::Rejected;
    std::string reject_reason;  ///< Set when status == Rejected.
    std::string served_by;      ///< Variant label that produced output.
    std::string replica;        ///< Replica id that served the request.
    std::vector<float> output;

    std::vector<std::uint8_t> encode() const;
    static std::optional<SubmitReply>
    decode(const std::vector<std::uint8_t>& payload);
};

/// DriftRequest payload: which kernel drifted.  The reply reports
/// whether the replica accepted the event (false = unknown kernel).
struct DriftRequest {
    std::string kernel;

    std::vector<std::uint8_t> encode() const;
    static std::optional<DriftRequest>
    decode(const std::vector<std::uint8_t>& payload);
};

struct DriftReply {
    bool accepted = false;

    std::vector<std::uint8_t> encode() const;
    static std::optional<DriftReply>
    decode(const std::vector<std::uint8_t>& payload);
};

/// Supervisor liveness probe.  `nonce` is echoed in the Pong so a prober
/// can match replies to probes across a reused connection.
struct Ping {
    std::uint32_t version = kHealthVersion;
    std::uint64_t nonce = 0;

    std::vector<std::uint8_t> encode() const;
    static std::optional<Ping>
    decode(const std::vector<std::uint8_t>& payload);
};

struct Pong {
    std::uint32_t version = kHealthVersion;
    std::uint64_t nonce = 0;       ///< Echo of the probe's nonce.
    std::string replica;           ///< Who answered.
    std::uint64_t uptime_ms = 0;   ///< Since the replica server started.

    std::vector<std::uint8_t> encode() const;
    static std::optional<Pong>
    decode(const std::vector<std::uint8_t>& payload);
};

/// StatsReply payload: the counters the scale-out bench and tests
/// assert on, merged from the replica's ApproxService metrics and its
/// CalibrationPlane.
struct ReplicaStats {
    std::string replica;
    std::uint64_t accepted = 0;
    std::uint64_t served = 0;
    std::uint64_t deadline_expired = 0;
    std::uint64_t recalibrations = 0;
    std::uint64_t suppressed_recalibrations = 0;
    std::uint64_t adopted_calibrations = 0;
    std::uint64_t adoption_rejects = 0;
    std::uint64_t exact_while_recalibrating = 0;
    std::uint64_t lease_wins = 0;
    std::uint64_t lease_losses = 0;
    std::uint64_t published_calibrations = 0;
    std::uint64_t redundant_recalibrations = 0;
    std::uint64_t watch_polls = 0;
    std::uint64_t takeovers = 0;

    std::vector<std::uint8_t> encode() const;
    static std::optional<ReplicaStats>
    decode(const std::vector<std::uint8_t>& payload);
};

}  // namespace paraprox::net
