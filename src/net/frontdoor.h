/// @file
/// FrontDoor: least-outstanding routing across N replica endpoints.
///
/// Clients speak the same wire protocol to the front door that the front
/// door speaks to replicas; route() picks the live replica with the
/// fewest in-flight requests (ties broken round-robin), rewrites the
/// remaining deadline budget, and forwards over a pooled connection.  A
/// replica that fails mid-request — dead socket, dropped reply, killed
/// process — is marked dead and the request is requeued to the next live
/// peer while its deadline allows; when the budget is exhausted the
/// client gets a *counted* DeadlineExceeded, and when no live replica
/// remains, a counted rejection.  Zero silent losses: every admitted
/// request resolves with exactly one reply.

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "net/wire.h"
#include "support/socket.h"

namespace paraprox::net {

struct ReplicaEndpoint {
    std::string id;
    std::string socket_path;
};

struct FrontDoorOptions {
    /// Endpoint for remote clients; empty = in-process route() only.
    std::string socket_path;
};

struct FrontDoorStats {
    std::uint64_t requests = 0;
    /// Forward attempts that failed and moved to another replica.
    std::uint64_t requeues = 0;
    /// Replicas declared dead after an IO failure.
    std::uint64_t replica_failures = 0;
    /// Requests rejected because no live replica remained.
    std::uint64_t rejected_no_replica = 0;
    /// Requests whose deadline ran out between attempts (counted here
    /// at the front door, never silently dropped).
    std::uint64_t deadline_rejects = 0;
    /// Requests routed to each replica (index-aligned with endpoints).
    std::vector<std::uint64_t> routed;
};

class FrontDoor {
  public:
    explicit FrontDoor(std::vector<ReplicaEndpoint> replicas,
                       FrontDoorOptions options = {});
    ~FrontDoor();  ///< stop()s if the caller has not.

    FrontDoor(const FrontDoor&) = delete;
    FrontDoor& operator=(const FrontDoor&) = delete;

    /// Start the client listener (no-op without a socket_path).  False
    /// if the path cannot be bound.
    bool start();
    void stop();

    /// Route one request through the fleet.  Thread-safe; always
    /// returns a terminal reply (Ok / DeadlineExceeded / Rejected).
    SubmitReply route(SubmitRequest request);

    /// Send an arbitrary request frame to one specific replica and wait
    /// for its reply (stats scrapes, drift broadcasts, shutdown).
    /// nullopt on transport failure; does not mark the replica dead.
    std::optional<Frame> call(std::size_t replica_index, MsgType type,
                              const std::vector<std::uint8_t>& payload);

    std::size_t num_replicas() const { return replicas_.size(); }
    bool replica_alive(std::size_t index) const;

    /// Mark a previously-failed replica routable again — the supervisor
    /// restarted its process and its health probe answers.  A premature
    /// revive costs one requeue on the next route, nothing worse.
    void revive(std::size_t index);
    FrontDoorStats stats() const;

  private:
    struct Replica {
        ReplicaEndpoint endpoint;
        std::atomic<int> outstanding{0};
        std::atomic<bool> alive{true};
        std::atomic<std::uint64_t> routed{0};
        std::mutex pool_mutex;
        std::vector<Socket> pool;  ///< Idle pooled connections.
    };

    /// Borrow an idle pooled connection or dial a fresh one.
    Socket borrow(Replica& replica);
    void give_back(Replica& replica, Socket connection);
    /// Live, untried replica with the fewest outstanding requests;
    /// -1 when none remains.
    int pick(const std::vector<bool>& tried) const;

    void accept_loop();
    void handle_client(const std::shared_ptr<Socket>& connection);

    std::vector<std::unique_ptr<Replica>> replicas_;
    const FrontDoorOptions options_;

    Listener listener_;
    std::thread acceptor_;
    std::mutex clients_mutex_;
    std::vector<std::shared_ptr<Socket>> clients_;
    std::vector<std::thread> client_threads_;
    std::atomic<bool> started_{false};
    std::atomic<bool> stopping_{false};

    mutable std::atomic<std::uint64_t> round_robin_{0};
    std::atomic<std::uint64_t> requests_{0};
    std::atomic<std::uint64_t> requeues_{0};
    std::atomic<std::uint64_t> replica_failures_{0};
    std::atomic<std::uint64_t> rejected_no_replica_{0};
    std::atomic<std::uint64_t> deadline_rejects_{0};
};

}  // namespace paraprox::net
