#include "net/supervisor.h"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "net/wire.h"
#include "support/socket.h"

namespace paraprox::net {

namespace {

/// SIGCHLD self-pipe: the handler may only touch async-signal-safe
/// state, so it writes one byte the supervision loop polls on.
int g_sigchld_pipe[2] = {-1, -1};

void
on_sigchld(int)
{
    const int saved_errno = errno;
    if (g_sigchld_pipe[1] >= 0) {
        const char byte = 'c';
        [[maybe_unused]] const ssize_t n =
            write(g_sigchld_pipe[1], &byte, 1);
    }
    errno = saved_errno;
}

bool
make_nonblocking_pipe(int fds[2])
{
    if (pipe(fds) != 0)
        return false;
    for (int i = 0; i < 2; ++i) {
        // Nonblocking so a full pipe never blocks a signal handler and
        // a drained pipe never blocks the loop.
        const int flags = fcntl(fds[i], F_GETFL, 0);
        fcntl(fds[i], F_SETFL, flags | O_NONBLOCK);
    }
    return true;
}

void
drain_pipe(int fd)
{
    char buffer[64];
    while (fd >= 0 && read(fd, buffer, sizeof buffer) > 0) {
    }
}

void
set_socket_timeout(int fd, std::chrono::milliseconds timeout)
{
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
    tv.tv_usec =
        static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
    setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

}  // namespace

Supervisor::Supervisor(std::vector<SupervisedReplica> slots, SpawnFn spawn,
                       SupervisorConfig config)
    : config_(config), spawn_(std::move(spawn))
{
    slots_.reserve(slots.size());
    for (auto& spec : slots) {
        Slot slot;
        slot.spec = std::move(spec);
        slot.backoff = config_.initial_backoff;
        slots_.push_back(std::move(slot));
    }
}

Supervisor::~Supervisor()
{
    stop();
}

void
Supervisor::install_sigchld()
{
    if (g_sigchld_pipe[0] >= 0)
        return;
    if (!make_nonblocking_pipe(g_sigchld_pipe))
        return;
    struct sigaction action{};
    action.sa_handler = on_sigchld;
    sigemptyset(&action.sa_mask);
    // SA_RESTART keeps unrelated blocking syscalls (the front door's
    // accept, socket IO) from surfacing EINTR on every child exit;
    // SA_NOCLDSTOP keeps job-control stops from masquerading as deaths.
    action.sa_flags = SA_RESTART | SA_NOCLDSTOP;
    sigaction(SIGCHLD, &action, nullptr);
}

void
Supervisor::start()
{
    if (running_.exchange(true, std::memory_order_acq_rel))
        return;
    make_nonblocking_pipe(stop_pipe_);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (Slot& slot : slots_)
            spawn_slot(slot, /*is_restart=*/false);
    }
    thread_ = std::thread([this] { loop(); });
}

void
Supervisor::quiesce()
{
    quiesced_.store(true, std::memory_order_release);
    std::lock_guard<std::mutex> lock(mutex_);
    for (Slot& slot : slots_)
        slot.restart_at.reset();
}

void
Supervisor::stop()
{
    if (!running_.exchange(false, std::memory_order_acq_rel))
        return;
    if (stop_pipe_[1] >= 0) {
        const char byte = 's';
        [[maybe_unused]] const ssize_t n =
            write(stop_pipe_[1], &byte, 1);
    }
    if (thread_.joinable())
        thread_.join();
    for (int& fd : stop_pipe_) {
        if (fd >= 0)
            ::close(fd);
        fd = -1;
    }
}

bool
Supervisor::kill_slot(std::size_t index, int signal)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (index >= slots_.size())
        return false;
    Slot& slot = slots_[index];
    if (!slot.up || slot.pid <= 0)
        return false;
    return ::kill(slot.pid, signal) == 0;
}

SupervisorStats
Supervisor::stats() const
{
    SupervisorStats out;
    out.spawns = spawns_.load(std::memory_order_relaxed);
    out.restarts = restarts_.load(std::memory_order_relaxed);
    out.reaps = reaps_.load(std::memory_order_relaxed);
    out.probes = probes_.load(std::memory_order_relaxed);
    out.failed_probes = failed_probes_.load(std::memory_order_relaxed);
    out.kills = kills_.load(std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mutex_);
    for (const Slot& slot : slots_) {
        if (slot.quarantined)
            ++out.quarantined;
    }
    return out;
}

std::vector<SlotSnapshot>
Supervisor::snapshot() const
{
    std::vector<SlotSnapshot> out;
    std::lock_guard<std::mutex> lock(mutex_);
    out.reserve(slots_.size());
    for (const Slot& slot : slots_) {
        SlotSnapshot snap;
        snap.id = slot.spec.id;
        snap.pid = slot.pid;
        snap.up = slot.up;
        snap.healthy = slot.healthy;
        snap.quarantined = slot.quarantined;
        snap.restarts = slot.restarts;
        out.push_back(std::move(snap));
    }
    return out;
}

bool
Supervisor::all_healthy() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return std::all_of(slots_.begin(), slots_.end(), [](const Slot& slot) {
        return slot.quarantined || (slot.up && slot.healthy);
    });
}

void
Supervisor::loop()
{
    while (running_.load(std::memory_order_acquire)) {
        pollfd fds[2];
        nfds_t count = 0;
        if (stop_pipe_[0] >= 0)
            fds[count++] = {stop_pipe_[0], POLLIN, 0};
        if (g_sigchld_pipe[0] >= 0)
            fds[count++] = {g_sigchld_pipe[0], POLLIN, 0};
        poll(fds, count, static_cast<int>(config_.tick.count()));
        drain_pipe(g_sigchld_pipe[0]);
        drain_pipe(stop_pipe_[0]);
        if (!running_.load(std::memory_order_acquire))
            break;

        reap();
        const auto now = std::chrono::steady_clock::now();
        if (!quiesced_.load(std::memory_order_acquire)) {
            restart_due(now);
            probe_due(now);
        }
    }
    // Final sweep so a child that exited during shutdown is not left a
    // zombie for the owner's waitpid to trip over.
    reap();
}

void
Supervisor::reap()
{
    for (;;) {
        int status = 0;
        const pid_t pid = waitpid(-1, &status, WNOHANG);
        if (pid <= 0)
            return;
        reaps_.fetch_add(1, std::memory_order_relaxed);

        std::lock_guard<std::mutex> lock(mutex_);
        const auto it =
            std::find_if(slots_.begin(), slots_.end(),
                         [pid](const Slot& slot) {
                             return slot.up && slot.pid == pid;
                         });
        if (it == slots_.end())
            continue;  // Not ours to restart (already replaced slot).
        Slot& slot = *it;
        slot.up = false;
        slot.healthy = false;
        slot.pid = -1;
        if (quiesced_.load(std::memory_order_acquire))
            continue;  // Draining: collect, never resurrect.

        const auto now = std::chrono::steady_clock::now();
        const bool fast_crash =
            now - slot.spawned_at < config_.fast_crash_window;
        slot.fast_crashes = fast_crash ? slot.fast_crashes + 1 : 1;
        if (slot.fast_crashes >= config_.quarantine_after) {
            // Crash loop: every exec dies on arrival; stop feeding it.
            slot.quarantined = true;
            slot.restart_at.reset();
            continue;
        }
        slot.restart_at = now + slot.backoff;
        slot.backoff = std::min<std::chrono::steady_clock::duration>(
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(
                    std::chrono::duration<double>(slot.backoff).count() *
                    config_.backoff_growth)),
            config_.max_backoff);
    }
}

void
Supervisor::restart_due(std::chrono::steady_clock::time_point now)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (Slot& slot : slots_) {
        if (slot.quarantined || slot.up || !slot.restart_at ||
            *slot.restart_at > now)
            continue;
        slot.restart_at.reset();
        spawn_slot(slot, /*is_restart=*/true);
    }
}

void
Supervisor::spawn_slot(Slot& slot, bool is_restart)
{
    const pid_t pid = spawn_ ? spawn_(slot.spec) : -1;
    if (pid <= 0) {
        // Spawn failure behaves like an instant crash: backoff retry.
        slot.restart_at =
            std::chrono::steady_clock::now() + slot.backoff;
        return;
    }
    slot.pid = pid;
    slot.up = true;
    slot.healthy = false;
    slot.failed_probes = 0;
    slot.spawned_at = std::chrono::steady_clock::now();
    slot.last_probe = slot.spawned_at;
    spawns_.fetch_add(1, std::memory_order_relaxed);
    if (is_restart) {
        ++slot.restarts;
        restarts_.fetch_add(1, std::memory_order_relaxed);
    }
}

void
Supervisor::probe_due(std::chrono::steady_clock::time_point now)
{
    // Collect due slots under the lock, probe off it (a probe blocks up
    // to probe_timeout; holding the registry that long would stall
    // kill_slot and reap).
    struct Due {
        std::size_t index;
        Slot copy;
    };
    std::vector<Due> due;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (std::size_t i = 0; i < slots_.size(); ++i) {
            Slot& slot = slots_[i];
            if (slot.quarantined || !slot.up)
                continue;
            if (now - slot.last_probe < config_.probe_interval)
                continue;
            slot.last_probe = now;
            due.push_back({i, slot});
        }
    }

    for (const Due& item : due) {
        probes_.fetch_add(1, std::memory_order_relaxed);
        const bool ok = probe(item.copy);
        std::lock_guard<std::mutex> lock(mutex_);
        Slot& slot = slots_[item.index];
        // The slot may have died and been respawned while we probed;
        // only apply the verdict to the same incarnation.
        if (!slot.up || slot.pid != item.copy.pid)
            continue;
        if (ok) {
            slot.healthy = true;
            slot.failed_probes = 0;
            slot.fast_crashes = 0;
            slot.backoff = config_.initial_backoff;
            continue;
        }
        failed_probes_.fetch_add(1, std::memory_order_relaxed);
        if (now - slot.spawned_at < config_.startup_grace)
            continue;  // Warming up (calibration): not evidence yet.
        slot.healthy = false;
        if (++slot.failed_probes >= config_.unresponsive_threshold) {
            // Alive but wedged: kill it and let the reap path run the
            // ordinary backoff restart.
            ::kill(slot.pid, SIGKILL);
            kills_.fetch_add(1, std::memory_order_relaxed);
            slot.failed_probes = 0;
        }
    }
}

bool
Supervisor::probe(const Slot& slot)
{
    Socket connection = connect_unix(slot.spec.socket_path);
    if (!connection.valid())
        return false;
    set_socket_timeout(connection.fd(), config_.probe_timeout);
    Ping ping;
    ping.nonce = nonce_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (!send_frame(connection, MsgType::Ping, ping.encode(),
                    "supervisor:" + slot.spec.id))
        return false;
    const auto frame = recv_frame(connection);
    if (!frame || frame->type != MsgType::Pong)
        return false;
    const auto pong = Pong::decode(frame->payload);
    return pong && pong->version == kHealthVersion &&
           pong->nonce == ping.nonce;
}

}  // namespace paraprox::net
