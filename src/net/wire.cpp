#include "net/wire.h"

#include <chrono>
#include <cstring>
#include <thread>

#include "store/format.h"
#include "support/faultinject.h"

namespace paraprox::net {
namespace {

using store::ByteReader;
using store::ByteWriter;

constexpr std::size_t kHeaderBytes = 16;

bool
known_type(std::uint32_t type)
{
    return type >= static_cast<std::uint32_t>(MsgType::SubmitRequest) &&
           type <= static_cast<std::uint32_t>(MsgType::Pong);
}

}  // namespace

bool
send_frame(Socket& socket, MsgType type,
           const std::vector<std::uint8_t>& payload,
           std::string_view context)
{
    if (const double stall_ms = fault::latency_ms("net.latency", context);
        stall_ms > 0.0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(stall_ms));
    }
    if (fault::fire("net.drop", context)) {
        // Manufactured packet loss: the peer observes exactly what a
        // killed process produces — a dead connection, not a short or
        // garbled frame.
        socket.shutdown_both();
        return false;
    }
    ByteWriter header;
    header.u32(kWireMagic);
    header.u32(static_cast<std::uint32_t>(type));
    header.u64(payload.size());
    if (!socket.send_all(header.bytes().data(), header.bytes().size()))
        return false;
    return payload.empty() ||
           socket.send_all(payload.data(), payload.size());
}

std::optional<Frame>
recv_frame(Socket& socket)
{
    std::uint8_t header[kHeaderBytes];
    if (!socket.recv_all(header, sizeof header))
        return std::nullopt;
    ByteReader r(header, sizeof header);
    const std::uint32_t magic = r.u32();
    const std::uint32_t type = r.u32();
    const std::uint64_t length = r.u64();
    if (magic != kWireMagic || !known_type(type) ||
        length > kMaxFrameBytes)
        return std::nullopt;
    Frame frame;
    frame.type = static_cast<MsgType>(type);
    frame.payload.resize(static_cast<std::size_t>(length));
    if (length > 0 &&
        !socket.recv_all(frame.payload.data(), frame.payload.size()))
        return std::nullopt;
    return frame;
}

// ---- SubmitRequest ---------------------------------------------------------

std::uint64_t
SubmitRequest::seed() const
{
    std::uint64_t out = 0;
    for (std::size_t i = 0; i < 8 && i < input.size(); ++i)
        out |= static_cast<std::uint64_t>(input[i]) << (8 * i);
    return out;
}

std::vector<std::uint8_t>
SubmitRequest::seed_input(std::uint64_t seed)
{
    std::vector<std::uint8_t> out(8);
    for (std::size_t i = 0; i < 8; ++i)
        out[i] = static_cast<std::uint8_t>(seed >> (8 * i));
    return out;
}

std::vector<std::uint8_t>
SubmitRequest::encode() const
{
    ByteWriter w;
    w.str(kernel);
    w.f64(toq);
    w.u64(deadline_us);
    w.u64(input.size());
    for (const std::uint8_t byte : input)
        w.u8(byte);
    return w.bytes();
}

std::optional<SubmitRequest>
SubmitRequest::decode(const std::vector<std::uint8_t>& payload)
{
    ByteReader r(payload.data(), payload.size());
    SubmitRequest out;
    out.kernel = r.str();
    out.toq = r.f64();
    out.deadline_us = r.u64();
    const std::size_t input_size = r.count(1);
    out.input.resize(input_size);
    for (auto& byte : out.input)
        byte = r.u8();
    if (!r.at_end() || out.kernel.empty())
        return std::nullopt;
    return out;
}

// ---- SubmitReply -----------------------------------------------------------

std::vector<std::uint8_t>
SubmitReply::encode() const
{
    ByteWriter w;
    w.u32(static_cast<std::uint32_t>(status));
    w.str(reject_reason);
    w.str(served_by);
    w.str(replica);
    w.u64(output.size());
    for (const float value : output)
        w.f32(value);
    return w.bytes();
}

std::optional<SubmitReply>
SubmitReply::decode(const std::vector<std::uint8_t>& payload)
{
    ByteReader r(payload.data(), payload.size());
    SubmitReply out;
    const std::uint32_t status = r.u32();
    if (status > static_cast<std::uint32_t>(WireStatus::Rejected))
        return std::nullopt;
    out.status = static_cast<WireStatus>(status);
    out.reject_reason = r.str();
    out.served_by = r.str();
    out.replica = r.str();
    const std::size_t output_size = r.count(4);
    out.output.resize(output_size);
    for (auto& value : out.output)
        value = r.f32();
    if (!r.at_end())
        return std::nullopt;
    return out;
}

// ---- DriftRequest / DriftReply ---------------------------------------------

std::vector<std::uint8_t>
DriftRequest::encode() const
{
    ByteWriter w;
    w.str(kernel);
    return w.bytes();
}

std::optional<DriftRequest>
DriftRequest::decode(const std::vector<std::uint8_t>& payload)
{
    ByteReader r(payload.data(), payload.size());
    DriftRequest out;
    out.kernel = r.str();
    if (!r.at_end() || out.kernel.empty())
        return std::nullopt;
    return out;
}

std::vector<std::uint8_t>
DriftReply::encode() const
{
    ByteWriter w;
    w.u8(accepted ? 1 : 0);
    return w.bytes();
}

std::optional<DriftReply>
DriftReply::decode(const std::vector<std::uint8_t>& payload)
{
    ByteReader r(payload.data(), payload.size());
    DriftReply out;
    out.accepted = r.u8() != 0;
    if (!r.at_end())
        return std::nullopt;
    return out;
}

// ---- Ping / Pong -----------------------------------------------------------

std::vector<std::uint8_t>
Ping::encode() const
{
    ByteWriter w;
    w.u32(version);
    w.u64(nonce);
    return w.bytes();
}

std::optional<Ping>
Ping::decode(const std::vector<std::uint8_t>& payload)
{
    ByteReader r(payload.data(), payload.size());
    Ping out;
    out.version = r.u32();
    out.nonce = r.u64();
    if (!r.at_end())
        return std::nullopt;
    return out;
}

std::vector<std::uint8_t>
Pong::encode() const
{
    ByteWriter w;
    w.u32(version);
    w.u64(nonce);
    w.str(replica);
    w.u64(uptime_ms);
    return w.bytes();
}

std::optional<Pong>
Pong::decode(const std::vector<std::uint8_t>& payload)
{
    ByteReader r(payload.data(), payload.size());
    Pong out;
    out.version = r.u32();
    out.nonce = r.u64();
    out.replica = r.str();
    out.uptime_ms = r.u64();
    if (!r.at_end())
        return std::nullopt;
    return out;
}

// ---- ReplicaStats ----------------------------------------------------------

std::vector<std::uint8_t>
ReplicaStats::encode() const
{
    ByteWriter w;
    w.str(replica);
    w.u64(accepted);
    w.u64(served);
    w.u64(deadline_expired);
    w.u64(recalibrations);
    w.u64(suppressed_recalibrations);
    w.u64(adopted_calibrations);
    w.u64(adoption_rejects);
    w.u64(exact_while_recalibrating);
    w.u64(lease_wins);
    w.u64(lease_losses);
    w.u64(published_calibrations);
    w.u64(redundant_recalibrations);
    w.u64(watch_polls);
    w.u64(takeovers);
    return w.bytes();
}

std::optional<ReplicaStats>
ReplicaStats::decode(const std::vector<std::uint8_t>& payload)
{
    ByteReader r(payload.data(), payload.size());
    ReplicaStats out;
    out.replica = r.str();
    out.accepted = r.u64();
    out.served = r.u64();
    out.deadline_expired = r.u64();
    out.recalibrations = r.u64();
    out.suppressed_recalibrations = r.u64();
    out.adopted_calibrations = r.u64();
    out.adoption_rejects = r.u64();
    out.exact_while_recalibrating = r.u64();
    out.lease_wins = r.u64();
    out.lease_losses = r.u64();
    out.published_calibrations = r.u64();
    out.redundant_recalibrations = r.u64();
    out.watch_polls = r.u64();
    out.takeovers = r.u64();
    if (!r.at_end())
        return std::nullopt;
    return out;
}

}  // namespace paraprox::net
