#include "net/replica.h"

#include <chrono>
#include <cstdlib>

#include "support/faultinject.h"

namespace paraprox::net {

ReplicaServer::ReplicaServer(serve::ApproxService& service,
                             CalibrationPlane* plane,
                             ReplicaOptions options)
    : service_(service), plane_(plane), options_(std::move(options))
{
}

ReplicaServer::~ReplicaServer()
{
    stop();
}

bool
ReplicaServer::start()
{
    if (started_.exchange(true, std::memory_order_acq_rel))
        return true;
    if (!listener_.listen_unix(options_.socket_path)) {
        started_.store(false, std::memory_order_release);
        return false;
    }
    acceptor_ = std::thread([this] { accept_loop(); });
    return true;
}

void
ReplicaServer::stop()
{
    if (!started_.load(std::memory_order_acquire))
        return;
    stopping_.store(true, std::memory_order_release);
    listener_.close();
    {
        std::lock_guard<std::mutex> lock(connections_mutex_);
        for (const auto& connection : connections_)
            connection->shutdown_both();
    }
    if (acceptor_.joinable())
        acceptor_.join();
    std::vector<std::thread> handlers;
    {
        std::lock_guard<std::mutex> lock(connections_mutex_);
        handlers.swap(handlers_);
    }
    for (auto& handler : handlers) {
        if (handler.joinable())
            handler.join();
    }
    {
        std::lock_guard<std::mutex> lock(connections_mutex_);
        connections_.clear();
    }
    started_.store(false, std::memory_order_release);
}

void
ReplicaServer::abort()
{
    aborted_.store(true, std::memory_order_release);
    stopping_.store(true, std::memory_order_release);
    listener_.close();
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (const auto& connection : connections_)
        connection->shutdown_both();
}

void
ReplicaServer::accept_loop()
{
    while (!stopping_.load(std::memory_order_acquire)) {
        Socket connection = listener_.accept();
        if (!connection.valid())
            break;
        auto shared = std::make_shared<Socket>(std::move(connection));
        std::lock_guard<std::mutex> lock(connections_mutex_);
        if (stopping_.load(std::memory_order_acquire)) {
            shared->shutdown_both();
            break;
        }
        connections_.push_back(shared);
        handlers_.emplace_back(
            [this, shared] { handle_connection(shared); });
    }
}

void
ReplicaServer::handle_connection(const std::shared_ptr<Socket>& connection)
{
    handle_frames(*connection);
    // Whatever ended the session — clean EOF, garbage framing, or a
    // version-gated health frame — close the socket *now*.  The
    // connections_ registry keeps the Socket object alive until stop(),
    // so without this shutdown a "dropped" peer would block on recv
    // forever instead of seeing the drop.
    connection->shutdown_both();
}

void
ReplicaServer::handle_frames(Socket& connection)
{
    const std::string context = "replica:" + options_.id;
    while (!stopping_.load(std::memory_order_acquire)) {
        const auto frame = recv_frame(connection);
        if (!frame)
            break;
        switch (frame->type) {
            case MsgType::SubmitRequest: {
                // Chaos site: die mid-request, reply unsent — what a
                // segfault or OOM kill produces.  _Exit skips atexit
                // teardown on purpose; only arm this in forked replica
                // processes (tools/paraprox_frontd), never in-process.
                if (fault::fire("replica.crash", options_.id))
                    std::_Exit(42);
                const auto request = SubmitRequest::decode(frame->payload);
                if (!request)
                    return;  // Garbage framing: drop the connection.
                SubmitReply reply;
                reply.replica = options_.id;
                serve::SubmitOptions options;
                if (request->deadline_us > 0) {
                    options = serve::SubmitOptions::within(
                        std::chrono::microseconds(request->deadline_us));
                }
                auto ticket =
                    service_.submit(request->kernel, request->seed(),
                                    options);
                if (!ticket.accepted) {
                    reply.status = WireStatus::Rejected;
                    reply.reject_reason = ticket.reject_reason;
                } else {
                    try {
                        serve::Response response = ticket.response.get();
                        if (response.status == serve::ServeStatus::Ok) {
                            reply.status = WireStatus::Ok;
                            reply.served_by = response.served_by;
                            reply.output = std::move(response.run.output);
                        } else {
                            reply.status = WireStatus::DeadlineExceeded;
                        }
                    } catch (...) {
                        reply.status = WireStatus::Rejected;
                        reply.reject_reason = "serve exception";
                    }
                }
                if (aborted_.load(std::memory_order_acquire))
                    return;  // Killed: the reply is never sent.
                if (!send_frame(connection, MsgType::SubmitReply,
                                reply.encode(), context))
                    return;
                break;
            }
            case MsgType::StatsRequest: {
                if (!send_frame(connection, MsgType::StatsReply,
                                gather_stats().encode(), context))
                    return;
                break;
            }
            case MsgType::DriftRequest: {
                const auto request = DriftRequest::decode(frame->payload);
                DriftReply reply;
                if (request) {
                    try {
                        service_.recalibrate_kernel(request->kernel);
                        reply.accepted = true;
                    } catch (...) {
                        reply.accepted = false;  // Unknown kernel.
                    }
                }
                if (!send_frame(connection, MsgType::DriftReply,
                                reply.encode(), context))
                    return;
                break;
            }
            case MsgType::Ping: {
                const auto ping = Ping::decode(frame->payload);
                // Garbage or a foreign health-protocol version: drop the
                // connection instead of guessing — the prober reads a
                // dead link, which is the honest answer.
                if (!ping || ping->version != kHealthVersion)
                    return;
                Pong pong;
                pong.nonce = ping->nonce;
                pong.replica = options_.id;
                pong.uptime_ms = static_cast<std::uint64_t>(
                    std::chrono::duration_cast<std::chrono::milliseconds>(
                        std::chrono::steady_clock::now() - started_at_)
                        .count());
                if (!send_frame(connection, MsgType::Pong, pong.encode(),
                                context))
                    return;
                break;
            }
            case MsgType::ShutdownRequest: {
                shutdown_requested_.store(true, std::memory_order_release);
                send_frame(connection, MsgType::ShutdownReply, {},
                           context);
                return;
            }
            default:
                return;  // Reply types are never valid requests.
        }
    }
}

ReplicaStats
ReplicaServer::gather_stats() const
{
    ReplicaStats stats;
    stats.replica = options_.id;
    const serve::MetricsSnapshot metrics = service_.metrics().snapshot();
    stats.accepted = metrics.accepted;
    stats.served = metrics.served;
    stats.deadline_expired = metrics.deadline_expired;
    stats.recalibrations = metrics.recalibrations;
    stats.suppressed_recalibrations = metrics.suppressed_recalibrations;
    stats.adopted_calibrations = metrics.adopted_calibrations;
    stats.adoption_rejects = metrics.adoption_rejects;
    stats.exact_while_recalibrating = metrics.exact_while_recalibrating;
    if (plane_ != nullptr) {
        const PlaneStats plane = plane_->stats();
        stats.lease_wins = plane.lease_wins;
        stats.lease_losses = plane.lease_losses;
        stats.published_calibrations = plane.published;
        stats.redundant_recalibrations = plane.redundant;
        stats.watch_polls = plane.watch_polls;
        stats.takeovers = plane.takeovers;
    }
    return stats;
}

}  // namespace paraprox::net
