/// @file
/// ReplicaServer: one ApproxService behind an AF_UNIX endpoint.
///
/// The server owns the accept loop and one handler thread per
/// connection; the service and (optional) calibration plane are owned by
/// the caller, so tests can run several replicas in one process against
/// real sockets and a shared store — the same code multi-process
/// deployments (tools/paraprox_frontd, bench_serve_scaleout) run after a
/// fork/exec.
///
/// Shutdown comes in two flavors:
///   stop()   graceful — stop accepting, unblock handlers, join them
///            (in-flight requests get their replies first);
///   abort()  the chaos "kill -9" — every socket is hard-closed and no
///            further byte leaves the replica, exactly what peers of a
///            killed process observe.  The owning test then stops the
///            service normally; clients' lost requests are the front
///            door's requeue problem, which is the point.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/calibration_plane.h"
#include "net/wire.h"
#include "serve/service.h"
#include "support/socket.h"

namespace paraprox::net {

struct ReplicaOptions {
    std::string id = "replica";
    std::string socket_path;
};

class ReplicaServer {
  public:
    /// @p plane may be null (single-process serving, no fleet).  The
    /// caller keeps ownership of both and must keep them alive until
    /// stop() returns; stop the server first, then the service, then
    /// the plane (in-flight recalibrations may still publish).
    ReplicaServer(serve::ApproxService& service, CalibrationPlane* plane,
                  ReplicaOptions options);
    ~ReplicaServer();  ///< stop()s if the caller has not.

    ReplicaServer(const ReplicaServer&) = delete;
    ReplicaServer& operator=(const ReplicaServer&) = delete;

    /// Bind the endpoint and start accepting.  False if the path cannot
    /// be bound.
    bool start();
    void stop();

    /// Chaos kill: hard-close the listener and every connection without
    /// a byte of warning.  Idempotent; follow with stop() to join the
    /// (now unblocked) handler threads.
    void abort();

    /// Set once a ShutdownRequest arrives; the hosting process polls
    /// this to exit its serve loop.
    bool shutdown_requested() const
    {
        return shutdown_requested_.load(std::memory_order_acquire);
    }

    const std::string& id() const { return options_.id; }
    const std::string& socket_path() const { return options_.socket_path; }

  private:
    void accept_loop();
    void handle_connection(const std::shared_ptr<Socket>& connection);
    /// Frame loop for one connection; returning means "drop it".
    void handle_frames(Socket& connection);
    ReplicaStats gather_stats() const;

    serve::ApproxService& service_;
    CalibrationPlane* const plane_;
    const ReplicaOptions options_;
    /// For Pong uptime: how long this server object has been alive —
    /// a freshly restarted replica reports a small number.
    const std::chrono::steady_clock::time_point started_at_ =
        std::chrono::steady_clock::now();

    Listener listener_;
    std::thread acceptor_;

    std::mutex connections_mutex_;
    std::vector<std::shared_ptr<Socket>> connections_;
    std::vector<std::thread> handlers_;

    std::atomic<bool> started_{false};
    std::atomic<bool> stopping_{false};
    std::atomic<bool> aborted_{false};
    std::atomic<bool> shutdown_requested_{false};
};

}  // namespace paraprox::net
