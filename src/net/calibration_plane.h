/// @file
/// CalibrationPlane: fleet-wide drift arbitration over the artifact
/// store.
///
/// Every replica runs one plane next to its ApproxService.  When a
/// tracked kernel drifts, the plane's gate races the fleet for the
/// per-key drift lease (an O_EXCL file in the shared store):
///
///   - the winner recalibrates locally, then publishes the fresh
///     calibration — with its quarantine verdicts — as a versioned
///     FleetCalibration record and releases the lease;
///   - losers serve exact and wait; their watch thread polls the record
///     version every few tens of milliseconds and installs the publish
///     through ApproxService::adopt_calibration().  One drift event
///     costs the fleet exactly one re-profiling sweep.
///
/// Failure containment: if the lease winner dies mid-recalibration, its
/// lease expires; any loser still awaiting adoption past the adoption
/// timeout re-drives the drift, steals the expired lease, and finishes
/// the event (counted as a takeover).  If the winner merely lost its
/// lease to a slow sweep, its publish detects the version moved
/// underneath, counts a redundant recalibration, and adopts the peer's
/// record instead of clobbering it.

#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/service.h"
#include "store/artifact_store.h"

namespace paraprox::net {

struct PlaneConfig {
    /// This replica's fleet-unique id (lease ownership, reply labels).
    std::string replica_id = "replica";
    /// How long a drift lease stays valid.  Must exceed the worst-case
    /// recalibration sweep by a safe margin; an expired lease is up for
    /// stealing.
    std::chrono::milliseconds lease_ttl{2000};
    /// Version-watch poll period.
    std::chrono::milliseconds watch_interval{20};
    /// How long a replica waits for the lease winner's publish before
    /// re-driving the drift itself (the winner presumably died).
    std::chrono::milliseconds adoption_timeout{3000};
};

struct PlaneStats {
    std::uint64_t lease_wins = 0;
    std::uint64_t lease_losses = 0;
    std::uint64_t published = 0;
    /// Locally completed recalibrations that lost the publish race (our
    /// lease expired and a peer finished first); the peer's record was
    /// adopted instead.  Zero in a healthy fleet.
    std::uint64_t redundant = 0;
    std::uint64_t watch_polls = 0;
    /// Drift events re-driven after the lease winner went silent.
    std::uint64_t takeovers = 0;
};

class CalibrationPlane {
  public:
    /// The plane wires itself into @p service as its recalibration gate
    /// and publisher on start().  @p store is the fleet-shared artifact
    /// store (every replica must point at the same directory).
    CalibrationPlane(serve::ApproxService& service,
                     std::shared_ptr<store::ArtifactStore> store,
                     PlaneConfig config = {});
    ~CalibrationPlane();  ///< stop()s if the caller has not.

    CalibrationPlane(const CalibrationPlane&) = delete;
    CalibrationPlane& operator=(const CalibrationPlane&) = delete;

    /// Arbitrate drift for @p kernel under @p key (the kernel's fleet
    /// calibration key; KernelSession::calibration_key() produces the
    /// right shape).  Untracked kernels recalibrate locally, ungated.
    void track(const std::string& kernel, store::StoreKey key);

    /// Install the service hooks and start the watch thread.
    void start();
    void stop();

    /// One watch sweep immediately, synchronously (tests and
    /// shutdown-ordering callers; the background thread does this on a
    /// timer).
    void poll_now();

    PlaneStats stats() const;

  private:
    struct Entry {
        store::StoreKey key;
        /// Latest fleet version this replica has seen (adopted,
        /// published, or pre-existing at track time).
        std::uint64_t seen_version = 0;
        /// Nonzero while this replica holds the drift lease.
        std::uint64_t lease_token = 0;
        /// Fleet version observed when the lease was acquired; the
        /// publish CAS-checks against it.
        std::uint64_t publish_base = 0;
        bool awaiting = false;
        std::chrono::steady_clock::time_point awaiting_since{};
    };

    serve::RecalibrationDecision gate(const std::string& kernel);
    void publish(const std::string& kernel,
                 const runtime::CalibrationState& calibration,
                 const std::vector<std::string>& quarantined);
    void watch_loop();
    /// One sweep over tracked kernels; returns kernels whose drift must
    /// be re-driven (invoked by the caller outside the lock — the gate
    /// re-enters this plane).
    std::vector<std::string> sweep();

    serve::ApproxService& service_;
    const std::shared_ptr<store::ArtifactStore> store_;
    const PlaneConfig config_;

    mutable std::mutex mutex_;
    std::map<std::string, Entry> tracked_;
    PlaneStats stats_;

    std::thread watcher_;
    std::mutex stop_mutex_;
    std::condition_variable stop_cv_;
    bool stopping_ = false;
    bool started_ = false;
};

}  // namespace paraprox::net
