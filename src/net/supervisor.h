/// @file
/// Supervisor: keeps a fleet of forked replica processes at strength.
///
/// Each slot names one replica (id + endpoint); a caller-supplied SpawnFn
/// forks/execs the actual process, so the supervisor owns *policy* only:
///
///   Reaping — children are collected with waitpid(WNOHANG), kicked by a
///     SIGCHLD self-pipe (install_sigchld()), so no exit is missed and no
///     zombie accumulates.
///
///   Restart with backoff — a dead slot is respawned after an exponential
///     backoff (initial_backoff x growth per consecutive crash, capped),
///     warm through the shared artifact store: the respawned worker
///     restores published calibrations instead of re-profiling.
///
///   Crash-loop quarantine — a slot whose child keeps dying inside
///     fast_crash_window (quarantine_after consecutive fast crashes) is
///     quarantined: no further restarts, the fleet runs degraded rather
///     than burning CPU on a doomed exec loop.
///
///   Liveness probing — healthy pids can still be wedged; the supervisor
///     pings each slot's endpoint (wire Ping/Pong, versioned) on a timer
///     with a receive timeout, and after unresponsive_threshold
///     consecutive failed probes the child is SIGKILLed — reaping then
///     schedules the ordinary backoff restart.
///
/// quiesce() flips the supervisor into drain mode: it keeps reaping but
/// stops restarting and probing, which is what a graceful fleet shutdown
/// (SIGTERM in tools/paraprox_frontd) needs — children are asked to stop
/// over the wire and must not be resurrected mid-drain.

#pragma once

#include <sys/types.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

namespace paraprox::net {

/// One supervised replica slot: identity and health endpoint.
struct SupervisedReplica {
    std::string id;
    std::string socket_path;
};

/// Fork/exec one replica for @p slot; returns the child pid (< 0 on
/// failure, which schedules a backoff retry like a crash).
using SpawnFn = std::function<pid_t(const SupervisedReplica& slot)>;

struct SupervisorConfig {
    /// How often each live slot is pinged.
    std::chrono::milliseconds probe_interval{200};
    /// Receive/send timeout on the probe connection: a wedged replica
    /// that accepts but never answers fails the probe instead of hanging
    /// the supervisor.
    std::chrono::milliseconds probe_timeout{500};
    /// Consecutive failed probes before the child is declared wedged and
    /// SIGKILLed (restart follows via the reap path).
    int unresponsive_threshold = 3;
    /// Probe failures within this window after a spawn are warm-up, not
    /// evidence: calibration takes time.
    std::chrono::milliseconds startup_grace{10000};
    /// Restart backoff: initial, growth per consecutive crash, cap.  A
    /// healthy probe resets the backoff.
    std::chrono::milliseconds initial_backoff{100};
    double backoff_growth = 2.0;
    std::chrono::milliseconds max_backoff{5000};
    /// An exit within this window of its spawn is a "fast crash";
    /// quarantine_after consecutive fast crashes quarantine the slot.
    std::chrono::milliseconds fast_crash_window{1000};
    int quarantine_after = 3;
    /// Supervision loop tick (poll timeout when no SIGCHLD arrives).
    std::chrono::milliseconds tick{20};
};

struct SupervisorStats {
    std::uint64_t spawns = 0;    ///< Initial spawns + restarts.
    std::uint64_t restarts = 0;  ///< Respawns after a death (not initial).
    std::uint64_t reaps = 0;     ///< Children collected via waitpid.
    std::uint64_t probes = 0;
    std::uint64_t failed_probes = 0;
    std::uint64_t kills = 0;     ///< SIGKILLs of unresponsive children.
    std::uint64_t quarantined = 0;  ///< Slots currently quarantined.
};

struct SlotSnapshot {
    std::string id;
    pid_t pid = -1;
    bool up = false;         ///< Child process believed running.
    bool healthy = false;    ///< Last probe answered.
    bool quarantined = false;
    std::uint64_t restarts = 0;
};

class Supervisor {
  public:
    Supervisor(std::vector<SupervisedReplica> slots, SpawnFn spawn,
               SupervisorConfig config = {});
    ~Supervisor();  ///< stop()s; never kills children it did not kill.

    Supervisor(const Supervisor&) = delete;
    Supervisor& operator=(const Supervisor&) = delete;

    /// Install the process-wide SIGCHLD handler (self-pipe kick).
    /// Optional — without it the loop still reaps every `tick` — but
    /// with it a death is collected immediately.  Idempotent.
    static void install_sigchld();

    /// Spawn every slot and start the supervision loop.
    void start();

    /// Drain mode: keep reaping, stop restarting and probing, cancel
    /// pending restarts.  Irreversible for this instance.
    void quiesce();

    /// Join the loop.  Children are left running — graceful shutdown is
    /// the owner's job (wire ShutdownRequest + waitpid); quiesce() first.
    void stop();

    /// Chaos hook: signal slot @p index's child (SIGKILL by default),
    /// as an external kill -9 would.  False if the slot has no child.
    bool kill_slot(std::size_t index, int signal = 9);

    std::size_t num_slots() const { return slots_.size(); }
    SupervisorStats stats() const;
    std::vector<SlotSnapshot> snapshot() const;
    /// True when every non-quarantined slot is up and answered its last
    /// probe.
    bool all_healthy() const;

  private:
    struct Slot {
        SupervisedReplica spec;
        pid_t pid = -1;
        bool up = false;
        bool healthy = false;
        bool quarantined = false;
        int fast_crashes = 0;
        int failed_probes = 0;
        std::uint64_t restarts = 0;
        std::chrono::steady_clock::time_point spawned_at{};
        std::chrono::steady_clock::time_point last_probe{};
        std::chrono::steady_clock::duration backoff{};
        /// Set while the slot waits out its restart backoff.
        std::optional<std::chrono::steady_clock::time_point> restart_at;
    };

    void loop();
    void reap();
    void restart_due(std::chrono::steady_clock::time_point now);
    void probe_due(std::chrono::steady_clock::time_point now);
    void spawn_slot(Slot& slot, bool is_restart);
    /// One Ping/Pong round trip against @p slot's endpoint.
    bool probe(const Slot& slot);

    const SupervisorConfig config_;
    const SpawnFn spawn_;

    mutable std::mutex mutex_;
    std::vector<Slot> slots_;

    std::thread thread_;
    int stop_pipe_[2] = {-1, -1};
    std::atomic<bool> running_{false};
    std::atomic<bool> quiesced_{false};

    std::atomic<std::uint64_t> spawns_{0};
    std::atomic<std::uint64_t> restarts_{0};
    std::atomic<std::uint64_t> reaps_{0};
    std::atomic<std::uint64_t> probes_{0};
    std::atomic<std::uint64_t> failed_probes_{0};
    std::atomic<std::uint64_t> kills_{0};
    std::atomic<std::uint64_t> nonce_{0};
};

}  // namespace paraprox::net
