#include "net/calibration_plane.h"

namespace paraprox::net {

CalibrationPlane::CalibrationPlane(
    serve::ApproxService& service,
    std::shared_ptr<store::ArtifactStore> store, PlaneConfig config)
    : service_(service), store_(std::move(store)),
      config_(std::move(config))
{
}

CalibrationPlane::~CalibrationPlane()
{
    stop();
}

void
CalibrationPlane::track(const std::string& kernel, store::StoreKey key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Entry entry;
    entry.key = std::move(key);
    // Publishes that predate this replica's registration are old news —
    // its registration-time calibration is at least as fresh.  Only a
    // version bump after this point is a drift event to adopt.
    entry.seen_version = store_->fleet_calibration_version(entry.key);
    tracked_[kernel] = std::move(entry);
}

void
CalibrationPlane::start()
{
    {
        std::lock_guard<std::mutex> lock(stop_mutex_);
        if (started_)
            return;
        started_ = true;
        stopping_ = false;
    }
    service_.set_recalibration_gate(
        [this](const std::string& kernel) { return gate(kernel); });
    service_.set_calibration_publisher(
        [this](const std::string& kernel,
               const runtime::CalibrationState& calibration,
               const std::vector<std::string>& quarantined) {
            publish(kernel, calibration, quarantined);
        });
    watcher_ = std::thread([this] { watch_loop(); });
}

void
CalibrationPlane::stop()
{
    {
        std::lock_guard<std::mutex> lock(stop_mutex_);
        if (!started_)
            return;
        stopping_ = true;
    }
    stop_cv_.notify_all();
    if (watcher_.joinable())
        watcher_.join();
    // Unhook so a service outliving the plane cannot call back into a
    // dead object.  In-flight recalibrations still hold copies of the
    // old hooks; the service copies them per event, so this only stops
    // *new* events from reaching us — callers stop the service first.
    service_.set_recalibration_gate(nullptr);
    service_.set_calibration_publisher(nullptr);
    std::lock_guard<std::mutex> lock(stop_mutex_);
    started_ = false;
}

PlaneStats
CalibrationPlane::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

serve::RecalibrationDecision
CalibrationPlane::gate(const std::string& kernel)
{
    std::unique_lock<std::mutex> lock(mutex_);
    const auto it = tracked_.find(kernel);
    if (it == tracked_.end())
        return serve::RecalibrationDecision::Proceed;
    Entry& entry = it->second;

    // A peer may have already resolved this very drift event: adopt its
    // publish instead of queuing behind its (already released) lease.
    const std::uint64_t current =
        store_->fleet_calibration_version(entry.key);
    if (current > entry.seen_version) {
        const auto artifact = store_->load_fleet_calibration(entry.key);
        if (artifact &&
            service_.adopt_calibration(kernel, artifact->calibration,
                                       artifact->quarantined)) {
            entry.seen_version = artifact->version;
            entry.awaiting = false;
            return serve::RecalibrationDecision::AlreadyResolved;
        }
    }

    const auto token = store_->try_acquire_lease(
        entry.key, config_.replica_id,
        static_cast<std::uint64_t>(config_.lease_ttl.count()));
    if (token) {
        ++stats_.lease_wins;
        entry.lease_token = *token;
        entry.publish_base = current;
        entry.awaiting = false;
        return serve::RecalibrationDecision::Proceed;
    }
    ++stats_.lease_losses;
    entry.awaiting = true;
    entry.awaiting_since = std::chrono::steady_clock::now();
    return serve::RecalibrationDecision::AwaitAdoption;
}

void
CalibrationPlane::publish(const std::string& kernel,
                          const runtime::CalibrationState& calibration,
                          const std::vector<std::string>& quarantined)
{
    std::unique_lock<std::mutex> lock(mutex_);
    const auto it = tracked_.find(kernel);
    if (it == tracked_.end())
        return;
    Entry& entry = it->second;

    const std::uint64_t current =
        store_->fleet_calibration_version(entry.key);
    if (current > entry.publish_base) {
        // The fleet moved underneath us: our lease expired mid-sweep and
        // a peer (takeover) finished the event first.  Our sweep was
        // redundant — adopt the fleet's record rather than clobbering a
        // version peers may have already adopted.
        ++stats_.redundant;
        const auto artifact = store_->load_fleet_calibration(entry.key);
        if (artifact &&
            service_.adopt_calibration(kernel, artifact->calibration,
                                       artifact->quarantined))
            entry.seen_version = artifact->version;
    } else {
        store::FleetCalibrationArtifact artifact;
        artifact.version = current + 1;
        artifact.calibration = calibration;
        artifact.quarantined = quarantined;
        artifact.toq = entry.key.toq;
        artifact.metric = entry.key.metric;
        if (store_->save_fleet_calibration(entry.key, artifact)) {
            ++stats_.published;
            entry.seen_version = artifact.version;
        }
    }
    if (entry.lease_token != 0) {
        store_->release_lease(entry.key, config_.replica_id,
                              entry.lease_token);
        entry.lease_token = 0;
    }
    entry.awaiting = false;
}

void
CalibrationPlane::poll_now()
{
    for (const std::string& kernel : sweep()) {
        // Re-drive a drift whose lease winner went silent: the gate runs
        // again, steals the (expired) lease or adopts a late publish.
        // Outside the plane lock — the gate re-enters this plane.
        service_.recalibrate_kernel(kernel);
    }
}

std::vector<std::string>
CalibrationPlane::sweep()
{
    std::vector<std::string> redrive;
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.watch_polls;
    const auto now = std::chrono::steady_clock::now();
    for (auto& [kernel, entry] : tracked_) {
        if (entry.lease_token != 0)
            continue;  // We are the recalibrating owner.
        const std::uint64_t current =
            store_->fleet_calibration_version(entry.key);
        if (current > entry.seen_version) {
            const auto artifact =
                store_->load_fleet_calibration(entry.key);
            if (!artifact)
                continue;  // Mid-replacement or corrupt; next poll.
            if (service_.adopt_calibration(kernel, artifact->calibration,
                                           artifact->quarantined))
                entry.awaiting = false;
            // Either way the version is consumed: a record that fails
            // restore validation (module drift) will not get better by
            // re-reading it every poll.
            entry.seen_version = artifact->version;
        } else if (entry.awaiting &&
                   now - entry.awaiting_since > config_.adoption_timeout) {
            entry.awaiting = false;
            ++stats_.takeovers;
            redrive.push_back(kernel);
        }
    }
    return redrive;
}

void
CalibrationPlane::watch_loop()
{
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(stop_mutex_);
            stop_cv_.wait_for(lock, config_.watch_interval,
                              [this] { return stopping_; });
            if (stopping_)
                return;
        }
        poll_now();
    }
}

}  // namespace paraprox::net
