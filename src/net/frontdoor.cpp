#include "net/frontdoor.h"

#include <chrono>
#include <limits>

namespace paraprox::net {

FrontDoor::FrontDoor(std::vector<ReplicaEndpoint> replicas,
                     FrontDoorOptions options)
    : options_(std::move(options))
{
    replicas_.reserve(replicas.size());
    for (auto& endpoint : replicas) {
        auto replica = std::make_unique<Replica>();
        replica->endpoint = std::move(endpoint);
        replicas_.push_back(std::move(replica));
    }
}

FrontDoor::~FrontDoor()
{
    stop();
}

bool
FrontDoor::start()
{
    if (started_.exchange(true, std::memory_order_acq_rel))
        return true;
    if (options_.socket_path.empty())
        return true;
    if (!listener_.listen_unix(options_.socket_path)) {
        started_.store(false, std::memory_order_release);
        return false;
    }
    acceptor_ = std::thread([this] { accept_loop(); });
    return true;
}

void
FrontDoor::stop()
{
    if (!started_.load(std::memory_order_acquire))
        return;
    stopping_.store(true, std::memory_order_release);
    listener_.close();
    {
        std::lock_guard<std::mutex> lock(clients_mutex_);
        for (const auto& client : clients_)
            client->shutdown_both();
    }
    if (acceptor_.joinable())
        acceptor_.join();
    std::vector<std::thread> threads;
    {
        std::lock_guard<std::mutex> lock(clients_mutex_);
        threads.swap(client_threads_);
    }
    for (auto& thread : threads) {
        if (thread.joinable())
            thread.join();
    }
    {
        std::lock_guard<std::mutex> lock(clients_mutex_);
        clients_.clear();
    }
    for (const auto& replica : replicas_) {
        std::lock_guard<std::mutex> lock(replica->pool_mutex);
        replica->pool.clear();
    }
    started_.store(false, std::memory_order_release);
    stopping_.store(false, std::memory_order_release);
}

Socket
FrontDoor::borrow(Replica& replica)
{
    {
        std::lock_guard<std::mutex> lock(replica.pool_mutex);
        if (!replica.pool.empty()) {
            Socket connection = std::move(replica.pool.back());
            replica.pool.pop_back();
            return connection;
        }
    }
    return connect_unix(replica.endpoint.socket_path);
}

void
FrontDoor::give_back(Replica& replica, Socket connection)
{
    std::lock_guard<std::mutex> lock(replica.pool_mutex);
    replica.pool.push_back(std::move(connection));
}

int
FrontDoor::pick(const std::vector<bool>& tried) const
{
    // Least-outstanding among live, untried replicas; ties rotate so a
    // fully idle fleet still spreads load round-robin.
    const std::size_t n = replicas_.size();
    const std::uint64_t start =
        round_robin_.fetch_add(1, std::memory_order_relaxed);
    int best = -1;
    int best_outstanding = std::numeric_limits<int>::max();
    for (std::size_t offset = 0; offset < n; ++offset) {
        const std::size_t index = (start + offset) % n;
        if (tried[index] ||
            !replicas_[index]->alive.load(std::memory_order_acquire))
            continue;
        const int outstanding =
            replicas_[index]->outstanding.load(std::memory_order_acquire);
        if (outstanding < best_outstanding) {
            best = static_cast<int>(index);
            best_outstanding = outstanding;
        }
    }
    return best;
}

SubmitReply
FrontDoor::route(SubmitRequest request)
{
    using clock = std::chrono::steady_clock;
    requests_.fetch_add(1, std::memory_order_relaxed);

    const bool has_deadline = request.deadline_us > 0;
    const clock::time_point deadline_at =
        has_deadline
            ? clock::now() + std::chrono::microseconds(request.deadline_us)
            : clock::time_point::max();

    std::vector<bool> tried(replicas_.size(), false);
    bool first_attempt = true;
    for (;;) {
        if (has_deadline) {
            const auto now = clock::now();
            if (now >= deadline_at) {
                // The budget died between attempts (a failed replica ate
                // it): a counted terminal verdict, not a silent drop.
                deadline_rejects_.fetch_add(1, std::memory_order_relaxed);
                SubmitReply reply;
                reply.status = WireStatus::DeadlineExceeded;
                reply.replica = "frontdoor";
                return reply;
            }
            request.deadline_us = static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::microseconds>(
                    deadline_at - now)
                    .count());
        }

        const int index = pick(tried);
        if (index < 0) {
            rejected_no_replica_.fetch_add(1, std::memory_order_relaxed);
            SubmitReply reply;
            reply.status = WireStatus::Rejected;
            reply.reject_reason = "no live replica";
            reply.replica = "frontdoor";
            return reply;
        }
        tried[index] = true;
        if (!first_attempt)
            requeues_.fetch_add(1, std::memory_order_relaxed);
        first_attempt = false;

        Replica& replica = *replicas_[index];
        replica.outstanding.fetch_add(1, std::memory_order_acq_rel);
        Socket connection = borrow(replica);
        const std::string context =
            "frontdoor->" + replica.endpoint.id;
        std::optional<Frame> frame;
        if (connection.valid() &&
            send_frame(connection, MsgType::SubmitRequest,
                       request.encode(), context))
            frame = recv_frame(connection);
        replica.outstanding.fetch_sub(1, std::memory_order_acq_rel);

        if (frame && frame->type == MsgType::SubmitReply) {
            if (auto reply = SubmitReply::decode(frame->payload)) {
                replica.routed.fetch_add(1, std::memory_order_relaxed);
                give_back(replica, std::move(connection));
                return *reply;
            }
        }
        // Dead or lying connection: declare the replica down and requeue
        // to the next live peer.  The borrowed socket is dropped, and
        // any pooled siblings die with the mark (they would fail too).
        replica.alive.store(false, std::memory_order_release);
        replica_failures_.fetch_add(1, std::memory_order_relaxed);
        {
            std::lock_guard<std::mutex> lock(replica.pool_mutex);
            replica.pool.clear();
        }
    }
}

std::optional<Frame>
FrontDoor::call(std::size_t replica_index, MsgType type,
                const std::vector<std::uint8_t>& payload)
{
    if (replica_index >= replicas_.size())
        return std::nullopt;
    Replica& replica = *replicas_[replica_index];
    Socket connection = borrow(replica);
    if (!connection.valid())
        return std::nullopt;
    const std::string context = "frontdoor->" + replica.endpoint.id;
    if (!send_frame(connection, type, payload, context))
        return std::nullopt;
    auto frame = recv_frame(connection);
    if (frame)
        give_back(replica, std::move(connection));
    return frame;
}

void
FrontDoor::revive(std::size_t index)
{
    if (index >= replicas_.size())
        return;
    Replica& replica = *replicas_[index];
    // The slot was restarted: pooled connections belong to the dead
    // incarnation, and borrowing one would re-fail the slot on its first
    // routed request.  Drop them so the next route dials fresh.
    {
        std::lock_guard<std::mutex> lock(replica.pool_mutex);
        replica.pool.clear();
    }
    replica.alive.store(true, std::memory_order_release);
}

bool
FrontDoor::replica_alive(std::size_t index) const
{
    return index < replicas_.size() &&
           replicas_[index]->alive.load(std::memory_order_acquire);
}

FrontDoorStats
FrontDoor::stats() const
{
    FrontDoorStats out;
    out.requests = requests_.load(std::memory_order_relaxed);
    out.requeues = requeues_.load(std::memory_order_relaxed);
    out.replica_failures =
        replica_failures_.load(std::memory_order_relaxed);
    out.rejected_no_replica =
        rejected_no_replica_.load(std::memory_order_relaxed);
    out.deadline_rejects =
        deadline_rejects_.load(std::memory_order_relaxed);
    out.routed.reserve(replicas_.size());
    for (const auto& replica : replicas_)
        out.routed.push_back(
            replica->routed.load(std::memory_order_relaxed));
    return out;
}

void
FrontDoor::accept_loop()
{
    while (!stopping_.load(std::memory_order_acquire)) {
        Socket connection = listener_.accept();
        if (!connection.valid())
            break;
        auto shared = std::make_shared<Socket>(std::move(connection));
        std::lock_guard<std::mutex> lock(clients_mutex_);
        if (stopping_.load(std::memory_order_acquire)) {
            shared->shutdown_both();
            break;
        }
        clients_.push_back(shared);
        client_threads_.emplace_back(
            [this, shared] { handle_client(shared); });
    }
}

void
FrontDoor::handle_client(const std::shared_ptr<Socket>& connection)
{
    while (!stopping_.load(std::memory_order_acquire)) {
        const auto frame = recv_frame(*connection);
        if (!frame)
            return;
        if (frame->type == MsgType::SubmitRequest) {
            const auto request = SubmitRequest::decode(frame->payload);
            if (!request)
                return;
            const SubmitReply reply = route(*request);
            if (!send_frame(*connection, MsgType::SubmitReply,
                            reply.encode(), "frontdoor->client"))
                return;
        } else {
            return;  // Clients may only submit.
        }
    }
}

}  // namespace paraprox::net
