/// @file
/// Kernel launches: bind arguments by parameter name, split the NDRange
/// into work-groups, and execute groups in parallel on the host thread
/// pool.

#pragma once

#include <array>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "data/packed_buffer.h"
#include "exec/buffer.h"
#include "vm/bytecode.h"
#include "vm/vm.h"

namespace paraprox::exec {

/// NDRange shape of a launch.  global_size must be divisible by local_size
/// in every dimension.
struct LaunchConfig {
    std::array<int, 3> global_size{1, 1, 1};
    std::array<int, 3> local_size{1, 1, 1};
    /// Execution mode for every work-group.  Fast mode is incompatible
    /// with a LaunchObserver (no listener callbacks) and reports only
    /// ExecStats::total_instructions.
    vm::ExecMode mode = vm::ExecMode::Instrumented;
    /// Optional cooperative cancellation token.  When null, launch()
    /// falls back to the thread's ambient CancelScope token (if any);
    /// explicit always wins.  A fired token stops the launch within one
    /// group round: queued groups are skipped, running groups bail at
    /// their next control transfer, and no stats are merged.
    const vm::CancelToken* cancel = nullptr;

    static LaunchConfig
    linear(int global, int local)
    {
        return {{global, 1, 1}, {local, 1, 1}};
    }

    static LaunchConfig
    grid2d(int gx, int gy, int lx, int ly)
    {
        return {{gx, gy, 1}, {lx, ly, 1}};
    }
};

/// Named kernel arguments.  Buffers are bound by reference and must outlive
/// the launch; __shared parameters are bound to an element count.  A
/// packed() binding substitutes a lossily-stored data::PackedBuffer for an
/// F32 parameter (the VM transcodes on Ld/St) and shadows any exact
/// binding of the same name — the data tier packs over the application's
/// own bindings.
class ArgPack {
  public:
    ArgPack& buffer(const std::string& name, Buffer& buf);
    ArgPack& packed(const std::string& name, data::PackedBuffer& buf);
    ArgPack& scalar(const std::string& name, int value);
    ArgPack& scalar(const std::string& name, float value);
    ArgPack& shared(const std::string& name, std::int64_t elements);

    Buffer* find_buffer(const std::string& name) const;
    data::PackedBuffer* find_packed(const std::string& name) const;
    const vm::Value* find_scalar(const std::string& name) const;
    std::int64_t find_shared(const std::string& name) const;  ///< 0 if absent

  private:
    std::map<std::string, Buffer*> buffers_;
    std::map<std::string, data::PackedBuffer*> packed_;
    std::map<std::string, vm::Value> scalars_;
    std::map<std::string, std::int64_t> shared_sizes_;
};

/// Per-launch observer supplying per-group memory listeners; implemented by
/// device models to price memory traffic.
class LaunchObserver {
  public:
    virtual ~LaunchObserver() = default;

    /// Create the listener for one work-group (called concurrently).
    virtual std::unique_ptr<vm::MemoryListener>
    make_group_listener(std::int64_t group_linear) = 0;

    /// Absorb a finished group's listener (serialized by the launcher).
    virtual void on_group_complete(vm::MemoryListener& listener) = 0;
};

/// Outcome of a launch.
struct LaunchResult {
    vm::ExecStats stats;
    double wall_seconds = 0.0;
    bool trapped = false;
    std::string trap_message;
    /// The launch's cancel token fired: remaining groups were skipped, no
    /// stats were merged, and output buffers may be partially written.
    bool cancelled = false;
    /// Why (valid when cancelled; CancelReason::None otherwise).
    vm::CancelReason cancel_reason = vm::CancelReason::None;
    /// Work-groups that ran to completion / total groups in the NDRange.
    /// completed < total on a trapped or cancelled launch measures how
    /// much CPU the abort actually saved — the serving layer's "wasted
    /// work" accounting reads it.
    std::int64_t groups_completed = 0;
    std::int64_t groups_total = 0;
};

/// RAII ambient cancel token: every exec::launch this thread performs
/// while the scope is alive observes @p token (unless the LaunchConfig
/// carries its own).  This is how the serving layer arms per-request
/// cancellation without threading a token through every Variant closure;
/// nested scopes shadow, and the token is resolved at launch() entry on
/// the launching thread (pool workers inherit it by capture).
class CancelScope {
  public:
    explicit CancelScope(const vm::CancelToken* token);
    ~CancelScope();

    CancelScope(const CancelScope&) = delete;
    CancelScope& operator=(const CancelScope&) = delete;

  private:
    const vm::CancelToken* previous_;
};

/// Batch flavor: one token per batch member, index-aligned with the
/// `batch` vector a launch_batch inside the scope receives.  A size
/// mismatch disarms the scope for that launch (never misattributes a
/// token).  Entries may be null (uncancellable member).
class BatchCancelScope {
  public:
    explicit BatchCancelScope(
        const std::vector<const vm::CancelToken*>* tokens);
    ~BatchCancelScope();

    BatchCancelScope(const BatchCancelScope&) = delete;
    BatchCancelScope& operator=(const BatchCancelScope&) = delete;

  private:
    const std::vector<const vm::CancelToken*>* previous_;
};

/// The innermost ambient tokens on this thread (null when no scope is
/// active).  launch()/launch_batch() consult these; exposed for tests.
const vm::CancelToken* current_cancel_token();
const std::vector<const vm::CancelToken*>* current_batch_cancel_tokens();

/// Execute @p program over @p config with @p args.
///
/// Safety: vm::TrapError raised by any work-group aborts the launch and is
/// reported via LaunchResult::trapped (output buffers may be partially
/// written); other exceptions propagate.  Groups that have not started when
/// the trap lands are skipped rather than executed, and LaunchResult::stats
/// never includes partial counts from trapped or skipped groups.
LaunchResult launch(const vm::Program& program, const ArgPack& args,
                    const LaunchConfig& config,
                    LaunchObserver* observer = nullptr);

/// Execute @p program once per ArgPack in @p batch, as one launch over
/// the concatenated index space (batch.size() x the per-member group
/// count): every group of every member is one task on the host pool, so
/// a batch of small NDRanges fills the machine the way one large NDRange
/// does, and the per-launch fixed cost is paid once.
///
/// Members are independent: a vm::TrapError in member i's groups aborts
/// only that member (its result reports trapped; its remaining groups are
/// skipped) while every other member runs to completion.  Stats never
/// include partial counts from trapped or skipped groups.  No observer:
/// batched launches serve, they do not price — each member's
/// wall_seconds reports the whole batch's wall clock divided by the
/// batch size (the amortized cost, which is the number a serving layer
/// wants).
std::vector<LaunchResult> launch_batch(
    const vm::Program& program, const std::vector<const ArgPack*>& batch,
    const LaunchConfig& config);

}  // namespace paraprox::exec
