#include "exec/launch.h"

#include <atomic>
#include <chrono>
#include <mutex>

#include "support/parallel.h"

namespace paraprox::exec {

ArgPack&
ArgPack::buffer(const std::string& name, Buffer& buf)
{
    buffers_[name] = &buf;
    return *this;
}

ArgPack&
ArgPack::packed(const std::string& name, data::PackedBuffer& buf)
{
    packed_[name] = &buf;
    return *this;
}

ArgPack&
ArgPack::scalar(const std::string& name, int value)
{
    scalars_[name] = vm::make_int(value);
    return *this;
}

ArgPack&
ArgPack::scalar(const std::string& name, float value)
{
    scalars_[name] = vm::make_float(value);
    return *this;
}

ArgPack&
ArgPack::shared(const std::string& name, std::int64_t elements)
{
    shared_sizes_[name] = elements;
    return *this;
}

Buffer*
ArgPack::find_buffer(const std::string& name) const
{
    auto it = buffers_.find(name);
    return it == buffers_.end() ? nullptr : it->second;
}

data::PackedBuffer*
ArgPack::find_packed(const std::string& name) const
{
    auto it = packed_.find(name);
    return it == packed_.end() ? nullptr : it->second;
}

const vm::Value*
ArgPack::find_scalar(const std::string& name) const
{
    auto it = scalars_.find(name);
    return it == scalars_.end() ? nullptr : &it->second;
}

std::int64_t
ArgPack::find_shared(const std::string& name) const
{
    auto it = shared_sizes_.find(name);
    return it == shared_sizes_.end() ? 0 : it->second;
}

namespace {

/// Innermost ambient cancel tokens for this thread; see CancelScope.
thread_local const vm::CancelToken* tls_cancel_token = nullptr;
thread_local const std::vector<const vm::CancelToken*>* tls_batch_tokens =
    nullptr;

}  // namespace

CancelScope::CancelScope(const vm::CancelToken* token)
    : previous_(tls_cancel_token)
{
    tls_cancel_token = token;
}

CancelScope::~CancelScope()
{
    tls_cancel_token = previous_;
}

BatchCancelScope::BatchCancelScope(
    const std::vector<const vm::CancelToken*>* tokens)
    : previous_(tls_batch_tokens)
{
    tls_batch_tokens = tokens;
}

BatchCancelScope::~BatchCancelScope()
{
    tls_batch_tokens = previous_;
}

const vm::CancelToken*
current_cancel_token()
{
    return tls_cancel_token;
}

const std::vector<const vm::CancelToken*>*
current_batch_cancel_tokens()
{
    return tls_batch_tokens;
}

namespace {

/// Buffer views, shared sizes, and scalars for one ArgPack, resolved
/// against the program signature once per launch (or per batch member).
struct ResolvedArgs {
    std::vector<vm::BufferView> buffer_views;
    std::vector<std::int64_t> shared_sizes;
    std::vector<vm::Value> scalar_args;
};

ResolvedArgs
resolve_args(const vm::Program& program, const ArgPack& args)
{
    ResolvedArgs resolved;
    resolved.buffer_views.resize(program.buffers.size());
    resolved.shared_sizes.assign(program.buffers.size(), 0);
    for (std::size_t slot = 0; slot < program.buffers.size(); ++slot) {
        const auto& info = program.buffers[slot];
        if (info.space == ir::AddrSpace::Shared) {
            resolved.shared_sizes[slot] = args.find_shared(info.name);
            PARAPROX_CHECK(resolved.shared_sizes[slot] > 0,
                           "missing __shared size for `" + info.name + "`");
        } else if (data::PackedBuffer* packed = args.find_packed(info.name)) {
            // A packed binding shadows an exact binding of the same name:
            // the data tier binds a plan's packed buffers over whatever
            // the application's bind_inputs installed.  Packed storage
            // only makes sense for float payloads; integer parameters
            // carry indices/counts and the safety analysis pins them
            // exact anyway.
            PARAPROX_CHECK(info.elem == ir::Scalar::F32,
                           "packed binding for non-F32 parameter `" +
                               info.name + "`");
            resolved.buffer_views[slot] = packed->view();
        } else {
            Buffer* buffer = args.find_buffer(info.name);
            PARAPROX_CHECK(buffer, "missing buffer argument `" + info.name +
                                       "`");
            PARAPROX_CHECK(buffer->elem_type() == info.elem,
                           "element type mismatch for `" + info.name + "`");
            resolved.buffer_views[slot] = buffer->view();
        }
    }

    resolved.scalar_args.resize(program.scalars.size());
    for (std::size_t i = 0; i < program.scalars.size(); ++i) {
        const vm::Value* value = args.find_scalar(program.scalars[i].name);
        PARAPROX_CHECK(value, "missing scalar argument `" +
                                  program.scalars[i].name + "`");
        resolved.scalar_args[i] = *value;
    }
    return resolved;
}

std::array<int, 3>
resolve_num_groups(const LaunchConfig& config)
{
    std::array<int, 3> num_groups;
    for (int dim = 0; dim < 3; ++dim) {
        PARAPROX_CHECK(config.local_size[dim] > 0 &&
                           config.global_size[dim] > 0,
                       "launch sizes must be positive");
        PARAPROX_CHECK(config.global_size[dim] % config.local_size[dim] == 0,
                       "global size must be divisible by local size");
        num_groups[dim] = config.global_size[dim] / config.local_size[dim];
    }
    return num_groups;
}

vm::GroupGeometry
geometry_for(const LaunchConfig& config, const std::array<int, 3>& num_groups,
             std::int64_t group_linear)
{
    vm::GroupGeometry geometry;
    geometry.local_size = config.local_size;
    geometry.num_groups = num_groups;
    geometry.group_id[0] = static_cast<int>(group_linear % num_groups[0]);
    geometry.group_id[1] =
        static_cast<int>((group_linear / num_groups[0]) % num_groups[1]);
    geometry.group_id[2] =
        static_cast<int>(group_linear / (static_cast<std::int64_t>(
                                            num_groups[0]) *
                                        num_groups[1]));
    return geometry;
}

}  // namespace

LaunchResult
launch(const vm::Program& program, const ArgPack& args,
       const LaunchConfig& config, LaunchObserver* observer)
{
    PARAPROX_CHECK(config.mode == vm::ExecMode::Instrumented ||
                       observer == nullptr,
                   "fast launches cannot attach a LaunchObserver");

    // Resolve buffer and scalar arguments against the program signature.
    const ResolvedArgs resolved = resolve_args(program, args);
    const std::vector<vm::BufferView>& buffer_views = resolved.buffer_views;
    const std::vector<std::int64_t>& shared_sizes = resolved.shared_sizes;
    const std::vector<vm::Value>& scalar_args = resolved.scalar_args;

    const std::array<int, 3> num_groups = resolve_num_groups(config);
    const std::int64_t total_groups =
        static_cast<std::int64_t>(num_groups[0]) * num_groups[1] *
        num_groups[2];

    // Explicit token beats the thread's ambient CancelScope.  Resolved
    // here, on the launching thread, so the closure-shaped serving paths
    // (which cannot thread a token through their signatures) still arm
    // every launch they make.
    const vm::CancelToken* cancel =
        config.cancel ? config.cancel : current_cancel_token();

    LaunchResult result;
    result.groups_total = total_groups;
    std::mutex merge_mutex;
    // Raised by the first trapping (or cancelled) group and checked before
    // each group starts, so a trap early in a large NDRange doesn't burn
    // cycles executing the thousands of groups still queued behind it (the
    // whole launch is discarded anyway once trapped).
    std::atomic<bool> abort{false};
    std::atomic<bool> trapped{false};
    std::atomic<bool> cancelled{false};
    std::atomic<std::int64_t> groups_completed{0};
    std::string trap_message;

    const auto start = std::chrono::steady_clock::now();

    parallel_for(static_cast<std::size_t>(total_groups),
                 [&](std::size_t group_linear) {
        if (abort.load(std::memory_order_relaxed))
            return;
        // The abort flip happens under merge_mutex (like the trap path)
        // so a group finishing concurrently can never merge stats after
        // the launch is already cancelled.
        const auto mark_cancelled = [&] {
            std::lock_guard<std::mutex> lock(merge_mutex);
            cancelled.store(true, std::memory_order_relaxed);
            abort.store(true, std::memory_order_relaxed);
        };
        if (cancel && cancel->cancelled()) {
            mark_cancelled();
            return;
        }

        const vm::GroupGeometry geometry = geometry_for(
            config, num_groups, static_cast<std::int64_t>(group_linear));

        std::unique_ptr<vm::MemoryListener> listener;
        if (observer)
            listener = observer->make_group_listener(group_linear);

        vm::ExecStats group_stats;
        vm::GroupRunner runner(program, buffer_views, scalar_args,
                               shared_sizes, geometry, &group_stats,
                               listener.get(), config.mode, cancel);
        try {
            runner.run();
        } catch (const vm::CancelledError&) {
            mark_cancelled();
            return;
        } catch (const vm::TrapError& trap) {
            std::lock_guard<std::mutex> lock(merge_mutex);
            trapped.store(true, std::memory_order_relaxed);
            if (!abort.exchange(true, std::memory_order_relaxed))
                trap_message = trap.what();
            return;
        }
        groups_completed.fetch_add(1, std::memory_order_relaxed);

        // A group finishing after the trap landed contributes nothing: the
        // launch result is discarded, so merging its stats (or feeding the
        // observer) would only skew the abandoned measurement.
        std::lock_guard<std::mutex> lock(merge_mutex);
        if (abort.load(std::memory_order_relaxed))
            return;
        result.stats.merge(group_stats);
        if (observer && listener)
            observer->on_group_complete(*listener);
    });

    const auto end = std::chrono::steady_clock::now();
    result.wall_seconds =
        std::chrono::duration<double>(end - start).count();
    result.trapped = trapped.load(std::memory_order_relaxed);
    result.trap_message = trap_message;
    result.cancelled = cancelled.load(std::memory_order_relaxed);
    if (result.cancelled && cancel)
        result.cancel_reason = cancel->reason();
    result.groups_completed =
        groups_completed.load(std::memory_order_relaxed);
    return result;
}

std::vector<LaunchResult>
launch_batch(const vm::Program& program,
             const std::vector<const ArgPack*>& batch,
             const LaunchConfig& config)
{
    const std::size_t members = batch.size();
    if (members == 0)
        return {};

    // Per-member argument resolution; the program, geometry, and pool
    // dispatch are shared across the whole batch.
    std::vector<ResolvedArgs> resolved;
    resolved.reserve(members);
    for (const ArgPack* args : batch) {
        PARAPROX_CHECK(args != nullptr, "null ArgPack in launch batch");
        resolved.push_back(resolve_args(program, *args));
    }

    const std::array<int, 3> num_groups = resolve_num_groups(config);
    const std::int64_t member_groups =
        static_cast<std::int64_t>(num_groups[0]) * num_groups[1] *
        num_groups[2];

    // Per-member cancel tokens from the thread's ambient BatchCancelScope
    // (member-order aligned).  A size mismatch disarms the scope rather
    // than guessing which token belongs to whom.
    const std::vector<const vm::CancelToken*>* scope_tokens =
        current_batch_cancel_tokens();
    if (scope_tokens && scope_tokens->size() != members)
        scope_tokens = nullptr;
    const auto member_token = [&](std::size_t member)
        -> const vm::CancelToken* {
        return scope_tokens ? (*scope_tokens)[member] : nullptr;
    };

    // One abort flag and stat sink per member: a trap (or a scatter-
    // cancel — only expired members stop) is a member-local event, not a
    // batch-wide one — the other members' requests must still be
    // answered.
    struct MemberState {
        std::atomic<bool> abort{false};
        std::atomic<bool> trapped{false};
        std::atomic<bool> cancelled{false};
        std::atomic<std::int64_t> groups_completed{0};
        vm::ExecStats stats;
        std::string trap_message;
    };
    std::vector<MemberState> states(members);
    std::mutex merge_mutex;

    const auto start = std::chrono::steady_clock::now();

    parallel_for(members * static_cast<std::size_t>(member_groups),
                 [&](std::size_t task) {
        const std::size_t member = task / member_groups;
        const std::int64_t group_linear =
            static_cast<std::int64_t>(task % member_groups);
        MemberState& state = states[member];
        if (state.abort.load(std::memory_order_relaxed))
            return;
        const vm::CancelToken* cancel = member_token(member);
        const auto mark_cancelled = [&] {
            std::lock_guard<std::mutex> lock(merge_mutex);
            state.cancelled.store(true, std::memory_order_relaxed);
            state.abort.store(true, std::memory_order_relaxed);
        };
        if (cancel && cancel->cancelled()) {
            mark_cancelled();
            return;
        }

        const vm::GroupGeometry geometry =
            geometry_for(config, num_groups, group_linear);

        vm::ExecStats group_stats;
        vm::GroupRunner runner(program, resolved[member].buffer_views,
                               resolved[member].scalar_args,
                               resolved[member].shared_sizes, geometry,
                               &group_stats, nullptr, config.mode, cancel);
        try {
            runner.run();
        } catch (const vm::CancelledError&) {
            mark_cancelled();
            return;
        } catch (const vm::TrapError& trap) {
            std::lock_guard<std::mutex> lock(merge_mutex);
            state.trapped.store(true, std::memory_order_relaxed);
            if (!state.abort.exchange(true, std::memory_order_relaxed))
                state.trap_message = trap.what();
            return;
        }
        state.groups_completed.fetch_add(1, std::memory_order_relaxed);

        std::lock_guard<std::mutex> lock(merge_mutex);
        if (state.abort.load(std::memory_order_relaxed))
            return;
        state.stats.merge(group_stats);
    });

    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();

    std::vector<LaunchResult> results(members);
    for (std::size_t i = 0; i < members; ++i) {
        results[i].stats = states[i].stats;
        results[i].trapped =
            states[i].trapped.load(std::memory_order_relaxed);
        results[i].trap_message = std::move(states[i].trap_message);
        results[i].wall_seconds = wall / static_cast<double>(members);
        results[i].cancelled =
            states[i].cancelled.load(std::memory_order_relaxed);
        if (results[i].cancelled) {
            if (const vm::CancelToken* cancel = member_token(i))
                results[i].cancel_reason = cancel->reason();
        }
        results[i].groups_completed =
            states[i].groups_completed.load(std::memory_order_relaxed);
        results[i].groups_total = member_groups;
    }
    return results;
}

}  // namespace paraprox::exec
