#include "exec/buffer.h"

#include <bit>

#include "support/error.h"

namespace paraprox::exec {

Buffer::Buffer(ir::Scalar elem, std::size_t count)
    : elem_(elem), words_(count, 0)
{
    PARAPROX_CHECK(elem == ir::Scalar::F32 || elem == ir::Scalar::I32,
                   "buffers hold float or int elements");
}

Buffer
Buffer::from_floats(const std::vector<float>& values)
{
    Buffer buffer(ir::Scalar::F32, values.size());
    buffer.fill_floats(values);
    return buffer;
}

Buffer
Buffer::from_ints(const std::vector<std::int32_t>& values)
{
    Buffer buffer(ir::Scalar::I32, values.size());
    buffer.fill_ints(values);
    return buffer;
}

Buffer
Buffer::zeros_f32(std::size_t count)
{
    return Buffer(ir::Scalar::F32, count);
}

Buffer
Buffer::zeros_i32(std::size_t count)
{
    return Buffer(ir::Scalar::I32, count);
}

float
Buffer::get_float(std::size_t index) const
{
    return std::bit_cast<float>(words_[index]);
}

void
Buffer::set_float(std::size_t index, float value)
{
    words_[index] = std::bit_cast<std::int32_t>(value);
}

std::int32_t
Buffer::get_int(std::size_t index) const
{
    return words_[index];
}

void
Buffer::set_int(std::size_t index, std::int32_t value)
{
    words_[index] = value;
}

std::vector<float>
Buffer::to_floats() const
{
    std::vector<float> out(words_.size());
    for (std::size_t i = 0; i < words_.size(); ++i)
        out[i] = std::bit_cast<float>(words_[i]);
    return out;
}

std::vector<std::int32_t>
Buffer::to_ints() const
{
    return words_;
}

void
Buffer::fill_floats(const std::vector<float>& values)
{
    PARAPROX_CHECK(values.size() == words_.size(),
                   "fill_floats size mismatch");
    for (std::size_t i = 0; i < values.size(); ++i)
        words_[i] = std::bit_cast<std::int32_t>(values[i]);
}

void
Buffer::fill_ints(const std::vector<std::int32_t>& values)
{
    PARAPROX_CHECK(values.size() == words_.size(),
                   "fill_ints size mismatch");
    words_ = values;
}

}  // namespace paraprox::exec
