/// @file
/// Device buffers: typed 4-byte-element arrays bound to kernel pointer
/// parameters at launch.

#pragma once

#include <cstdint>
#include <vector>

#include "ir/type.h"
#include "vm/vm.h"

namespace paraprox::exec {

/// A linear array of int32/float32 elements living in "device memory".
///
/// Storage is raw 4-byte words so the VM can apply atomics uniformly;
/// float values are bit-cast in and out.
class Buffer {
  public:
    Buffer(ir::Scalar elem, std::size_t count);

    static Buffer from_floats(const std::vector<float>& values);
    static Buffer from_ints(const std::vector<std::int32_t>& values);

    /// Zero-filled buffer of @p count floats.
    static Buffer zeros_f32(std::size_t count);
    /// Zero-filled buffer of @p count ints.
    static Buffer zeros_i32(std::size_t count);

    std::size_t size() const { return words_.size(); }
    ir::Scalar elem_type() const { return elem_; }

    float get_float(std::size_t index) const;
    void set_float(std::size_t index, float value);
    std::int32_t get_int(std::size_t index) const;
    void set_int(std::size_t index, std::int32_t value);

    std::vector<float> to_floats() const;
    std::vector<std::int32_t> to_ints() const;

    /// Overwrite contents (size must match element count).
    void fill_floats(const std::vector<float>& values);
    void fill_ints(const std::vector<std::int32_t>& values);

    vm::BufferView
    view()
    {
        return {words_.data(), static_cast<std::int64_t>(words_.size()),
                data::Codec::Exact, {}};
    }

  private:
    ir::Scalar elem_;
    std::vector<std::int32_t> words_;
};

}  // namespace paraprox::exec
