/// @file
/// Pipeline composition: multi-stage kernel chains tuned jointly against
/// an end-to-end TOQ.
///
/// Paraprox approximates each kernel in isolation, but real workloads are
/// chains of patterns where per-stage error compounds (Loop-of-stencil-
/// reduce; HPAC-Offload's per-region decisions composing across whole
/// applications).  A Pipeline describes a linear chain of ParaCL kernels
/// with buffer wiring — stage N's output buffer feeds stage N+1's input
/// parameter, intermediates owned by the runtime — and a PipelineSession
/// turns the chain into ordinary runtime::Variant closures, one per
/// *joint* configuration (a member choice for every stage), so the
/// existing Tuner machinery (calibration, fallback, breakers, serving
/// modes) applies unchanged with quality judged on the final output only.
///
/// The joint space is the cross product of per-stage variant families, so
/// it is pruned with per-stage cost probes before anything is measured
/// end-to-end: each stage member is priced once on a probe input
/// (feeding every stage its exact upstream output), combinations
/// dominated in both predicted cycles and per-stage aggressiveness are
/// eliminated, and the survivors are capped fastest-predicted-first.
///
///     Pipeline -> PipelineSession -> joint_variants()/warm_tuner()
///              -> Tuner (end-to-end TOQ).

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/paraprox.h"
#include "core/variants.h"
#include "runtime/session.h"
#include "runtime/tuner.h"
#include "store/artifact_store.h"

namespace paraprox::runtime {

/// One kernel of the chain and how it is launched.
struct PipelineStage {
    std::string name;    ///< Stage label, e.g. "blur"; must be unique.
    /// Module holding @p kernel; shared ownership so builders can parse
    /// and return without dangling references.
    std::shared_ptr<const ir::Module> module;
    std::string kernel;
    core::CompileOptions options;
    exec::LaunchConfig config;

    /// Parameter that receives the previous stage's output buffer; must
    /// be empty for stage 0 and non-empty for every later stage.
    /// bind_inputs must NOT bind this parameter.
    std::string input_param;
    /// Name of this stage's output buffer (created by bind_inputs).  The
    /// last stage's output is the pipeline output the TOQ is judged on.
    std::string output_buffer;
    /// Create and bind the stage's own arguments (including its output
    /// buffer) for the input identified by @p seed.
    std::function<void(std::uint64_t seed, exec::ArgPack& args,
                       std::vector<std::unique_ptr<exec::Buffer>>& storage)>
        bind_inputs;
};

/// A linear chain of stages.  Stage 0 reads external inputs only; stage
/// N > 0 additionally reads stage N-1's output through `input_param`.
struct Pipeline {
    std::string name;
    std::vector<PipelineStage> stages;
};

/// Knobs of the joint-space search.
struct JointSearchOptions {
    /// Joint configurations kept for end-to-end calibration, including
    /// the mandatory all-exact config.
    int max_configs = 16;
    /// Eliminate combinations dominated in predicted cycles and
    /// per-stage aggressiveness by another combination.
    bool prune_dominated = true;
    /// Input seed the per-stage cost probes run on.
    std::uint64_t probe_seed = 0x5eedull;
};

/// One joint configuration: a member choice per stage.
struct JointConfig {
    std::vector<int> members;          ///< Per-stage member index.
    std::vector<std::string> labels;   ///< Per-stage member label.
    double predicted_cycles = 0.0;     ///< Sum of per-stage probe costs.
    int aggressiveness = 0;            ///< Sum of member aggressiveness.

    /// "stage=member | stage=member | ..." — the joint variant label.
    std::string label(const std::vector<std::string>& stage_names) const;
};

/// What the joint search did, for logging and tests.
struct JointSearchInfo {
    std::size_t total_combinations = 0;  ///< Cross-product size.
    std::size_t dominated = 0;           ///< Removed by dominance.
    std::size_t capped = 0;              ///< Removed by max_configs.
    std::size_t kept = 0;                ///< Configs handed to the tuner.
    std::size_t probe_runs = 0;          ///< Per-stage pricing launches.
};

/// Per-stage trap attribution, shared with the joint variant closures so
/// it survives the session (serve::ApproxService snapshots it).
class PipelineStats {
  public:
    explicit PipelineStats(std::vector<std::string> stage_names);

    PipelineStats(const PipelineStats&) = delete;
    PipelineStats& operator=(const PipelineStats&) = delete;

    const std::vector<std::string>& stage_names() const { return names_; }
    std::size_t num_stages() const { return names_.size(); }
    std::uint64_t traps(std::size_t stage) const;
    void record_trap(std::size_t stage);

  private:
    std::vector<std::string> names_;
    std::vector<std::atomic<std::uint64_t>> traps_;
};

/// Process-wide count of per-stage cost-probe launches performed by
/// joint searches.  A warm start must leave it unchanged — that is what
/// "skips the joint search entirely" means, and what the warm-start
/// smoke asserts.
std::uint64_t joint_search_measurements();

namespace detail {
struct PipelineRuntime;
}

/// Compile -> wire -> search -> tune for a whole chain.  One
/// KernelSession per stage (so program caching and memo-table store
/// tiers apply per stage exactly as for single kernels), plus the joint
/// layer: cross-product enumeration, cost-model pruning, and variant
/// closures that execute the chain end-to-end.
class PipelineSession {
  public:
    explicit PipelineSession(Pipeline pipeline);

    PipelineSession(const PipelineSession&) = delete;
    PipelineSession& operator=(const PipelineSession&) = delete;

    const Pipeline& pipeline() const { return pipeline_; }
    const std::string& name() const { return pipeline_.name; }
    std::size_t num_stages() const { return pipeline_.stages.size(); }
    std::vector<std::string> stage_names() const;

    /// The per-stage compilation session (members()[0] is exact).
    const KernelSession& stage_session(std::size_t stage) const;

    /// Shared per-stage trap counters; outlives the session.
    std::shared_ptr<PipelineStats> stats() const { return stats_; }

    /// Execute one joint configuration end-to-end on @p seed: each stage
    /// binds its own inputs, receives the previous stage's output under
    /// its input_param, and runs its chosen member.  Costs are summed
    /// across stages; the returned output is the final stage's.  A trap
    /// anywhere aborts the chain (attributed to that stage in stats()).
    /// When @p stage_outputs is non-null it receives every stage's
    /// output values — iterative drivers use this to carry state between
    /// pipeline invocations.
    VariantRun run_config(
        const std::vector<int>& members, std::uint64_t seed,
        vm::ExecMode mode = vm::ExecMode::Instrumented,
        std::vector<std::vector<float>>* stage_outputs = nullptr) const;

    /// Run the joint search: price every stage member once on the probe
    /// seed, enumerate the cross product, prune (dominance, then the
    /// predicted-speed cap), and return the surviving configurations
    /// fastest-predicted-first with the all-exact config at index 0.
    /// Deterministic for a fixed pipeline and options (modeled cycles
    /// decide; ties break on the joint label).
    std::vector<JointConfig> search(const JointSearchOptions& options = {});

    /// What the last search() decided; zeros before any search.
    const JointSearchInfo& search_info() const { return search_info_; }

    /// The configurations backing the most recent joint_variants() /
    /// warm_tuner() call, index-aligned with the tuner's variant list
    /// (so tuner.selected_index() names configs()[i].members).
    const std::vector<JointConfig>& configs() const { return configs_; }

    /// Tuner-ready joint variant list: search() wrapped into Variant
    /// closures (instrumented + fast) that run the whole chain.  The
    /// closures share ownership of programs, tables and stats, so they
    /// stay valid after the session is destroyed.
    std::vector<Variant> joint_variants(const JointSearchOptions& options = {});

    /// Rebuild joint configs from per-stage member labels (a persisted
    /// plan).  Returns nullopt when any label no longer names a member —
    /// e.g. the pipeline changed since the plan was stored.
    std::optional<std::vector<JointConfig>>
    configs_for(const std::vector<std::vector<std::string>>& labels) const;

    /// Variant closures for explicit configs (no search, no probes).
    std::vector<Variant>
    variants_from(const std::vector<JointConfig>& configs) const;

    /// Composed fingerprint: per-stage module fingerprints chained with
    /// kernel names, stage names and the buffer wiring, so any change to
    /// any stage or to the chain structure invalidates stored joint
    /// calibrations.
    std::uint64_t fingerprint() const { return fingerprint_; }

    /// Store key for the persisted joint calibration: composed
    /// fingerprint x pipeline name x device x TOQ x metric.
    store::StoreKey calibration_key(Metric metric, double toq_percent) const;

    /// Joint tuner with a durable calibration tier.  With a global
    /// ArtifactStore, a stored plan + calibration matching
    /// calibration_key() is restored — zero joint-search probe runs,
    /// zero calibration sweeps — and a cold search + calibration is
    /// persisted for the next process.  Either way configs() is aligned
    /// with the returned tuner's variants.
    struct WarmTuner {
        std::unique_ptr<Tuner> tuner;
        bool warm = false;  ///< True when restored from the store.
    };
    WarmTuner warm_tuner(Metric metric,
                         const std::vector<std::uint64_t>& training_seeds,
                         double toq_percent, int check_interval = 50,
                         const JointSearchOptions& options = {});

  private:
    Pipeline pipeline_;
    std::vector<std::unique_ptr<KernelSession>> sessions_;
    std::shared_ptr<detail::PipelineRuntime> runtime_;
    std::shared_ptr<PipelineStats> stats_;
    std::uint64_t fingerprint_ = 0;
    std::vector<JointConfig> configs_;
    JointSearchInfo search_info_;
};

}  // namespace paraprox::runtime
