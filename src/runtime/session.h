/// @file
/// KernelSession: one object owning a compiled kernel family end-to-end.
///
/// Callers used to hand-wire the same pipeline everywhere: run
/// core::compile_kernel, lower the exact kernel plus every generated
/// variant to bytecode, remember which lookup tables each variant needs,
/// bind them at every launch, and finally wrap the lot as
/// runtime::Variant closures for the tuner.  A KernelSession does all of
/// that once.  Bytecode is shared process-wide through vm::ProgramCache,
/// so constructing a second session over the same module costs no
/// recompilation, and table buffers are auto-bound into the ArgPack on
/// every run.
///
///     ir::Module -> KernelSession -> variants()/tuner() -> calibrate.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/paraprox.h"
#include "core/variants.h"
#include "runtime/tuner.h"
#include "store/artifact_store.h"
#include "vm/bytecode.h"

namespace paraprox::runtime {

/// One launchable member of the family: the exact kernel or a generated
/// approximate variant, with its bytecode compiled and its table bindings
/// recorded.
struct SessionMember {
    std::string label;            ///< "exact" or the generated label.
    int aggressiveness = 0;
    std::string kernel_name;
    std::shared_ptr<const vm::Program> program;  ///< Cache-shared bytecode.
    std::vector<core::TableBinding> tables;      ///< Empty unless memoized.
};

/// Compile -> bind -> launch -> tune, unified.
///
/// The module reference passed to the constructor must outlive the
/// session (generated variants own their rewritten modules internally).
class KernelSession {
  public:
    KernelSession(const ir::Module& module, std::string kernel,
                  core::CompileOptions options);

    KernelSession(const KernelSession&) = delete;
    KernelSession& operator=(const KernelSession&) = delete;

    /// What the Paraprox compiler produced (detection, variants, notes).
    const core::KernelCompileResult& result() const { return result_; }

    /// Every launchable member; members()[0] is the exact kernel.
    const std::vector<SessionMember>& members() const { return members_; }

    /// The member whose label is @p label, or nullptr.
    const SessionMember* find_member(const std::string& label) const;

    /// Compiled bytecode for @p kernel_name of the session's source
    /// module, through the process-wide program cache.
    std::shared_ptr<const vm::Program>
    program(const std::string& kernel_name) const;

    const ir::Module& module() const { return *module_; }
    const std::string& kernel() const { return kernel_; }
    const core::CompileOptions& options() const { return options_; }

    /// Execute one member for @p plan on input @p seed: binds the plan's
    /// inputs, auto-binds the member's lookup tables, launches under the
    /// session device model and collects the plan's output buffer.
    /// vm::ExecMode::Fast skips the device pricing entirely (the run's
    /// modeled_cycles stays 0); outputs are identical in both modes.
    VariantRun run_member(const SessionMember& member,
                          const core::LaunchPlan& plan, std::uint64_t seed,
                          vm::ExecMode mode =
                              vm::ExecMode::Instrumented) const;

    /// Batched serving entry point: execute one member on every seed as
    /// a single launch over the concatenated index space (always
    /// vm::ExecMode::Fast, unpriced).  The member's lookup tables are
    /// bound once for the whole batch; outputs are identical to
    /// seeds.size() run_member calls.  A trapped member run poisons only
    /// its own VariantRun.
    std::vector<VariantRun> run_member_batch(
        const SessionMember& member, const core::LaunchPlan& plan,
        const std::vector<std::uint64_t>& seeds) const;

    /// Tuner-ready variant list over @p plan; variants[0] is exact.  The
    /// returned closures share ownership of the cached programs and copied
    /// table bindings, so they stay valid after the session is destroyed.
    std::vector<Variant> variants(const core::LaunchPlan& plan) const;

    /// One-call convenience: variants(plan) wrapped in a Tuner.  The TOQ
    /// defaults to the session's CompileOptions::toq when negative.
    Tuner tuner(const core::LaunchPlan& plan, Metric metric,
                double toq_percent = -1.0, int check_interval = 50) const;

    /// ir::fingerprint of the source module, computed once.
    std::uint64_t fingerprint() const { return fingerprint_; }

    /// The store key under which this session's calibration is persisted:
    /// module fingerprint x kernel x device-model id x TOQ x metric
    /// (x store-format version, implicitly).
    store::StoreKey calibration_key(Metric metric,
                                    double toq_percent = -1.0) const;

    /// tuner() with a durable calibration tier.  Behaviour without a
    /// global ArtifactStore is identical to tuner()+calibrate().  With
    /// one, a stored calibration matching calibration_key() is restored
    /// — skipping the profiling sweep; quality is re-validated on the
    /// first audit — and a cold calibration is persisted for the next
    /// process.
    struct WarmTuner {
        std::unique_ptr<Tuner> tuner;
        bool warm = false;  ///< True when restored from the store.
    };
    WarmTuner warm_tuner(const core::LaunchPlan& plan, Metric metric,
                         const std::vector<std::uint64_t>& training_seeds,
                         double toq_percent = -1.0,
                         int check_interval = 50) const;

  private:
    const ir::Module* module_;
    std::string kernel_;
    core::CompileOptions options_;
    core::KernelCompileResult result_;
    std::vector<SessionMember> members_;
    std::uint64_t fingerprint_ = 0;
};

}  // namespace paraprox::runtime
