/// @file
/// The TOQ-driven runtime tuner.
///
/// Paraprox proper emits parameterized approximate kernels and delegates
/// selection to a Green/SAGE-style runtime (paper §2, Fig. 2 and §5); the
/// evaluation nonetheless needs that runtime, so we implement it: profile
/// every variant against the exact kernel on training inputs, pick the
/// fastest one meeting the target output quality, and recheck quality
/// every N invocations at steady state, backing off to a less aggressive
/// variant when the TOQ is violated.

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "runtime/quality.h"

namespace paraprox::runtime {

/// What one execution of a kernel variant produced.
struct VariantRun {
    std::vector<float> output;   ///< Values the quality metric scores.
    double modeled_cycles = 0.0; ///< Device-model cost.
    double wall_seconds = 0.0;
    bool trapped = false;        ///< Unsafe execution; variant unusable.
};

/// One launchable configuration (the exact kernel is also expressed as a
/// variant; it must be first and is assumed safe).
struct Variant {
    std::string label;
    /// Monotone knob-aggressiveness rank used for backoff ordering; the
    /// exact kernel is 0.
    int aggressiveness = 0;
    /// Execute on the input identified by @p input_seed.
    std::function<VariantRun(std::uint64_t input_seed)> run;
};

/// Profile data gathered for one variant during calibration.
struct VariantProfile {
    std::string label;
    double speedup = 1.0;     ///< Exact modeled cycles / variant's.
    double wall_speedup = 1.0;
    double quality = 100.0;   ///< Against the exact output.
    bool meets_toq = false;
    bool trapped = false;
};

/// Runtime statistics the tuner keeps.
struct TunerStats {
    std::uint64_t invocations = 0;
    std::uint64_t quality_checks = 0;
    std::uint64_t violations = 0;  ///< TOQ misses observed at runtime.
    std::uint64_t backoffs = 0;    ///< Variant downgrades performed.
};

/// Calibrate-then-monitor tuner over a fixed variant list.
class Tuner {
  public:
    /// @param variants  variants[0] must be the exact kernel.
    /// @param metric    the application's quality metric (Table 1).
    /// @param toq_percent  target output quality, e.g. 90.
    /// @param check_interval  recheck quality every this many invocations
    ///        (SAGE found 40-50 keeps overhead under ~5%, §5).
    Tuner(std::vector<Variant> variants, Metric metric, double toq_percent,
          int check_interval = 50);

    /// Profile every variant on @p training_seeds and select the fastest
    /// one meeting the TOQ (modeled cycles decide; falls back to exact if
    /// none qualify).  Returns the profiles for inspection.
    ///
    /// By default the variant x seed sweep runs on the global ThreadPool;
    /// selection is unaffected because it is decided by deterministic
    /// modeled cycles, aggregated in a fixed order after all runs finish.
    /// Wall-clock speedups are advisory under concurrency.  Pass
    /// @p parallel = false to force a serial sweep (identical profiles
    /// except for wall times).
    const std::vector<VariantProfile>&
    calibrate(const std::vector<std::uint64_t>& training_seeds,
              bool parallel = true);

    /// Execute the current selection on @p input_seed.  Periodically also
    /// runs the exact kernel on the same input to audit quality; on a TOQ
    /// violation, steps down to the next less aggressive variant.
    VariantRun invoke(std::uint64_t input_seed);

    int selected_index() const { return selected_; }
    const std::string& selected_label() const;
    const TunerStats& stats() const { return stats_; }
    const std::vector<VariantProfile>& profiles() const { return profiles_; }

  private:
    /// Demote the current selection: remove it from the fallback chain and
    /// move to the next (less aggressive / slower) candidate.
    void drop_selected_and_advance();

    std::vector<Variant> variants_;
    Metric metric_;
    double toq_;
    int check_interval_;
    int selected_ = 0;
    std::vector<VariantProfile> profiles_;
    /// Variant indices ordered by profiled speed among TOQ-passing ones
    /// (for backoff).
    std::vector<int> fallback_order_;
    TunerStats stats_;
    bool calibrated_ = false;
};

}  // namespace paraprox::runtime
