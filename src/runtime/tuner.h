/// @file
/// The TOQ-driven runtime tuner.
///
/// Paraprox proper emits parameterized approximate kernels and delegates
/// selection to a Green/SAGE-style runtime (paper §2, Fig. 2 and §5); the
/// evaluation nonetheless needs that runtime, so we implement it: profile
/// every variant against the exact kernel on training inputs, pick the
/// fastest one meeting the target output quality, and recheck quality
/// every N invocations at steady state, backing off to a less aggressive
/// variant when the TOQ is violated.

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "runtime/quality.h"
#include "vm/bytecode.h"

namespace paraprox::runtime {

/// What one execution of a kernel variant produced.
struct VariantRun {
    std::vector<float> output;   ///< Values the quality metric scores.
    double modeled_cycles = 0.0; ///< Device-model cost (0 for fast runs).
    double wall_seconds = 0.0;
    std::uint64_t instructions = 0;  ///< Dynamic VM dispatches executed.
    bool trapped = false;        ///< Unsafe execution; variant unusable.
};

/// One launchable configuration (the exact kernel is also expressed as a
/// variant; it must be first and is assumed safe).
struct Variant {
    std::string label;
    /// Monotone knob-aggressiveness rank used for backoff ordering; the
    /// exact kernel is 0.
    int aggressiveness = 0;
    /// Execute on the input identified by @p input_seed.
    std::function<VariantRun(std::uint64_t input_seed)> run;
    /// Optional lean serving closure: identical outputs to `run`, but
    /// executed in vm::ExecMode::Fast with no device pricing (its
    /// modeled_cycles stays 0).  Used by the serving entry points when the
    /// tuner's serving mode is Fast; when empty, `run` serves.
    std::function<VariantRun(std::uint64_t input_seed)> run_fast;
};

/// Profile data gathered for one variant during calibration.
struct VariantProfile {
    std::string label;
    double speedup = 1.0;     ///< Exact modeled cycles / variant's.
    double wall_speedup = 1.0;
    double quality = 100.0;   ///< Against the exact output.
    bool meets_toq = false;
    bool trapped = false;
};

/// Runtime statistics the tuner keeps.
struct TunerStats {
    std::uint64_t invocations = 0;
    std::uint64_t quality_checks = 0;
    std::uint64_t violations = 0;  ///< TOQ misses observed at runtime.
    std::uint64_t backoffs = 0;    ///< Variant downgrades performed.
    std::uint64_t recalibrations = 0;  ///< Full re-profiling passes.
};

/// Everything calibrate() decided, as plain data: what the artifact
/// store persists and restore_calibration() re-installs in a later
/// process (skipping the profiling sweep entirely).
struct CalibrationState {
    std::vector<VariantProfile> profiles;
    std::vector<int> fallback_order;
    int selected = 0;
};

/// Calibrate-then-monitor tuner over a fixed variant list.
class Tuner {
  public:
    /// @param variants  variants[0] must be the exact kernel.
    /// @param metric    the application's quality metric (Table 1).
    /// @param toq_percent  target output quality, e.g. 90.
    /// @param check_interval  recheck quality every this many invocations
    ///        (SAGE found 40-50 keeps overhead under ~5%, §5).
    Tuner(std::vector<Variant> variants, Metric metric, double toq_percent,
          int check_interval = 50);

    /// Profile every variant on @p training_seeds and select the fastest
    /// one meeting the TOQ (modeled cycles decide; falls back to exact if
    /// none qualify).  Returns the profiles for inspection.
    ///
    /// By default the variant x seed sweep runs on the global ThreadPool;
    /// selection is unaffected because it is decided by deterministic
    /// modeled cycles, aggregated in a fixed order after all runs finish.
    /// Wall-clock speedups are advisory under concurrency.  Pass
    /// @p parallel = false to force a serial sweep (identical profiles
    /// except for wall times).
    const std::vector<VariantProfile>&
    calibrate(const std::vector<std::uint64_t>& training_seeds,
              bool parallel = true);

    /// Re-run calibration over fresh training inputs, rebuilding the
    /// fallback chain and selection from scratch and bumping
    /// stats().recalibrations.  Unlike the permanent demotion of invoke()
    /// backoff, a recalibration can re-promote a previously dropped
    /// variant once inputs recover.  Safe to call while other threads are
    /// inside run_selected() / run_exact(); they keep serving the old
    /// selection until the new one is installed.
    const std::vector<VariantProfile>&
    recalibrate(const std::vector<std::uint64_t>& training_seeds,
                bool parallel = true);

    /// Execute the current selection on @p input_seed.  Periodically also
    /// runs the exact kernel on the same input to audit quality; on a TOQ
    /// violation, steps down to the next less aggressive variant.
    /// Single-caller: concurrent serving goes through run_selected().
    VariantRun invoke(std::uint64_t input_seed);

    /// Thread-safe serving path: execute the currently selected variant
    /// without invoke()'s periodic quality audit — a serving layer is
    /// expected to own auditing (see serve::QualityMonitor).  A trapped
    /// execution still demotes the variant and re-serves the input with
    /// the exact kernel.  When provided, @p served_label / @p served_index
    /// receive the variant that actually produced the returned run (the
    /// exact kernel after a trap fallback) — unlike a separate
    /// selected_*_snapshot() call, they cannot race with a concurrent
    /// reselection.
    VariantRun run_selected(std::uint64_t input_seed,
                            std::string* served_label = nullptr,
                            int* served_index = nullptr);

    /// Thread-safe: execute the exact kernel (variants[0]) on
    /// @p input_seed, bypassing selection and all bookkeeping.
    VariantRun run_exact(std::uint64_t input_seed) const;

    /// How invoke()/run_selected()/run_exact() execute variants.
    /// Calibration always uses the instrumented `run` closures — it needs
    /// the modeled cycles — but steady-state serving can switch to
    /// vm::ExecMode::Fast so requests stop paying for profiling (paper §5:
    /// calibrate once, serve lean).  Thread-safe; takes effect on the next
    /// execution.  No-op for variants without a run_fast closure.
    void set_serving_mode(vm::ExecMode mode);
    vm::ExecMode serving_mode() const;

    /// Capture the post-calibration tuning state for persistence (see
    /// store::ArtifactStore).  Requires a calibrated tuner.
    CalibrationState calibration_state() const;

    /// Warm start: install a previously captured calibration instead of
    /// running calibrate().  The state is validated against the live
    /// variant list (profile labels must match variants_ one-to-one, the
    /// fallback chain must be well-formed and end at the exact kernel);
    /// any mismatch returns false and leaves the tuner untouched.  A
    /// restored tuner re-validates quality on its first invoke() audit
    /// regardless of the check interval.
    bool restore_calibration(const CalibrationState& state);

    /// Locked: selection moves concurrently with the serving path (see
    /// drop_selected_and_advance), so even these simple reads must
    /// synchronize.  The returned label reference stays valid — variant
    /// labels are immutable — but may be superseded by the time the
    /// caller reads it; use run_selected's out-parameters to name the
    /// variant that served a specific request.
    int selected_index() const;
    const std::string& selected_label() const;

    const TunerStats& stats() const { return stats_; }
    const std::vector<VariantProfile>& profiles() const { return profiles_; }

    /// Copies taken under the tuner lock, for observers that run
    /// concurrently with serving (the reference accessors above are only
    /// safe once the tuner has quiesced).
    TunerStats stats_snapshot() const;
    std::string selected_label_snapshot() const;
    int selected_index_snapshot() const;

  private:
    /// Demote the current selection: remove it from the fallback chain and
    /// move to the next (less aggressive / slower) candidate.  Caller
    /// holds mutex_.
    void drop_selected_and_advance();

    /// Execute variant @p index under the current serving mode.
    VariantRun execute(int index, std::uint64_t input_seed) const;

    std::vector<Variant> variants_;  ///< Immutable after construction.
    Metric metric_;
    double toq_;
    int check_interval_;

    /// Guards all mutable tuning state below.  Variant executions happen
    /// outside the lock; the closures are concurrency-safe by construction
    /// (parallel calibration already runs them from many pool threads).
    mutable std::mutex mutex_;
    int selected_ = 0;
    std::vector<VariantProfile> profiles_;
    /// Variant indices ordered by profiled speed among TOQ-passing ones
    /// (for backoff).
    std::vector<int> fallback_order_;
    TunerStats stats_;
    bool calibrated_ = false;
    /// Set by restore_calibration(): the next invoke() of an approximate
    /// selection audits immediately, re-validating the stored profile
    /// against live inputs before trusting it for a full check interval.
    bool audit_next_ = false;
    std::atomic<vm::ExecMode> serving_mode_{vm::ExecMode::Instrumented};
};

}  // namespace paraprox::runtime
