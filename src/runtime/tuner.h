/// @file
/// The TOQ-driven runtime tuner.
///
/// Paraprox proper emits parameterized approximate kernels and delegates
/// selection to a Green/SAGE-style runtime (paper §2, Fig. 2 and §5); the
/// evaluation nonetheless needs that runtime, so we implement it: profile
/// every variant against the exact kernel on training inputs, pick the
/// fastest one meeting the target output quality, and recheck quality
/// every N invocations at steady state, backing off to a less aggressive
/// variant when the TOQ is violated.

#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "runtime/quality.h"
#include "vm/bytecode.h"

namespace paraprox::runtime {

/// What one execution of a kernel variant produced.
struct VariantRun {
    std::vector<float> output;   ///< Values the quality metric scores.
    double modeled_cycles = 0.0; ///< Device-model cost (0 for fast runs).
    /// Payload bytes the device model priced through the memory
    /// hierarchy (0 for fast runs); packed storage shrinks this even
    /// when cache effects hide the cycle win on small inputs.
    std::uint64_t modeled_bytes = 0;
    double wall_seconds = 0.0;
    std::uint64_t instructions = 0;  ///< Dynamic VM dispatches executed.
    bool trapped = false;        ///< Unsafe execution; variant unusable.
    /// The launch's cancel token fired (deadline or watchdog): the output
    /// is unusable but the variant did nothing wrong — the tuner returns
    /// such runs as-is, with no exact fallback and no breaker charge (the
    /// token's owner decides both).
    bool cancelled = false;
    /// Work-groups completed / total for the launch behind this run
    /// (0/0 when the execution path doesn't track groups).  On a
    /// cancelled run, completed < total measures the work the
    /// cancellation actually saved.
    std::int64_t groups_completed = 0;
    std::int64_t groups_total = 0;
};

/// One launchable configuration (the exact kernel is also expressed as a
/// variant; it must be first and is assumed safe).
struct Variant {
    std::string label;
    /// Monotone knob-aggressiveness rank used for backoff ordering; the
    /// exact kernel is 0.
    int aggressiveness = 0;
    /// Execute on the input identified by @p input_seed.
    std::function<VariantRun(std::uint64_t input_seed)> run;
    /// Optional lean serving closure: identical outputs to `run`, but
    /// executed in vm::ExecMode::Fast with no device pricing (its
    /// modeled_cycles stays 0).  Used by the serving entry points when the
    /// tuner's serving mode is Fast; when empty, `run` serves.
    std::function<VariantRun(std::uint64_t input_seed)> run_fast;
    /// Optional coalesced serving closure: execute every input in one
    /// launch over the concatenated index space (vm::ExecMode::Fast,
    /// unpriced), returning one run per seed in order — lookup tables are
    /// bound once for the whole batch and a trapped member poisons only
    /// its own run.  Used by Tuner::serve_batch when the serving mode is
    /// Fast; when empty, batches fall back to per-seed execution.
    std::function<std::vector<VariantRun>(
        const std::vector<std::uint64_t>& input_seeds)>
        run_batch;
};

/// Profile data gathered for one variant during calibration.
struct VariantProfile {
    std::string label;
    double speedup = 1.0;     ///< Exact modeled cycles / variant's.
    double wall_speedup = 1.0;
    double quality = 100.0;   ///< Against the exact output.
    bool meets_toq = false;
    bool trapped = false;
};

/// Runtime statistics the tuner keeps.
struct TunerStats {
    std::uint64_t invocations = 0;
    std::uint64_t quality_checks = 0;
    std::uint64_t violations = 0;  ///< TOQ misses observed at runtime.
    std::uint64_t backoffs = 0;    ///< Variant downgrades performed.
    std::uint64_t recalibrations = 0;  ///< Full re-profiling passes.
    std::uint64_t quarantines = 0;     ///< Circuit-breaker openings.
    std::uint64_t reinstatements = 0;  ///< Breakers closed after probing.
    std::uint64_t probes = 0;          ///< Half-open probe executions.
};

/// Circuit-breaker policy for unhealthy variants.  The default —
/// one failure opens the breaker forever — reproduces the original
/// "demote permanently on first trap" behavior; a serving layer opts
/// into windowed thresholds and cooldown-based reinstatement.
struct QuarantineConfig {
    /// Failures within `failure_window` that open the breaker.
    int failure_threshold = 1;
    /// Window, in tuner invocations, over which failures accumulate.
    std::uint64_t failure_window = 64;
    /// Invocations an opened breaker stays open before half-open
    /// probing may begin.  0 = permanently open (legacy behavior).
    std::uint64_t cooldown = 0;
    /// Repeat offenders wait cooldown * growth^(offenses-1).
    double cooldown_growth = 2.0;
    std::uint64_t max_cooldown = 1u << 20;
    /// Consecutive healthy probes required to close a half-open breaker.
    int probe_quota = 1;
};

/// Quarantine lifecycle of one variant (paper-style backoff hardened
/// into a circuit breaker: Closed -> Open -> HalfOpen -> Closed).
enum class BreakerState {
    Closed,    ///< Healthy; eligible for selection.
    Open,      ///< Quarantined; excluded until the cooldown elapses.
    HalfOpen,  ///< Cooldown elapsed; being probed off the serving path.
};

std::string to_string(BreakerState state);

/// Observer view of one variant's breaker.
struct BreakerSnapshot {
    std::string label;
    BreakerState state = BreakerState::Closed;
    int failures = 0;  ///< Failures currently inside the window.
    int offenses = 0;  ///< Times this breaker has opened.
    std::uint64_t reopen_at = 0;  ///< Invocation when probing may start.
};

/// What Tuner::serve() produced, with the accounting a serving layer
/// needs: which variant actually ran, and why.
struct ServedRun {
    VariantRun run;
    int index = 0;      ///< Variant that produced `run`.
    std::string label;
    bool trap_fallback = false;  ///< Approx trapped; exact re-served.
    bool degraded = false;  ///< Load-shed below the calibrated selection.
};

/// What Tuner::serve_batch() produced: the selection resolved once for
/// the whole batch, plus per-member accounting (a member that trapped is
/// re-served exact and reports itself through its own ServedRun).
struct BatchServed {
    int index = 0;       ///< Selection the batch was launched with.
    std::string label;
    bool degraded = false;
    std::vector<ServedRun> runs;  ///< One per input seed, in order.
};

/// Everything calibrate() decided, as plain data: what the artifact
/// store persists and restore_calibration() re-installs in a later
/// process (skipping the profiling sweep entirely).
struct CalibrationState {
    std::vector<VariantProfile> profiles;
    std::vector<int> fallback_order;
    int selected = 0;
};

/// Calibrate-then-monitor tuner over a fixed variant list.
class Tuner {
  public:
    /// @param variants  variants[0] must be the exact kernel.
    /// @param metric    the application's quality metric (Table 1).
    /// @param toq_percent  target output quality, e.g. 90.
    /// @param check_interval  recheck quality every this many invocations
    ///        (SAGE found 40-50 keeps overhead under ~5%, §5).
    Tuner(std::vector<Variant> variants, Metric metric, double toq_percent,
          int check_interval = 50);

    /// Profile every variant on @p training_seeds and select the fastest
    /// one meeting the TOQ (modeled cycles decide; falls back to exact if
    /// none qualify).  Returns the profiles for inspection.
    ///
    /// By default the variant x seed sweep runs on the global ThreadPool;
    /// selection is unaffected because it is decided by deterministic
    /// modeled cycles, aggregated in a fixed order after all runs finish.
    /// Wall-clock speedups are advisory under concurrency.  Pass
    /// @p parallel = false to force a serial sweep (identical profiles
    /// except for wall times).
    const std::vector<VariantProfile>&
    calibrate(const std::vector<std::uint64_t>& training_seeds,
              bool parallel = true);

    /// Re-run calibration over fresh training inputs, rebuilding the
    /// fallback chain and selection from scratch and bumping
    /// stats().recalibrations.  Unlike the permanent demotion of invoke()
    /// backoff, a recalibration can re-promote a previously dropped
    /// variant once inputs recover.  Safe to call while other threads are
    /// inside run_selected() / run_exact(); they keep serving the old
    /// selection until the new one is installed.
    const std::vector<VariantProfile>&
    recalibrate(const std::vector<std::uint64_t>& training_seeds,
                bool parallel = true);

    /// Execute the current selection on @p input_seed.  Periodically also
    /// runs the exact kernel on the same input to audit quality; on a TOQ
    /// violation, steps down to the next less aggressive variant.
    /// Single-caller: concurrent serving goes through run_selected().
    VariantRun invoke(std::uint64_t input_seed);

    /// Thread-safe serving path: execute the currently selected variant
    /// without invoke()'s periodic quality audit — a serving layer is
    /// expected to own auditing (see serve::QualityMonitor).  A trapped
    /// execution still demotes the variant and re-serves the input with
    /// the exact kernel.  When provided, @p served_label / @p served_index
    /// receive the variant that actually produced the returned run (the
    /// exact kernel after a trap fallback) — unlike a separate
    /// selected_*_snapshot() call, they cannot race with a concurrent
    /// reselection.
    VariantRun run_selected(std::uint64_t input_seed,
                            std::string* served_label = nullptr,
                            int* served_index = nullptr);

    /// Thread-safe serving path with full accounting: executes the
    /// current selection adjusted for the degradation level, falls back
    /// to exact on a trap (reporting the failure to the breaker), and
    /// names the variant that actually produced the run.  run_selected()
    /// is a thin wrapper over this.
    ServedRun serve(std::uint64_t input_seed);

    /// Coalesced serving path: resolve the selection (and the ladder)
    /// once, then execute every seed against it — through the variant's
    /// run_batch closure as one concatenated launch when the serving
    /// mode is Fast and the closure exists, per-seed otherwise.  Counts
    /// seeds.size() invocations.  Per-member semantics match serve():
    /// each trapped member reports its failure to the breaker and is
    /// re-served exact, without disturbing its batch-mates.  The
    /// selection is held fixed across the batch; a breaker opened by a
    /// mid-batch trap moves the *next* batch's selection.
    BatchServed serve_batch(const std::vector<std::uint64_t>& input_seeds);

    /// Thread-safe: execute the exact kernel (variants[0]) on
    /// @p input_seed, bypassing selection and all bookkeeping.
    VariantRun run_exact(std::uint64_t input_seed) const;

    /// Install a circuit-breaker policy (see QuarantineConfig).  Resets
    /// no breaker state; call before serving traffic.
    void set_quarantine(const QuarantineConfig& config);
    QuarantineConfig quarantine_config() const;

    /// Report a health failure (trap or quality-audit miss) against
    /// variant @p index.  Counts it inside the failure window and opens
    /// the breaker — moving the selection off the variant — once the
    /// window holds `failure_threshold` failures.  The exact kernel
    /// (index 0) is exempt.  Returns true when this call opened the
    /// breaker.  Thread-safe; the serving layer calls this on shadow
    /// audit violations, the trap paths call it internally.
    bool record_failure(int index);

    /// Quarantine probing, driven off the serving path: returns the
    /// index of a variant that is due for a half-open probe (moving it
    /// Open -> HalfOpen when its cooldown has elapsed), or -1 when no
    /// breaker is probe-ready.  Only variants on the calibrated fallback
    /// chain are probed; ladder-only variants stay quarantined until the
    /// next recalibration resets breaker state.
    int probe_candidate();

    /// Execute variant @p index for a half-open probe (counted in
    /// stats().probes).  The caller judges health — typically
    /// !trapped && quality >= TOQ against an exact run of the same
    /// input — and reports it through record_probe().
    VariantRun run_probe(int index, std::uint64_t input_seed);

    /// Report a half-open probe outcome.  `probe_quota` healthy probes
    /// close the breaker and re-run selection (the variant may be
    /// re-promoted); one unhealthy probe re-opens it with a grown
    /// cooldown.  Returns true when this call closed the breaker.
    bool record_probe(int index, bool healthy);

    std::vector<BreakerSnapshot> breaker_snapshot() const;

    /// Load-shedding ladder: at level L the serving path steps the
    /// selection L entries toward the fastest calibrated variant —
    /// deliberately trading quality for throughput — skipping
    /// quarantined variants.  Level 0 (default) serves the calibrated
    /// selection.  Thread-safe; takes effect on the next serve().
    void set_degradation_level(int level);
    int degradation_level() const;

    /// How invoke()/run_selected()/run_exact() execute variants.
    /// Calibration always uses the instrumented `run` closures — it needs
    /// the modeled cycles — but steady-state serving can switch to
    /// vm::ExecMode::Fast so requests stop paying for profiling (paper §5:
    /// calibrate once, serve lean).  Thread-safe; takes effect on the next
    /// execution.  No-op for variants without a run_fast closure.
    void set_serving_mode(vm::ExecMode mode);
    vm::ExecMode serving_mode() const;

    /// Capture the post-calibration tuning state for persistence (see
    /// store::ArtifactStore).  Requires a calibrated tuner.
    CalibrationState calibration_state() const;

    /// Warm start: install a previously captured calibration instead of
    /// running calibrate().  The state is validated against the live
    /// variant list (profile labels must match variants_ one-to-one, the
    /// fallback chain must be well-formed and end at the exact kernel);
    /// any mismatch returns false and leaves the tuner untouched.  A
    /// restored tuner re-validates quality on its first invoke() audit
    /// regardless of the check interval.
    bool restore_calibration(const CalibrationState& state);

    /// Labels of variants whose breaker is currently not Closed — the
    /// quarantine verdicts a scale-out replica publishes alongside its
    /// calibration.  Thread-safe.
    std::vector<std::string> quarantined_labels() const;

    /// Adopt a peer's quarantine verdict: open the breaker of the
    /// variant named @p label (selection moves off it if needed).  The
    /// exact kernel is exempt, as everywhere.  Returns false for an
    /// unknown label — adoption across a module edit must degrade to a
    /// no-op, not a crash.  Thread-safe.
    bool adopt_quarantine(const std::string& label);

    /// Locked: selection moves concurrently with the serving path (see
    /// reselect_locked), so even these simple reads must
    /// synchronize.  The returned label reference stays valid — variant
    /// labels are immutable — but may be superseded by the time the
    /// caller reads it; use run_selected's out-parameters to name the
    /// variant that served a specific request.
    int selected_index() const;
    const std::string& selected_label() const;

    const TunerStats& stats() const { return stats_; }
    const std::vector<VariantProfile>& profiles() const { return profiles_; }

    /// Copies taken under the tuner lock, for observers that run
    /// concurrently with serving (the reference accessors above are only
    /// safe once the tuner has quiesced).
    TunerStats stats_snapshot() const;
    std::string selected_label_snapshot() const;
    int selected_index_snapshot() const;

  private:
    /// Per-variant circuit-breaker state (indexed like variants_).
    struct VariantHealth {
        BreakerState state = BreakerState::Closed;
        /// Invocation stamps of recent failures, pruned to the window.
        std::deque<std::uint64_t> failures;
        int offenses = 0;
        std::uint64_t reopen_at = 0;
        int probe_successes = 0;
    };

    /// record_failure() with mutex_ held.
    bool record_failure_locked(int index);

    /// Open variant @p index's breaker: schedule reprobing per the
    /// cooldown policy and move the selection off it if needed.  Caller
    /// holds mutex_.
    void open_breaker_locked(int index);

    /// Move selected_ to the first healthy entry of the fallback chain.
    /// Caller holds mutex_.
    void reselect_locked();

    /// All breakers closed, failure history cleared.  Caller holds
    /// mutex_.
    void reset_health_locked();

    /// Apply the degradation ladder to selected_.  Caller holds mutex_.
    int resolve_serving_index_locked(bool* degraded) const;

    /// Execute variant @p index under the current serving mode.
    VariantRun execute(int index, std::uint64_t input_seed) const;

    std::vector<Variant> variants_;  ///< Immutable after construction.
    Metric metric_;
    double toq_;
    int check_interval_;

    /// Guards all mutable tuning state below.  Variant executions happen
    /// outside the lock; the closures are concurrency-safe by construction
    /// (parallel calibration already runs them from many pool threads).
    mutable std::mutex mutex_;
    int selected_ = 0;
    std::vector<VariantProfile> profiles_;
    /// Variant indices ordered by profiled speed among TOQ-passing ones
    /// (for backoff).
    std::vector<int> fallback_order_;
    /// Every non-trapped variant (exact included, below-TOQ included)
    /// ordered fastest-first: the degradation ladder's rungs.
    std::vector<int> speed_order_;
    QuarantineConfig quarantine_;
    std::vector<VariantHealth> health_;  ///< Indexed like variants_.
    int degradation_level_ = 0;
    TunerStats stats_;
    bool calibrated_ = false;
    /// Set by restore_calibration(): the next invoke() of an approximate
    /// selection audits immediately, re-validating the stored profile
    /// against live inputs before trusting it for a full check interval.
    bool audit_next_ = false;
    std::atomic<vm::ExecMode> serving_mode_{vm::ExecMode::Instrumented};
};

}  // namespace paraprox::runtime
