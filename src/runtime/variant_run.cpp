#include "runtime/variant_run.h"

namespace paraprox::runtime {

VariantRun
run_priced(const vm::Program& program, const exec::ArgPack& args,
           const exec::LaunchConfig& config,
           const device::DeviceModel& device,
           std::vector<float> output_placeholder)
{
    device::ModeledResult modeled =
        device::run_modeled(program, args, config, device);
    VariantRun run;
    run.output = std::move(output_placeholder);
    run.modeled_cycles = modeled.cycles;
    run.modeled_bytes = modeled.cost.payload_bytes;
    run.wall_seconds = modeled.launch.wall_seconds;
    run.instructions = modeled.launch.stats.total_instructions;
    run.trapped = modeled.launch.trapped;
    run.cancelled = modeled.launch.cancelled;
    run.groups_completed = modeled.launch.groups_completed;
    run.groups_total = modeled.launch.groups_total;
    return run;
}

VariantRun
run_fast_unpriced(const vm::Program& program, const exec::ArgPack& args,
                  exec::LaunchConfig config,
                  std::vector<float> output_placeholder)
{
    config.mode = vm::ExecMode::Fast;
    exec::LaunchResult launched = exec::launch(program, args, config);
    VariantRun run;
    run.output = std::move(output_placeholder);
    run.wall_seconds = launched.wall_seconds;
    run.instructions = launched.stats.total_instructions;
    run.trapped = launched.trapped;
    run.cancelled = launched.cancelled;
    run.groups_completed = launched.groups_completed;
    run.groups_total = launched.groups_total;
    return run;
}

std::vector<VariantRun>
run_batch_unpriced(const vm::Program& program,
                   const std::vector<const exec::ArgPack*>& batch,
                   exec::LaunchConfig config)
{
    config.mode = vm::ExecMode::Fast;
    const std::vector<exec::LaunchResult> launched =
        exec::launch_batch(program, batch, config);
    std::vector<VariantRun> runs(launched.size());
    for (std::size_t i = 0; i < launched.size(); ++i) {
        runs[i].wall_seconds = launched[i].wall_seconds;
        runs[i].instructions = launched[i].stats.total_instructions;
        runs[i].trapped = launched[i].trapped;
        runs[i].cancelled = launched[i].cancelled;
        runs[i].groups_completed = launched[i].groups_completed;
        runs[i].groups_total = launched[i].groups_total;
    }
    return runs;
}

void
attach_output(VariantRun& run, const exec::Buffer& out)
{
    if (out.elem_type() == ir::Scalar::F32) {
        run.output = out.to_floats();
        return;
    }
    // Integer outputs (e.g. histogram counts) are scored as numeric
    // values, not reinterpreted bit patterns.
    run.output.clear();
    run.output.reserve(out.size());
    for (std::int32_t v : out.to_ints())
        run.output.push_back(static_cast<float>(v));
}

}  // namespace paraprox::runtime
