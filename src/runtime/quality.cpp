#include "runtime/quality.h"

#include <algorithm>
#include <cmath>

#include "support/error.h"

namespace paraprox::runtime {

std::string
to_string(Metric metric)
{
    switch (metric) {
      case Metric::L1Norm: return "L1-norm";
      case Metric::L2Norm: return "L2-norm";
      case Metric::MeanRelativeError: return "Mean relative error";
    }
    return "<bad-metric>";
}

double
quality_percent(Metric metric, const std::vector<float>& exact,
                const std::vector<float>& approx)
{
    PARAPROX_CHECK(exact.size() == approx.size(),
                   "quality_percent: size mismatch");
    if (exact.empty())
        return 100.0;

    double err = 0.0;
    double ref = 0.0;
    std::size_t counted = 0;
    switch (metric) {
      case Metric::L1Norm:
        for (std::size_t i = 0; i < exact.size(); ++i) {
            if (!std::isfinite(exact[i]))
                continue;  // No finite reference to score against.
            ref += std::fabs(static_cast<double>(exact[i]));
            ++counted;
            if (!std::isfinite(approx[i])) {
                // A finite expectation answered with NaN/Inf is maximal
                // error, not a skippable element — otherwise a variant
                // that manufactures non-finite outputs scores as clean.
                err += std::fabs(static_cast<double>(exact[i]));
                continue;
            }
            err += std::fabs(static_cast<double>(exact[i]) - approx[i]);
        }
        if (counted == 0)
            return 0.0;
        if (ref == 0.0)
            return err == 0.0 ? 100.0 : 0.0;
        return std::max(0.0, 100.0 * (1.0 - err / ref));

      case Metric::L2Norm:
        for (std::size_t i = 0; i < exact.size(); ++i) {
            if (!std::isfinite(exact[i]))
                continue;
            ref += static_cast<double>(exact[i]) * exact[i];
            ++counted;
            if (!std::isfinite(approx[i])) {
                err += static_cast<double>(exact[i]) * exact[i];
                continue;
            }
            const double d = static_cast<double>(exact[i]) - approx[i];
            err += d * d;
        }
        if (counted == 0)
            return 0.0;
        if (ref == 0.0)
            return err == 0.0 ? 100.0 : 0.0;
        return std::max(0.0, 100.0 * (1.0 - std::sqrt(err / ref)));

      case Metric::MeanRelativeError: {
        for (std::size_t i = 0; i < exact.size(); ++i) {
            if (!std::isfinite(exact[i]))
                continue;
            ++counted;
            if (!std::isfinite(approx[i])) {
                err += 1.0;  // 100% relative error, as element_errors does.
                continue;
            }
            const double denom = std::max(
                1e-6, std::fabs(static_cast<double>(exact[i])));
            err += std::fabs(static_cast<double>(exact[i]) - approx[i]) /
                   denom;
        }
        if (counted == 0)
            return 0.0;
        return std::max(0.0,
                        100.0 * (1.0 - err / static_cast<double>(counted)));
      }
    }
    return 0.0;
}

std::vector<double>
element_errors(const std::vector<float>& exact,
               const std::vector<float>& approx)
{
    PARAPROX_CHECK(exact.size() == approx.size(),
                   "element_errors: size mismatch");
    std::vector<double> errors;
    errors.reserve(exact.size());
    for (std::size_t i = 0; i < exact.size(); ++i) {
        if (!std::isfinite(exact[i]) || !std::isfinite(approx[i])) {
            errors.push_back(1.0);
            continue;
        }
        const double denom =
            std::max(1e-6, std::fabs(static_cast<double>(exact[i])));
        errors.push_back(
            std::fabs(static_cast<double>(exact[i]) - approx[i]) / denom);
    }
    return errors;
}

}  // namespace paraprox::runtime
