#include "runtime/tuner.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/error.h"
#include "support/parallel.h"

namespace paraprox::runtime {

namespace {

/// reopen_at sentinel: the breaker never leaves Open on its own.
constexpr std::uint64_t kNeverReopen =
    std::numeric_limits<std::uint64_t>::max();

}  // namespace

std::string
to_string(BreakerState state)
{
    switch (state) {
      case BreakerState::Closed: return "closed";
      case BreakerState::Open: return "open";
      case BreakerState::HalfOpen: return "half-open";
    }
    return "<bad-state>";
}

Tuner::Tuner(std::vector<Variant> variants, Metric metric,
             double toq_percent, int check_interval)
    : variants_(std::move(variants)), metric_(metric), toq_(toq_percent),
      check_interval_(check_interval)
{
    PARAPROX_CHECK(!variants_.empty(), "Tuner needs at least one variant");
    PARAPROX_CHECK(variants_[0].aggressiveness == 0,
                   "variants[0] must be the exact kernel");
    PARAPROX_CHECK(check_interval_ > 0, "check interval must be positive");
}

const std::vector<VariantProfile>&
Tuner::calibrate(const std::vector<std::uint64_t>& training_seeds,
                 bool parallel)
{
    PARAPROX_CHECK(!training_seeds.empty(),
                   "calibration needs at least one training input");

    // Materialize every (variant, seed) execution first — in parallel when
    // requested — then aggregate serially in a fixed order.  Selection is
    // decided by modeled cycles, which are deterministic per run, so the
    // parallel sweep picks the same variant as a serial one; wall times are
    // advisory and may be skewed by concurrency.  The sweep runs outside
    // the tuner lock so concurrent run_selected() callers keep serving the
    // previous selection during a recalibration.
    const std::size_t num_seeds = training_seeds.size();
    std::vector<VariantRun> runs(variants_.size() * num_seeds);
    auto run_one = [&](std::size_t job) {
        const std::size_t v = job / num_seeds;
        const std::size_t s = job % num_seeds;
        runs[job] = variants_[v].run(training_seeds[s]);
    };
    if (parallel) {
        ThreadPool::global().parallel_for(runs.size(), run_one);
    } else {
        for (std::size_t job = 0; job < runs.size(); ++job)
            run_one(job);
    }

    std::lock_guard<std::mutex> lock(mutex_);
    profiles_.assign(variants_.size(), {});

    const VariantRun* exact_runs = runs.data();
    double exact_cycles = 0.0;
    double exact_wall = 0.0;
    for (std::size_t s = 0; s < num_seeds; ++s) {
        PARAPROX_CHECK(!exact_runs[s].trapped,
                       "exact kernel trapped during calibration");
        exact_cycles += exact_runs[s].modeled_cycles;
        exact_wall += exact_runs[s].wall_seconds;
    }
    profiles_[0] = {variants_[0].label, 1.0, 1.0, 100.0, true, false};

    for (std::size_t v = 1; v < variants_.size(); ++v) {
        VariantProfile& profile = profiles_[v];
        profile.label = variants_[v].label;
        double cycles = 0.0;
        double wall = 0.0;
        double quality_acc = 0.0;
        bool trapped = false;
        for (std::size_t s = 0; s < num_seeds; ++s) {
            const VariantRun& run = runs[v * num_seeds + s];
            if (run.trapped) {
                trapped = true;
                break;
            }
            cycles += run.modeled_cycles;
            wall += run.wall_seconds;
            quality_acc += quality_percent(metric_, exact_runs[s].output,
                                           run.output);
        }
        if (trapped) {
            profile.trapped = true;
            profile.meets_toq = false;
            continue;
        }
        profile.quality = quality_acc / static_cast<double>(num_seeds);
        profile.speedup = cycles > 0.0 ? exact_cycles / cycles : 1.0;
        profile.wall_speedup = wall > 0.0 ? exact_wall / wall : 1.0;
        profile.meets_toq = profile.quality >= toq_;
    }

    // Candidates: TOQ-passing variants sorted fastest-first; the exact
    // kernel terminates the fallback chain.
    fallback_order_.clear();
    for (std::size_t v = 1; v < variants_.size(); ++v) {
        if (profiles_[v].meets_toq)
            fallback_order_.push_back(static_cast<int>(v));
    }
    std::sort(fallback_order_.begin(), fallback_order_.end(),
              [&](int a, int b) {
                  return profiles_[a].speedup > profiles_[b].speedup;
              });
    fallback_order_.push_back(0);

    // Degradation ladder rungs: every non-trapped variant — exact and
    // below-TOQ ones included — fastest-first.  Under load shedding the
    // serving path walks this list toward cheaper entries.
    speed_order_.clear();
    for (std::size_t v = 0; v < variants_.size(); ++v) {
        if (!profiles_[v].trapped)
            speed_order_.push_back(static_cast<int>(v));
    }
    std::stable_sort(speed_order_.begin(), speed_order_.end(),
                     [&](int a, int b) {
                         return profiles_[a].speedup > profiles_[b].speedup;
                     });

    selected_ = fallback_order_.front();
    calibrated_ = true;
    audit_next_ = false;
    reset_health_locked();
    return profiles_;
}

CalibrationState
Tuner::calibration_state() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    PARAPROX_CHECK(calibrated_,
                   "calibration_state() needs a calibrated tuner");
    return {profiles_, fallback_order_, selected_};
}

bool
Tuner::restore_calibration(const CalibrationState& state)
{
    // Validate against the live variant list before touching anything: a
    // stale or foreign calibration (renamed variants, different variant
    // count, malformed fallback chain) must read as a miss, not install
    // a selection pointing at the wrong kernel.
    if (state.profiles.size() != variants_.size())
        return false;
    for (std::size_t v = 0; v < variants_.size(); ++v) {
        if (state.profiles[v].label != variants_[v].label)
            return false;
    }
    if (state.fallback_order.empty() || state.fallback_order.back() != 0)
        return false;
    std::vector<bool> seen(variants_.size(), false);
    for (const int index : state.fallback_order) {
        if (index < 0 ||
            index >= static_cast<int>(variants_.size()) || seen[index])
            return false;
        seen[index] = true;
        if (index != 0 && (!state.profiles[index].meets_toq ||
                           state.profiles[index].trapped))
            return false;
    }
    if (state.selected != state.fallback_order.front())
        return false;
    // The exact kernel can never have trapped during a real calibration;
    // a record claiming so (stale write from an edited module, hostile
    // bytes that survive the checksum) would silently drop index 0 from
    // the degradation ladder.  Reject it like any other shape mismatch.
    if (state.profiles[0].trapped || !state.profiles[0].meets_toq)
        return false;

    std::lock_guard<std::mutex> lock(mutex_);
    profiles_ = state.profiles;
    fallback_order_ = state.fallback_order;
    selected_ = state.selected;
    speed_order_.clear();
    for (std::size_t v = 0; v < variants_.size(); ++v) {
        if (!profiles_[v].trapped)
            speed_order_.push_back(static_cast<int>(v));
    }
    std::stable_sort(speed_order_.begin(), speed_order_.end(),
                     [&](int a, int b) {
                         return profiles_[a].speedup > profiles_[b].speedup;
                     });
    calibrated_ = true;
    audit_next_ = true;
    reset_health_locked();
    return true;
}

const std::vector<VariantProfile>&
Tuner::recalibrate(const std::vector<std::uint64_t>& training_seeds,
                   bool parallel)
{
    const auto& profiles = calibrate(training_seeds, parallel);
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.recalibrations;
    return profiles;
}

void
Tuner::set_serving_mode(vm::ExecMode mode)
{
    serving_mode_.store(mode, std::memory_order_relaxed);
}

vm::ExecMode
Tuner::serving_mode() const
{
    return serving_mode_.load(std::memory_order_relaxed);
}

VariantRun
Tuner::execute(int index, std::uint64_t input_seed) const
{
    const Variant& variant = variants_[index];
    if (serving_mode() == vm::ExecMode::Fast && variant.run_fast)
        return variant.run_fast(input_seed);
    return variant.run(input_seed);
}

VariantRun
Tuner::invoke(std::uint64_t input_seed)
{
    int index;
    std::uint64_t invocation;
    bool audit_now = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        PARAPROX_CHECK(calibrated_, "call calibrate() before invoke()");
        invocation = ++stats_.invocations;
        index = selected_;
        // A restored calibration audits on its first approximate
        // invocation, whatever the check interval says.
        if (audit_next_) {
            audit_now = index != 0;
            audit_next_ = false;
        }
    }

    VariantRun run = execute(index, input_seed);
    if (run.cancelled) {
        // Cancellation is the harness dropping the request, not the
        // variant misbehaving: no exact fallback, no breaker charge, no
        // quality audit on the partial output.  The caller owns the
        // token and decides what a cancelled run means.
        return run;
    }
    if (run.trapped && index != 0) {
        // Unsafe execution: fall back to exact for this input and report
        // the trap to the circuit breaker (which, under the default
        // policy, demotes the variant permanently — §5, safety).
        {
            std::lock_guard<std::mutex> lock(mutex_);
            record_failure_locked(index);
        }
        return execute(0, input_seed);
    }

    const bool audit =
        audit_now || (index != 0 && invocation % check_interval_ == 0);
    if (audit) {
        VariantRun exact = execute(0, input_seed);
        const double quality =
            quality_percent(metric_, exact.output, run.output);
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.quality_checks;
        if (quality < toq_) {
            ++stats_.violations;
            record_failure_locked(index);
        }
    }
    return run;
}

ServedRun
Tuner::serve(std::uint64_t input_seed)
{
    int index;
    bool degraded = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        PARAPROX_CHECK(calibrated_, "call calibrate() before serve()");
        ++stats_.invocations;
        index = resolve_serving_index_locked(&degraded);
    }

    ServedRun served;
    served.run = execute(index, input_seed);
    if (served.run.cancelled) {
        // A cancelled run comes back as-is: no exact fallback (the
        // request is being dropped or re-driven by the token's owner)
        // and no breaker charge (the serving layer charges watchdog
        // cancellations explicitly via record_failure).
        served.index = index;
        served.label = variants_[index].label;
        return served;
    }
    if (served.run.trapped && index != 0) {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            record_failure_locked(index);
        }
        served.run = execute(0, input_seed);
        served.index = 0;
        served.label = variants_[0].label;
        served.trap_fallback = true;
        return served;
    }
    served.index = index;
    served.label = variants_[index].label;
    served.degraded = degraded;
    return served;
}

BatchServed
Tuner::serve_batch(const std::vector<std::uint64_t>& input_seeds)
{
    BatchServed batch;
    if (input_seeds.empty())
        return batch;
    bool degraded = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        PARAPROX_CHECK(calibrated_, "call calibrate() before serve_batch()");
        stats_.invocations += input_seeds.size();
        batch.index = resolve_serving_index_locked(&degraded);
    }
    batch.label = variants_[batch.index].label;
    batch.degraded = degraded;

    // One concatenated launch when the variant can coalesce; per-seed
    // execution (same selection, no reselect between members) otherwise.
    std::vector<VariantRun> runs;
    if (serving_mode() == vm::ExecMode::Fast &&
        variants_[batch.index].run_batch) {
        runs = variants_[batch.index].run_batch(input_seeds);
        PARAPROX_CHECK(runs.size() == input_seeds.size(),
                       "run_batch returned a short batch");
    } else {
        runs.reserve(input_seeds.size());
        for (const std::uint64_t seed : input_seeds)
            runs.push_back(execute(batch.index, seed));
    }

    batch.runs.resize(input_seeds.size());
    bool any_trapped = false;
    for (std::size_t i = 0; i < runs.size(); ++i) {
        batch.runs[i].run = std::move(runs[i]);
        batch.runs[i].index = batch.index;
        batch.runs[i].label = batch.label;
        batch.runs[i].degraded = degraded;
        // Cancelled members are returned as-is (scatter-cancel: the
        // token's owner resolves them); only genuine traps fall back.
        any_trapped |= batch.runs[i].run.trapped &&
                       !batch.runs[i].run.cancelled && batch.index != 0;
    }
    if (any_trapped) {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            for (const ServedRun& served : batch.runs) {
                if (served.run.trapped && !served.run.cancelled)
                    record_failure_locked(batch.index);
            }
        }
        for (std::size_t i = 0; i < batch.runs.size(); ++i) {
            ServedRun& served = batch.runs[i];
            if (!served.run.trapped || served.run.cancelled)
                continue;
            served.run = execute(0, input_seeds[i]);
            served.index = 0;
            served.label = variants_[0].label;
            served.trap_fallback = true;
            served.degraded = false;
        }
    }
    return batch;
}

VariantRun
Tuner::run_selected(std::uint64_t input_seed, std::string* served_label,
                    int* served_index)
{
    ServedRun served = serve(input_seed);
    if (served_label)
        *served_label = std::move(served.label);
    if (served_index)
        *served_index = served.index;
    return std::move(served.run);
}

VariantRun
Tuner::run_exact(std::uint64_t input_seed) const
{
    return execute(0, input_seed);
}

void
Tuner::set_quarantine(const QuarantineConfig& config)
{
    PARAPROX_CHECK(config.failure_threshold >= 1,
                   "quarantine failure threshold must be >= 1");
    PARAPROX_CHECK(config.cooldown_growth >= 1.0,
                   "quarantine cooldown growth must be >= 1");
    PARAPROX_CHECK(config.probe_quota >= 1,
                   "quarantine probe quota must be >= 1");
    std::lock_guard<std::mutex> lock(mutex_);
    quarantine_ = config;
}

QuarantineConfig
Tuner::quarantine_config() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return quarantine_;
}

bool
Tuner::record_failure(int index)
{
    std::lock_guard<std::mutex> lock(mutex_);
    return record_failure_locked(index);
}

std::vector<std::string>
Tuner::quarantined_labels() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> out;
    for (std::size_t v = 0; v < health_.size(); ++v) {
        if (health_[v].state != BreakerState::Closed)
            out.push_back(variants_[v].label);
    }
    return out;
}

bool
Tuner::adopt_quarantine(const std::string& label)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!calibrated_)
        return false;
    for (std::size_t v = 1; v < variants_.size(); ++v) {
        if (variants_[v].label != label)
            continue;
        if (health_[v].state != BreakerState::Open)
            open_breaker_locked(static_cast<int>(v));
        return true;
    }
    return false;
}

bool
Tuner::record_failure_locked(int index)
{
    if (!calibrated_ || index <= 0 ||
        index >= static_cast<int>(variants_.size()))
        return false;
    VariantHealth& health = health_[index];
    if (health.state == BreakerState::Open)
        return false;  // Already quarantined; nothing new to learn.

    // A failing half-open probe path reports through record_probe(); a
    // plain failure on a HalfOpen variant (e.g. a shadow audit racing
    // reinstatement) re-opens it directly.
    const std::uint64_t now = stats_.invocations;
    health.failures.push_back(now);
    while (!health.failures.empty() &&
           now - health.failures.front() > quarantine_.failure_window)
        health.failures.pop_front();
    if (health.state == BreakerState::Closed &&
        static_cast<int>(health.failures.size()) <
            quarantine_.failure_threshold)
        return false;

    open_breaker_locked(index);
    return true;
}

void
Tuner::open_breaker_locked(int index)
{
    VariantHealth& health = health_[index];
    health.state = BreakerState::Open;
    health.failures.clear();
    health.probe_successes = 0;
    ++health.offenses;
    ++stats_.quarantines;
    if (quarantine_.cooldown == 0) {
        // Legacy policy: a quarantined variant never comes back short of
        // a recalibration.
        health.reopen_at = kNeverReopen;
    } else {
        double cooldown =
            static_cast<double>(quarantine_.cooldown) *
            std::pow(quarantine_.cooldown_growth, health.offenses - 1);
        cooldown = std::min(
            cooldown, static_cast<double>(quarantine_.max_cooldown));
        health.reopen_at =
            stats_.invocations + static_cast<std::uint64_t>(cooldown);
    }
    if (selected_ == index) {
        ++stats_.backoffs;
        reselect_locked();
    }
}

void
Tuner::reselect_locked()
{
    // The chain is never mutated after calibration: selection simply
    // lands on its first healthy entry.  Index 0 terminates the chain
    // and is exempt from quarantine, so a winner always exists.
    for (const int index : fallback_order_) {
        if (health_[index].state == BreakerState::Closed) {
            selected_ = index;
            return;
        }
    }
    selected_ = 0;
}

void
Tuner::reset_health_locked()
{
    health_.assign(variants_.size(), {});
}

int
Tuner::resolve_serving_index_locked(bool* degraded) const
{
    *degraded = false;
    const int base = selected_;
    if (degradation_level_ <= 0 || speed_order_.empty())
        return base;
    const auto at = std::find(speed_order_.begin(), speed_order_.end(),
                              base);
    if (at == speed_order_.end())
        return base;
    // Walk toward the fastest rung, one per degradation level, skipping
    // quarantined variants.  The ladder saturates at the fastest healthy
    // entry rather than wrapping.
    int resolved = base;
    int steps = degradation_level_;
    for (auto it = at; it != speed_order_.begin() && steps > 0;) {
        --it;
        if (health_[*it].state != BreakerState::Closed)
            continue;
        resolved = *it;
        --steps;
    }
    *degraded = resolved != base;
    return resolved;
}

int
Tuner::probe_candidate()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!calibrated_)
        return -1;
    for (const int index : fallback_order_) {
        if (index == 0)
            continue;
        VariantHealth& health = health_[index];
        if (health.state == BreakerState::HalfOpen)
            return index;
        if (health.state == BreakerState::Open &&
            health.reopen_at != kNeverReopen &&
            stats_.invocations >= health.reopen_at) {
            health.state = BreakerState::HalfOpen;
            health.probe_successes = 0;
            return index;
        }
    }
    return -1;
}

VariantRun
Tuner::run_probe(int index, std::uint64_t input_seed)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        PARAPROX_CHECK(index > 0 &&
                           index < static_cast<int>(variants_.size()),
                       "run_probe: bad variant index");
        ++stats_.probes;
    }
    return execute(index, input_seed);
}

bool
Tuner::record_probe(int index, bool healthy)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (index <= 0 || index >= static_cast<int>(variants_.size()))
        return false;
    VariantHealth& health = health_[index];
    if (health.state != BreakerState::HalfOpen)
        return false;  // Stale report; breaker moved on.
    if (!healthy) {
        // Still sick: back to Open with a grown cooldown.
        open_breaker_locked(index);
        return false;
    }
    if (++health.probe_successes < quarantine_.probe_quota)
        return false;
    health.state = BreakerState::Closed;
    health.failures.clear();
    health.probe_successes = 0;
    ++stats_.reinstatements;
    reselect_locked();
    return true;
}

std::vector<BreakerSnapshot>
Tuner::breaker_snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<BreakerSnapshot> out;
    out.reserve(variants_.size());
    for (std::size_t v = 0; v < variants_.size(); ++v) {
        BreakerSnapshot snap;
        snap.label = variants_[v].label;
        if (v < health_.size()) {
            snap.state = health_[v].state;
            snap.failures = static_cast<int>(health_[v].failures.size());
            snap.offenses = health_[v].offenses;
            snap.reopen_at = health_[v].reopen_at;
        }
        out.push_back(std::move(snap));
    }
    return out;
}

void
Tuner::set_degradation_level(int level)
{
    std::lock_guard<std::mutex> lock(mutex_);
    degradation_level_ = std::max(0, level);
}

int
Tuner::degradation_level() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return degradation_level_;
}

int
Tuner::selected_index() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return selected_;
}

const std::string&
Tuner::selected_label() const
{
    // Lock even though only an int is read: drop_selected_and_advance()
    // rewrites selected_ from the serving path, and an unsynchronized
    // read is a data race (labels themselves are immutable, so the
    // returned reference is safe to hold).
    std::lock_guard<std::mutex> lock(mutex_);
    return variants_[selected_].label;
}

TunerStats
Tuner::stats_snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

std::string
Tuner::selected_label_snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return variants_[selected_].label;
}

int
Tuner::selected_index_snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return selected_;
}

}  // namespace paraprox::runtime
