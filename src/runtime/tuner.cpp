#include "runtime/tuner.h"

#include <algorithm>

#include "support/error.h"
#include "support/parallel.h"

namespace paraprox::runtime {

Tuner::Tuner(std::vector<Variant> variants, Metric metric,
             double toq_percent, int check_interval)
    : variants_(std::move(variants)), metric_(metric), toq_(toq_percent),
      check_interval_(check_interval)
{
    PARAPROX_CHECK(!variants_.empty(), "Tuner needs at least one variant");
    PARAPROX_CHECK(variants_[0].aggressiveness == 0,
                   "variants[0] must be the exact kernel");
    PARAPROX_CHECK(check_interval_ > 0, "check interval must be positive");
}

const std::vector<VariantProfile>&
Tuner::calibrate(const std::vector<std::uint64_t>& training_seeds,
                 bool parallel)
{
    PARAPROX_CHECK(!training_seeds.empty(),
                   "calibration needs at least one training input");

    // Materialize every (variant, seed) execution first — in parallel when
    // requested — then aggregate serially in a fixed order.  Selection is
    // decided by modeled cycles, which are deterministic per run, so the
    // parallel sweep picks the same variant as a serial one; wall times are
    // advisory and may be skewed by concurrency.  The sweep runs outside
    // the tuner lock so concurrent run_selected() callers keep serving the
    // previous selection during a recalibration.
    const std::size_t num_seeds = training_seeds.size();
    std::vector<VariantRun> runs(variants_.size() * num_seeds);
    auto run_one = [&](std::size_t job) {
        const std::size_t v = job / num_seeds;
        const std::size_t s = job % num_seeds;
        runs[job] = variants_[v].run(training_seeds[s]);
    };
    if (parallel) {
        ThreadPool::global().parallel_for(runs.size(), run_one);
    } else {
        for (std::size_t job = 0; job < runs.size(); ++job)
            run_one(job);
    }

    std::lock_guard<std::mutex> lock(mutex_);
    profiles_.assign(variants_.size(), {});

    const VariantRun* exact_runs = runs.data();
    double exact_cycles = 0.0;
    double exact_wall = 0.0;
    for (std::size_t s = 0; s < num_seeds; ++s) {
        PARAPROX_CHECK(!exact_runs[s].trapped,
                       "exact kernel trapped during calibration");
        exact_cycles += exact_runs[s].modeled_cycles;
        exact_wall += exact_runs[s].wall_seconds;
    }
    profiles_[0] = {variants_[0].label, 1.0, 1.0, 100.0, true, false};

    for (std::size_t v = 1; v < variants_.size(); ++v) {
        VariantProfile& profile = profiles_[v];
        profile.label = variants_[v].label;
        double cycles = 0.0;
        double wall = 0.0;
        double quality_acc = 0.0;
        bool trapped = false;
        for (std::size_t s = 0; s < num_seeds; ++s) {
            const VariantRun& run = runs[v * num_seeds + s];
            if (run.trapped) {
                trapped = true;
                break;
            }
            cycles += run.modeled_cycles;
            wall += run.wall_seconds;
            quality_acc += quality_percent(metric_, exact_runs[s].output,
                                           run.output);
        }
        if (trapped) {
            profile.trapped = true;
            profile.meets_toq = false;
            continue;
        }
        profile.quality = quality_acc / static_cast<double>(num_seeds);
        profile.speedup = cycles > 0.0 ? exact_cycles / cycles : 1.0;
        profile.wall_speedup = wall > 0.0 ? exact_wall / wall : 1.0;
        profile.meets_toq = profile.quality >= toq_;
    }

    // Candidates: TOQ-passing variants sorted fastest-first; the exact
    // kernel terminates the fallback chain.
    fallback_order_.clear();
    for (std::size_t v = 1; v < variants_.size(); ++v) {
        if (profiles_[v].meets_toq)
            fallback_order_.push_back(static_cast<int>(v));
    }
    std::sort(fallback_order_.begin(), fallback_order_.end(),
              [&](int a, int b) {
                  return profiles_[a].speedup > profiles_[b].speedup;
              });
    fallback_order_.push_back(0);

    selected_ = fallback_order_.front();
    calibrated_ = true;
    audit_next_ = false;
    return profiles_;
}

CalibrationState
Tuner::calibration_state() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    PARAPROX_CHECK(calibrated_,
                   "calibration_state() needs a calibrated tuner");
    return {profiles_, fallback_order_, selected_};
}

bool
Tuner::restore_calibration(const CalibrationState& state)
{
    // Validate against the live variant list before touching anything: a
    // stale or foreign calibration (renamed variants, different variant
    // count, malformed fallback chain) must read as a miss, not install
    // a selection pointing at the wrong kernel.
    if (state.profiles.size() != variants_.size())
        return false;
    for (std::size_t v = 0; v < variants_.size(); ++v) {
        if (state.profiles[v].label != variants_[v].label)
            return false;
    }
    if (state.fallback_order.empty() || state.fallback_order.back() != 0)
        return false;
    std::vector<bool> seen(variants_.size(), false);
    for (const int index : state.fallback_order) {
        if (index < 0 ||
            index >= static_cast<int>(variants_.size()) || seen[index])
            return false;
        seen[index] = true;
        if (index != 0 && (!state.profiles[index].meets_toq ||
                           state.profiles[index].trapped))
            return false;
    }
    if (state.selected != state.fallback_order.front())
        return false;

    std::lock_guard<std::mutex> lock(mutex_);
    profiles_ = state.profiles;
    fallback_order_ = state.fallback_order;
    selected_ = state.selected;
    calibrated_ = true;
    audit_next_ = true;
    return true;
}

const std::vector<VariantProfile>&
Tuner::recalibrate(const std::vector<std::uint64_t>& training_seeds,
                   bool parallel)
{
    const auto& profiles = calibrate(training_seeds, parallel);
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.recalibrations;
    return profiles;
}

void
Tuner::set_serving_mode(vm::ExecMode mode)
{
    serving_mode_.store(mode, std::memory_order_relaxed);
}

vm::ExecMode
Tuner::serving_mode() const
{
    return serving_mode_.load(std::memory_order_relaxed);
}

VariantRun
Tuner::execute(int index, std::uint64_t input_seed) const
{
    const Variant& variant = variants_[index];
    if (serving_mode() == vm::ExecMode::Fast && variant.run_fast)
        return variant.run_fast(input_seed);
    return variant.run(input_seed);
}

VariantRun
Tuner::invoke(std::uint64_t input_seed)
{
    int index;
    std::uint64_t invocation;
    bool audit_now = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        PARAPROX_CHECK(calibrated_, "call calibrate() before invoke()");
        invocation = ++stats_.invocations;
        index = selected_;
        // A restored calibration audits on its first approximate
        // invocation, whatever the check interval says.
        if (audit_next_) {
            audit_now = index != 0;
            audit_next_ = false;
        }
    }

    VariantRun run = execute(index, input_seed);
    if (run.trapped && index != 0) {
        // Unsafe execution: fall back to exact for this input and demote
        // the variant permanently (§5, safety).
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.backoffs;
            if (selected_ == index)
                drop_selected_and_advance();
        }
        return execute(0, input_seed);
    }

    const bool audit =
        audit_now || (index != 0 && invocation % check_interval_ == 0);
    if (audit) {
        VariantRun exact = execute(0, input_seed);
        const double quality =
            quality_percent(metric_, exact.output, run.output);
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.quality_checks;
        if (quality < toq_) {
            ++stats_.violations;
            ++stats_.backoffs;
            if (selected_ == index)
                drop_selected_and_advance();
        }
    }
    return run;
}

VariantRun
Tuner::run_selected(std::uint64_t input_seed, std::string* served_label,
                    int* served_index)
{
    int index;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        PARAPROX_CHECK(calibrated_,
                       "call calibrate() before run_selected()");
        ++stats_.invocations;
        index = selected_;
    }

    VariantRun run = execute(index, input_seed);
    if (run.trapped && index != 0) {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.backoffs;
            if (selected_ == index)
                drop_selected_and_advance();
        }
        index = 0;
        run = execute(0, input_seed);
    }
    if (served_label)
        *served_label = variants_[index].label;
    if (served_index)
        *served_index = index;
    return run;
}

VariantRun
Tuner::run_exact(std::uint64_t input_seed) const
{
    return execute(0, input_seed);
}

void
Tuner::drop_selected_and_advance()
{
    auto it = std::find(fallback_order_.begin(), fallback_order_.end(),
                        selected_);
    if (it != fallback_order_.end() && *it != 0)
        fallback_order_.erase(it);
    selected_ = fallback_order_.front();
}

int
Tuner::selected_index() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return selected_;
}

const std::string&
Tuner::selected_label() const
{
    // Lock even though only an int is read: drop_selected_and_advance()
    // rewrites selected_ from the serving path, and an unsynchronized
    // read is a data race (labels themselves are immutable, so the
    // returned reference is safe to hold).
    std::lock_guard<std::mutex> lock(mutex_);
    return variants_[selected_].label;
}

TunerStats
Tuner::stats_snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

std::string
Tuner::selected_label_snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return variants_[selected_].label;
}

int
Tuner::selected_index_snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return selected_;
}

}  // namespace paraprox::runtime
